#include "src/comm/comm_manager.h"

namespace tabs::comm {

void CommManager::NoteChild(const TransactionId& tid, NodeId child) {
  if (child == self_) {
    return;
  }
  TreeInfo& info = trees_[tid];
  if (info.children.insert(child).second) {
    // First contact with this node for this transaction: the CM informs the
    // Transaction Manager (one small local message) and records the child.
    network_.substrate().Charge(sim::Primitive::kSmallMessage, 1);
    if (listener_ != nullptr) {
      listener_->OnRemoteChildJoined(tid, child);
    }
  }
}

void CommManager::NoteParent(const TransactionId& tid, NodeId parent) {
  if (parent == self_) {
    return;
  }
  TreeInfo& info = trees_[tid];
  if (info.parent == kInvalidNode && !info.initiated_remotely) {
    info.parent = parent;
    info.initiated_remotely = true;
    network_.substrate().Charge(sim::Primitive::kSmallMessage, 1);
    if (listener_ != nullptr) {
      listener_->OnRemoteParentObserved(tid, parent);
    }
  }
}

std::shared_ptr<CommManager::CallWindow> CommManager::AcquireSlot(const TransactionId& tid) {
  sim::Substrate& sub = network_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  auto& slot = windows_[tid];
  if (slot == nullptr) {
    slot = std::make_shared<CallWindow>();
  }
  // Hold a reference across the wait: Forget (commit/abort cleanup) may
  // erase the map entry while we sleep.
  std::shared_ptr<CallWindow> win = slot;
  while (win->outstanding >= max_outstanding_calls_) {
    if (!sched.Wait(win->slots, Network::kDefaultSessionTimeout)) {
      return nullptr;  // an in-flight call died with its destination
    }
  }
  ++win->outstanding;
  if (sub.tracer().enabled()) {
    if (outstanding_hist_ == nullptr) {
      outstanding_hist_ = sub.tracer().histograms().Register("cm.outstanding-calls");
    }
    outstanding_hist_->Record(win->outstanding);
  }
  return win;
}

}  // namespace tabs::comm
