#include "src/comm/comm_manager.h"

namespace tabs::comm {

void CommManager::NoteChild(const TransactionId& tid, NodeId child) {
  if (child == self_) {
    return;
  }
  TreeInfo& info = trees_[tid];
  if (info.children.insert(child).second) {
    // First contact with this node for this transaction: the CM informs the
    // Transaction Manager (one small local message) and records the child.
    network_.substrate().Charge(sim::Primitive::kSmallMessage, 1);
    if (listener_ != nullptr) {
      listener_->OnRemoteChildJoined(tid, child);
    }
  }
}

void CommManager::NoteParent(const TransactionId& tid, NodeId parent) {
  if (parent == self_) {
    return;
  }
  TreeInfo& info = trees_[tid];
  if (info.parent == kInvalidNode && !info.initiated_remotely) {
    info.parent = parent;
    info.initiated_remotely = true;
    network_.substrate().Charge(sim::Primitive::kSmallMessage, 1);
    if (listener_ != nullptr) {
      listener_->OnRemoteParentObserved(tid, parent);
    }
  }
}

}  // namespace tabs::comm
