// The per-node Communication Manager.
//
// Beyond moving messages, the Communication Manager "scans any transaction
// identifiers included in messages and is responsible for constructing the
// local portion of the spanning tree that the Transaction Manager uses
// during two-phase commit. In particular [it] records the node's parent,
// whether the transaction was initiated by a remote node, and the list of
// all the node's children." (Section 3.2.4.)
//
// A node A becomes the parent of node B for transaction T iff A was the
// first node to invoke an operation on behalf of T on B (Section 3.2.3).
// RemoteCall maintains exactly that relation on both ends and notifies the
// local Transaction Manager the first time remote sites become involved.

#ifndef TABS_COMM_COMM_MANAGER_H_
#define TABS_COMM_COMM_MANAGER_H_

#include <map>
#include <set>
#include <string>

#include "src/comm/network.h"
#include "src/common/types.h"

namespace tabs::comm {

// How the Communication Manager informs the Transaction Manager that remote
// sites joined a transaction (the second progress message of Section 3.2.3)
// and that a remote parent initiated a transaction here.
class TransactionTreeListener {
 public:
  virtual ~TransactionTreeListener() = default;
  // First inter-node message sent on behalf of `tid` from this node.
  virtual void OnRemoteChildJoined(const TransactionId& tid, NodeId child) = 0;
  // First inter-node message received on behalf of `tid` at this node.
  virtual void OnRemoteParentObserved(const TransactionId& tid, NodeId parent) = 0;
};

class CommManager {
 public:
  CommManager(NodeId self, Network& network) : self_(self), network_(network) {}

  NodeId self() const { return self_; }
  Network& network() { return network_; }
  void SetListener(TransactionTreeListener* listener) { listener_ = listener; }

  struct TreeInfo {
    NodeId parent = kInvalidNode;  // kInvalidNode: transaction is rooted here
    std::set<NodeId> children;
    bool initiated_remotely = false;
  };

  // Session RPC to a remote node on behalf of a transaction. Updates the
  // spanning tree on both ends. `handler` runs on the destination node; its
  // Communication Manager must be passed so the receive side is recorded.
  template <typename R>
  Result<R> RemoteCall(const TransactionId& tid, CommManager& remote, std::string what,
                       std::function<R()> handler) {
    sim::Tracer& tracer = network_.substrate().tracer();
    sim::SpanGuard span(tracer, sim::Component::kCommunicationManager, "cm.remote-call",
                        tracer.enabled() ? ToString(tid) : std::string());
    if (!network_.Reachable(self_, remote.self_)) {
      // The session layer detects the dead/partitioned destination before
      // any message flows: the remote node never becomes a participant.
      network_.substrate().Charge(sim::Primitive::kInterNodeDataServerCall);
      return Status::kNodeDown;
    }
    // From here on the destination may receive state, so it joins the
    // transaction's spanning tree even if the call later fails.
    NoteChild(tid, remote.self_);
    NodeId from = self_;
    TransactionId tid_copy = tid;
    CommManager* remote_ptr = &remote;
    return network_.SessionCall<R>(
        self_, remote.self_, std::move(what),
        [remote_ptr, tid_copy, from, handler = std::move(handler)]() -> R {
          remote_ptr->NoteParent(tid_copy, from);
          return handler();
        });
  }

  // Datagram on behalf of transaction management (commit protocol).
  void SendDatagram(NodeId to, std::string what, std::function<void()> handler) {
    network_.SendDatagram(self_, to, std::move(what), std::move(handler));
  }

  // The complete local tree info for `tid` ("The complete site list is
  // obtained from the Communication Manager during commit processing").
  TreeInfo InfoFor(const TransactionId& tid) const {
    auto it = trees_.find(tid);
    return it == trees_.end() ? TreeInfo{} : it->second;
  }

  void Forget(const TransactionId& tid) { trees_.erase(tid); }

  // Direct tree updates (used by the commit protocol's own messages, which
  // also carry transaction identifiers the CM scans).
  void NoteChild(const TransactionId& tid, NodeId child);
  void NoteParent(const TransactionId& tid, NodeId parent);

 private:
  NodeId self_;
  Network& network_;
  TransactionTreeListener* listener_ = nullptr;
  std::map<TransactionId, TreeInfo> trees_;
};

}  // namespace tabs::comm

#endif  // TABS_COMM_COMM_MANAGER_H_
