// The per-node Communication Manager.
//
// Beyond moving messages, the Communication Manager "scans any transaction
// identifiers included in messages and is responsible for constructing the
// local portion of the spanning tree that the Transaction Manager uses
// during two-phase commit. In particular [it] records the node's parent,
// whether the transaction was initiated by a remote node, and the list of
// all the node's children." (Section 3.2.4.)
//
// A node A becomes the parent of node B for transaction T iff A was the
// first node to invoke an operation on behalf of T on B (Section 3.2.3).
// RemoteCall maintains exactly that relation on both ends and notifies the
// local Transaction Manager the first time remote sites become involved.
//
// The asynchronous fast path (AsyncRemoteCall / AsyncRemoteCallBatch) lets a
// transaction overlap independent remote operations: up to
// `max_outstanding_calls` session calls may be in flight per top-level
// transaction, and up to `op_coalesce_batch` independent operations bound
// for the same server travel as one large message. Both knobs default to 1,
// which reproduces the paper's strictly sequential one-op-per-message
// behaviour (every table5_* number is unchanged); spanning-tree maintenance
// and reachability checks are identical on both paths.

#ifndef TABS_COMM_COMM_MANAGER_H_
#define TABS_COMM_COMM_MANAGER_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/comm/network.h"
#include "src/common/types.h"
#include "src/sim/fault_injector.h"

namespace tabs::comm {

// How the Communication Manager informs the Transaction Manager that remote
// sites joined a transaction (the second progress message of Section 3.2.3)
// and that a remote parent initiated a transaction here.
class TransactionTreeListener {
 public:
  virtual ~TransactionTreeListener() = default;
  // First inter-node message sent on behalf of `tid` from this node.
  virtual void OnRemoteChildJoined(const TransactionId& tid, NodeId child) = 0;
  // First inter-node message received on behalf of `tid` at this node.
  virtual void OnRemoteParentObserved(const TransactionId& tid, NodeId parent) = 0;
};

class CommManager {
 public:
  CommManager(NodeId self, Network& network) : self_(self), network_(network) {}

  NodeId self() const { return self_; }
  Network& network() { return network_; }
  void SetListener(TransactionTreeListener* listener) { listener_ = listener; }

  // Pipelining knobs (WorldOptions::max_outstanding_calls /
  // op_coalesce_batch). Both 1 by default: the paper-faithful sequential,
  // one-operation-per-message configuration.
  void ConfigurePipeline(int max_outstanding_calls, int op_coalesce_batch) {
    max_outstanding_calls_ = max_outstanding_calls < 1 ? 1 : max_outstanding_calls;
    op_coalesce_batch_ = op_coalesce_batch < 1 ? 1 : op_coalesce_batch;
  }
  int max_outstanding_calls() const { return max_outstanding_calls_; }
  int op_coalesce_batch() const { return op_coalesce_batch_; }

  struct TreeInfo {
    NodeId parent = kInvalidNode;  // kInvalidNode: transaction is rooted here
    std::set<NodeId> children;
    bool initiated_remotely = false;
  };

  // Session RPC to a remote node on behalf of a transaction. Updates the
  // spanning tree on both ends. `handler` runs on the destination node; its
  // Communication Manager must be passed so the receive side is recorded.
  template <typename R>
  Result<R> RemoteCall(const TransactionId& tid, CommManager& remote, std::string what,
                       std::function<R()> handler) {
    sim::Tracer& tracer = network_.substrate().tracer();
    sim::SpanGuard span(tracer, sim::Component::kCommunicationManager, "cm.remote-call",
                        tracer.enabled() ? ToString(tid) : std::string());
    if (!network_.Reachable(self_, remote.self_)) {
      // The session layer detects the dead/partitioned destination before
      // any message flows: the remote node never becomes a participant.
      network_.substrate().Charge(sim::Primitive::kInterNodeDataServerCall);
      return Status::kNodeDown;
    }
    // From here on the destination may receive state, so it joins the
    // transaction's spanning tree even if the call later fails.
    NoteChild(tid, remote.self_);
    NodeId from = self_;
    TransactionId tid_copy = tid;
    CommManager* remote_ptr = &remote;
    return network_.SessionCall<R>(
        self_, remote.self_, std::move(what),
        [remote_ptr, tid_copy, from, handler = std::move(handler)]() -> R {
          remote_ptr->NoteParent(tid_copy, from);
          return handler();
        });
  }

  // The asynchronous fast path: issues the session call and returns a future
  // instead of blocking. At most `max_outstanding_calls` calls per top-level
  // transaction are in flight — the issuer blocks for a free window slot
  // first, so the window is a backpressure bound, not a queue. Tree
  // maintenance and failure semantics match RemoteCall exactly: the remote
  // node joins the spanning tree before the message flows, an unreachable
  // destination yields an already-failed kNodeDown future, and a destination
  // that dies in flight leaves the future empty (the awaiting task's
  // Await(timeout) reports the broken session). `handler` returns Result<R>:
  // operation and session failures share the future's flat Result.
  template <typename R>
  sim::FuturePtr<Result<R>> AsyncRemoteCall(const TransactionId& tid, CommManager& remote,
                                            std::string what,
                                            std::function<Result<R>()> handler) {
    sim::Substrate& sub = network_.substrate();
    sim::SpanGuard span(sub.tracer(), sim::Component::kCommunicationManager, "cm.async-call",
                        sub.tracer().enabled() ? ToString(tid) : std::string());
    if (!network_.Reachable(self_, remote.self_)) {
      sub.Charge(sim::Primitive::kInterNodeDataServerCall);
      return FailedFuture<R>();
    }
    NoteChild(tid, remote.self_);
    auto win = AcquireSlot(tid);
    if (win == nullptr) {
      return FailedFuture<R>();  // a lost in-flight call never freed a slot
    }
    sub.metrics().CountAsyncCall();
    // Crash window: the remote node is already in the spanning tree but the
    // request has not left this node yet (a shard fan-out may die here with
    // earlier calls of the same transaction in flight).
    FAULT_POINT(sub, "comm.async-issue");
    NodeId from = self_;
    TransactionId tid_copy = tid;
    CommManager* remote_ptr = &remote;
    return network_.AsyncSessionCall<R>(
        self_, remote.self_, std::move(what),
        [remote_ptr, tid_copy, from, handler = std::move(handler)]() -> Result<R> {
          remote_ptr->NoteParent(tid_copy, from);
          return handler();
        },
        ReleaseSlotFn(win));
  }

  // Coalescing: `ops` (independent operations bound for the same server)
  // travel in ONE session call. The session primitive is charged once for
  // the whole batch; a batch of more than one op additionally charges a
  // large-message marshal on the sender and a large-message unmarshal plus a
  // local data-server-call dispatch per extra op on the receiver — so
  // coalescing trades k-1 inter-node calls for k-1 local dispatches. Results
  // arrive in issue order; the outer Result carries session-layer failure,
  // the inner per-op Results carry each operation's own verdict.
  template <typename R>
  sim::FuturePtr<Result<std::vector<Result<R>>>> AsyncRemoteCallBatch(
      const TransactionId& tid, CommManager& remote, std::string what,
      std::vector<std::function<Result<R>()>> ops) {
    sim::Substrate& sub = network_.substrate();
    const size_t k = ops.size();
    sim::SpanGuard span(sub.tracer(), sim::Component::kCommunicationManager,
                        k > 1 ? "cm.coalesce" : "cm.async-call",
                        sub.tracer().enabled() ? ToString(tid) : std::string());
    if (!network_.Reachable(self_, remote.self_)) {
      sub.Charge(sim::Primitive::kInterNodeDataServerCall);
      return FailedFuture<std::vector<Result<R>>>();
    }
    NoteChild(tid, remote.self_);
    auto win = AcquireSlot(tid);
    if (win == nullptr) {
      return FailedFuture<std::vector<Result<R>>>();
    }
    sub.metrics().CountAsyncCall();
    if (k > 1) {
      // The request grows from a small to a large message; the k-1 coalesced
      // ops ride along instead of paying their own sessions.
      sub.Charge(sim::Primitive::kLargeMessage);
      sub.metrics().CountMessagesCoalesced(static_cast<double>(k - 1));
    }
    // Crash window: a coalesced batch is about to leave for one shard while
    // sibling shards' batches may already be in flight.
    FAULT_POINT(sub, "comm.batch-issue");
    NodeId from = self_;
    TransactionId tid_copy = tid;
    CommManager* remote_ptr = &remote;
    sim::Substrate* subp = &sub;
    return network_.AsyncSessionCall<std::vector<Result<R>>>(
        self_, remote.self_, std::move(what),
        [remote_ptr, tid_copy, from, k, subp,
         ops = std::move(ops)]() -> Result<std::vector<Result<R>>> {
          // Crash window on the receiving shard: the batch arrived, the
          // sender believes it is in flight, nothing has executed yet.
          FAULT_POINT(*subp, "comm.batch-dispatch");
          remote_ptr->NoteParent(tid_copy, from);
          if (k > 1) {
            subp->Charge(sim::Primitive::kLargeMessage);  // unmarshal the batch
            subp->Charge(sim::Primitive::kDataServerCall, static_cast<double>(k - 1));
          }
          std::vector<Result<R>> out;
          out.reserve(k);
          for (auto& op : ops) {
            out.push_back(op());
          }
          return out;
        },
        ReleaseSlotFn(win));
  }

  // Datagram on behalf of transaction management (commit protocol).
  void SendDatagram(NodeId to, std::string what, std::function<void()> handler) {
    network_.SendDatagram(self_, to, std::move(what), std::move(handler));
  }

  // The complete local tree info for `tid` ("The complete site list is
  // obtained from the Communication Manager during commit processing").
  // Returned by reference: commit processing reads it repeatedly and must
  // not copy the child set on every message.
  const TreeInfo& InfoFor(const TransactionId& tid) const {
    static const TreeInfo kNoTree;
    auto it = trees_.find(tid);
    return it == trees_.end() ? kNoTree : it->second;
  }

  void Forget(const TransactionId& tid) {
    trees_.erase(tid);
    windows_.erase(tid);
  }

  // Direct tree updates (used by the commit protocol's own messages, which
  // also carry transaction identifiers the CM scans).
  void NoteChild(const TransactionId& tid, NodeId child);
  void NoteParent(const TransactionId& tid, NodeId parent);

  // Leak observability for tests: live spanning-tree entries and live
  // pipeline windows (both must drain to zero once transactions finish).
  size_t TrackedTreeCount() const { return trees_.size(); }
  size_t OpenCallWindowCount() const { return windows_.size(); }

 private:
  // Per-top-level-transaction pipeline window. Shared with the reply
  // delivery tasks, which may outlive this CommManager (origin crash): a
  // late completion then decrements an orphaned counter and notifies an
  // empty queue, both harmless.
  struct CallWindow {
    int outstanding = 0;
    sim::WaitQueue slots;
  };

  template <typename R>
  sim::FuturePtr<Result<R>> FailedFuture() {
    auto f = std::make_shared<sim::Future<Result<R>>>(network_.substrate().scheduler());
    f->Fulfil(Status::kNodeDown);
    return f;
  }

  // Blocks until the transaction's window has a free slot and claims it.
  // Returns null if no slot frees within a session timeout (an in-flight
  // call was lost to a crash and will never complete).
  std::shared_ptr<CallWindow> AcquireSlot(const TransactionId& tid);

  // The on_complete hook handed to the network: frees the slot and wakes one
  // blocked issuer. Runs on the reply delivery task.
  std::function<void()> ReleaseSlotFn(const std::shared_ptr<CallWindow>& win) {
    sim::Scheduler* sched = &network_.substrate().scheduler();
    return [win, sched] {
      --win->outstanding;
      sched->NotifyOne(win->slots);
    };
  }

  NodeId self_;
  Network& network_;
  TransactionTreeListener* listener_ = nullptr;
  int max_outstanding_calls_ = 1;
  int op_coalesce_batch_ = 1;
  // Keyed by transaction id; iteration order is never protocol-visible (all
  // protocol iteration happens over a single entry's child set), so hashed
  // containers are safe and keep the per-message lookups O(1).
  std::unordered_map<TransactionId, TreeInfo> trees_;
  std::unordered_map<TransactionId, std::shared_ptr<CallWindow>> windows_;
  // Interned once on first use; AcquireSlot is on every remote call's path.
  sim::HistogramRegistry::Histogram* outstanding_hist_ = nullptr;
};

}  // namespace tabs::comm

#endif  // TABS_COMM_COMM_MANAGER_H_
