// The simulated network connecting TABS nodes.
//
// TABS uses three forms of network communication (Section 3.2.4): reliable
// session communication for remote procedure calls, datagrams for the
// distributed two-phase commit, and broadcasting for name lookup. This class
// provides all three with virtual-time semantics:
//
//  * A session call blocks the caller, runs its handler in a task on the
//    destination node, and resumes the caller at the handler's finish time
//    plus transit — so remote latency composes exactly as the paper's
//    primitive analysis assumes. Sessions deliver at-most-once and detect
//    remote crashes (a dead or crashing destination surfaces as kNodeDown).
//  * A datagram is fire-and-forget: the handler task starts one datagram
//    time after the send, and the sender's clock does not advance. Loss can
//    be injected per (from, to) pair for protocol tests.
//  * Broadcast sends a datagram to every other live node.
//
// Handlers are C++ closures rather than serialized byte messages: this plays
// the role Matchmaker-generated stubs played in TABS (packing/unpacking was
// never protocol-visible). Handler tasks are tagged with the destination
// node, so a node crash kills in-flight handlers exactly like process death.

#ifndef TABS_COMM_NETWORK_H_
#define TABS_COMM_NETWORK_H_

#include <functional>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/sim/substrate.h"

namespace tabs::comm {

class Network {
 public:
  static constexpr SimTime kDefaultSessionTimeout = 30'000'000;  // 30 s virtual

  explicit Network(sim::Substrate& substrate) : substrate_(substrate) {}

  void AddNode(NodeId id) { alive_.insert(id); }
  bool IsAlive(NodeId id) const { return alive_.contains(id); }
  void SetAlive(NodeId id, bool alive) {
    if (alive) {
      alive_.insert(id);
    } else {
      alive_.erase(id);
    }
  }
  std::set<NodeId> LiveNodes() const { return alive_; }

  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  bool Reachable(NodeId from, NodeId to) const;

  // Drop filter for datagrams: return true to drop. Cleared by passing {}.
  void SetDatagramLoss(std::function<bool(NodeId from, NodeId to)> drop) {
    drop_ = std::move(drop);
  }

  // Tag-aware drop filter: also sees the datagram's `what` label, so tests
  // can lose one protocol message class (e.g. every "2pc-commit") while the
  // rest of the traffic flows. Cleared by passing {}.
  void SetDatagramLossTagged(
      std::function<bool(NodeId from, NodeId to, const std::string& what)> drop) {
    tagged_drop_ = std::move(drop);
  }

  // Loss filter for session traffic (establishment and sends): a dropped
  // session call surfaces to the caller as kNodeDown — the session layer's
  // at-most-once machinery detects the break and gives up, rather than the
  // silent loss datagrams get. Cleared by passing {}.
  void SetSessionLoss(std::function<bool(NodeId from, NodeId to)> drop) {
    session_drop_ = std::move(drop);
  }

  // Seeded datagram-level faults: each send independently rolls for
  // duplication (a second delivery of the same handler) and for bounded
  // delay jitter (which reorders datagrams relative to program order, since
  // an early send can arrive after a later one). Deterministic: one RNG,
  // consumed in send order, which the scheduler fixes per seed. Disabled by
  // default and by `SetDatagramFaults({})`.
  struct DatagramFaults {
    std::uint64_t seed = 0;
    double duplicate_probability = 0;
    double jitter_probability = 0;
    SimTime max_jitter_us = 0;
  };
  void SetDatagramFaults(const DatagramFaults& faults);

  // --- session RPC ----------------------------------------------------------
  // Runs `handler` on node `to` and returns its value. Charges one inter-node
  // data-server-call primitive split across the two transits. R must be
  // movable. On unreachable/crashed destination returns kNodeDown.
  template <typename R>
  Result<R> SessionCall(NodeId from, NodeId to, std::string what, std::function<R()> handler,
                        SimTime timeout = kDefaultSessionTimeout) {
    sim::Scheduler& sched = substrate_.scheduler();
    // The whole RPC — outbound transit, remote work, reply wait — is one
    // session span; the remote handler's own spans attribute the middle.
    sim::SpanGuard span(substrate_.tracer(), sim::Component::kCommunicationManager,
                        "session.call", substrate_.tracer().enabled() ? what : std::string());
    if (!Reachable(from, to)) {
      // Permanent communication failure detected by the session layer.
      substrate_.Charge(sim::Primitive::kInterNodeDataServerCall);
      return Status::kNodeDown;
    }
    if (session_drop_ && session_drop_(from, to)) {
      // Injected loss on the session: establishment/send fails and the
      // at-most-once session layer reports the broken session to the caller.
      substrate_.Charge(sim::Primitive::kInterNodeDataServerCall);
      substrate_.metrics().CountFault(sim::FaultKind::kSessionDrop);
      return Status::kNodeDown;
    }
    substrate_.metrics().Count(sim::Primitive::kInterNodeDataServerCall);
    if (substrate_.tracer().enabled() && sched.in_task()) {
      substrate_.tracer().Record(sched.Now(), from,
                                 sim::PrimitiveName(sim::Primitive::kInterNodeDataServerCall),
                                 what);
    }
    SimTime half = substrate_.CostOf(sim::Primitive::kInterNodeDataServerCall) / 2;
    sched.Charge(half);  // outbound transit
    auto channel = std::make_shared<sim::Channel<Result<R>>>(sched);
    sched.Spawn(std::move(what), to, sched.Now(), [this, from, to, half, channel,
                                                   handler = std::move(handler)] {
      if (!IsAlive(to)) {
        return;  // destination died in transit; the session will time out
      }
      if (!IsAlive(from)) {
        // Sender died in transit: the connection-oriented session is gone and
        // nobody can consume a reply. Executing the request would only create
        // orphan transaction state, so the session layer discards it.
        return;
      }
      Result<R> r = handler();
      {
        sim::SpanGuard recv(substrate_.tracer(), sim::Component::kCommunicationManager,
                            "session.reply");
        substrate_.scheduler().Charge(half);  // return transit
      }
      channel->Push(std::move(r));
    });
    Result<R> out(Status::kNodeDown);
    if (!channel->PopWithTimeout(timeout, &out)) {
      return Status::kNodeDown;  // session broken: remote crash detected
    }
    return out;
  }

  // Like SessionCall, but the caller does not block: the returned future is
  // fulfilled when the reply arrives (at the reply's virtual time, so the
  // awaiting task joins to it exactly as a blocking call would). Charging is
  // identical to SessionCall — one inter-node call primitive per session,
  // half-transit on the sender at issue, half on the delivery task — so a
  // window of one reproduces the synchronous latency composition.
  //
  // `handler` returns a Result<R> so remote-operation failures and
  // session-layer failures (kNodeDown) share the future's payload — the
  // await site sees one flat Result either way.
  //
  // `on_complete` (optional) runs exactly once when the session resolves
  // without the destination crashing: at reply delivery, or synchronously on
  // an immediate failure (unreachable destination, injected session drop).
  // If the destination dies with the call in flight it never runs and the
  // future stays empty — the caller's Await(timeout) detects the broken
  // session, exactly like SessionCall's PopWithTimeout.
  template <typename R>
  sim::FuturePtr<Result<R>> AsyncSessionCall(NodeId from, NodeId to, std::string what,
                                             std::function<Result<R>()> handler,
                                             std::function<void()> on_complete = {}) {
    sim::Scheduler& sched = substrate_.scheduler();
    auto future = std::make_shared<sim::Future<Result<R>>>(sched);
    // The issue side is a short span: only the outbound transit runs on the
    // caller; the remote work and return transit attribute to the delivery
    // task (the "session.reply" span).
    sim::SpanGuard span(substrate_.tracer(), sim::Component::kCommunicationManager,
                        "session.async-send",
                        substrate_.tracer().enabled() ? what : std::string());
    if (!Reachable(from, to)) {
      substrate_.Charge(sim::Primitive::kInterNodeDataServerCall);
      if (on_complete) {
        on_complete();
      }
      future->Fulfil(Status::kNodeDown);
      return future;
    }
    if (session_drop_ && session_drop_(from, to)) {
      substrate_.Charge(sim::Primitive::kInterNodeDataServerCall);
      substrate_.metrics().CountFault(sim::FaultKind::kSessionDrop);
      if (on_complete) {
        on_complete();
      }
      future->Fulfil(Status::kNodeDown);
      return future;
    }
    substrate_.metrics().Count(sim::Primitive::kInterNodeDataServerCall);
    if (substrate_.tracer().enabled() && sched.in_task()) {
      substrate_.tracer().Record(sched.Now(), from,
                                 sim::PrimitiveName(sim::Primitive::kInterNodeDataServerCall),
                                 what);
    }
    SimTime half = substrate_.CostOf(sim::Primitive::kInterNodeDataServerCall) / 2;
    sched.Charge(half);  // outbound transit — sends serialize at the sender
    sched.Spawn(std::move(what), to, sched.Now(),
                [this, from, to, half, future, handler = std::move(handler),
                 on_complete = std::move(on_complete)] {
                  if (!IsAlive(to)) {
                    return;  // died in transit; the caller's Await times out
                  }
                  if (!IsAlive(from)) {
                    return;  // sender died in transit: no session to reply
                             // on — discard instead of creating orphan state
                  }
                  Result<R> r = handler();
                  {
                    sim::SpanGuard recv(substrate_.tracer(),
                                        sim::Component::kCommunicationManager, "session.reply");
                    substrate_.scheduler().Charge(half);  // return transit
                  }
                  if (on_complete) {
                    on_complete();
                  }
                  future->Fulfil(std::move(r));
                });
    return future;
  }

  // --- datagrams -------------------------------------------------------------
  // Fire-and-forget. The handler runs on `to` one datagram-time later; the
  // sender does not block and its clock does not advance.
  void SendDatagram(NodeId from, NodeId to, std::string what, std::function<void()> handler);

  // Datagram to every live node except the sender. `handler(node)` runs on
  // each destination.
  void Broadcast(NodeId from, std::string what, std::function<void(NodeId)> handler);

  sim::Substrate& substrate() { return substrate_; }

 private:
  sim::Substrate& substrate_;
  std::set<NodeId> alive_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::function<bool(NodeId, NodeId)> drop_;
  std::function<bool(NodeId, NodeId, const std::string&)> tagged_drop_;
  std::function<bool(NodeId, NodeId)> session_drop_;
  DatagramFaults datagram_faults_;
  bool datagram_faults_enabled_ = false;
  std::mt19937_64 fault_rng_;
};

}  // namespace tabs::comm

#endif  // TABS_COMM_NETWORK_H_
