#include "src/comm/network.h"

#include <algorithm>

namespace tabs::comm {

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (!IsAlive(to) || !IsAlive(from)) {
    return false;
  }
  return !partitions_.contains(std::minmax(from, to));
}

void Network::SetDatagramFaults(const DatagramFaults& faults) {
  datagram_faults_ = faults;
  datagram_faults_enabled_ =
      faults.duplicate_probability > 0 || faults.jitter_probability > 0;
  fault_rng_.seed(faults.seed);
}

void Network::SendDatagram(NodeId from, NodeId to, std::string what,
                           std::function<void()> handler) {
  sim::Scheduler& sched = substrate_.scheduler();
  // Zero-duration on the sender (datagrams don't advance its clock), but the
  // spawned handler's transit time is attributed to the comm manager.
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kCommunicationManager,
                      "datagram.send", substrate_.tracer().enabled() ? what : std::string());
  substrate_.metrics().Count(sim::Primitive::kDatagram);
  if (!Reachable(from, to)) {
    return;  // silently lost, as datagrams are
  }
  if (drop_ && drop_(from, to)) {
    substrate_.metrics().CountFault(sim::FaultKind::kDatagramDrop);
    return;
  }
  if (tagged_drop_ && tagged_drop_(from, to, what)) {
    substrate_.metrics().CountFault(sim::FaultKind::kDatagramDrop);
    return;
  }
  SimTime arrival = sched.Now() + substrate_.CostOf(sim::Primitive::kDatagram);
  int deliveries = 1;
  if (datagram_faults_enabled_) {
    std::uniform_real_distribution<double> roll(0.0, 1.0);
    if (roll(fault_rng_) < datagram_faults_.jitter_probability) {
      // Bounded extra transit: a jittered datagram can arrive after one sent
      // later, which is exactly the reordering 2PC must tolerate.
      arrival += std::uniform_int_distribution<std::int64_t>(
          1, datagram_faults_.max_jitter_us)(fault_rng_);
      substrate_.metrics().CountFault(sim::FaultKind::kDatagramJitter);
    }
    if (roll(fault_rng_) < datagram_faults_.duplicate_probability) {
      deliveries = 2;
      substrate_.metrics().CountFault(sim::FaultKind::kDatagramDuplicate);
    }
  }
  for (int d = 0; d < deliveries; ++d) {
    // A duplicate trails the original by one datagram time (at-most-once is
    // the session layer's property, not the datagram layer's: 2PC handlers
    // must be — and are — idempotent against redelivery).
    SimTime when = arrival + d * substrate_.CostOf(sim::Primitive::kDatagram);
    sched.Spawn(what, to, when, [this, to, handler] {
      if (!IsAlive(to)) {
        return;
      }
      handler();
    });
  }
}

void Network::Broadcast(NodeId from, std::string what, std::function<void(NodeId)> handler) {
  for (NodeId node : alive_) {
    if (node == from) {
      continue;
    }
    SendDatagram(from, node, what, [handler, node] { handler(node); });
  }
}

}  // namespace tabs::comm
