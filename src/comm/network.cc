#include "src/comm/network.h"

#include <algorithm>

namespace tabs::comm {

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (!IsAlive(to) || !IsAlive(from)) {
    return false;
  }
  return !partitions_.contains(std::minmax(from, to));
}

void Network::SendDatagram(NodeId from, NodeId to, std::string what,
                           std::function<void()> handler) {
  sim::Scheduler& sched = substrate_.scheduler();
  substrate_.metrics().Count(sim::Primitive::kDatagram);
  if (!Reachable(from, to) || (drop_ && drop_(from, to))) {
    return;  // silently lost, as datagrams are
  }
  SimTime arrival = sched.Now() + substrate_.CostOf(sim::Primitive::kDatagram);
  sched.Spawn(std::move(what), to, arrival, [this, to, handler = std::move(handler)] {
    if (!IsAlive(to)) {
      return;
    }
    handler();
  });
}

void Network::Broadcast(NodeId from, std::string what, std::function<void(NodeId)> handler) {
  for (NodeId node : alive_) {
    if (node == from) {
      continue;
    }
    SendDatagram(from, node, what, [handler, node] { handler(node); });
  }
}

}  // namespace tabs::comm
