// name::Resolver — the one client-side resolution path.
//
// Every consumer of Name Server lookups (replicated-directory clients,
// sharded service handles, plain by-name opens) shares the same needs: look
// a name up, cache the bindings so repeated operations do not re-broadcast,
// and drop cached bindings that turn out to be stale when a routed call
// comes back kNodeDown. This class centralises that behaviour so replicas
// and shards resolve through one code path.
//
// Methods take the NameServer per call rather than holding a reference:
// node recovery tears the name server down and rebuilds it, so a stored
// reference would dangle across the very crashes the cache-invalidation
// logic exists for.

#ifndef TABS_NAME_RESOLVER_H_
#define TABS_NAME_RESOLVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/name/name_server.h"

namespace tabs::name {

class Resolver {
 public:
  struct Stats {
    std::uint64_t lookups = 0;       // NameServer::LookUp round trips
    std::uint64_t cache_hits = 0;    // answered from the cache
    std::uint64_t invalidations = 0; // entries dropped (node down / explicit)
  };

  // `max_wait` bounds each underlying LookUp broadcast (virtual time).
  explicit Resolver(SimTime max_wait = 1'000'000) : max_wait_(max_wait) {}

  // LookUp with a cache in front: returns up to `desired` bindings. A cached
  // entry satisfies the call only if it already holds enough bindings;
  // otherwise the name is re-looked-up and the cache replaced. Must run
  // inside a task (a miss broadcasts and blocks in virtual time).
  std::vector<Binding> Resolve(NameServer& ns, const std::string& name, size_t desired);

  // Resolves a logical *service* (replicated or sharded): every binding's
  // object id carries the member count, so one binding teaches the resolver
  // how many to gather. `complete()` distinguishes a full member set from a
  // partial one (some member's node down) — shard routing requires complete;
  // quorum-based replica sets may proceed on partial.
  struct ServiceResolution {
    std::uint32_t expected = 0;  // member count claimed by the bindings
    std::vector<Binding> bindings;

    bool complete() const { return expected != 0 && bindings.size() >= expected; }
  };
  ServiceResolution ResolveService(NameServer& ns, const std::string& name);

  // Cache maintenance. InvalidateNode drops every cached binding that points
  // at `node` — the kNodeDown reaction; Invalidate drops one name; Clear
  // drops everything.
  void InvalidateNode(NodeId node);
  void Invalidate(const std::string& name);
  void Clear();

  const Stats& stats() const { return stats_; }

 private:
  std::vector<Binding> LookUpAndCache(NameServer& ns, const std::string& name,
                                      size_t desired);

  SimTime max_wait_;
  std::map<std::string, std::vector<Binding>> cache_;
  Stats stats_;
};

}  // namespace tabs::name

#endif  // TABS_NAME_RESOLVER_H_
