// The TABS Name Server (Sections 3.1.3, 3.2.5).
//
// Each node's Name Server maps names to one or more <node, server,
// logical-object-id> bindings for objects managed by data servers on that
// node. "Whenever the Name Server is asked about a name it does not
// recognize, it broadcasts a name lookup request to all other Name Servers."
// A data server may service several objects on one port, and independent
// data servers can together implement replicated objects — so a name may
// resolve to many bindings (the replicated directory registers one binding
// per representative).

#ifndef TABS_NAME_NAME_SERVER_H_
#define TABS_NAME_NAME_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/comm/comm_manager.h"
#include "src/common/types.h"

namespace tabs::name {

struct Binding {
  NodeId node = kInvalidNode;
  std::string server;   // the data server's port, morally
  ObjectId object;      // logical object identifier within that server

  friend bool operator==(const Binding&, const Binding&) = default;
};

class NameServer {
 public:
  explicit NameServer(comm::CommManager& cm) : cm_(cm) {}

  // World keeps this map current across crashes; a crashed node's entry is
  // null and broadcasts to it go unanswered.
  void SetPeers(const std::map<NodeId, NameServer*>* peers) { peers_ = peers; }

  void Register(const std::string& name, Binding binding);
  void DeRegister(const std::string& name, const Binding& binding);

  // Local map only; answers broadcasts.
  std::vector<Binding> LocalLookup(const std::string& name) const;

  // LookUp(Name, DesiredNumberOfPortIDs, MaxWait) — Table 3-3. Checks the
  // local map, then broadcasts and gathers replies until `desired` bindings
  // arrive or `max_wait` virtual time passes.
  std::vector<Binding> LookUp(const std::string& name, size_t desired, SimTime max_wait);

 private:
  comm::CommManager& cm_;
  const std::map<NodeId, NameServer*>* peers_ = nullptr;
  std::map<std::string, std::vector<Binding>> bindings_;
};

}  // namespace tabs::name

#endif  // TABS_NAME_NAME_SERVER_H_
