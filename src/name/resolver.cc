#include "src/name/resolver.h"

#include <algorithm>

namespace tabs::name {

std::vector<Binding> Resolver::LookUpAndCache(NameServer& ns, const std::string& name,
                                              size_t desired) {
  ++stats_.lookups;
  std::vector<Binding> found = ns.LookUp(name, desired, max_wait_);
  if (found.empty()) {
    cache_.erase(name);
  } else {
    cache_[name] = found;
  }
  return found;
}

std::vector<Binding> Resolver::Resolve(NameServer& ns, const std::string& name,
                                       size_t desired) {
  auto it = cache_.find(name);
  if (it != cache_.end() && it->second.size() >= desired) {
    ++stats_.cache_hits;
    std::vector<Binding> out = it->second;
    out.resize(desired);
    return out;
  }
  return LookUpAndCache(ns, name, desired);
}

Resolver::ServiceResolution Resolver::ResolveService(NameServer& ns,
                                                     const std::string& name) {
  auto expected_of = [](const std::vector<Binding>& bs) -> std::uint32_t {
    // Member count rides in the binding's object id; a plain single binding
    // registered without placement info (length used as an object size) still
    // reads as "1 of 1" only when it says so — default registrations do.
    return bs.empty() ? 0 : std::max<std::uint32_t>(1, bs.front().object.length);
  };

  auto it = cache_.find(name);
  if (it != cache_.end()) {
    std::uint32_t expected = expected_of(it->second);
    if (expected != 0 && it->second.size() >= expected) {
      ++stats_.cache_hits;
      return ServiceResolution{expected, it->second};
    }
  }

  // Two steps: one binding teaches the member count, then gather that many.
  // (When the first step already returned everything — count 1 — the second
  // lookup is satisfied locally from the refreshed cache.)
  std::vector<Binding> first = LookUpAndCache(ns, name, 1);
  std::uint32_t expected = expected_of(first);
  if (expected <= first.size()) {
    return ServiceResolution{expected, std::move(first)};
  }
  std::vector<Binding> all = LookUpAndCache(ns, name, expected);
  return ServiceResolution{expected, std::move(all)};
}

void Resolver::InvalidateNode(NodeId node) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    auto& list = it->second;
    size_t before = list.size();
    list.erase(std::remove_if(list.begin(), list.end(),
                              [node](const Binding& b) { return b.node == node; }),
               list.end());
    if (list.size() != before) {
      ++stats_.invalidations;
    }
    if (list.empty()) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void Resolver::Invalidate(const std::string& name) {
  if (cache_.erase(name) != 0) {
    ++stats_.invalidations;
  }
}

void Resolver::Clear() {
  stats_.invalidations += cache_.size();
  cache_.clear();
}

}  // namespace tabs::name
