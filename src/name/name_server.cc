#include "src/name/name_server.h"

#include <algorithm>
#include <memory>

#include "src/sim/scheduler.h"

namespace tabs::name {

void NameServer::Register(const std::string& name, Binding binding) {
  auto& list = bindings_[name];
  if (std::find(list.begin(), list.end(), binding) == list.end()) {
    list.push_back(std::move(binding));
  }
}

void NameServer::DeRegister(const std::string& name, const Binding& binding) {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    return;
  }
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), binding), list.end());
  if (list.empty()) {
    bindings_.erase(it);
  }
}

std::vector<Binding> NameServer::LocalLookup(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? std::vector<Binding>{} : it->second;
}

std::vector<Binding> NameServer::LookUp(const std::string& name, size_t desired,
                                        SimTime max_wait) {
  std::vector<Binding> found = LocalLookup(name);
  if (found.size() >= desired) {
    found.resize(desired);
    return found;
  }

  // Broadcast to every other Name Server; each replies (by datagram) with
  // its local bindings. Replies land in a channel we drain until satisfied.
  sim::Scheduler& sched = cm_.network().substrate().scheduler();
  auto replies = std::make_shared<sim::Channel<std::vector<Binding>>>(sched);
  const auto* peers = peers_;
  NodeId self = cm_.self();
  comm::Network& net = cm_.network();
  net.Broadcast(self, "name-lookup:" + name, [peers, name, self, &net, replies](NodeId node) {
    if (peers == nullptr) {
      return;
    }
    auto it = peers->find(node);
    if (it == peers->end() || it->second == nullptr) {
      return;
    }
    std::vector<Binding> local = it->second->LocalLookup(name);
    if (local.empty()) {
      return;
    }
    net.SendDatagram(node, self, "name-reply:" + name,
                     [replies, local = std::move(local)] { replies->Push(local); });
  });

  SimTime deadline = sched.Now() + max_wait;
  while (found.size() < desired && sched.Now() < deadline) {
    std::vector<Binding> batch;
    if (!replies->PopWithTimeout(deadline - sched.Now(), &batch)) {
      break;
    }
    for (Binding& b : batch) {
      if (std::find(found.begin(), found.end(), b) == found.end()) {
        found.push_back(std::move(b));
      }
    }
  }
  if (found.size() > desired) {
    found.resize(desired);
  }
  return found;
}

}  // namespace tabs::name
