// The distributed performance monitor.
//
// The paper's acknowledgments credit "the distributed performance monitoring
// system that made it possible to get accurate performance measurements of
// distributed transactions"; this is that facility for the reproduction.
// When enabled, every primitive operation (and any explicit component event)
// is recorded with its virtual time and node; the timeline shows exactly
// where a distributed transaction's latency went — which is how the numbers
// behind Section 5.2's accounting ("36 msec in the Transaction Manager, 5 in
// the Recovery Manager...") were obtained.

#ifndef TABS_SIM_TRACER_H_
#define TABS_SIM_TRACER_H_

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace tabs::sim {

struct TraceEvent {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  std::string category;
  std::string detail;
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void Enable(bool on) { enabled_ = on; }
  void Clear() { events_.clear(); }

  void Record(SimTime time, NodeId node, std::string category, std::string detail = "") {
    if (!enabled_) {
      return;
    }
    events_.push_back({time, node, std::move(category), std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // The timeline, ordered by virtual time (stable for ties: recording order).
  std::string Timeline() const {
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(events_.size());
    for (const TraceEvent& e : events_) {
      ordered.push_back(&e);
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent* a, const TraceEvent* b) { return a->time < b->time; });
    std::ostringstream os;
    for (const TraceEvent* e : ordered) {
      os << e->time / 1000.0 << "ms  node" << e->node << "  " << e->category;
      if (!e->detail.empty()) {
        os << " (" << e->detail << ")";
      }
      os << "\n";
    }
    return os.str();
  }

  // Per-(node, category) event counts — the raw material for Section 5.2's
  // "where did the time go" decomposition.
  std::string Summary() const {
    std::map<std::pair<NodeId, std::string>, int> counts;
    for (const TraceEvent& e : events_) {
      ++counts[{e.node, e.category}];
    }
    std::ostringstream os;
    for (const auto& [key, n] : counts) {
      os << "node" << key.first << "  " << key.second << " x" << n << "\n";
    }
    return os.str();
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_TRACER_H_
