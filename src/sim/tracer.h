// The distributed performance monitor.
//
// The paper's acknowledgments credit "the distributed performance monitoring
// system that made it possible to get accurate performance measurements of
// distributed transactions"; this is that facility for the reproduction.
// When enabled, every primitive operation (and any explicit component event)
// is recorded with its virtual time and node; the timeline shows exactly
// where a distributed transaction's latency went — which is how the numbers
// behind Section 5.2's accounting ("36 msec in the Transaction Manager, 5 in
// the Recovery Manager...") were obtained.
//
// On top of the flat event timeline the monitor keeps three structured views:
//
//  * Spans — nested RAII intervals (SpanGuard) tagged with the TABS component
//    doing the work (Figure 3-1: Transaction Manager, Recovery Manager,
//    Communication Manager, data servers, kernel, log). Spans nest per task
//    and are exported as Chrome trace-event JSON (one pid per node, one tid
//    per component) loadable in chrome://tracing or Perfetto.
//
//  * Component attribution — a per-task vector of cumulative virtual time per
//    component whose entries always sum exactly to the task's clock. The
//    tracer maintains it as a ClockObserver on the scheduler: clock advances
//    are charged to the innermost open span's component; when a blocked task
//    is woken forward in time it adopts the waker's vector (the wait went
//    wherever the waker spent it); a spawned task inherits its spawner's
//    vector plus the transit time. Differencing two snapshots of the
//    application task's vector therefore decomposes any interval's latency
//    by component with zero residual — Section 5.2's accounting, exact.
//
//  * Histograms — per-primitive and per-span-kind virtual-time samples with
//    exact quantiles, serialized into the bench JSON output.
//
// Everything here is deterministic: identical seeds yield byte-identical
// timelines, traces, and histograms. With tracing disabled no observer is
// installed and no state is touched, so the simulation is bit-for-bit
// identical to one built without the monitor.

#ifndef TABS_SIM_TRACER_H_
#define TABS_SIM_TRACER_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/scheduler.h"

namespace tabs::sim {

// The TABS processes of Figure 3-1, plus the application itself. Virtual time
// not inside any instrumented span is attributed to the application.
enum class Component {
  kApplication = 0,
  kTransactionManager,
  kRecoveryManager,
  kCommunicationManager,
  kDataServer,
  kKernel,
  kLog,
};
inline constexpr int kComponentCount = 7;

const char* ComponentName(Component c);

// Cumulative virtual time per component; indexed by static_cast<int>.
using ComponentTimes = std::array<SimTime, kComponentCount>;

struct TraceEvent {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  std::string category;
  std::string detail;
  Component component = Component::kApplication;
};

// Exact-quantile histograms keyed by name. All samples are retained (bench
// scales are small); quantiles are computed by sorting on demand, so they are
// exact rather than bucket-approximate — regressions of a single microsecond
// are visible.
//
// Hot paths resolve a name to a Histogram* once, at registration, and record
// through the handle — a pointer deref and a vector push, no map lookup and
// no string construction per sample. Handles stay valid (and keep feeding the
// same series) across Clear() for the registry's lifetime.
class HistogramRegistry {
 public:
  struct Stats {
    std::uint64_t count = 0;
    SimTime total = 0;
    SimTime min = 0;
    SimTime max = 0;
    SimTime p50 = 0;
    SimTime p90 = 0;
    SimTime p99 = 0;
  };

  class Histogram {
   public:
    void Record(SimTime value) { samples_.push_back(value); }

   private:
    friend class HistogramRegistry;
    std::vector<SimTime> samples_;
  };

  // Finds or creates the named series; the returned handle is stable.
  Histogram* Register(const std::string& name) {
    auto [it, inserted] = series_.try_emplace(name);
    if (inserted) {
      it->second = std::make_unique<Histogram>();
    }
    return it->second.get();
  }

  // Name-keyed convenience for cold paths (pays the map lookup per call).
  void Sample(const std::string& name, SimTime value) { Register(name)->Record(value); }

  // Drops all samples; registered handles survive and keep recording.
  void Clear() {
    for (auto& [name, h] : series_) {
      h->samples_.clear();
    }
  }
  bool empty() const {
    for (const auto& [name, h] : series_) {
      if (!h->samples_.empty()) {
        return false;
      }
    }
    return true;
  }

  // Exact stats per non-empty histogram, in name order (deterministic).
  // Sorts each series in place rather than copying every sample vector;
  // sample insertion order is not meaningful, so this is observably pure.
  std::map<std::string, Stats> AllStats();

 private:
  std::map<std::string, std::unique_ptr<Histogram>> series_;
};

// One nested interval of component work inside one task.
struct SpanRecord {
  SimTime begin = 0;
  SimTime end = -1;  // -1 while open
  NodeId node = kInvalidNode;
  Component component = Component::kApplication;
  TaskId task = kInvalidTask;
  std::uint64_t seq = 0;  // global open order; tie-breaker for sorting
  int depth = 0;          // nesting depth within the opening task
  std::string name;
  std::string detail;
  // Interned "span.<name>" series, resolved at open so close is a pointer
  // deref rather than a string build plus map lookup. Not serialized.
  HistogramRegistry::Histogram* hist = nullptr;
};

class Tracer : public ClockObserver {
 public:
  Tracer();  // registers the per-primitive histogram handles once
  ~Tracer() override;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Attaches the tracer to the scheduler whose clocks it attributes. Without
  // a bound scheduler the tracer still records explicit events (unit tests
  // construct it bare) but spans and attribution are inert.
  void Bind(Scheduler* sched);

  bool enabled() const { return enabled_; }
  void Enable(bool on);
  void Clear();

  void Record(SimTime time, NodeId node, std::string category, std::string detail = "") {
    if (!enabled_) {
      return;
    }
    events_.push_back({time, node, std::move(category), std::move(detail), CurrentComponent()});
  }

  // Substrate::Charge's hot path: one timeline event plus one histogram
  // sample through the handle interned at construction — no "primitive.*"
  // string is built and no map is consulted per charge.
  void RecordPrimitive(Primitive p, SimTime time, NodeId node, const std::string& task_name,
                       SimTime cost) {
    if (!enabled_) {
      return;
    }
    events_.push_back({time, node, PrimitiveName(p), task_name, CurrentComponent()});
    primitive_hists_[static_cast<int>(p)]->Record(cost);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  HistogramRegistry& histograms() { return histograms_; }
  const HistogramRegistry& histograms() const { return histograms_; }

  // The component of the current task's innermost open span (kApplication
  // when outside any span, outside any task, or unbound).
  Component CurrentComponent() const;

  // Snapshot of the running task's cumulative per-component attribution.
  // Entries sum exactly to the task's virtual clock. Outside any task (or
  // unbound) returns all zeros; for a task first seen before tracing was
  // enabled, time predating the first observation counts as kApplication.
  ComponentTimes CurrentTaskAttribution() const;

  // The timeline, ordered by virtual time (stable for ties: recording order).
  std::string Timeline() const {
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(events_.size());
    for (const TraceEvent& e : events_) {
      ordered.push_back(&e);
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent* a, const TraceEvent* b) { return a->time < b->time; });
    std::ostringstream os;
    for (const TraceEvent* e : ordered) {
      os << e->time / 1000.0 << "ms  node" << e->node << "  " << e->category;
      if (!e->detail.empty()) {
        os << " (" << e->detail << ")";
      }
      os << "\n";
    }
    return os.str();
  }

  // Per-(node, category) event counts — the raw material for Section 5.2's
  // "where did the time go" decomposition.
  std::string Summary() const {
    std::map<std::pair<NodeId, std::string>, int> counts;
    for (const TraceEvent& e : events_) {
      ++counts[{e.node, e.category}];
    }
    std::ostringstream os;
    for (const auto& [key, n] : counts) {
      os << "node" << key.first << "  " << key.second << " x" << n << "\n";
    }
    return os.str();
  }

  // Chrome trace-event JSON ("JSON object format"): one pid per node, one tid
  // per component, ph:"X" duration events for spans (sorted by begin time,
  // then open order) and ph:"i" instants for the flat events. Deterministic:
  // identical runs serialize byte-identically. Open chrome://tracing or
  // https://ui.perfetto.dev and load the saved file.
  std::string ChromeTraceJson() const;

  // ClockObserver — installed on the bound scheduler while enabled.
  void OnAdvance(const Task& t, SimTime from, SimTime to) override;
  void OnSpawn(const Task& t, const Task* spawner, SimTime start) override;
  void OnWake(const Task& t, const Task* waker, SimTime from, SimTime to) override;
  void OnTimeout(const Task& t, SimTime from, SimTime to) override;
  void OnDone(const Task& t) override;

 private:
  friend class SpanGuard;

  struct TaskState {
    ComponentTimes attribution{};  // invariant: sums to the task's clock
    std::vector<std::uint32_t> open_spans;  // indices into spans_
    Component current = Component::kApplication;
  };

  // Finds or creates the state for `t`, attributing any clock time that
  // predates the first observation (`clock_before`) to kApplication.
  TaskState& EnsureState(const Task& t, SimTime clock_before);

  std::uint32_t OpenSpan(Component component, const char* name, std::string detail);
  void CloseSpan(std::uint32_t index, std::uint64_t generation);

  // Interned "span.<name>" handle, cached by the name literal's address (span
  // names are string literals; duplicate literals across TUs just produce
  // extra cache entries pointing at the same registered series).
  HistogramRegistry::Histogram* SpanHistogram(const char* name);

  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  Scheduler* sched_ = nullptr;
  bool observer_installed_ = false;
  std::uint64_t generation_ = 0;  // bumped by Clear(); invalidates live guards
  std::uint64_t next_seq_ = 0;
  std::vector<SpanRecord> spans_;
  std::unordered_map<TaskId, TaskState> task_states_;
  HistogramRegistry histograms_;
  std::array<HistogramRegistry::Histogram*, kPrimitiveCount> primitive_hists_{};
  std::unordered_map<const void*, HistogramRegistry::Histogram*> span_hists_;
};

// RAII span: opens a component interval on the running task at construction,
// closes it at destruction (including TaskKilled unwinds). Inert when tracing
// is disabled, when the tracer is unbound, or outside any task — the
// disabled-path cost is one branch. Spans must be closed in the task that
// opened them (automatic with stack discipline).
class SpanGuard {
 public:
  SpanGuard(Tracer& tracer, Component component, const char* name, std::string detail = "");
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when inert
  std::uint32_t index_ = 0;
  std::uint64_t generation_ = 0;
};

// "  36.0ms  Transaction Manager"-style per-component table for the interval
// described by `delta` (typically the difference of two CurrentTaskAttribution
// snapshots). Components with zero time are omitted; a total line is printed
// last and always equals the sum of the listed components exactly.
std::string FormatDecomposition(const ComponentTimes& delta, const std::string& indent = "  ");

}  // namespace tabs::sim

#endif  // TABS_SIM_TRACER_H_
