// Simulated non-volatile storage: the Perq disk.
//
// Pages are 512 bytes. Each page carries a sequence number stored in the
// sector's header space — the kernel modification that supports operation
// logging (Section 3.2.1): the recovery algorithm compares a page's sequence
// number against log-record sequence numbers to decide whether an operation's
// effect reached non-volatile storage.
//
// Disk contents survive node crashes (non-volatile) but, as in the paper, we
// do not model media failure ("we do not consider disk failures in this
// work", Section 3.2.2).

#ifndef TABS_SIM_SIM_DISK_H_
#define TABS_SIM_SIM_DISK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/sim/substrate.h"

namespace tabs::sim {

struct DiskPage {
  std::vector<std::uint8_t> data;  // kPageSize bytes
  std::uint64_t sequence_number = 0;

  DiskPage() : data(kPageSize, 0) {}
};

class SimDisk {
 public:
  explicit SimDisk(Substrate& substrate) : substrate_(substrate) {}

  // Creates (or grows) a segment's backing store; newly created pages are
  // zero-filled. Free (uncharged): segment creation is setup, not workload.
  void EnsureSegment(SegmentId segment, PageNumber pages);
  bool HasSegment(SegmentId segment) const { return segments_.contains(segment); }
  PageNumber SegmentPages(SegmentId segment) const;

  // Reads a page into `out` (kPageSize bytes). `sequential` selects the
  // cheaper sequential-read primitive. Returns the page's sequence number.
  std::uint64_t ReadPage(PageId page, std::uint8_t* out, bool sequential);

  // Writes a page together with its new header sequence number. `sequential`
  // selects the cheaper sequential-write primitive (the page continues an
  // elevator-ordered sweep, so the arm does not seek); demand write-backs
  // pass false at their call sites — those writes are still random-access,
  // as the single disk interleaves log forces between them (Section 5.1).
  void WritePage(PageId page, const std::uint8_t* data, std::uint64_t sequence_number,
                 bool sequential = false);

  // Reads just the header sequence number (used by crash recovery; charged
  // as a random page I/O since it requires a seek).
  std::uint64_t ReadSequenceNumber(PageId page);

  // Uncharged accessors for tests and for recovery bootstrapping.
  const DiskPage& PeekPage(PageId page) const;

  // Media failure: the segment's non-volatile contents (data and sequence
  // numbers) are lost. The stable log device lives elsewhere and survives.
  void WipeSegment(SegmentId segment);

  // Archive restore: writes a page image including its sequence number,
  // charging one random page I/O (the restore is real disk traffic).
  void RestorePage(PageId page, const DiskPage& image);

  // --- fault injection ------------------------------------------------------
  // After skipping `after` more writes, the next `count` WritePage calls are
  // silently dropped: the disk charges and reports success but the old
  // contents and sequence number remain. Skip+lose models a torn elevator
  // batch (prefix of the sweep durable, tail lost); the page-seqno guard in
  // redo makes recovery repair exactly the lost pages.
  void InjectLostWrites(int count, int after = 0);
  // Scrambles a page's data deterministically and destroys its header
  // sequence number (a damaged sector). Value-logging recovery rewrites the
  // committed images; no virtual-time charge (damage, not I/O).
  void CorruptPage(PageId page);

 private:
  DiskPage& PageRef(PageId page);

  Substrate& substrate_;
  // Hashed: every access is a point lookup (ReadPage/WritePage on the I/O
  // hot path); nothing iterates, so ordering is never protocol-visible.
  std::unordered_map<SegmentId, std::vector<DiskPage>> segments_;
  int lost_writes_pending_ = 0;
  int lost_writes_after_ = 0;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_SIM_DISK_H_
