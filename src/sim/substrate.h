// Substrate: the bundle of scheduler + cost model + metrics that every TABS
// component charges primitive operations against.
//
// Charging a primitive does two things: it advances the running task's
// virtual clock by the primitive's configured time (Table 5-1 or 5-5), and it
// increments the per-phase counter used to regenerate Tables 5-2/5-3.

#ifndef TABS_SIM_SUBSTRATE_H_
#define TABS_SIM_SUBSTRATE_H_

#include "src/sim/cost_model.h"
#include "src/sim/metrics.h"
#include "src/sim/scheduler.h"
#include "src/sim/tracer.h"

namespace tabs::sim {

class FaultInjector;

class Substrate {
 public:
  Substrate(Scheduler& sched, CostModel costs, ArchitectureModel arch)
      : sched_(sched), costs_(costs), arch_(arch) {
    tracer_.Bind(&sched_);
  }

  Scheduler& scheduler() { return sched_; }
  const CostModel& costs() const { return costs_; }
  const ArchitectureModel& arch() const { return arch_; }
  Metrics& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  // The nemesis, when one is installed (World owns it). Null by default:
  // FAULT_POINT hooks compile to a single null check and the simulation is
  // bit-for-bit what it was before fault injection existed.
  FaultInjector* faults() { return faults_; }
  void SetFaultInjector(FaultInjector* f) { faults_ = f; }

  // Charges one (or fractionally, `n`) primitive operation to the running
  // task and counts it in the current phase.
  void Charge(Primitive p, double n = 1.0) {
    metrics_.Count(p, n);
    auto cost = static_cast<SimTime>(static_cast<double>(costs_.Of(p)) * n);
    sched_.Charge(cost);
    if (tracer_.enabled() && sched_.in_task()) {
      tracer_.RecordPrimitive(p, sched_.Now(), sched_.current()->node, sched_.current()->name,
                              cost);
    }
  }

  // The cost of `p` without charging it (for modelling parallel sends, where
  // the sender pays per-send CPU but deliveries overlap).
  SimTime CostOf(Primitive p) const { return costs_.Of(p); }

  // A local Accent message addressed to the Transaction Manager or Recovery
  // Manager. Under the Improved TABS Architecture these components are merged
  // into the kernel, so the message disappears entirely (Section 5.3).
  void ChargeSystemMessage(Primitive p, double n = 1.0) {
    if (arch_.merged_tm_rm || suppress_system_messages_ > 0) {
      return;
    }
    Charge(p, n);
  }

  // Scope under which system messages are free: background activity (the
  // page cleaner between transactions) exchanges kernel/RM messages off any
  // transaction's critical path, so the paper's per-transaction counts
  // include its I/O but not its messages.
  class BackgroundScope {
   public:
    explicit BackgroundScope(Substrate& s) : s_(s) { ++s_.suppress_system_messages_; }
    ~BackgroundScope() { --s_.suppress_system_messages_; }
    BackgroundScope(const BackgroundScope&) = delete;
    BackgroundScope& operator=(const BackgroundScope&) = delete;

   private:
    Substrate& s_;
  };

 private:
  Scheduler& sched_;
  CostModel costs_;
  ArchitectureModel arch_;
  Metrics metrics_;
  Tracer tracer_;
  FaultInjector* faults_ = nullptr;
  int suppress_system_messages_ = 0;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_SUBSTRATE_H_
