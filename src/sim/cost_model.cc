#include "src/sim/cost_model.h"

namespace tabs::sim {

const char* PrimitiveName(Primitive p) {
  switch (p) {
    case Primitive::kDataServerCall:
      return "Data Server Call";
    case Primitive::kInterNodeDataServerCall:
      return "Inter-Node Data Server Call";
    case Primitive::kDatagram:
      return "Datagram";
    case Primitive::kSmallMessage:
      return "Small Contiguous Message";
    case Primitive::kLargeMessage:
      return "Large Contiguous Message";
    case Primitive::kPointerMessage:
      return "Pointer Message";
    case Primitive::kRandomPageIo:
      return "Random Access Paged I/O";
    case Primitive::kSequentialRead:
      return "Sequential Read";
    case Primitive::kStableWrite:
      return "Stable Storage Write";
    case Primitive::kSequentialWrite:
      return "Sequential Write";
    case Primitive::kCount:
      break;
  }
  return "?";
}

CostModel CostModel::Baseline() {
  CostModel m;
  m.Of(Primitive::kDataServerCall) = 26100;        // 26.1 ms
  m.Of(Primitive::kInterNodeDataServerCall) = 89000;
  m.Of(Primitive::kDatagram) = 25000;
  m.Of(Primitive::kSmallMessage) = 3000;
  m.Of(Primitive::kLargeMessage) = 4400;
  m.Of(Primitive::kPointerMessage) = 18300;
  m.Of(Primitive::kRandomPageIo) = 32000;
  m.Of(Primitive::kSequentialRead) = 16000;
  m.Of(Primitive::kStableWrite) = 79000;
  // No seek: a write in an elevator sweep pays only what a sequential read
  // pays on the same arm (transfer + rotational latency).
  m.Of(Primitive::kSequentialWrite) = 16000;
  return m;
}

CostModel CostModel::Achievable() {
  CostModel m;
  m.Of(Primitive::kDataServerCall) = 2500;          // 2.5 ms
  m.Of(Primitive::kInterNodeDataServerCall) = 9000;
  m.Of(Primitive::kDatagram) = 2000;
  m.Of(Primitive::kSmallMessage) = 1000;
  m.Of(Primitive::kLargeMessage) = 1250;
  m.Of(Primitive::kPointerMessage) = 15000;
  m.Of(Primitive::kRandomPageIo) = 32000;           // disk-bound already
  m.Of(Primitive::kSequentialRead) = 10000;
  m.Of(Primitive::kStableWrite) = 32000;
  m.Of(Primitive::kSequentialWrite) = 10000;
  return m;
}

}  // namespace tabs::sim
