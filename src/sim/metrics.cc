#include "src/sim/metrics.h"

// Header-only for now; kept as a translation unit for build uniformity.

namespace tabs::sim {}
