#include "src/sim/scheduler.h"

#include <algorithm>
#include <cassert>

namespace tabs::sim {

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    for (auto& t : tasks_) {
      t->killed = true;
      if (t->state == Task::State::kBlocked) {
        if (t->waiting_on != nullptr) {
          auto& w = t->waiting_on->waiters_;
          w.erase(std::remove(w.begin(), w.end(), t.get()), w.end());
          t->waiting_on = nullptr;
        }
        t->state = Task::State::kReady;
      }
    }
  }
  // Give every remaining task one turn so its stack unwinds via TaskKilled.
  Run();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& t : tasks_) {
    if (t->thread.joinable()) {
      t->thread.join();
    }
  }
}

TaskId Scheduler::Spawn(std::string name, NodeId node, SimTime start_time,
                        std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto task = std::make_unique<Task>();
  task->id = next_id_++;
  task->name = std::move(name);
  task->node = node;
  task->time = start_time;
  task->state = Task::State::kReady;
  task->fn = std::move(fn);
  task->scheduler = this;
  Task* raw = task.get();
  task->thread = std::thread(&Scheduler::TaskMain, raw);
  tasks_.push_back(std::move(task));
  if (observer_ != nullptr) {
    observer_->OnSpawn(*raw, current_, start_time);
  }
  return raw->id;
}

void Scheduler::TaskMain(Task* t) {
  Scheduler* sched = t->scheduler;
  {
    std::unique_lock<std::mutex> lock(sched->mu_);
    t->cv.wait(lock, [&] { return sched->current_ == t; });
  }
  if (!t->killed) {
    try {
      t->fn();
    } catch (const TaskKilled&) {
      // Node crash or shutdown: the task dies with its stack unwound.
    }
  }
  std::lock_guard<std::mutex> lock(sched->mu_);
  if (sched->observer_ != nullptr) {
    sched->observer_->OnDone(*t);
  }
  t->state = Task::State::kDone;
  sched->current_ = nullptr;
  sched->sched_cv_.notify_one();
}

int Scheduler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  assert(current_ == nullptr && "Run() must not be called from inside a task");
  for (;;) {
    ReapDoneLocked();

    Task* best = nullptr;
    for (auto& t : tasks_) {
      if (t->state != Task::State::kReady) {
        continue;
      }
      if (best == nullptr || t->time < best->time ||
          (t->time == best->time && t->id < best->id)) {
        best = t.get();
      }
    }

    // A pending lock-wait timeout fires if it precedes every runnable task.
    while (!timers_.empty()) {
      auto it = timers_.begin();
      Task* victim = it->second.first;
      std::uint64_t gen = it->second.second;
      if (victim->state != Task::State::kBlocked || victim->timer_generation != gen) {
        timers_.erase(it);  // stale: the task was woken or re-blocked since
        continue;
      }
      if (best != nullptr && best->time <= it->first) {
        break;  // a runnable task precedes the earliest timeout
      }
      // Fire the timeout: pull the victim out of its wait queue.
      SimTime deadline = it->first;
      timers_.erase(it);
      if (victim->waiting_on != nullptr) {
        auto& w = victim->waiting_on->waiters_;
        w.erase(std::remove(w.begin(), w.end(), victim), w.end());
        victim->waiting_on = nullptr;
      }
      victim->timed_out = true;
      victim->state = Task::State::kReady;
      if (deadline > victim->time) {
        SimTime from = victim->time;
        victim->time = deadline;
        if (observer_ != nullptr) {
          observer_->OnTimeout(*victim, from, deadline);
        }
      }
      if (best == nullptr || victim->time < best->time ||
          (victim->time == best->time && victim->id < best->id)) {
        best = victim;
      }
    }

    if (best == nullptr) {
      break;  // quiescent: either all done or the rest are blocked forever
    }

    best->state = Task::State::kRunning;
    current_ = best;
    best->cv.notify_one();
    sched_cv_.wait(lock, [&] { return current_ == nullptr; });
  }
  ReapDoneLocked();
  int blocked = 0;
  for (auto& t : tasks_) {
    if (t->state == Task::State::kBlocked) {
      ++blocked;
    }
  }
  return blocked;
}

void Scheduler::ReapDoneLocked() {
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if ((*it)->state == Task::State::kDone) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
}

SimTime Scheduler::Now() const {
  assert(current_ != nullptr);
  return current_->time;
}

void Scheduler::Charge(SimTime cost) {
  assert(cost >= 0);
  if (current_ == nullptr) {
    return;  // setup work outside any task is free (e.g. server construction)
  }
  if (current_->killed) {
    throw TaskKilled{};
  }
  SimTime from = current_->time;
  current_->time += cost;
  if (observer_ != nullptr && cost > 0) {
    observer_->OnAdvance(*current_, from, current_->time);
  }
}

void Scheduler::AdvanceTo(SimTime t) {
  if (current_ == nullptr) {
    return;
  }
  if (t > current_->time) {
    SimTime from = current_->time;
    current_->time = t;
    if (observer_ != nullptr) {
      observer_->OnAdvance(*current_, from, t);
    }
  }
}

void Scheduler::ParkCurrent(std::unique_lock<std::mutex>& lock, Task* t) {
  current_ = nullptr;
  sched_cv_.notify_one();
  t->cv.wait(lock, [&] { return current_ == t; });
  if (t->killed) {
    throw TaskKilled{};
  }
}

bool Scheduler::Wait(WaitQueue& q, SimTime timeout) {
  Task* t = current_;
  assert(t != nullptr && "Wait() called outside a task");
  if (t->killed) {
    throw TaskKilled{};
  }
  std::unique_lock<std::mutex> lock(mu_);
  t->state = Task::State::kBlocked;
  t->timed_out = false;
  t->waiting_on = &q;
  q.waiters_.push_back(t);
  ++t->timer_generation;
  if (timeout >= 0) {
    timers_.insert({t->time + timeout, {t, t->timer_generation}});
  }
  ParkCurrent(lock, t);
  return !t->timed_out;
}

void Scheduler::WakeLocked(Task* t, SimTime wake_time) {
  t->waiting_on = nullptr;
  ++t->timer_generation;  // cancel any pending timeout
  t->state = Task::State::kReady;
  if (wake_time > t->time) {
    SimTime from = t->time;
    t->time = wake_time;
    if (observer_ != nullptr) {
      observer_->OnWake(*t, current_, from, wake_time);
    }
  }
}

void Scheduler::NotifyOne(WaitQueue& q) {
  assert(current_ != nullptr && "NotifyOne() called outside a task");
  std::lock_guard<std::mutex> lock(mu_);
  Task* t = q.Front();
  if (t != nullptr) {
    q.waiters_.pop_front();
    WakeLocked(t, current_->time);
  }
}

void Scheduler::NotifyAll(WaitQueue& q) {
  assert(current_ != nullptr && "NotifyAll() called outside a task");
  std::lock_guard<std::mutex> lock(mu_);
  while (Task* t = q.Front()) {
    q.waiters_.pop_front();
    WakeLocked(t, current_->time);
  }
}

void Scheduler::Yield() {
  Task* t = current_;
  assert(t != nullptr);
  if (t->killed) {
    throw TaskKilled{};
  }
  std::unique_lock<std::mutex> lock(mu_);
  t->state = Task::State::kReady;
  ParkCurrent(lock, t);
}

void Scheduler::KillWhere(const std::function<bool(const Task&)>& pred) {
  bool kill_self = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks_) {
      if (t->state == Task::State::kDone || !pred(*t)) {
        continue;
      }
      if (t.get() == current_) {
        kill_self = true;
        t->killed = true;
        continue;
      }
      t->killed = true;
      if (t->state == Task::State::kBlocked) {
        if (t->waiting_on != nullptr) {
          auto& w = t->waiting_on->waiters_;
          w.erase(std::remove(w.begin(), w.end(), t.get()), w.end());
          t->waiting_on = nullptr;
        }
        ++t->timer_generation;
        t->state = Task::State::kReady;  // resumes, sees killed, unwinds
      }
    }
  }
  if (kill_self) {
    throw TaskKilled{};
  }
}

int Scheduler::blocked_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& t : tasks_) {
    if (t->state == Task::State::kBlocked) {
      ++n;
    }
  }
  return n;
}

}  // namespace tabs::sim
