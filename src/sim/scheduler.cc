#include "src/sim/scheduler.h"

#include <algorithm>
#include <cassert>

namespace tabs::sim {

namespace {
// Cap on recycled Task objects kept between spawns. Enough that steady-state
// RPC traffic never allocates; bounded so a one-off fan-out burst does not
// pin memory forever.
constexpr std::size_t kMaxPooledTasks = 256;
}  // namespace

WaitQueue::~WaitQueue() {
  // Every task in waiters_ is blocked with waiting_on == this (wake and
  // timer-fire erase eagerly), and blocked tasks are never reaped, so the
  // pointers are live. Runs either inside the sole running task or outside
  // Run() entirely — never concurrently with scheduler mutation.
  for (Task* t : waiters_) {
    if (t->waiting_on == this) {
      t->waiting_on = nullptr;
    }
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    for (auto& t : tasks_) {
      t->killed = true;
      if (t->state == Task::State::kBlocked) {
        if (t->waiting_on != nullptr) {
          auto& w = t->waiting_on->waiters_;
          w.erase(std::remove(w.begin(), w.end(), t.get()), w.end());
          t->waiting_on = nullptr;
        }
        CancelTimerLocked(t.get());
        t->state = Task::State::kReady;
        PushReadyLocked(t.get());
      }
    }
  }
  // Give every remaining task one turn so its stack unwinds via TaskKilled.
  Run();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& w : workers_) {
      w->exit = true;
      w->cv.notify_one();
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  workers_.clear();
  free_workers_.clear();
  task_pool_.clear();
}

TaskId Scheduler::Spawn(std::string name, NodeId node, SimTime start_time,
                        std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Task> task;
  if (!task_pool_.empty()) {
    task = std::move(task_pool_.back());
    task_pool_.pop_back();
  } else {
    task = std::make_unique<Task>();
  }
  task->id = next_id_++;
  task->name = std::move(name);
  task->node = node;
  task->state = Task::State::kReady;
  task->time = start_time;
  task->timed_out = false;
  task->killed = false;
  task->timer_armed = false;
  task->waiting_on = nullptr;
  task->fn = std::move(fn);
  task->scheduler = this;
  Task* raw = task.get();
  Worker* w;
  if (!free_workers_.empty()) {
    w = free_workers_.back();
    free_workers_.pop_back();
  } else {
    workers_.push_back(std::make_unique<Worker>());
    w = workers_.back().get();
    w->thread = std::thread(&Scheduler::WorkerMain, this, w);
  }
  w->task = raw;
  raw->worker = w;
  raw->index = tasks_.size();
  tasks_.push_back(std::move(task));
  PushReadyLocked(raw);
  if (observer_ != nullptr) {
    observer_->OnSpawn(*raw, current_, start_time);
  }
  return raw->id;
}

void Scheduler::WorkerMain(Scheduler* sched, Worker* w) {
  std::unique_lock<std::mutex> lock(sched->mu_);
  for (;;) {
    w->cv.wait(lock, [&] {
      return w->exit || (w->task != nullptr && sched->current_ == w->task);
    });
    if (w->exit) {
      return;
    }
    Task* t = w->task;
    if (!t->killed) {
      lock.unlock();
      try {
        t->fn();
      } catch (const TaskKilled&) {
        // Node crash or shutdown: the task dies with its stack unwound.
      }
      lock.lock();
    }
    if (sched->observer_ != nullptr) {
      sched->observer_->OnDone(*t);
    }
    t->state = Task::State::kDone;
    t->fn = nullptr;
    t->worker = nullptr;
    w->task = nullptr;
    sched->done_.push_back(t);
    sched->free_workers_.push_back(w);
    sched->current_ = nullptr;
    sched->ScheduleNextLocked();
  }
}

int Scheduler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  assert(current_ == nullptr && "Run() must not be called from inside a task");
  idle_ = false;
  // Hand off to the first task; from here tasks chain directly worker to
  // worker and this thread sleeps until the system goes quiescent.
  ScheduleNextLocked();
  sched_cv_.wait(lock, [&] { return idle_; });
  ReapDoneLocked();
  int blocked = 0;
  for (auto& t : tasks_) {
    if (t->state == Task::State::kBlocked) {
      ++blocked;
    }
  }
  return blocked;
}

void Scheduler::PushReadyLocked(Task* t) {
  assert(t->state == Task::State::kReady);
  ready_.push_back(ReadyEntry{t->time, t->id, t});
  std::push_heap(ready_.begin(), ready_.end(), ReadyAfter{});
}

Task* Scheduler::PeekReadyLocked() {
  while (!ready_.empty()) {
    const ReadyEntry& e = ready_.front();
    // An entry is pushed when its task becomes ready and popped when the
    // task is selected to run, so the top is normally live; the guard only
    // protects against a recycled Task object (fresh id) behind a stale
    // pointer.
    if (e.task->state == Task::State::kReady && e.task->id == e.id) {
      assert(e.task->time == e.time && "a ready task's clock is immutable");
      return e.task;
    }
    std::pop_heap(ready_.begin(), ready_.end(), ReadyAfter{});
    ready_.pop_back();
  }
  return nullptr;
}

void Scheduler::ScheduleNextLocked() {
  assert(current_ == nullptr);
  ReapDoneLocked();
  Task* best = PeekReadyLocked();

  // A pending lock-wait timeout fires if it precedes every runnable task.
  while (!timers_.empty()) {
    auto it = timers_.begin();
    if (best != nullptr && best->time <= it->deadline) {
      break;  // a runnable task precedes the earliest timeout
    }
    // Fire the timeout: pull the victim out of its wait queue. Entries are
    // erased eagerly on cancellation, so the victim is always still blocked.
    Task* victim = it->task;
    SimTime deadline = it->deadline;
    assert(victim->state == Task::State::kBlocked && victim->timer_armed);
    timers_.erase(it);
    victim->timer_armed = false;
    if (victim->waiting_on != nullptr) {
      auto& w = victim->waiting_on->waiters_;
      w.erase(std::remove(w.begin(), w.end(), victim), w.end());
      victim->waiting_on = nullptr;
    }
    victim->timed_out = true;
    victim->state = Task::State::kReady;
    if (deadline > victim->time) {
      SimTime from = victim->time;
      victim->time = deadline;
      if (observer_ != nullptr) {
        observer_->OnTimeout(*victim, from, deadline);
      }
    }
    PushReadyLocked(victim);
    best = PeekReadyLocked();
  }

  if (best == nullptr) {
    // Quiescent: either all done or the rest are blocked forever.
    idle_ = true;
    sched_cv_.notify_one();
    return;
  }
  assert(ready_.front().task == best);
  std::pop_heap(ready_.begin(), ready_.end(), ReadyAfter{});
  ready_.pop_back();
  best->state = Task::State::kRunning;
  current_ = best;
  ++steps_;
  best->worker->cv.notify_one();
}

void Scheduler::ReapDoneLocked() {
  if (done_.empty()) {
    return;
  }
  for (Task* t : done_) {
    assert(!t->timer_armed);
    std::size_t idx = t->index;
    assert(tasks_[idx].get() == t);
    std::unique_ptr<Task> owned = std::move(tasks_[idx]);
    if (idx + 1 != tasks_.size()) {
      tasks_[idx] = std::move(tasks_.back());
      tasks_[idx]->index = idx;
    }
    tasks_.pop_back();
    if (task_pool_.size() < kMaxPooledTasks) {
      owned->name.clear();
      owned->waiting_on = nullptr;
      task_pool_.push_back(std::move(owned));
    }
  }
  done_.clear();
}

SimTime Scheduler::Now() const {
  assert(current_ != nullptr);
  return current_->time;
}

void Scheduler::Charge(SimTime cost) {
  assert(cost >= 0);
  if (current_ == nullptr) {
    return;  // setup work outside any task is free (e.g. server construction)
  }
  if (current_->killed) {
    throw TaskKilled{};
  }
  SimTime from = current_->time;
  current_->time += cost;
  if (observer_ != nullptr && cost > 0) {
    observer_->OnAdvance(*current_, from, current_->time);
  }
}

void Scheduler::AdvanceTo(SimTime t) {
  if (current_ == nullptr) {
    return;
  }
  if (t > current_->time) {
    SimTime from = current_->time;
    current_->time = t;
    if (observer_ != nullptr) {
      observer_->OnAdvance(*current_, from, t);
    }
  }
}

void Scheduler::ParkCurrent(std::unique_lock<std::mutex>& lock, Task* t) {
  current_ = nullptr;
  // The parking thread selects and wakes its successor directly; if the
  // selection picks `t` itself (a Yield with nothing earlier), the wait
  // predicate is already true and no OS context switch happens at all.
  ScheduleNextLocked();
  t->worker->cv.wait(lock, [&] { return current_ == t; });
  if (t->killed) {
    throw TaskKilled{};
  }
}

bool Scheduler::Wait(WaitQueue& q, SimTime timeout) {
  Task* t = current_;
  assert(t != nullptr && "Wait() called outside a task");
  if (t->killed) {
    throw TaskKilled{};
  }
  std::unique_lock<std::mutex> lock(mu_);
  t->state = Task::State::kBlocked;
  t->timed_out = false;
  t->waiting_on = &q;
  q.waiters_.push_back(t);
  assert(!t->timer_armed && "a task arms at most one timer");
  if (timeout >= 0) {
    t->timer_armed = true;
    t->timer_deadline = t->time + timeout;
    t->timer_seq = ++timer_seq_;
    timers_.insert(TimerKey{t->timer_deadline, t->timer_seq, t});
  }
  ParkCurrent(lock, t);
  return !t->timed_out;
}

void Scheduler::CancelTimerLocked(Task* t) {
  if (t->timer_armed) {
    timers_.erase(TimerKey{t->timer_deadline, t->timer_seq, nullptr});
    t->timer_armed = false;
  }
}

void Scheduler::WakeLocked(Task* t, SimTime wake_time) {
  t->waiting_on = nullptr;
  CancelTimerLocked(t);  // purge the pending timeout eagerly
  t->state = Task::State::kReady;
  if (wake_time > t->time) {
    SimTime from = t->time;
    t->time = wake_time;
    if (observer_ != nullptr) {
      observer_->OnWake(*t, current_, from, wake_time);
    }
  }
  PushReadyLocked(t);
}

void Scheduler::NotifyOne(WaitQueue& q) {
  assert(current_ != nullptr && "NotifyOne() called outside a task");
  std::lock_guard<std::mutex> lock(mu_);
  Task* t = q.Front();
  if (t != nullptr) {
    q.waiters_.pop_front();
    WakeLocked(t, current_->time);
  }
}

void Scheduler::NotifyAll(WaitQueue& q) {
  assert(current_ != nullptr && "NotifyAll() called outside a task");
  std::lock_guard<std::mutex> lock(mu_);
  while (Task* t = q.Front()) {
    q.waiters_.pop_front();
    WakeLocked(t, current_->time);
  }
}

void Scheduler::Yield() {
  Task* t = current_;
  assert(t != nullptr);
  if (t->killed) {
    throw TaskKilled{};
  }
  std::unique_lock<std::mutex> lock(mu_);
  t->state = Task::State::kReady;
  PushReadyLocked(t);
  ParkCurrent(lock, t);
}

void Scheduler::KillWhere(const std::function<bool(const Task&)>& pred) {
  bool kill_self = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks_) {
      if (t->state == Task::State::kDone || !pred(*t)) {
        continue;
      }
      if (t.get() == current_) {
        kill_self = true;
        t->killed = true;
        continue;
      }
      t->killed = true;
      if (t->state == Task::State::kBlocked) {
        if (t->waiting_on != nullptr) {
          auto& w = t->waiting_on->waiters_;
          w.erase(std::remove(w.begin(), w.end(), t.get()), w.end());
          t->waiting_on = nullptr;
        }
        CancelTimerLocked(t.get());
        t->state = Task::State::kReady;  // resumes, sees killed, unwinds
        PushReadyLocked(t.get());
      }
    }
  }
  if (kill_self) {
    throw TaskKilled{};
  }
}

int Scheduler::blocked_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& t : tasks_) {
    if (t->state == Task::State::kBlocked) {
      ++n;
    }
  }
  return n;
}

}  // namespace tabs::sim
