#include "src/sim/tracer.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace tabs::sim {

namespace {

// Escapes a string for embedding in JSON (the trace exporter cannot depend on
// bench/bench_json.h, which lives above it in the build graph).
void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
}

SimTime Quantile(const std::vector<SimTime>& sorted, int q) {
  // Samples are never empty when this is called; nearest-rank on the floor
  // index keeps quantiles exact members of the sample set.
  return sorted[(sorted.size() - 1) * static_cast<std::size_t>(q) / 100];
}

}  // namespace

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kApplication:
      return "Application";
    case Component::kTransactionManager:
      return "Transaction Manager";
    case Component::kRecoveryManager:
      return "Recovery Manager";
    case Component::kCommunicationManager:
      return "Communication Manager";
    case Component::kDataServer:
      return "Data Server";
    case Component::kKernel:
      return "Kernel";
    case Component::kLog:
      return "Log";
  }
  return "?";
}

std::map<std::string, HistogramRegistry::Stats> HistogramRegistry::AllStats() {
  std::map<std::string, Stats> out;
  for (auto& [name, hist] : series_) {
    std::vector<SimTime>& samples = hist->samples_;
    if (samples.empty()) {
      continue;
    }
    std::sort(samples.begin(), samples.end());
    Stats s;
    s.count = samples.size();
    for (SimTime v : samples) {
      s.total += v;
    }
    s.min = samples.front();
    s.max = samples.back();
    s.p50 = Quantile(samples, 50);
    s.p90 = Quantile(samples, 90);
    s.p99 = Quantile(samples, 99);
    out.emplace(name, s);
  }
  return out;
}

Tracer::Tracer() {
  for (int p = 0; p < kPrimitiveCount; ++p) {
    primitive_hists_[p] =
        histograms_.Register(std::string("primitive.") + PrimitiveName(static_cast<Primitive>(p)));
  }
}

Tracer::~Tracer() {
  if (observer_installed_ && sched_ != nullptr) {
    sched_->SetClockObserver(nullptr);
  }
}

void Tracer::Bind(Scheduler* sched) {
  sched_ = sched;
  if (enabled_ && sched_ != nullptr && !observer_installed_) {
    sched_->SetClockObserver(this);
    observer_installed_ = true;
  }
}

void Tracer::Enable(bool on) {
  enabled_ = on;
  if (sched_ == nullptr) {
    return;
  }
  if (on && !observer_installed_) {
    // Attribution restarts from here: discard any state left over from an
    // earlier enable, so every vector again sums to its task's clock.
    task_states_.clear();
    sched_->SetClockObserver(this);
    observer_installed_ = true;
  } else if (!on && observer_installed_) {
    sched_->SetClockObserver(nullptr);
    observer_installed_ = false;
  }
}

void Tracer::Clear() {
  events_.clear();
  spans_.clear();
  histograms_.Clear();
  for (auto& [id, state] : task_states_) {
    state.open_spans.clear();
    state.current = Component::kApplication;
  }
  ++generation_;  // live SpanGuards now refer to discarded spans; disarm them
}

Component Tracer::CurrentComponent() const {
  if (sched_ == nullptr || !sched_->in_task()) {
    return Component::kApplication;
  }
  auto it = task_states_.find(sched_->current()->id);
  return it == task_states_.end() ? Component::kApplication : it->second.current;
}

ComponentTimes Tracer::CurrentTaskAttribution() const {
  ComponentTimes out{};
  if (sched_ == nullptr || !sched_->in_task()) {
    return out;
  }
  const Task* t = sched_->current();
  auto it = task_states_.find(t->id);
  if (it == task_states_.end()) {
    out[static_cast<int>(Component::kApplication)] = t->time;
    return out;
  }
  return it->second.attribution;
}

Tracer::TaskState& Tracer::EnsureState(const Task& t, SimTime clock_before) {
  auto [it, inserted] = task_states_.try_emplace(t.id);
  if (inserted) {
    it->second.attribution[static_cast<int>(Component::kApplication)] = clock_before;
  }
  return it->second;
}

void Tracer::OnAdvance(const Task& t, SimTime from, SimTime to) {
  TaskState& s = EnsureState(t, from);
  s.attribution[static_cast<int>(s.current)] += to - from;
}

void Tracer::OnSpawn(const Task& t, const Task* spawner, SimTime start) {
  if (spawner != nullptr && start >= spawner->time) {
    // The child continues the spawner's causal chain: it inherits the full
    // attribution vector, and the transit time until `start` is charged to
    // whatever component issued the spawn (e.g. a session send).
    TaskState& ps = EnsureState(*spawner, spawner->time);
    TaskState child;
    child.attribution = ps.attribution;
    child.attribution[static_cast<int>(ps.current)] += start - spawner->time;
    task_states_[t.id] = std::move(child);
  } else {
    // Spawned from outside any task (world setup, daemons): all clock time up
    // to `start` is unattributed application time.
    EnsureState(t, start);
  }
}

void Tracer::OnWake(const Task& t, const Task* waker, SimTime from, SimTime to) {
  // The woken task's clock jumped to the waker's: the wait interval was spent
  // wherever the waker's causal chain spent it, so the woken task adopts the
  // waker's vector wholesale (it sums exactly to `to`). The woken task's own
  // span stack is untouched — it resumes in whatever component it blocked in.
  (void)to;
  TaskState& ws = EnsureState(*waker, waker->time);
  ComponentTimes adopted = ws.attribution;
  TaskState& s = EnsureState(t, from);
  s.attribution = adopted;
}

void Tracer::OnTimeout(const Task& t, SimTime from, SimTime to) {
  // A deadline fired: the task simply waited the interval out, in whatever
  // component it was blocked in.
  TaskState& s = EnsureState(t, from);
  s.attribution[static_cast<int>(s.current)] += to - from;
}

void Tracer::OnDone(const Task& t) { task_states_.erase(t.id); }

std::uint32_t Tracer::OpenSpan(Component component, const char* name, std::string detail) {
  Task* t = sched_->current();
  TaskState& s = EnsureState(*t, t->time);
  auto index = static_cast<std::uint32_t>(spans_.size());
  SpanRecord rec;
  rec.begin = t->time;
  rec.node = t->node;
  rec.component = component;
  rec.task = t->id;
  rec.seq = next_seq_++;
  rec.depth = static_cast<int>(s.open_spans.size());
  rec.name = name;
  rec.detail = std::move(detail);
  rec.hist = SpanHistogram(name);
  spans_.push_back(std::move(rec));
  s.open_spans.push_back(index);
  s.current = component;
  return index;
}

void Tracer::CloseSpan(std::uint32_t index, std::uint64_t generation) {
  if (generation != generation_ || index >= spans_.size()) {
    return;  // Clear() ran while the span was open
  }
  SpanRecord& span = spans_[index];
  span.end = (sched_ != nullptr && sched_->in_task()) ? sched_->current()->time : span.begin;
  auto it = task_states_.find(span.task);
  if (it != task_states_.end()) {
    auto& open = it->second.open_spans;
    auto pos = std::find(open.begin(), open.end(), index);
    if (pos != open.end()) {
      open.erase(pos, open.end());
    }
    it->second.current =
        open.empty() ? Component::kApplication : spans_[open.back()].component;
  }
  span.hist->Record(span.end - span.begin);
}

HistogramRegistry::Histogram* Tracer::SpanHistogram(const char* name) {
  auto [it, inserted] = span_hists_.try_emplace(name, nullptr);
  if (inserted) {
    it->second = histograms_.Register(std::string("span.") + name);
  }
  return it->second;
}

SpanGuard::SpanGuard(Tracer& tracer, Component component, const char* name, std::string detail) {
  if (!tracer.enabled() || tracer.sched_ == nullptr || !tracer.sched_->in_task()) {
    return;
  }
  tracer_ = &tracer;
  generation_ = tracer.generation_;
  index_ = tracer.OpenSpan(component, name, std::move(detail));
}

SpanGuard::~SpanGuard() {
  if (tracer_ != nullptr) {
    tracer_->CloseSpan(index_, generation_);
  }
}

std::string Tracer::ChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      out += ",";
    }
    first = false;
  };

  // Metadata: one process per node, one thread per component seen on it.
  std::set<NodeId> nodes;
  std::set<std::pair<NodeId, int>> threads;
  for (const SpanRecord& s : spans_) {
    nodes.insert(s.node);
    threads.insert({s.node, static_cast<int>(s.component)});
  }
  for (const TraceEvent& e : events_) {
    nodes.insert(e.node);
    threads.insert({e.node, static_cast<int>(e.component)});
  }
  for (NodeId n : nodes) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(n) +
           ",\"tid\":0,\"args\":{\"name\":\"node " + std::to_string(n) + "\"}}";
  }
  for (const auto& [node, comp] : threads) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(node) +
           ",\"tid\":" + std::to_string(comp + 1) + ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, ComponentName(static_cast<Component>(comp)));
    out += "\"}}";
  }

  // Duration events, ordered by (begin, open order) so nested spans follow
  // their parents and the file is reproducible byte for byte.
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans_.size());
  for (const SpanRecord& s : spans_) {
    ordered.push_back(&s);
  }
  std::sort(ordered.begin(), ordered.end(), [](const SpanRecord* a, const SpanRecord* b) {
    return a->begin != b->begin ? a->begin < b->begin : a->seq < b->seq;
  });
  for (const SpanRecord* s : ordered) {
    comma();
    SimTime dur = s->end >= s->begin ? s->end - s->begin : 0;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s->name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, ComponentName(s->component));
    out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(s->begin) +
           ",\"dur\":" + std::to_string(dur) + ",\"pid\":" + std::to_string(s->node) +
           ",\"tid\":" + std::to_string(static_cast<int>(s->component) + 1) + ",\"args\":{";
    bool first_arg = true;
    if (!s->detail.empty()) {
      out += "\"detail\":\"";
      AppendJsonEscaped(out, s->detail);
      out += "\"";
      first_arg = false;
    }
    if (s->end < s->begin) {
      if (!first_arg) {
        out += ",";
      }
      out += "\"unclosed\":true";
    }
    out += "}}";
  }

  // The flat events ride along as thread-scoped instants.
  for (const TraceEvent& e : events_) {
    comma();
    out += "{\"name\":\"";
    AppendJsonEscaped(out, e.category);
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + std::to_string(e.time) +
           ",\"pid\":" + std::to_string(e.node) +
           ",\"tid\":" + std::to_string(static_cast<int>(e.component) + 1) + ",\"args\":{";
    if (!e.detail.empty()) {
      out += "\"detail\":\"";
      AppendJsonEscaped(out, e.detail);
      out += "\"";
    }
    out += "}}";
  }

  out += "]}\n";
  return out;
}

std::string FormatDecomposition(const ComponentTimes& delta, const std::string& indent) {
  std::ostringstream os;
  SimTime total = 0;
  for (int c = 0; c < kComponentCount; ++c) {
    total += delta[c];
  }
  char buf[64];
  for (int c = 0; c < kComponentCount; ++c) {
    if (delta[c] == 0) {
      continue;
    }
    std::snprintf(buf, sizeof buf, "%9.3f ms  ", delta[c] / 1000.0);
    os << indent << buf << ComponentName(static_cast<Component>(c)) << "\n";
  }
  std::snprintf(buf, sizeof buf, "%9.3f ms  ", total / 1000.0);
  os << indent << buf << "total\n";
  return os.str();
}

}  // namespace tabs::sim
