// Cooperative, deterministic, virtual-time scheduler.
//
// TABS ran as a set of Accent processes with coroutines inside data servers;
// a coroutine switch occurred only when an operation waited (Section 3.1.1).
// This scheduler reproduces that execution model: every activity (an
// application, a data-server request, a commit-protocol participant) is a
// Task with its own virtual clock. Exactly one task runs at a time; a task
// runs until it blocks (lock wait, message wait) or finishes, and the
// scheduler always resumes the runnable task with the smallest virtual time
// (ties broken by task id, i.e. spawn order — a deterministic FIFO). This
// makes every run — including multi-node two-phase commits and crash
// recoveries — bit-for-bit reproducible while still modelling genuine
// parallelism across nodes (each task advances its own clock; a task that
// waits for several replies resumes at the max of their arrival times).
//
// Execution substrate: tasks run on a pool of parked OS worker threads with
// strict hand-off — only one thread is ever unparked, so no data races are
// possible and no per-platform context-switch assembly is needed. A parking
// or finishing task selects its successor and wakes it directly (one OS
// context switch per simulated event, not a bounce through a scheduler
// thread), and workers are reused across tasks, so spawning a task costs a
// freelist pop rather than an OS thread creation. Runnable tasks live in a
// binary min-heap keyed (virtual time, task id); pending Wait() timeouts
// live in an ordered set that is purged eagerly when a timer is cancelled.
// Task objects themselves are recycled through a freelist.

#ifndef TABS_SIM_SCHEDULER_H_
#define TABS_SIM_SCHEDULER_H_

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/types.h"

namespace tabs::sim {

class Scheduler;

// Thrown inside a task when its node crashes or the scheduler shuts down.
// Task bodies generally do not catch this; the task's stack unwinds and the
// task is discarded, exactly like a process dying with its node.
struct TaskKilled {};

using TaskId = std::uint64_t;
constexpr TaskId kInvalidTask = 0;

// A queue of blocked tasks. Lock managers, reply channels, and condition-like
// constructs are built on WaitQueues.
class WaitQueue {
 public:
  WaitQueue() = default;
  // A queue may die before tasks blocked on it (e.g. a stack queue going out
  // of scope ahead of the scheduler): detach the waiters' back-pointers so
  // shutdown and timer-fire never touch the dead queue.
  ~WaitQueue();
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  bool empty() const { return waiters_.empty(); }

 private:
  friend class Scheduler;
  struct Task* Front() { return waiters_.empty() ? nullptr : waiters_.front(); }
  std::deque<struct Task*> waiters_;
};

// A pooled OS thread that executes tasks. Workers outlive the tasks they
// run: when a task finishes, its worker returns to the scheduler's free list
// and picks up the next spawned task without an OS thread creation.
struct Worker {
  std::thread thread;
  std::condition_variable cv;
  struct Task* task = nullptr;  // the task currently assigned to this worker
  bool exit = false;
};

struct Task {
  enum class State { kReady, kRunning, kBlocked, kDone };

  TaskId id = kInvalidTask;
  std::string name;
  NodeId node = kInvalidNode;   // which simulated node this activity runs on
  State state = State::kReady;
  SimTime time = 0;             // the task's virtual clock
  bool timed_out = false;       // set when a Wait() ended by timeout
  bool killed = false;
  bool timer_armed = false;     // a Wait() timeout is pending in the timer set
  SimTime timer_deadline = 0;   // valid while timer_armed
  std::uint64_t timer_seq = 0;  // arming order: deterministic same-deadline tie-break
  std::size_t index = 0;        // position in Scheduler::tasks_ (swap-erase)
  WaitQueue* waiting_on = nullptr;
  std::function<void()> fn;
  Worker* worker = nullptr;
  Scheduler* scheduler = nullptr;
};

// Observes every virtual-clock mutation the scheduler performs. The tracer
// installs one when tracing is enabled; no observer is installed otherwise,
// so the default simulation pays exactly one null-pointer check per clock
// change and remains bit-identical to the pre-observer scheduler. Callbacks
// may be invoked with the scheduler lock held and must not re-enter the
// scheduler; they must never mutate task clocks.
class ClockObserver {
 public:
  virtual ~ClockObserver() = default;
  // The running task's clock moved from `from` to `to` (Charge/AdvanceTo).
  virtual void OnAdvance(const Task& t, SimTime from, SimTime to) = 0;
  // `t` was created with clock `start`. `spawner` is the task that called
  // Spawn (null when spawned from outside any task, e.g. World setup).
  virtual void OnSpawn(const Task& t, const Task* spawner, SimTime start) = 0;
  // A notify moved blocked task `t` forward to the waker's clock. Called only
  // when the clock actually jumped (`to > from`); `waker` is never null.
  virtual void OnWake(const Task& t, const Task* waker, SimTime from, SimTime to) = 0;
  // A wait timeout fired, moving `t` forward to the deadline (`to > from`).
  virtual void OnTimeout(const Task& t, SimTime from, SimTime to) = 0;
  // `t` finished (normally or by unwinding); its id will never run again.
  virtual void OnDone(const Task& t) = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a task whose clock starts at `start_time` (typically the sender's
  // clock plus a transmission cost, for message-handler tasks). May be called
  // from inside a task or from the outside (before Run).
  TaskId Spawn(std::string name, NodeId node, SimTime start_time, std::function<void()> fn);

  // Runs tasks until none are runnable and no timers are pending. Returns the
  // number of tasks still blocked (0 on clean completion; nonzero indicates
  // an un-broken deadlock, which tests assert against).
  int Run();

  // --- The following are callable only from inside a running task. ---

  // The running task's virtual clock.
  SimTime Now() const;
  // Advances the running task's clock by `cost` (a primitive-operation time).
  void Charge(SimTime cost);
  // Moves the clock forward to `t` if it is ahead (message-arrival join).
  void AdvanceTo(SimTime t);

  // Blocks on `q` until notified. With `timeout >= 0`, gives up after that
  // much virtual time and returns false (TABS breaks deadlock by timeout,
  // Section 2.1.2). Returns true when genuinely notified.
  bool Wait(WaitQueue& q, SimTime timeout = -1);

  // Wakes the longest-waiting task in `q`. The woken task resumes no earlier
  // than the notifier's current virtual time (the wake-up *is* an event).
  void NotifyOne(WaitQueue& q);
  void NotifyAll(WaitQueue& q);

  // Lets equal-or-earlier tasks run; the caller continues afterwards.
  void Yield();

  // Marks every task satisfying `pred` as killed. Blocked victims are woken
  // and unwind via TaskKilled; the current task, if it matches, throws on its
  // next scheduling point (or immediately if `immediate`).
  void KillWhere(const std::function<bool(const Task&)>& pred);

  Task* current() const { return current_; }
  bool in_task() const { return current_ != nullptr; }
  int blocked_count() const;

  // Scheduling steps executed so far: one step per task resume (the unit the
  // simspeed meta-bench reports as "events"). Deterministic for a given
  // workload — byte-identical runs execute byte-identical step counts.
  std::uint64_t steps() const { return steps_; }

  // Installs (or, with nullptr, removes) the clock observer. Callable only
  // while no task is being scheduled concurrently with the change — in this
  // strict hand-off model any point where the caller runs qualifies.
  void SetClockObserver(ClockObserver* observer) { observer_ = observer; }

  // Kills every task and runs until all stacks have unwound, then joins the
  // worker threads. Idempotent; the destructor calls it. Owners whose tasks
  // reference shorter-lived state (e.g. the tracer, destroyed before the
  // scheduler member in World) call this first so tasks unwind while that
  // state is still alive. Must not be called from inside a task.
  void Shutdown();

 private:
  // Runnable tasks, a binary min-heap over (virtual time, task id). Entries
  // are pushed when a task becomes ready and popped exactly when it is
  // selected to run, so an entry's key is immutable while it is in the heap
  // (a ready task's clock cannot advance). Max-comparator: std::push_heap
  // builds a max-heap, so "after" means "scheduled later".
  struct ReadyEntry {
    SimTime time;
    TaskId id;
    Task* task;
  };
  struct ReadyAfter {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      return a.time > b.time || (a.time == b.time && a.id > b.id);
    }
  };
  // Pending Wait() timeouts, ordered (deadline, arming seq) — the arming
  // sequence reproduces the old multimap's insertion-order tie-break. An
  // entry is erased eagerly the moment its timer is cancelled (wake, kill,
  // shutdown) or fires, so the set only ever holds live timers.
  struct TimerKey {
    SimTime deadline;
    std::uint64_t seq;
    Task* task;
    bool operator<(const TimerKey& o) const {
      return deadline < o.deadline || (deadline == o.deadline && seq < o.seq);
    }
  };

  static void WorkerMain(Scheduler* sched, Worker* w);
  // Parks the current task (state already updated), hands off to the next
  // runnable task, and waits to be resumed. Must be called with mu_ held via
  // the unique_lock.
  void ParkCurrent(std::unique_lock<std::mutex>& lock, Task* t);
  void WakeLocked(Task* t, SimTime wake_time);
  void PushReadyLocked(Task* t);
  void CancelTimerLocked(Task* t);
  Task* PeekReadyLocked();
  // The heart of the hand-off: fires due timers, selects the runnable task
  // with the smallest (time, id), and wakes its worker — or, when nothing is
  // runnable, signals quiescence to Run(). Called by the parking/finishing
  // thread itself, so a hand-off costs one OS context switch.
  void ScheduleNextLocked();
  void ReapDoneLocked();

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;
  std::vector<std::unique_ptr<Task>> tasks_;      // live tasks (swap-erase order)
  std::vector<std::unique_ptr<Task>> task_pool_;  // recycled Task objects
  std::vector<Task*> done_;                       // finished, awaiting reap
  std::vector<ReadyEntry> ready_;                 // min-heap via ReadyAfter
  std::set<TimerKey> timers_;
  std::uint64_t timer_seq_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> free_workers_;
  Task* current_ = nullptr;
  TaskId next_id_ = 1;
  std::uint64_t steps_ = 0;
  bool idle_ = true;
  bool shutting_down_ = false;
  ClockObserver* observer_ = nullptr;
};

// A single-assignment promise/future: the rendezvous of the asynchronous
// communication fast path. Fulfil publishes the value (at most once) and
// wakes every waiter in FIFO order; Await blocks until fulfilled or until
// `timeout` virtual time passes. A waiter resumes no earlier than the
// fulfiller's clock — so the completion time of a pipelined remote call
// composes into the caller's clock exactly like a Channel push, and a task
// awaiting several futures resumes at the max of their completion times.
template <typename T>
class Future {
 public:
  explicit Future(Scheduler& sched) : sched_(sched) {}
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool ready() const { return value_.has_value(); }

  void Fulfil(T v) {
    assert(!ready() && "a future is fulfilled at most once");
    value_.emplace(std::move(v));
    sched_.NotifyAll(queue_);
  }

  // Blocks until ready; with `timeout >= 0` gives up after that much virtual
  // time. Returns ready() — false means the producer never delivered (e.g.
  // its node crashed with the call in flight).
  bool Await(SimTime timeout = -1) {
    if (timeout < 0) {
      while (!ready()) {
        sched_.Wait(queue_);
      }
      return true;
    }
    SimTime deadline = sched_.Now() + timeout;
    while (!ready()) {
      SimTime remaining = deadline - sched_.Now();
      if (remaining <= 0 || !sched_.Wait(queue_, remaining)) {
        break;
      }
    }
    return ready();
  }

  T& value() {
    assert(ready());
    return *value_;
  }

 private:
  Scheduler& sched_;
  WaitQueue queue_;
  std::optional<T> value_;
};

// Futures are shared between the issuing task and the delivery task (which
// may outlive the issuer if its node crashes), so they live on the heap.
template <typename T>
using FuturePtr = std::shared_ptr<Future<T>>;

// A typed rendezvous channel: producers Push values (waking a consumer),
// consumers Pop (blocking while empty). Used for RPC replies and vote
// collection during two-phase commit.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}

  void Push(T v) {
    items_.push_back(std::move(v));
    sched_.NotifyOne(queue_);
  }

  T Pop() {
    while (items_.empty()) {
      sched_.Wait(queue_);
    }
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  // Pop with a timeout; returns false (leaving `out` untouched) on timeout.
  bool PopWithTimeout(SimTime timeout, T* out) {
    SimTime deadline = sched_.Now() + timeout;
    while (items_.empty()) {
      SimTime remaining = deadline - sched_.Now();
      if (remaining <= 0 || !sched_.Wait(queue_, remaining)) {
        if (items_.empty()) {
          return false;
        }
        break;
      }
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

 private:
  Scheduler& sched_;
  WaitQueue queue_;
  std::deque<T> items_;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_SCHEDULER_H_
