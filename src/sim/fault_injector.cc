#include "src/sim/fault_injector.h"

#include <cassert>

namespace tabs::sim {

void FaultInjector::OnPoint(Substrate& sub, const char* name) {
  if (!armed_) {
    return;  // idle injector: FaultPointHit normally filters this already
  }
  int hit = ++counts_[name];
  if (hit == 1) {
    order_.emplace_back(name);
  }
  Scheduler& sched = sub.scheduler();
  bool in_task = sched.in_task();
  NodeId node = in_task ? sched.current()->node : kInvalidNode;
  if (recording_) {
    hits_.push_back({name, node, hit});
  }
  if (!in_task) {
    // Bootstrap-time hit (e.g. a force during World construction): there is
    // no task to crash or delay, so the plan cannot act here.
    return;
  }
  auto it = plan_.find(name);
  if (it != plan_.end() && hit == it->second.hit) {
    Armed armed = it->second;
    plan_.erase(it);  // each armed action fires exactly once
    RecomputeArmed();
    if (armed.crash) {
      CrashCurrentNode(sub, name);
      return;  // reached only when no crash handler is wired
    }
    sub.metrics().CountFault(FaultKind::kDelay);
    sched.Charge(armed.delay_us);
    sched.Yield();
    return;
  }
  if (delays_seeded_) {
    if (std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < delay_probability_) {
      auto delay = static_cast<SimTime>(
          std::uniform_int_distribution<std::int64_t>(1, max_delay_us_)(rng_));
      sub.metrics().CountFault(FaultKind::kDelay);
      sched.Charge(delay);
      sched.Yield();
    }
  }
}

void FaultInjector::ArmCrash(const std::string& point, int hit) {
  assert(hit >= 1);
  plan_[point] = Armed{/*crash=*/true, /*delay_us=*/0, hit};
  RecomputeArmed();
}

void FaultInjector::ArmDelay(const std::string& point, SimTime delay_us, int hit) {
  assert(hit >= 1 && delay_us > 0);
  plan_[point] = Armed{/*crash=*/false, delay_us, hit};
  RecomputeArmed();
}

void FaultInjector::ArmTornLogForce(int durable_sectors) {
  assert(durable_sectors >= 0);
  torn_force_sectors_ = durable_sectors;
}

void FaultInjector::Disarm() {
  plan_.clear();
  torn_force_sectors_ = -1;
  delays_seeded_ = false;
  delay_probability_ = 0;
  max_delay_us_ = 0;
  RecomputeArmed();
}

void FaultInjector::SeedDelays(std::uint64_t seed, double probability,
                               SimTime max_delay_us) {
  assert(probability >= 0 && probability <= 1 && max_delay_us >= 1);
  delays_seeded_ = true;
  rng_.seed(seed);
  delay_probability_ = probability;
  max_delay_us_ = max_delay_us;
  RecomputeArmed();
}

void FaultInjector::CrashCurrentNode(Substrate& sub, const char* why) {
  Scheduler& sched = sub.scheduler();
  assert(sched.in_task() && "crash faults fire from inside a task");
  crash_fired_ = true;
  crashed_point_ = why;
  sub.metrics().CountFault(FaultKind::kCrash);
  if (crash_handler_) {
    // World::CrashNode: kills every task on the node — including this one,
    // by throwing TaskKilled out of the handler.
    crash_handler_(sched.current()->node);
  }
}

int FaultInjector::TakeTornLogForce() {
  int sectors = torn_force_sectors_;
  torn_force_sectors_ = -1;
  return sectors;
}

}  // namespace tabs::sim
