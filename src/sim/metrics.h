// Primitive-operation counters.
//
// The paper's Tables 5-2 and 5-3 report how many of each primitive a
// benchmark executes, split between forward (pre-commit) processing and
// commit processing. Metrics keeps exactly those two buckets; the
// Transaction Manager flips the phase around commit processing, and the
// benchmark harness snapshots/diffs counters per transaction.

#ifndef TABS_SIM_METRICS_H_
#define TABS_SIM_METRICS_H_

#include <array>
#include <cstdint>

#include "src/sim/cost_model.h"

namespace tabs::sim {

enum class Phase { kPreCommit = 0, kCommit = 1 };

struct PrimitiveCounts {
  std::array<double, kPrimitiveCount> count{};

  double Of(Primitive p) const { return count[static_cast<int>(p)]; }
  double& Of(Primitive p) { return count[static_cast<int>(p)]; }

  PrimitiveCounts operator-(const PrimitiveCounts& o) const {
    PrimitiveCounts r;
    for (int i = 0; i < kPrimitiveCount; ++i) {
      r.count[i] = count[i] - o.count[i];
    }
    return r;
  }
  PrimitiveCounts& operator+=(const PrimitiveCounts& o) {
    for (int i = 0; i < kPrimitiveCount; ++i) {
      count[i] += o.count[i];
    }
    return *this;
  }
  // Latency predicted by primitives: the weighted sum of Section 5.1.
  SimTime PredictedTime(const CostModel& m) const {
    double t = 0;
    for (int i = 0; i < kPrimitiveCount; ++i) {
      t += count[i] * static_cast<double>(m.time_us[i]);
    }
    return static_cast<SimTime>(t);
  }
};

class Metrics {
 public:
  void Count(Primitive p, double n = 1.0) { buckets_[static_cast<int>(phase_)].Of(p) += n; }

  Phase phase() const { return phase_; }
  void SetPhase(Phase ph) { phase_ = ph; }

  const PrimitiveCounts& Bucket(Phase ph) const { return buckets_[static_cast<int>(ph)]; }
  PrimitiveCounts Total() const {
    PrimitiveCounts t = buckets_[0];
    t += buckets_[1];
    return t;
  }

  // Log-force accounting for group commit. A force is *issued* when a
  // LogManager::Force call actually writes the stable device; a stability
  // request is *absorbed* when some other transaction's force (a shared
  // group-commit flush, a checkpoint) already covered its LSN. These are
  // deliberately not Primitives: adding enum values would change the shape
  // of every regenerated paper table.
  void CountForceIssued() { ++forces_issued_; }
  void CountForceAbsorbed(double n = 1.0) { forces_absorbed_ += n; }
  double forces_issued() const { return forces_issued_; }
  double forces_absorbed() const { return forces_absorbed_; }

  // Data-page write-back accounting for the page cleaner. A write-back is
  // *foreground* when a transaction pays for it synchronously (eviction on a
  // page fault, reclamation's flushes inside the triggering update) and
  // *background* when the cleaner daemon performed it between transactions.
  // Like the force counters these are not Primitives: the paper tables keep
  // their shape.
  void CountPageWrite(bool background) {
    ++(background ? page_writes_background_ : page_writes_foreground_);
  }
  double page_writes_foreground() const { return page_writes_foreground_; }
  double page_writes_background() const { return page_writes_background_; }

  void Reset() {
    buckets_[0] = {};
    buckets_[1] = {};
    phase_ = Phase::kPreCommit;
    forces_issued_ = 0;
    forces_absorbed_ = 0;
    page_writes_foreground_ = 0;
    page_writes_background_ = 0;
  }

 private:
  std::array<PrimitiveCounts, 2> buckets_{};
  Phase phase_ = Phase::kPreCommit;
  double forces_issued_ = 0;
  double forces_absorbed_ = 0;
  double page_writes_foreground_ = 0;
  double page_writes_background_ = 0;
};

// RAII phase scope used by the Transaction Manager around commit processing.
class PhaseScope {
 public:
  PhaseScope(Metrics& m, Phase ph) : metrics_(m), saved_(m.phase()) { metrics_.SetPhase(ph); }
  ~PhaseScope() { metrics_.SetPhase(saved_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Metrics& metrics_;
  Phase saved_;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_METRICS_H_
