// Primitive-operation counters.
//
// The paper's Tables 5-2 and 5-3 report how many of each primitive a
// benchmark executes, split between forward (pre-commit) processing and
// commit processing. Metrics keeps exactly those two buckets; the
// Transaction Manager flips the phase around commit processing, and the
// benchmark harness snapshots/diffs counters per transaction.

#ifndef TABS_SIM_METRICS_H_
#define TABS_SIM_METRICS_H_

#include <array>
#include <cstdint>

#include "src/sim/cost_model.h"

namespace tabs::sim {

enum class Phase { kPreCommit = 0, kCommit = 1 };

// Kinds of injected fault the nemesis can fire (FaultInjector, SimDisk,
// StableLogDevice, Network). Counted per kind so fault sweeps are observable
// in bench/test output.
enum class FaultKind {
  kCrash = 0,         // fault point resolved to crash-node
  kDelay,             // fault point resolved to a virtual-time delay
  kTornLogWrite,      // log force torn: prefix of sectors durable, tail lost
  kCorruptSector,     // log sector or data page scrambled in place
  kLostPageWrite,     // data-page write silently dropped by the disk
  kDatagramDuplicate, // datagram delivered twice
  kDatagramJitter,    // datagram delayed by bounded random jitter
  kDatagramDrop,      // datagram dropped by the loss filter
  kSessionDrop,       // session establishment/send dropped by the filter
};
inline constexpr int kFaultKindCount = 9;

inline const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTornLogWrite: return "torn-log-write";
    case FaultKind::kCorruptSector: return "corrupt-sector";
    case FaultKind::kLostPageWrite: return "lost-page-write";
    case FaultKind::kDatagramDuplicate: return "datagram-duplicate";
    case FaultKind::kDatagramJitter: return "datagram-jitter";
    case FaultKind::kDatagramDrop: return "datagram-drop";
    case FaultKind::kSessionDrop: return "session-drop";
  }
  return "?";
}

struct PrimitiveCounts {
  std::array<double, kPrimitiveCount> count{};

  double Of(Primitive p) const { return count[static_cast<int>(p)]; }
  double& Of(Primitive p) { return count[static_cast<int>(p)]; }

  PrimitiveCounts operator-(const PrimitiveCounts& o) const {
    PrimitiveCounts r;
    for (int i = 0; i < kPrimitiveCount; ++i) {
      r.count[i] = count[i] - o.count[i];
    }
    return r;
  }
  PrimitiveCounts& operator+=(const PrimitiveCounts& o) {
    for (int i = 0; i < kPrimitiveCount; ++i) {
      count[i] += o.count[i];
    }
    return *this;
  }
  // Latency predicted by primitives: the weighted sum of Section 5.1.
  SimTime PredictedTime(const CostModel& m) const {
    double t = 0;
    for (int i = 0; i < kPrimitiveCount; ++i) {
      t += count[i] * static_cast<double>(m.time_us[i]);
    }
    return static_cast<SimTime>(t);
  }
};

class Metrics {
 public:
  void Count(Primitive p, double n = 1.0) { buckets_[static_cast<int>(phase_)].Of(p) += n; }

  Phase phase() const { return phase_; }
  void SetPhase(Phase ph) { phase_ = ph; }

  const PrimitiveCounts& Bucket(Phase ph) const { return buckets_[static_cast<int>(ph)]; }
  PrimitiveCounts Total() const {
    PrimitiveCounts t = buckets_[0];
    t += buckets_[1];
    return t;
  }

  // Log-force accounting for group commit. A force is *issued* when a
  // LogManager::Force call actually writes the stable device; a stability
  // request is *absorbed* when some other transaction's force (a shared
  // group-commit flush, a checkpoint) already covered its LSN. These are
  // deliberately not Primitives: adding enum values would change the shape
  // of every regenerated paper table.
  void CountForceIssued() { ++forces_issued_; }
  void CountForceAbsorbed(double n = 1.0) { forces_absorbed_ += n; }
  double forces_issued() const { return forces_issued_; }
  double forces_absorbed() const { return forces_absorbed_; }

  // Data-page write-back accounting for the page cleaner. A write-back is
  // *foreground* when a transaction pays for it synchronously (eviction on a
  // page fault, reclamation's flushes inside the triggering update) and
  // *background* when the cleaner daemon performed it between transactions.
  // Like the force counters these are not Primitives: the paper tables keep
  // their shape.
  void CountPageWrite(bool background) {
    ++(background ? page_writes_background_ : page_writes_foreground_);
  }
  double page_writes_foreground() const { return page_writes_foreground_; }
  double page_writes_background() const { return page_writes_background_; }

  // Asynchronous-communication accounting. An async call is *issued* when a
  // transaction puts a pipelined session call on the wire without blocking;
  // a message is *coalesced* when an operation travelled inside another
  // operation's session instead of paying its own (a batch of k coalesces
  // k-1). Like the force and page-write counters these are not Primitives:
  // with the knobs at their paper-faithful defaults both stay zero and the
  // regenerated paper tables keep their shape.
  void CountAsyncCall() { ++async_calls_issued_; }
  void CountMessagesCoalesced(double n = 1.0) { messages_coalesced_ += n; }
  double async_calls_issued() const { return async_calls_issued_; }
  double messages_coalesced() const { return messages_coalesced_; }

  // Fault-injection and recovery accounting. Like the force and page-write
  // counters these are deliberately not Primitives: with faults off every
  // counter stays zero and the regenerated paper tables keep their shape.
  void CountFault(FaultKind k) { ++faults_injected_[static_cast<int>(k)]; }
  double faults_injected(FaultKind k) const {
    return faults_injected_[static_cast<int>(k)];
  }
  double faults_injected_total() const {
    double t = 0;
    for (double f : faults_injected_) {
      t += f;
    }
    return t;
  }
  // One crash-recovery pass (RecoveryManager::Recover) ran.
  void CountCrashRecovery() { ++crash_recoveries_; }
  double crash_recoveries() const { return crash_recoveries_; }
  // Recovery detected a torn/corrupt stable-log tail and truncated it.
  void CountLogTailTruncation(std::uint64_t bytes_dropped) {
    ++log_tail_truncations_;
    log_tail_bytes_truncated_ += static_cast<double>(bytes_dropped);
  }
  double log_tail_truncations() const { return log_tail_truncations_; }
  double log_tail_bytes_truncated() const { return log_tail_bytes_truncated_; }

  void Reset() {
    buckets_[0] = {};
    buckets_[1] = {};
    phase_ = Phase::kPreCommit;
    forces_issued_ = 0;
    forces_absorbed_ = 0;
    page_writes_foreground_ = 0;
    page_writes_background_ = 0;
    async_calls_issued_ = 0;
    messages_coalesced_ = 0;
    faults_injected_ = {};
    crash_recoveries_ = 0;
    log_tail_truncations_ = 0;
    log_tail_bytes_truncated_ = 0;
  }

 private:
  std::array<PrimitiveCounts, 2> buckets_{};
  Phase phase_ = Phase::kPreCommit;
  double forces_issued_ = 0;
  double forces_absorbed_ = 0;
  double page_writes_foreground_ = 0;
  double page_writes_background_ = 0;
  double async_calls_issued_ = 0;
  double messages_coalesced_ = 0;
  std::array<double, kFaultKindCount> faults_injected_{};
  double crash_recoveries_ = 0;
  double log_tail_truncations_ = 0;
  double log_tail_bytes_truncated_ = 0;
};

// RAII phase scope used by the Transaction Manager around commit processing.
class PhaseScope {
 public:
  PhaseScope(Metrics& m, Phase ph) : metrics_(m), saved_(m.phase()) { metrics_.SetPhase(ph); }
  ~PhaseScope() { metrics_.SetPhase(saved_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Metrics& metrics_;
  Phase saved_;
};

}  // namespace tabs::sim

#endif  // TABS_SIM_METRICS_H_
