// Deterministic fault injection: the nemesis.
//
// The simulation's correctness argument hinges on narrow windows — between a
// log force and a page-out, between a prepare vote and the commit record,
// mid-checkpoint. Named fault points (FAULT_POINT) are wired through exactly
// those windows; the injector resolves each hit to crash-node, a bounded
// virtual-time delay, or no-op, per a scripted or seeded plan. Because the
// scheduler is deterministic and every decision is a pure function of the
// armed plan plus the schedule, any failing run replays exactly from its
// {seed, fault-point} pair — the FoundationDB-style simulation-testing
// discipline, applied to TABS.
//
// Everything defaults off. With no injector installed (or none armed) a hit
// is a single pointer null check: no virtual time, no metrics, no
// allocation on the simulation's hot path beyond hit bookkeeping when an
// injector is present.

#ifndef TABS_SIM_FAULT_INJECTOR_H_
#define TABS_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/substrate.h"

namespace tabs::sim {

class FaultInjector {
 public:
  struct PointHit {
    std::string point;
    NodeId node = kInvalidNode;  // kInvalidNode: hit outside any task
    int hit = 0;                 // 1-based per-point hit number
  };

  // Called from FAULT_POINT. Counts the hit, records it when recording, and
  // resolves it against the armed plan: crash the current node, charge a
  // delay, or do nothing. Crash and delay actions only fire inside a task.
  void OnPoint(Substrate& sub, const char* name);

  // True while anything could observe or act on a hit: recording, a scripted
  // plan, or seeded delays. FaultPointHit checks this before calling OnPoint,
  // so a disarmed injector costs one flag load per FAULT_POINT — no string
  // key, no map touch. Hit counting is therefore also gated on armed():
  // every consumer of counts (the two-pass exploration tests) starts
  // recording/arms its plan at the same post-setup position in both passes,
  // so per-point hit numbers stay pass-consistent.
  bool armed() const { return armed_; }

  // --- recording (crash-point enumeration pass) ---------------------------
  void StartRecording() {
    recording_ = true;
    hits_.clear();
    RecomputeArmed();
  }
  void StopRecording() {
    recording_ = false;
    RecomputeArmed();
  }
  const std::vector<PointHit>& recorded_hits() const { return hits_; }
  // Distinct points in first-hit order (tracked whether or not recording).
  const std::vector<std::string>& distinct_points() const { return order_; }
  int HitCount(const std::string& point) const {
    auto it = counts_.find(point);
    return it == counts_.end() ? 0 : it->second;
  }

  // --- scripted plan ------------------------------------------------------
  // Crash the node whose task reaches `point` for the `hit`-th time.
  void ArmCrash(const std::string& point, int hit = 1);
  // Delay the task that reaches `point` for the `hit`-th time.
  void ArmDelay(const std::string& point, SimTime delay_us, int hit = 1);
  // The next LogManager::Force tears: only the first `durable_sectors`
  // sectors of the append land, the tail is lost, and the forcing node
  // crashes (a torn write models power loss mid-write).
  void ArmTornLogForce(int durable_sectors);
  // Disarms every scripted and seeded plan. Hit counts, the recording, and
  // the crash handler survive (exploration disarms before checking
  // invariants).
  void Disarm();

  bool crash_fired() const { return crash_fired_; }
  const std::string& crashed_point() const { return crashed_point_; }

  // --- seeded plan --------------------------------------------------------
  // Every subsequent point hit independently delays with `probability`, for
  // a uniform duration in [1, max_delay_us]. Deterministic: the RNG is
  // consumed in schedule order, which the scheduler fixes per seed.
  void SeedDelays(std::uint64_t seed, double probability, SimTime max_delay_us);

  // --- wiring -------------------------------------------------------------
  // World installs CrashNode here. The handler is expected to kill the
  // current task (by throwing sim::TaskKilled through KillWhere).
  void SetCrashHandler(std::function<void(NodeId)> handler) {
    crash_handler_ = std::move(handler);
  }
  // Crash the node of the current task, counting a kCrash fault. Used by
  // OnPoint and by the torn-log-force path in LogManager.
  void CrashCurrentNode(Substrate& sub, const char* why);

  // Consumed by LogManager::Force: >= 0 is the armed durable-sector count
  // (fires once), -1 means no torn force armed.
  int TakeTornLogForce();

 private:
  struct Armed {
    bool crash = false;
    SimTime delay_us = 0;
    int hit = 1;
  };

  void RecomputeArmed() { armed_ = recording_ || !plan_.empty() || delays_seeded_; }

  bool armed_ = false;
  std::map<std::string, Armed> plan_;
  std::map<std::string, int> counts_;
  std::vector<std::string> order_;
  std::vector<PointHit> hits_;
  bool recording_ = false;
  bool crash_fired_ = false;
  std::string crashed_point_;
  int torn_force_sectors_ = -1;
  std::function<void(NodeId)> crash_handler_;
  bool delays_seeded_ = false;
  std::mt19937_64 rng_;
  double delay_probability_ = 0;
  SimTime max_delay_us_ = 0;
};

// The hook the load-bearing windows compile in. Free when no injector is
// installed or the installed one is idle: a pointer load plus a flag load,
// zero virtual time, no map or string work.
inline void FaultPointHit(Substrate& sub, const char* name) {
  FaultInjector* f = sub.faults();
  if (f != nullptr && f->armed()) {
    f->OnPoint(sub, name);
  }
}

#define FAULT_POINT(substrate, name) ::tabs::sim::FaultPointHit((substrate), (name))

}  // namespace tabs::sim

#endif  // TABS_SIM_FAULT_INJECTOR_H_
