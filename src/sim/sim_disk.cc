#include "src/sim/sim_disk.h"

#include <cassert>
#include <cstring>

namespace tabs::sim {

void SimDisk::EnsureSegment(SegmentId segment, PageNumber pages) {
  auto& vec = segments_[segment];
  if (vec.size() < pages) {
    vec.resize(pages);
  }
}

PageNumber SimDisk::SegmentPages(SegmentId segment) const {
  auto it = segments_.find(segment);
  return it == segments_.end() ? 0 : static_cast<PageNumber>(it->second.size());
}

DiskPage& SimDisk::PageRef(PageId page) {
  auto it = segments_.find(page.segment);
  assert(it != segments_.end() && "segment not created");
  assert(page.page < it->second.size() && "page out of segment bounds");
  return it->second[page.page];
}

std::uint64_t SimDisk::ReadPage(PageId page, std::uint8_t* out, bool sequential) {
  substrate_.Charge(sequential ? Primitive::kSequentialRead : Primitive::kRandomPageIo);
  DiskPage& p = PageRef(page);
  std::memcpy(out, p.data.data(), kPageSize);
  return p.sequence_number;
}

void SimDisk::WritePage(PageId page, const std::uint8_t* data, std::uint64_t sequence_number,
                        bool sequential) {
  substrate_.Charge(sequential ? Primitive::kSequentialWrite : Primitive::kRandomPageIo);
  DiskPage& p = PageRef(page);
  std::memcpy(p.data.data(), data, kPageSize);
  p.sequence_number = sequence_number;
}

std::uint64_t SimDisk::ReadSequenceNumber(PageId page) {
  substrate_.Charge(Primitive::kRandomPageIo);
  return PageRef(page).sequence_number;
}

const DiskPage& SimDisk::PeekPage(PageId page) const {
  auto it = segments_.find(page.segment);
  assert(it != segments_.end());
  assert(page.page < it->second.size());
  return it->second[page.page];
}

void SimDisk::WipeSegment(SegmentId segment) {
  auto it = segments_.find(segment);
  if (it == segments_.end()) {
    return;
  }
  for (DiskPage& page : it->second) {
    page = DiskPage{};
  }
}

void SimDisk::RestorePage(PageId page, const DiskPage& image) {
  substrate_.Charge(Primitive::kRandomPageIo);
  DiskPage& p = PageRef(page);
  p = image;
}

}  // namespace tabs::sim
