#include "src/sim/sim_disk.h"

#include <cassert>
#include <cstring>

namespace tabs::sim {

void SimDisk::EnsureSegment(SegmentId segment, PageNumber pages) {
  auto& vec = segments_[segment];
  if (vec.size() < pages) {
    vec.resize(pages);
  }
}

PageNumber SimDisk::SegmentPages(SegmentId segment) const {
  auto it = segments_.find(segment);
  return it == segments_.end() ? 0 : static_cast<PageNumber>(it->second.size());
}

DiskPage& SimDisk::PageRef(PageId page) {
  auto it = segments_.find(page.segment);
  assert(it != segments_.end() && "segment not created");
  assert(page.page < it->second.size() && "page out of segment bounds");
  return it->second[page.page];
}

std::uint64_t SimDisk::ReadPage(PageId page, std::uint8_t* out, bool sequential) {
  substrate_.Charge(sequential ? Primitive::kSequentialRead : Primitive::kRandomPageIo);
  DiskPage& p = PageRef(page);
  std::memcpy(out, p.data.data(), kPageSize);
  return p.sequence_number;
}

void SimDisk::WritePage(PageId page, const std::uint8_t* data, std::uint64_t sequence_number,
                        bool sequential) {
  substrate_.Charge(sequential ? Primitive::kSequentialWrite : Primitive::kRandomPageIo);
  if (lost_writes_pending_ > 0) {
    if (lost_writes_after_ > 0) {
      --lost_writes_after_;
    } else {
      // The write is silently misdirected: the disk spun (charged above) and
      // reported success, but the old contents and sequence number survive.
      --lost_writes_pending_;
      substrate_.metrics().CountFault(FaultKind::kLostPageWrite);
      return;
    }
  }
  DiskPage& p = PageRef(page);
  std::memcpy(p.data.data(), data, kPageSize);
  p.sequence_number = sequence_number;
}

std::uint64_t SimDisk::ReadSequenceNumber(PageId page) {
  substrate_.Charge(Primitive::kRandomPageIo);
  return PageRef(page).sequence_number;
}

const DiskPage& SimDisk::PeekPage(PageId page) const {
  auto it = segments_.find(page.segment);
  assert(it != segments_.end());
  assert(page.page < it->second.size());
  return it->second[page.page];
}

void SimDisk::WipeSegment(SegmentId segment) {
  auto it = segments_.find(segment);
  if (it == segments_.end()) {
    return;
  }
  for (DiskPage& page : it->second) {
    page = DiskPage{};
  }
}

void SimDisk::RestorePage(PageId page, const DiskPage& image) {
  substrate_.Charge(Primitive::kRandomPageIo);
  DiskPage& p = PageRef(page);
  p = image;
}

void SimDisk::InjectLostWrites(int count, int after) {
  assert(count >= 0 && after >= 0);
  lost_writes_pending_ = count;
  lost_writes_after_ = after;
}

void SimDisk::CorruptPage(PageId page) {
  DiskPage& p = PageRef(page);
  for (std::uint32_t i = 0; i < kPageSize; ++i) {
    p.data[i] = static_cast<std::uint8_t>((p.data[i] ^ 0xA5u) + i);
  }
  p.sequence_number = 0;
  substrate_.metrics().CountFault(FaultKind::kCorruptSector);
}

}  // namespace tabs::sim
