// Primitive-operation cost models.
//
// The paper's performance methodology (Section 5.1) expresses every
// transaction's latency as a weighted sum of nine primitive operations. This
// file captures those primitives and the three cost configurations used by
// the evaluation:
//   * Baseline()    — the measured Perq T2 times of Table 5-1.
//   * Achievable()  — the projected times of Table 5-5 (tuned software,
//                     dedicated logging disks, near-memory stable storage).
//   * the Improved-TABS-Architecture *flags* (merged TM/RM into the kernel,
//     optimized commit) are orthogonal to the per-primitive times and live in
//     ArchitectureModel below; Table 5-4's "Improved TABS Architecture"
//     column is Baseline() times + improved architecture, and its "New
//     Primitive Times" column is Achievable() times + improved architecture.

#ifndef TABS_SIM_COST_MODEL_H_
#define TABS_SIM_COST_MODEL_H_

#include <array>
#include <string>

#include "src/common/types.h"

namespace tabs::sim {

// The paper's nine primitives, plus kSequentialWrite — an extension beyond
// Table 5-1 used by the background page cleaner: a data-page write whose disk
// address continues an elevator-ordered sweep, so the arm does not seek. It
// is never charged on the paper-faithful paths (all demand write-backs remain
// random-access), which keeps every regenerated table byte-identical.
enum class Primitive {
  kDataServerCall = 0,       // local RPC application -> data server
  kInterNodeDataServerCall,  // session-based remote RPC
  kDatagram,                 // transaction-management datagram
  kSmallMessage,             // local Accent message, < 500 bytes
  kLargeMessage,             // local Accent message, ~1100 bytes
  kPointerMessage,           // copy-on-write remapped message
  kRandomPageIo,             // demand-paged random read or read/write pair
  kSequentialRead,           // demand-paged sequential read
  kStableWrite,              // force one page of log data to the log device
  kSequentialWrite,          // elevator-ordered write-back, no seek (extension)
  kCount,
};

constexpr int kPrimitiveCount = static_cast<int>(Primitive::kCount);

const char* PrimitiveName(Primitive p);

struct CostModel {
  // Times in microseconds, indexed by Primitive.
  std::array<SimTime, kPrimitiveCount> time_us{};

  // TABS process CPU time (Section 5.2's accounting): latency the system
  // processes add on top of the primitive operations. Charged to the clock
  // but never counted as a primitive — exactly how the paper reconciles its
  // predicted and measured columns. A local read-only transaction spends
  // 41 ms in TABS system processes plus ~7 ms in application/data server
  // setup plus the 9 ms the paper's analysis "does not account for"; writes
  // add TM commit work (24 ms), RM spooling and commit processing (18 ms),
  // and data-server log formatting (9 ms) less the paper's suspected
  // double-count. Participant-side figures are fitted to the measured
  // two/three-node rows. Identical across Baseline and Achievable: the
  // paper's projections assume no faster CPU (Section 5.3).
  SimTime coordinator_overhead_us = 57'000;
  SimTime coordinator_write_extra_us = 33'000;
  SimTime participant_read_overhead_us = 180'000;
  SimTime participant_prepare_overhead_us = 240'000;
  SimTime participant_commit_overhead_us = 105'000;

  SimTime Of(Primitive p) const { return time_us[static_cast<int>(p)]; }
  SimTime& Of(Primitive p) { return time_us[static_cast<int>(p)]; }

  // Table 5-1: measured primitive times on the Perq T2 (milliseconds there).
  static CostModel Baseline();
  // Table 5-5: achievable primitive times after tuning and added disks.
  static CostModel Achievable();
};

// Structural variants of TABS explored by Section 5.3.
struct ArchitectureModel {
  // "Improved TABS Architecture": Recovery Manager and Transaction Manager
  // merged with the kernel — local messages between application/data-server
  // and TM/RM are eliminated, and one prepare message does the work of two.
  bool merged_tm_rm = false;
  // Optimized commit: unnecessary messages eliminated, and commit processing
  // of distributed write transactions overlapped with successor transactions
  // (the second commit phase leaves the latency-critical path).
  bool optimized_commit = false;

  static ArchitectureModel Prototype() { return {}; }
  static ArchitectureModel Improved() { return {.merged_tm_rm = true, .optimized_commit = true}; }
};

}  // namespace tabs::sim

#endif  // TABS_SIM_COST_MODEL_H_
