// Core identifier types shared by every TABS subsystem.
//
// These correspond to the identifiers the paper's interfaces traffic in:
// node identities, transaction identifiers (Section 3.2.3), log sequence
// numbers, and the ObjectIDs that the server library's address arithmetic
// produces (Section 3.1.1).

#ifndef TABS_COMMON_TYPES_H_
#define TABS_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace tabs {

// Virtual time, in microseconds. The paper reports primitive times in
// milliseconds; all cost-model entries are stored in microseconds so that
// sub-millisecond projections (Table 5-5) stay exact.
using SimTime = std::int64_t;

constexpr SimTime kMillisecond = 1000;
constexpr SimTime kMicrosecond = 1;

// Identifies one simulated Perq workstation ("node"). Node 0 is reserved as
// the invalid node.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0;

// Log sequence number: byte offset of a record in a node's log. 0 = null.
using Lsn = std::uint64_t;
constexpr Lsn kNullLsn = 0;

// Identifies a recoverable segment (a disk file mapped into a data server's
// address space, Section 3.2.1). Unique per node.
using SegmentId = std::uint32_t;
constexpr SegmentId kInvalidSegment = 0;

// Pages are the unit of paging and of value logging (a value log record holds
// at most one page of old/new image, Section 2.1.3).
constexpr std::uint32_t kPageSize = 512;  // Accent pages were 512 bytes.
using PageNumber = std::uint32_t;

struct PageId {
  SegmentId segment = kInvalidSegment;
  PageNumber page = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;
};

// A globally unique transaction identifier. The Transaction Manager on each
// node allocates these; `node` is the birth node of the (sub)transaction and
// `sequence` is unique on that node across restarts (Section 3.2.3).
//
// Uniqueness across restarts is load-bearing: the high bits of `sequence`
// carry the minting node's incarnation (its crash-recovery epoch). A
// coordinator that began a transaction, involved only remote servers, and
// crashed before logging anything locally leaves no local trace of the ids
// it handed out — but remote participants still hold locks and undo state
// under them. Restarting the counter alone would re-mint such an id and
// alias the orphan's remote state (its locks grant to the impostor as lock
// conversions; its updates commit with the impostor's 2PC). The incarnation
// is bumped and durably logged on every crash recovery, so re-minting is
// impossible even for ids the crashed incarnation never logged.
//
// The null TID is the special value passed to BeginTransaction to create a
// new top-level transaction (Table 3-2).
constexpr std::uint64_t kIncarnationShift = 32;
constexpr std::uint64_t kSequenceCounterMask = (std::uint64_t{1} << kIncarnationShift) - 1;

struct TransactionId {
  NodeId node = kInvalidNode;
  std::uint64_t sequence = 0;

  bool IsNull() const { return node == kInvalidNode && sequence == 0; }
  std::uint64_t incarnation() const { return sequence >> kIncarnationShift; }
  std::uint64_t counter() const { return sequence & kSequenceCounterMask; }

  friend bool operator==(const TransactionId&, const TransactionId&) = default;
  friend auto operator<=>(const TransactionId&, const TransactionId&) = default;
};

constexpr TransactionId kNullTransaction{};

// The server library's object handle: a (segment, byte offset, length)
// triple. CreateObjectID performs the virtual-address-to-ObjectID arithmetic
// the paper describes; the log manager works in terms of these (Section
// 3.1.1).
struct ObjectId {
  SegmentId segment = kInvalidSegment;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  bool IsValid() const { return segment != kInvalidSegment && length > 0; }
  PageNumber FirstPage() const { return offset / kPageSize; }
  PageNumber LastPage() const { return (offset + length - 1) / kPageSize; }

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

std::string ToString(const TransactionId& tid);
std::string ToString(const ObjectId& oid);
std::string ToString(const PageId& pid);

}  // namespace tabs

namespace std {

template <>
struct hash<tabs::TransactionId> {
  size_t operator()(const tabs::TransactionId& t) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(t.node) << 40) ^ t.sequence);
  }
};

template <>
struct hash<tabs::ObjectId> {
  size_t operator()(const tabs::ObjectId& o) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(o.segment) << 40) ^
                                      (std::uint64_t(o.offset) << 8) ^ o.length);
  }
};

template <>
struct hash<tabs::PageId> {
  size_t operator()(const tabs::PageId& p) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t(p.segment) << 32) ^ p.page);
  }
};

}  // namespace std

#endif  // TABS_COMMON_TYPES_H_
