#include "src/common/bytes.h"

// All of ByteWriter/ByteReader is inline; this translation unit exists so the
// library has a home for future out-of-line helpers and so the build graph
// stays uniform (every subsystem library has at least one .cc).

namespace tabs {}
