// Status codes and a lightweight Result<T> for operations that can fail.
//
// TABS surfaces failures as statuses rather than exceptions: a transaction
// that times out waiting for a lock, a vote of "no" during two-phase commit,
// and a crashed remote node all come back through these codes.

#ifndef TABS_COMMON_RESULT_H_
#define TABS_COMMON_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tabs {

enum class Status {
  kOk = 0,
  // The transaction was aborted (by the user, by a peer, or by recovery).
  kAborted,
  // A lock wait exceeded its timeout; TABS uses timeouts to break deadlock
  // (Section 2.1.2). The waiting transaction should abort.
  kTimeout,
  // The named object / name-server entry does not exist.
  kNotFound,
  // An argument is out of range (e.g. the array server's IndexOutOfRange).
  kOutOfRange,
  // The target node is crashed or unreachable.
  kNodeDown,
  // A datagram was lost (only when the network is configured lossy).
  kMessageLost,
  // A participant voted no during two-phase commit.
  kVoteNo,
  // The operation conflicts with system state (duplicate name, queue full...).
  kConflict,
  // Not enough replicas reachable to form a quorum (replicated directory).
  kNoQuorum,
  // Internal invariant violation; indicates a bug, not an expected outcome.
  kInternal,
};

const char* StatusName(Status s);

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT: implicit by design
  Result(Status status) : value_(status) {                 // NOLINT: implicit by design
    assert(status != Status::kOk && "use Result(T) for success");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  Status status() const {
    return ok() ? Status::kOk : std::get<Status>(value_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(value_);
  }
  T value_or(T fallback) const { return ok() ? std::get<T>(value_) : std::move(fallback); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace tabs

#endif  // TABS_COMMON_RESULT_H_
