#include "src/common/types.h"

#include <sstream>

namespace tabs {

std::string ToString(const TransactionId& tid) {
  std::ostringstream os;
  if (tid.IsNull()) {
    os << "T(null)";
  } else if (tid.incarnation() == 0) {
    os << "T(" << tid.node << "." << tid.counter() << ")";
  } else {
    // Post-recovery epochs print explicitly: T(node.incarnation.counter).
    os << "T(" << tid.node << "." << tid.incarnation() << "." << tid.counter() << ")";
  }
  return os.str();
}

std::string ToString(const ObjectId& oid) {
  std::ostringstream os;
  os << "obj(" << oid.segment << ":" << oid.offset << "+" << oid.length << ")";
  return os.str();
}

std::string ToString(const PageId& pid) {
  std::ostringstream os;
  os << "page(" << pid.segment << ":" << pid.page << ")";
  return os.str();
}

}  // namespace tabs
