#include "src/common/result.h"

namespace tabs {

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kAborted:
      return "ABORTED";
    case Status::kTimeout:
      return "TIMEOUT";
    case Status::kNotFound:
      return "NOT_FOUND";
    case Status::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::kNodeDown:
      return "NODE_DOWN";
    case Status::kMessageLost:
      return "MESSAGE_LOST";
    case Status::kVoteNo:
      return "VOTE_NO";
    case Status::kConflict:
      return "CONFLICT";
    case Status::kNoQuorum:
      return "NO_QUORUM";
    case Status::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace tabs
