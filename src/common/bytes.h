// Byte-level serialization used by the log and by inter-node messages.
//
// Records are encoded little-endian with explicit lengths. A Reader refuses
// to run past the end of its input (truncated log tails after a crash are an
// expected condition, not a bug).

#ifndef TABS_COMMON_BYTES_H_
#define TABS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace tabs {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) { Raw(&v, sizeof v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I64(std::int64_t v) { Raw(&v, sizeof v); }

  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Blob(std::span<const std::uint8_t> b) {
    U32(static_cast<std::uint32_t>(b.size()));
    Raw(b.data(), b.size());
  }
  void Tid(const TransactionId& t) {
    U32(t.node);
    U64(t.sequence);
  }
  void Oid(const ObjectId& o) {
    U32(o.segment);
    U32(o.offset);
    U32(o.length);
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t U8() { return ReadScalar<std::uint8_t>(); }
  std::uint16_t U16() { return ReadScalar<std::uint16_t>(); }
  std::uint32_t U32() { return ReadScalar<std::uint32_t>(); }
  std::uint64_t U64() { return ReadScalar<std::uint64_t>(); }
  std::int64_t I64() { return ReadScalar<std::int64_t>(); }

  std::string Str() {
    std::uint32_t n = U32();
    if (!Check(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  Bytes Blob() {
    std::uint32_t n = U32();
    if (!Check(n)) {
      return {};
    }
    Bytes b(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return b;
  }
  TransactionId Tid() {
    TransactionId t;
    t.node = U32();
    t.sequence = U64();
    return t;
  }
  ObjectId Oid() {
    ObjectId o;
    o.segment = U32();
    o.offset = U32();
    o.length = U32();
    return o;
  }

 private:
  template <typename T>
  T ReadScalar() {
    if (!Check(sizeof(T))) {
      return T{};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  bool Check(size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tabs

#endif  // TABS_COMMON_BYTES_H_
