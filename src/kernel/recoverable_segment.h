// Recoverable segments: disk files mapped into a data server's memory.
//
// "The failure atomic and/or permanent data stored by data servers are
// stored in disk files that are mapped into virtual memory... the kernel's
// paging system updates a recoverable segment directly instead of updating
// paging storage." (Section 3.2.1.)
//
// This class reproduces the modified Accent kernel's behaviour:
//  * demand paging with a bounded buffer pool ("volatile storage"); faults
//    charge the random or sequential paged-I/O primitive (auto-detected from
//    the access pattern, as a disk arm would);
//  * pin/unpin paging control (PinObject et al., Table 3-1) — a pinned page
//    is never stolen, guaranteeing an object's permanent representation is
//    not changed before its modifications are logged;
//  * the three kernel→Recovery Manager messages: first-dirty notification,
//    write-permission request (the RM forces the log through the page's last
//    LSN before the write proceeds), and write-completion notification;
//  * the per-sector sequence number atomically written with each page-out —
//    the hook returns the number to stamp (operation logging compares it
//    against log-record LSNs during recovery, Section 3.2.1).

#ifndef TABS_KERNEL_RECOVERABLE_SEGMENT_H_
#define TABS_KERNEL_RECOVERABLE_SEGMENT_H_

#include <cstdint>
#include <list>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"
#include "src/sim/sim_disk.h"
#include "src/sim/substrate.h"

namespace tabs::kernel {

// Thrown by a page fault when every frame in the buffer pool is pinned: no
// victim can be stolen, so the fault cannot be serviced. Pin discipline bugs
// (a server pinning more pages than its pool holds) surface as this error
// instead of silently evicting a pinned page.
struct BufferPoolExhausted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// The kernel→Recovery Manager half of the write-ahead-log protocol.
class WriteAheadHooks {
 public:
  virtual ~WriteAheadHooks() = default;

  // A page backed by a recoverable segment was modified for the first time
  // since it was loaded or cleaned.
  virtual void OnFirstDirty(PageId page, Lsn recovery_lsn) = 0;

  // The kernel wants to copy a modified page back to its segment. The
  // Recovery Manager must make all log records applying to this page stable
  // before returning; the return value is the sequence number to stamp into
  // the sector header.
  virtual std::uint64_t BeforePageWrite(PageId page, Lsn last_lsn) = 0;

  // The page copy finished.
  virtual void AfterPageWrite(PageId page, bool ok) = 0;
};

class RecoverableSegment {
 public:
  // `buffer_frames` bounds volatile storage: the paging benchmarks use an
  // array more than three times larger than physical memory (Section 5.1).
  RecoverableSegment(sim::Substrate& substrate, sim::SimDisk& disk, SegmentId id,
                     PageNumber pages, size_t buffer_frames);

  SegmentId id() const { return id_; }
  PageNumber page_count() const { return page_count_; }
  std::uint32_t size_bytes() const { return page_count_ * kPageSize; }

  void SetHooks(WriteAheadHooks* hooks) { hooks_ = hooks; }

  // Copies an object's current volatile value out (faulting pages as
  // needed). Never dirties.
  void Read(const ObjectId& oid, std::uint8_t* out);
  Bytes Read(const ObjectId& oid);

  // Overwrites an object's volatile value. Every covered page must be
  // pinned (the server library guarantees this via PinAndBuffer). `lsn` is
  // the latest log record covering this modification; it drives the WAL gate
  // and the sector sequence number. Recovery passes the record being
  // replayed; forward processing passes the freshly appended record.
  void Write(const ObjectId& oid, const std::uint8_t* data, Lsn lsn);
  void Write(const ObjectId& oid, const Bytes& data, Lsn lsn) {
    Write(oid, data.data(), lsn);
  }

  // Paging control (PinObject / UnPinObject / UnPinAllObjects, Table 3-1).
  void Pin(const ObjectId& oid);
  void Unpin(const ObjectId& oid);
  void UnpinAll();
  bool IsPinned(PageNumber page) const;

  // Flushes every dirty page through the WAL protocol (recovery completion,
  // checkpoints that force pages, orderly shutdown).
  void FlushAll();

  // --- page-cleaner support ---------------------------------------------------
  // Dirty, unpinned frames (the cleaner's candidate set), in page order.
  struct CleanCandidate {
    PageNumber page;
    Lsn recovery_lsn;  // first LSN that dirtied the page since clean
  };
  std::vector<CleanCandidate> CleanCandidates() const;

  // Writes the given frames back through the WAL protocol without evicting
  // them. `pages` must be sorted ascending (one elevator sweep): a page whose
  // disk address continues the sweep contiguously is charged the cheaper
  // sequential-write primitive. Frames that are no longer dirty or were
  // evicted are skipped; pinned frames are skipped too unless `write_pinned`
  // — writing (not stealing) a pinned frame is safe because frames only ever
  // hold logged modifications, and reclamation needs it (the triggering
  // update's own page is pinned while it reclaims). `background` marks the
  // write-backs as cleaner work in the metrics (foreground = a transaction
  // paid synchronously). Returns the number of pages written.
  int FlushPages(const std::vector<PageNumber>& pages, bool background,
                 bool write_pinned = false);

  // Eviction policy: with `prefer_clean` set, a page fault steals the
  // least-recently-used *clean* frame and falls back to dirty frames only
  // when no clean one is unpinned — the payoff of background cleaning. Off
  // (the default) keeps the paper-faithful pure-LRU choice.
  void set_prefer_clean_eviction(bool prefer_clean) { prefer_clean_eviction_ = prefer_clean; }

  size_t dirty_page_count() const;

  // Dirty-page table for checkpoints: page -> recovery LSN (first LSN that
  // dirtied it since clean).
  std::map<PageNumber, Lsn> DirtyPages() const;

  // Disk sequence number of a page (recovery reads sector headers).
  std::uint64_t DiskSequenceNumber(PageNumber page);

  size_t resident_pages() const { return frames_.size(); }
  std::uint64_t fault_count() const { return faults_; }

 private:
  struct Frame {
    std::vector<std::uint8_t> data;
    bool dirty = false;
    int pin_count = 0;
    Lsn recovery_lsn = kNullLsn;  // first LSN since clean
    Lsn last_lsn = kNullLsn;      // latest LSN affecting the page
    std::uint64_t lru_tick = 0;
  };

  Frame& FaultIn(PageNumber page);
  void EvictOne();
  void WriteBack(PageNumber page, Frame& frame, bool sequential, bool background);
  void CheckBounds(const ObjectId& oid) const;

  sim::Substrate& substrate_;
  sim::SimDisk& disk_;
  SegmentId id_;
  PageNumber page_count_;
  size_t buffer_frames_;
  WriteAheadHooks* hooks_ = nullptr;
  // Hashed: FaultIn is a point lookup on every object Read/Write. Walks that
  // need an order (FlushAll's write-back sequence, CleanCandidates' sweep
  // order) sort explicitly; the remaining iterations (EvictOne's LRU scan
  // over unique lru_ticks, UnpinAll, dirty_page_count, DirtyPages into a
  // std::map) are order-insensitive.
  std::unordered_map<PageNumber, Frame> frames_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t faults_ = 0;
  PageNumber last_faulted_ = static_cast<PageNumber>(-2);
  bool prefer_clean_eviction_ = false;
};

}  // namespace tabs::kernel

#endif  // TABS_KERNEL_RECOVERABLE_SEGMENT_H_
