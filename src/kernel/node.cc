#include "src/kernel/node.h"

namespace tabs::kernel {

Node::Node(NodeId id, sim::Substrate& substrate)
    : id_(id),
      substrate_(substrate),
      disk_(std::make_unique<sim::SimDisk>(substrate)),
      stable_log_(std::make_unique<log::StableLogDevice>()) {}

}  // namespace tabs::kernel
