#include "src/kernel/recoverable_segment.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/sim/fault_injector.h"

namespace tabs::kernel {

RecoverableSegment::RecoverableSegment(sim::Substrate& substrate, sim::SimDisk& disk,
                                       SegmentId id, PageNumber pages, size_t buffer_frames)
    : substrate_(substrate), disk_(disk), id_(id), page_count_(pages),
      buffer_frames_(buffer_frames) {
  assert(buffer_frames_ >= 2 && "need at least two frames for objects spanning a page edge");
  disk_.EnsureSegment(id, pages);
}

void RecoverableSegment::CheckBounds(const ObjectId& oid) const {
  assert(oid.segment == id_);
  assert(oid.offset + oid.length <= size_bytes() && "object outside segment");
}

RecoverableSegment::Frame& RecoverableSegment::FaultIn(PageNumber page) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    it->second.lru_tick = ++lru_clock_;
    return it->second;
  }
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kKernel, "page.fault");
  while (frames_.size() >= buffer_frames_) {
    EvictOne();
  }
  Frame frame;
  frame.data.resize(kPageSize);
  // A fault on the page after the previous fault is a sequential read; any
  // other pattern pays a seek (Section 5.1's two paged-I/O primitives).
  bool sequential = page == last_faulted_ + 1;
  disk_.ReadPage({id_, page}, frame.data.data(), sequential);
  last_faulted_ = page;
  ++faults_;
  frame.lru_tick = ++lru_clock_;
  auto [pos, inserted] = frames_.emplace(page, std::move(frame));
  assert(inserted);
  return pos->second;
}

void RecoverableSegment::EvictOne() {
  PageNumber victim = 0;
  // Victim choice: least-recently-used unpinned frame. With clean-preferring
  // eviction (the page cleaner's companion policy), clean frames outrank
  // dirty ones so a fault steals without paying a write-back whenever the
  // cleaner has kept one clean; within each class the order is still LRU.
  bool victim_dirty = false;
  std::uint64_t best = UINT64_MAX;
  bool found = false;
  for (auto& [page, frame] : frames_) {
    if (frame.pin_count > 0) {
      continue;  // pinned pages are never stolen
    }
    bool better;
    if (prefer_clean_eviction_ && found && victim_dirty != frame.dirty) {
      better = victim_dirty && !frame.dirty;
    } else {
      better = frame.lru_tick < best;
    }
    if (!found || better) {
      best = frame.lru_tick;
      victim = page;
      victim_dirty = frame.dirty;
      found = true;
    }
  }
  if (!found) {
    throw BufferPoolExhausted("segment " + std::to_string(id_) + ": all " +
                              std::to_string(frames_.size()) +
                              " buffer frames are pinned; page fault cannot steal a victim");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    WriteBack(victim, frame, /*sequential=*/false, /*background=*/false);
  }
  frames_.erase(victim);
}

void RecoverableSegment::WriteBack(PageNumber page, Frame& frame, bool sequential,
                                   bool background) {
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kKernel, "page.writeback");
  std::uint64_t seqno = frame.last_lsn;
  if (hooks_ != nullptr) {
    // "The kernel does not write the page until it receives a message from
    // the Recovery Manager indicating that all log records that apply to
    // this page have been written to non-volatile storage." (§3.2.1)
    seqno = hooks_->BeforePageWrite({id_, page}, frame.last_lsn);
  }
  // The WAL gate has passed but the page is still only in the frame: a crash
  // here tests that log records alone reconstruct the page.
  FAULT_POINT(substrate_, "segment.writeback.before_disk");
  disk_.WritePage({id_, page}, frame.data.data(), seqno, sequential);
  FAULT_POINT(substrate_, "segment.writeback.after_disk");
  substrate_.metrics().CountPageWrite(background);
  frame.dirty = false;
  frame.recovery_lsn = kNullLsn;
  if (hooks_ != nullptr) {
    hooks_->AfterPageWrite({id_, page}, true);
  }
}

void RecoverableSegment::Read(const ObjectId& oid, std::uint8_t* out) {
  CheckBounds(oid);
  std::uint32_t copied = 0;
  for (PageNumber p = oid.FirstPage(); p <= oid.LastPage(); ++p) {
    Frame& frame = FaultIn(p);
    std::uint32_t page_start = p * kPageSize;
    std::uint32_t from = std::max(oid.offset, page_start) - page_start;
    std::uint32_t to = std::min(oid.offset + oid.length, page_start + kPageSize) - page_start;
    std::memcpy(out + copied, frame.data.data() + from, to - from);
    copied += to - from;
  }
  assert(copied == oid.length);
}

Bytes RecoverableSegment::Read(const ObjectId& oid) {
  Bytes out(oid.length);
  Read(oid, out.data());
  return out;
}

void RecoverableSegment::Write(const ObjectId& oid, const std::uint8_t* data, Lsn lsn) {
  CheckBounds(oid);
  std::uint32_t copied = 0;
  for (PageNumber p = oid.FirstPage(); p <= oid.LastPage(); ++p) {
    Frame& frame = FaultIn(p);
    std::uint32_t page_start = p * kPageSize;
    std::uint32_t from = std::max(oid.offset, page_start) - page_start;
    std::uint32_t to = std::min(oid.offset + oid.length, page_start + kPageSize) - page_start;
    std::memcpy(frame.data.data() + from, data + copied, to - from);
    copied += to - from;
    if (!frame.dirty) {
      frame.dirty = true;
      frame.recovery_lsn = lsn;
      if (hooks_ != nullptr) {
        hooks_->OnFirstDirty({id_, p}, lsn);
      }
    }
    frame.last_lsn = std::max(frame.last_lsn, lsn);
  }
  assert(copied == oid.length);
}

void RecoverableSegment::Pin(const ObjectId& oid) {
  CheckBounds(oid);
  for (PageNumber p = oid.FirstPage(); p <= oid.LastPage(); ++p) {
    FaultIn(p).pin_count++;
  }
}

void RecoverableSegment::Unpin(const ObjectId& oid) {
  CheckBounds(oid);
  for (PageNumber p = oid.FirstPage(); p <= oid.LastPage(); ++p) {
    auto it = frames_.find(p);
    assert(it != frames_.end() && it->second.pin_count > 0 && "unpin of unpinned page");
    it->second.pin_count--;
  }
}

void RecoverableSegment::UnpinAll() {
  for (auto& [page, frame] : frames_) {
    frame.pin_count = 0;
  }
}

bool RecoverableSegment::IsPinned(PageNumber page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.pin_count > 0;
}

void RecoverableSegment::FlushAll() {
  // Ascending page order: the write-back sequence decides which WAL forces
  // are no-ops (forcing through a high LSN first absorbs later ones), so the
  // order must stay deterministic and match the original sorted-map walk.
  std::vector<PageNumber> dirty;
  for (auto& [page, frame] : frames_) {
    if (frame.dirty) {
      dirty.push_back(page);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (PageNumber page : dirty) {
    WriteBack(page, frames_.at(page), /*sequential=*/false, /*background=*/false);
  }
}

std::vector<RecoverableSegment::CleanCandidate> RecoverableSegment::CleanCandidates() const {
  std::vector<CleanCandidate> out;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty && frame.pin_count == 0) {
      out.push_back({page, frame.recovery_lsn});
    }
  }
  // Page order, as documented: the cleaner flushes these as one elevator
  // sweep and FlushPages requires ascending addresses.
  std::sort(out.begin(), out.end(),
            [](const CleanCandidate& a, const CleanCandidate& b) { return a.page < b.page; });
  return out;
}

int RecoverableSegment::FlushPages(const std::vector<PageNumber>& pages, bool background,
                                   bool write_pinned) {
  int written = 0;
  PageNumber prev = static_cast<PageNumber>(-2);
  for (PageNumber page : pages) {
    auto it = frames_.find(page);
    if (it == frames_.end() || !it->second.dirty ||
        (!write_pinned && it->second.pin_count > 0)) {
      continue;  // evicted, already cleaned, or pinned since selection
    }
    // One elevator sweep: a write whose address continues the previous one
    // contiguously needs no seek, exactly mirroring the sequential-read
    // detection on the fault path.
    bool sequential = page == prev + 1;
    WriteBack(page, it->second, sequential, background);
    prev = page;
    ++written;
  }
  return written;
}

size_t RecoverableSegment::dirty_page_count() const {
  size_t n = 0;
  for (const auto& [page, frame] : frames_) {
    n += frame.dirty ? 1 : 0;
  }
  return n;
}

std::map<PageNumber, Lsn> RecoverableSegment::DirtyPages() const {
  std::map<PageNumber, Lsn> out;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty) {
      out[page] = frame.recovery_lsn;
    }
  }
  return out;
}

std::uint64_t RecoverableSegment::DiskSequenceNumber(PageNumber page) {
  return disk_.ReadSequenceNumber({id_, page});
}

}  // namespace tabs::kernel
