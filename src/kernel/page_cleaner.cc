#include "src/kernel/page_cleaner.h"

#include <algorithm>
#include <string>

#include "src/kernel/recoverable_segment.h"
#include "src/sim/scheduler.h"
#include "src/sim/tracer.h"

namespace tabs::kernel {

void PageCleaner::AddSegment(RecoverableSegment* segment) {
  segments_.push_back(segment);
}

void PageCleaner::RemoveSegment(RecoverableSegment* segment) {
  std::erase(segments_, segment);
}

void PageCleaner::NotifyDirty() {
  if (!enabled() || pass_scheduled_) {
    return;
  }
  pass_scheduled_ = true;
  sim::Scheduler& sched = substrate_.scheduler();
  SimTime start = (sched.in_task() ? sched.Now() : 0) + options_.interval_us;
  sched.Spawn("page-cleaner", node_, start, [this] { RunPass(); });
}

void PageCleaner::RunPass() {
  pass_scheduled_ = false;
  // Background work: the kernel/RM messages of the WAL gate leave every
  // transaction's primitive counts untouched; the I/O itself is still
  // charged (to the cleaner's own virtual clock).
  sim::Substrate::BackgroundScope background(substrate_);
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kKernel, "cleaner.pass");

  // Select the oldest dirty frames by recovery LSN across all segments —
  // the pages pinning the log tail get cleaned first. Ties break by
  // (segment id, page) so runs are deterministic.
  struct Candidate {
    Lsn recovery_lsn;
    SegmentId segment_id;
    RecoverableSegment* segment;
    PageNumber page;
  };
  std::vector<Candidate> candidates;
  for (RecoverableSegment* seg : segments_) {
    for (const RecoverableSegment::CleanCandidate& c : seg->CleanCandidates()) {
      candidates.push_back({c.recovery_lsn, seg->id(), seg, c.page});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return std::tie(a.recovery_lsn, a.segment_id, a.page) <
           std::tie(b.recovery_lsn, b.segment_id, b.page);
  });
  if (candidates.size() > static_cast<size_t>(options_.max_batch_pages)) {
    candidates.resize(static_cast<size_t>(options_.max_batch_pages));
  }

  // Issue the batch in elevator order: one ascending sweep per segment, in
  // registration order, so contiguous dirty runs become sequential writes.
  int written = 0;
  for (RecoverableSegment* seg : segments_) {
    std::vector<PageNumber> pages;
    for (const Candidate& c : candidates) {
      if (c.segment == seg) {
        pages.push_back(c.page);
      }
    }
    if (pages.empty()) {
      continue;
    }
    std::sort(pages.begin(), pages.end());
    written += seg->FlushPages(pages, /*background=*/true);
  }
  if (written > 0) {
    ++passes_;
    pages_cleaned_ += static_cast<std::uint64_t>(written);
    if (substrate_.tracer().enabled()) {
      sim::Scheduler& sched = substrate_.scheduler();
      substrate_.tracer().Record(sched.Now(), node_, "page-clean",
                                 "pages=" + std::to_string(written));
    }
  }

  // Re-arm while dirty unpinned frames remain (more than one batch's worth,
  // or pages that were pinned when this sweep selected). Newly dirtied pages
  // re-arm through NotifyDirty.
  for (RecoverableSegment* seg : segments_) {
    if (!seg->CleanCandidates().empty()) {
      NotifyDirty();
      break;
    }
  }
}

}  // namespace tabs::kernel
