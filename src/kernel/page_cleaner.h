// The background page cleaner: write-back ahead of demand.
//
// The paper's kernel writes a dirty page back only when the frame is stolen
// by a page fault or when reclamation forces it ("[reclamation] may force
// pages back to disk before they would otherwise be written", Section 3.2.2)
// — both on some transaction's critical path, and each paying a random page
// I/O plus a synchronous WAL log force. The cleaner is the natural
// optimization: a per-node cooperative virtual-time daemon (built like the
// group-commit batcher) that continuously writes dirty unpinned frames back
// *between* transactions, so that
//   * page faults find clean victims and steal them without I/O
//     (clean-frame-preferring eviction, enabled alongside the cleaner), and
//   * log-space reclamation finds little left to flush, keeping fuzzy
//     checkpoints cheap and commit-latency tails flat.
//
// Selection is oldest-first by recovery LSN — the pages that pin the log
// tail are cleaned first, which is exactly what incremental reclamation
// wants. Each batch is then issued in elevator order by disk address, so
// contiguous runs are charged the cheaper sequential-write primitive. Every
// write-back still goes through the kernel→Recovery Manager write-ahead-log
// gate: the cleaner changes *when* pages are written, never *whether* the
// log reaches non-volatile storage first.
//
// The daemon is demand-armed: the first-dirty notification schedules a pass
// one interval out, and a pass re-arms itself only while dirty unpinned
// frames remain. An idle node schedules nothing, so the scheduler still
// drains and — with the cleaner disabled (interval 0) — behaviour is
// byte-identical to the paper-faithful kernel.

#ifndef TABS_KERNEL_PAGE_CLEANER_H_
#define TABS_KERNEL_PAGE_CLEANER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/sim/substrate.h"

namespace tabs::kernel {

class RecoverableSegment;

struct PageCleanerOptions {
  // Virtual time between cleaning passes; 0 disables the daemon.
  SimTime interval_us = 0;
  // At most this many pages are written per pass (one elevator sweep).
  int max_batch_pages = 16;
};

class PageCleaner {
 public:
  PageCleaner(sim::Substrate& substrate, NodeId node, PageCleanerOptions options)
      : substrate_(substrate), node_(node), options_(options) {
    if (options_.max_batch_pages < 1) {
      options_.max_batch_pages = 1;
    }
  }
  PageCleaner(const PageCleaner&) = delete;
  PageCleaner& operator=(const PageCleaner&) = delete;

  bool enabled() const { return options_.interval_us > 0; }
  SimTime interval_us() const { return options_.interval_us; }

  // Segment registry. The Recovery Manager adds each registered segment and
  // removes it when its server crashes (single-server failure); a node crash
  // destroys the cleaner with the rest of the volatile stack.
  void AddSegment(RecoverableSegment* segment);
  void RemoveSegment(RecoverableSegment* segment);

  // First-dirty notification: arms a cleaning pass one interval out unless
  // one is already pending. Callable from inside or outside a task.
  void NotifyDirty();

  // Statistics (for benches and tests).
  std::uint64_t pages_cleaned() const { return pages_cleaned_; }
  std::uint64_t passes() const { return passes_; }

 private:
  void RunPass();

  sim::Substrate& substrate_;
  NodeId node_;
  PageCleanerOptions options_;
  std::vector<RecoverableSegment*> segments_;  // registration order: deterministic
  bool pass_scheduled_ = false;
  std::uint64_t pages_cleaned_ = 0;
  std::uint64_t passes_ = 0;
};

}  // namespace tabs::kernel

#endif  // TABS_KERNEL_PAGE_CLEANER_H_
