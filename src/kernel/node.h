// A simulated TABS node (one Perq workstation).
//
// Node owns the *durable* hardware — the disk holding recoverable segments
// and the log device — plus the node's identity and liveness. Everything
// volatile (log buffer, Recovery/Transaction/Communication Managers, data
// servers, lock tables) is layered on top by tabs::World and is destroyed and
// rebuilt when the node crashes and recovers, exactly like process state on a
// real machine.

#ifndef TABS_KERNEL_NODE_H_
#define TABS_KERNEL_NODE_H_

#include <memory>

#include "src/common/types.h"
#include "src/log/log_manager.h"
#include "src/sim/sim_disk.h"
#include "src/sim/substrate.h"

namespace tabs::kernel {

class Node {
 public:
  Node(NodeId id, sim::Substrate& substrate);

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }
  void set_alive(bool a) { alive_ = a; }

  sim::Substrate& substrate() { return substrate_; }
  sim::SimDisk& disk() { return *disk_; }
  log::StableLogDevice& stable_log() { return *stable_log_; }

  // Segment identifiers are allocated per node and must be durable across
  // crashes; the counter is kept on "disk" conceptually (it survives).
  SegmentId AllocateSegment() { return next_segment_++; }

 private:
  NodeId id_;
  bool alive_ = true;
  sim::Substrate& substrate_;
  std::unique_ptr<sim::SimDisk> disk_;
  std::unique_ptr<log::StableLogDevice> stable_log_;
  SegmentId next_segment_ = 1;
};

}  // namespace tabs::kernel

#endif  // TABS_KERNEL_NODE_H_
