#include "src/tabs/application.h"

#include <algorithm>
#include <random>

namespace tabs {

Application::RunResult Application::RunTransactional(
    const std::function<Status(const server::Tx&)>& body, const RetryPolicy& policy) {
  RunResult result;
  SimTime backoff = policy.initial_backoff_us;
  std::mt19937_64 rng;
  bool rng_seeded = false;
  for (;;) {
    TransactionId tid = Begin();
    if (!rng_seeded) {
      // Seeded once from the first attempt's transaction id: unique per
      // RunTransactional call, yet a pure function of the deterministic
      // schedule — replays of the same world seed draw the same waits.
      rng.seed(policy.jitter_seed ^ std::hash<TransactionId>{}(tid));
      rng_seeded = true;
    }
    result.status = body(MakeTx(tid));
    if (result.status == Status::kOk) {
      result.status = End(tid);
    } else {
      Abort(tid);
    }
    ++result.attempts;
    if (result.status == Status::kOk || !RetryPolicy::Retryable(result.status) ||
        result.attempts >= policy.max_attempts) {
      return result;
    }
    // Back off in virtual time before the next attempt, so colliding
    // applications de-synchronize instead of re-deadlocking immediately.
    sim::Scheduler& sched = tm_->substrate().scheduler();
    if (sched.in_task() && backoff > 0) {
      SimTime wait = backoff;
      if (policy.jitter > 0) {
        // Integer draw on the raw mt19937_64 stream: its output sequence is
        // specified by the standard, unlike the float distributions, so the
        // waits are identical across standard libraries.
        SimTime span = static_cast<SimTime>(static_cast<double>(backoff) *
                                            std::min(policy.jitter, 1.0));
        if (span > 0) {
          wait = backoff - static_cast<SimTime>(
                               rng() % static_cast<std::uint64_t>(span + 1));
        }
      }
      sched.Charge(wait);
      sched.Yield();
    }
    backoff = std::min(policy.max_backoff_us,
                       static_cast<SimTime>(static_cast<double>(backoff) *
                                            policy.backoff_multiplier));
  }
}

Application::RunResult Application::RunTransactional(
    const std::function<Status(const server::Tx&)>& body) {
  return RunTransactional(body, RetryPolicy{});
}

}  // namespace tabs
