#include "src/tabs/application.h"

// Application is header-only; this translation unit anchors the library.

namespace tabs {}
