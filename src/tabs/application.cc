#include "src/tabs/application.h"

#include <algorithm>

namespace tabs {

Application::RunResult Application::RunTransactional(
    const std::function<Status(const server::Tx&)>& body, const RetryPolicy& policy) {
  RunResult result;
  SimTime backoff = policy.initial_backoff_us;
  for (;;) {
    result.status = Transaction(body);
    ++result.attempts;
    if (result.status == Status::kOk || !RetryPolicy::Retryable(result.status) ||
        result.attempts >= policy.max_attempts) {
      return result;
    }
    // Back off in virtual time before the next attempt, so colliding
    // applications de-synchronize instead of re-deadlocking immediately.
    sim::Scheduler& sched = tm_->substrate().scheduler();
    if (sched.in_task() && backoff > 0) {
      sched.Charge(backoff);
      sched.Yield();
    }
    backoff = std::min(policy.max_backoff_us,
                       static_cast<SimTime>(static_cast<double>(backoff) *
                                            policy.backoff_multiplier));
  }
}

Application::RunResult Application::RunTransactional(
    const std::function<Status(const server::Tx&)>& body) {
  return RunTransactional(body, RetryPolicy{});
}

}  // namespace tabs
