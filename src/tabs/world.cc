#include "src/tabs/world.h"

#include <cassert>
#include <sstream>

#include "src/kernel/page_cleaner.h"
#include "src/log/group_commit.h"

namespace tabs {

World::World(int node_count, WorldOptions options) : options_(options) {
  substrate_ = std::make_unique<sim::Substrate>(scheduler_, options.costs, options.arch);
  fault_injector_ = std::make_unique<sim::FaultInjector>();
  fault_injector_->SetCrashHandler([this](NodeId id) { CrashNode(id); });
  substrate_->SetFaultInjector(fault_injector_.get());
  network_ = std::make_unique<comm::Network>(*substrate_);
  for (int i = 0; i < node_count; ++i) {
    NodeId id = static_cast<NodeId>(i + 1);
    nodes_.push_back(std::make_unique<kernel::Node>(id, *substrate_));
    network_->AddNode(id);
    BuildRuntime(id);
  }
  WirePeers();
}

World::~World() {
  // Unwind every remaining task before the substrate (and with it the tracer,
  // which tasks may hold open spans against) is destroyed: `scheduler_` is
  // declared before `substrate_`, so without this the blocked tasks' stacks
  // would unwind in ~Scheduler after the tracer is already gone.
  scheduler_.Shutdown();
}

kernel::Node& World::node(NodeId id) {
  assert(id >= 1 && id <= nodes_.size());
  return *nodes_[id - 1];
}

World::Runtime& World::runtime(NodeId id) {
  auto it = runtimes_.find(id);
  assert(it != runtimes_.end());
  return it->second;
}

recovery::RecoveryManager& World::rm(NodeId id) { return *runtime(id).rm; }
txn::TransactionManager& World::tm(NodeId id) { return *runtime(id).tm; }
comm::CommManager& World::cm(NodeId id) { return *runtime(id).cm; }
name::NameServer& World::names(NodeId id) { return *runtime(id).ns; }
log::GroupCommit& World::group_commit(NodeId id) { return *runtime(id).gc; }
kernel::PageCleaner& World::page_cleaner(NodeId id) { return *runtime(id).cleaner; }

void World::BuildRuntime(NodeId id) {
  Runtime rt;
  rt.cleaner = std::make_unique<kernel::PageCleaner>(
      *substrate_, id,
      kernel::PageCleanerOptions{options_.page_clean_interval_us, options_.page_clean_batch});
  rt.rm = std::make_unique<recovery::RecoveryManager>(node(id));
  rt.rm->SetPageCleaner(rt.cleaner.get());
  rt.cm = std::make_unique<comm::CommManager>(id, *network_);
  rt.cm->ConfigurePipeline(options_.max_outstanding_calls, options_.op_coalesce_batch);
  rt.tm = std::make_unique<txn::TransactionManager>(node(id), *rt.rm, *rt.cm);
  rt.ns = std::make_unique<name::NameServer>(*rt.cm);
  rt.gc = std::make_unique<log::GroupCommit>(id, rt.rm->log(),
                                            options_.group_commit_window_us,
                                            options_.group_commit_max_batch);
  rt.tm->SetGroupCommit(rt.gc.get());
  rt.tm->SetCheckpointInterval(options_.checkpoint_interval);
  rt.tm->SetVoteTimeout(options_.vote_timeout_us);
  rt.tm->SetCommitMode(options_.commit_mode, options_.paxos_f);
  // Before any server is installed: servers wire their lock managers to the
  // op queue at construction iff the mode is already on.
  rt.tm->SetQueueMode(options_.queue_execution);
  if (options_.log_space_budget > 0) {
    txn::TransactionManager* tm = rt.tm.get();
    rt.rm->SetLogSpaceBudget(options_.log_space_budget,
                             [tm] { return tm->ActiveTransactions(); },
                             options_.log_reclaim_watermark);
  }
  runtimes_[id] = std::move(rt);
}

void World::WirePeers() {
  tm_peers_.clear();
  ns_peers_.clear();
  for (auto& [id, rt] : runtimes_) {
    tm_peers_[id] = rt.dead ? nullptr : rt.tm.get();
    ns_peers_[id] = rt.dead ? nullptr : rt.ns.get();
  }
  for (auto& [id, rt] : runtimes_) {
    if (!rt.dead) {
      rt.tm->SetPeers(&tm_peers_);
      rt.ns->SetPeers(&ns_peers_);
    }
  }
}

void World::RegisterBindings(NodeId node_id, const Blueprint& bp, name::NameServer& ns) {
  ns.Register(bp.name, name::Binding{node_id, bp.name, ObjectId{bp.segment, 0, 1}});
  if (!bp.service.empty()) {
    // The logical service binding: the shard's position and the service's
    // shard count ride in the object id, so a resolver can reconstruct the
    // whole shard map from the gathered bindings alone.
    ns.Register(bp.service,
                name::Binding{node_id, bp.name,
                              ObjectId{bp.segment, bp.shard, bp.shard_count}});
  }
}

server::DataServer* World::InstallServer(NodeId node_id, Blueprint bp) {
  bp.segment = node(node_id).AllocateSegment();

  server::ServerContext ctx;
  ctx.node = &node(node_id);
  Runtime& rt = runtime(node_id);
  ctx.rm = rt.rm.get();
  ctx.tm = rt.tm.get();
  ctx.cm = rt.cm.get();
  ctx.segment = bp.segment;
  ctx.name = bp.name;

  auto server = bp.factory(ctx);
  server::DataServer* raw = server.get();
  rt.servers[bp.name] = std::move(server);
  RegisterBindings(node_id, bp, *rt.ns);
  blueprints_[node_id].push_back(std::move(bp));
  return raw;
}

server::DataServer* World::AddServer(NodeId node_id, const std::string& name,
                                     ServerFactory factory) {
  Blueprint bp;
  bp.name = name;
  bp.factory = std::move(factory);
  return InstallServer(node_id, std::move(bp));
}

server::DataServer* World::AddServiceShard(NodeId node_id, const std::string& service,
                                           std::uint32_t shard, std::uint32_t shard_count,
                                           const std::string& instance,
                                           ServerFactory factory) {
  assert(shard < shard_count && "shard index out of range");
  Blueprint bp;
  bp.name = instance;
  bp.factory = std::move(factory);
  bp.service = service;
  bp.shard = shard;
  bp.shard_count = shard_count;
  return InstallServer(node_id, std::move(bp));
}

server::DataServer* World::FindServer(NodeId node_id, const std::string& name) {
  Runtime& rt = runtime(node_id);
  auto it = rt.servers.find(name);
  return it == rt.servers.end() ? nullptr : it->second.get();
}

int World::RunApp(NodeId node_id, std::function<void(Application&)> body) {
  SpawnApp(node_id, "app", std::move(body));
  return scheduler_.Run();
}

void World::SpawnApp(NodeId node_id, std::string name,
                     std::function<void(Application&)> body, SimTime start_time) {
  scheduler_.Spawn(std::move(name), node_id, start_time, [this, node_id, body = std::move(body)] {
    Application app(node_id, tm(node_id), cm(node_id));
    body(app);
  });
}

void World::CrashNode(NodeId node_id) {
  network_->SetAlive(node_id, false);
  runtime(node_id).dead = true;
  WirePeers();
  node(node_id).set_alive(false);
  // Surviving nodes presume-abort the dead node's orphans: active
  // transactions it coordinated here can never prepare (its volatile state
  // is gone), so their locks and dirty values must not linger. Runs as a
  // task per survivor, charging the undo work to that survivor; the session
  // layer drops the dead node's still-in-flight requests, so a late arrival
  // cannot resurrect an orphan after this sweep. Spawned before KillWhere:
  // if the caller runs on the dying node, KillWhere ends it by throwing.
  for (auto& [id, rt] : runtimes_) {
    if (id == node_id || rt.dead) {
      continue;
    }
    txn::TransactionManager* tm = rt.tm.get();
    scheduler_.Spawn("orphan-abort", id, scheduler_.Now(),
                     [tm, node_id] { tm->AbortRemoteOrphansOf(node_id); });
    if (options_.commit_mode == txn::CommitMode::kPaxosCommit) {
      // The non-blocking guarantee: survivors drive the dead coordinator's
      // prepared transactions to a decision through the acceptors, without
      // waiting for the node to recover. Gated on the mode so default-mode
      // schedules stay byte-identical. Staggered by node id so the usual
      // case is one uncontended takeover whose verdict the later sweeps
      // find already learned, rather than competing ballots.
      scheduler_.Spawn("paxos-takeover", id,
                       scheduler_.Now() + 10'000 * static_cast<SimTime>(id),
                       [tm, node_id] { tm->ResolvePaxosOrphansOf(node_id); });
    }
  }
  // Every process on the node dies with it. (If the caller runs on this
  // node, KillWhere throws TaskKilled after marking the others.)
  scheduler_.KillWhere([node_id](const sim::Task& t) { return t.node == node_id; });
}

recovery::RecoveryStats World::RecoverNode(NodeId node_id, bool resolve_in_doubt) {
  assert(scheduler_.in_task() && "recovery happens in virtual time");
  // Discard the dead volatile stack and rebuild the system components.
  runtimes_.erase(node_id);
  BuildRuntime(node_id);
  node(node_id).set_alive(true);
  network_->SetAlive(node_id, true);
  WirePeers();

  // Re-instantiate data servers from their blueprints (same disk segments).
  Runtime& rt = runtime(node_id);
  std::map<std::string, txn::CommitParticipant*> participants;
  for (const Blueprint& bp : blueprints_[node_id]) {
    server::ServerContext ctx;
    ctx.node = &node(node_id);
    ctx.rm = rt.rm.get();
    ctx.tm = rt.tm.get();
    ctx.cm = rt.cm.get();
    ctx.segment = bp.segment;
    ctx.name = bp.name;
    auto server = bp.factory(ctx);
    participants[bp.name] = server.get();
    RegisterBindings(node_id, bp, *rt.ns);
    rt.servers[bp.name] = std::move(server);
  }

  // Log-driven crash recovery, then transaction-level repair.
  recovery::RecoveryStats stats = rt.rm->Recover(*rt.tm);
  rt.tm->PostRecovery(stats, participants);
  // The node restarts in a fresh transaction-id incarnation: ids the dead
  // incarnation minted but never logged locally (they live on as orphan
  // state at remote participants) must never be re-minted.
  rt.tm->BeginNewIncarnation();
  for (auto& [name, server] : rt.servers) {
    server->Recover();
  }
  if (resolve_in_doubt) {
    // Contact coordinators for every prepared transaction; unreachable ones
    // stay in doubt (their data stays locked) until a later attempt.
    for (const TransactionId& tid : rt.tm->InDoubt()) {
      rt.tm->ResolveInDoubt(tid);
    }
  }
  return stats;
}

recovery::Archive World::DumpArchive(NodeId node_id) {
  Runtime& rt = runtime(node_id);
  recovery::Archive archive = rt.rm->DumpArchive();
  rt.rm->SetArchiveLowWaterMark(archive.dump_lsn);
  return archive;
}

void World::MediaFailure(NodeId node_id) {
  for (const Blueprint& bp : blueprints_[node_id]) {
    node(node_id).disk().WipeSegment(bp.segment);
  }
  CrashNode(node_id);
}

recovery::RecoveryStats World::RestoreFromArchive(NodeId node_id,
                                                  const recovery::Archive& archive) {
  for (const auto& [segment, pages] : archive.segments) {
    node(node_id).disk().EnsureSegment(segment, static_cast<PageNumber>(pages.size()));
    for (PageNumber p = 0; p < pages.size(); ++p) {
      node(node_id).disk().RestorePage({segment, p}, pages[p]);
    }
  }
  recovery::RecoveryStats stats = RecoverNode(node_id);
  runtime(node_id).rm->SetArchiveLowWaterMark(archive.dump_lsn);
  return stats;
}

void World::CrashServer(NodeId node_id, const std::string& name) {
  Runtime& rt = runtime(node_id);
  auto it = rt.servers.find(name);
  assert(it != rt.servers.end() && "CrashServer of unknown server");
  server::DataServer* victim = it->second.get();

  // Transactions that used the server cannot complete correctly: collect
  // them, detach the dying participant, then abort them (their updates at
  // OTHER servers roll back now; the crashed server's own records roll back
  // during its recovery). Prepared (in-doubt) transactions stay untouched.
  std::vector<TransactionId> involved = rt.tm->TransactionsInvolving(victim);
  rt.tm->DetachParticipant(victim);
  rt.rm->UnregisterServer(name);
  rt.servers.erase(it);
  for (const TransactionId& tid : involved) {
    if (rt.tm->StateOf(tid) == txn::TxnState::kActive) {
      rt.tm->Abort(tid);
    }
  }
}

recovery::RecoveryStats World::RecoverServer(NodeId node_id, const std::string& name) {
  assert(scheduler_.in_task() && "recovery happens in virtual time");
  Runtime& rt = runtime(node_id);
  const Blueprint* bp = nullptr;
  for (const Blueprint& candidate : blueprints_[node_id]) {
    if (candidate.name == name) {
      bp = &candidate;
    }
  }
  assert(bp != nullptr && "RecoverServer of unknown server");

  server::ServerContext ctx;
  ctx.node = &node(node_id);
  ctx.rm = rt.rm.get();
  ctx.tm = rt.tm.get();
  ctx.cm = rt.cm.get();
  ctx.segment = bp->segment;
  ctx.name = bp->name;
  auto server = bp->factory(ctx);
  server::DataServer* raw = server.get();
  rt.servers[name] = std::move(server);
  RegisterBindings(node_id, *bp, *rt.ns);

  recovery::RecoveryStats stats = rt.rm->Recover(*rt.tm, &name);
  std::map<std::string, txn::CommitParticipant*> participants{{name, raw}};
  rt.tm->PostRecovery(stats, participants);
  raw->Recover();
  return stats;
}

void World::Checkpoint(NodeId node_id) {
  Runtime& rt = runtime(node_id);
  rt.rm->TakeCheckpoint(rt.tm->ActiveTransactions());
}

void World::ReclaimLog(NodeId node_id) {
  Runtime& rt = runtime(node_id);
  rt.rm->Reclaim(rt.tm->ActiveTransactions());
}

lock::DeadlockDetector World::GlobalDeadlockDetector() {
  lock::DeadlockDetector detector;
  for (auto& [id, rt] : runtimes_) {
    if (rt.dead) {
      continue;
    }
    for (auto& [name, server] : rt.servers) {
      detector.AddLockManager(&server->locks());
    }
  }
  return detector;
}

std::string World::DescribeNode(NodeId node_id) {
  Runtime& rt = runtime(node_id);
  std::ostringstream os;
  os << "TABS node " << node_id << (rt.dead ? " (crashed)" : "") << "\n";
  os << "  system components: Name Server, Communication Manager, Recovery Manager, "
        "Transaction Manager\n";
  os << "  data servers:";
  if (rt.servers.empty()) {
    os << " (none)";
  }
  for (auto& [name, server] : rt.servers) {
    os << " " << name;
  }
  os << "\n  stable log bytes in use: " << rt.rm->StableLogBytesInUse() << "\n";
  return os.str();
}

}  // namespace tabs
