// World: a cluster of TABS nodes — the top of the public API.
//
// A World owns the simulation substrate (scheduler, cost model, metrics),
// the network, and one kernel::Node per simulated workstation. On each node
// it assembles the four TABS system processes of Figure 3-1 — Recovery
// Manager, Transaction Manager, Communication Manager, and Name Server —
// plus any user data servers added via AddServer.
//
// Node crashes are first-class: CrashNode kills every task on the node and
// discards all volatile state; RecoverNode rebuilds the system components
// and data servers, replays the stable log through the Recovery Manager's
// crash-recovery algorithms, re-locks in-doubt transactions, and calls each
// server's Recover() hook. Disks and the stable log survive, exactly like
// the hardware they model.

#ifndef TABS_TABS_WORLD_H_
#define TABS_TABS_WORLD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/network.h"
#include "src/lock/deadlock_detector.h"
#include "src/sim/fault_injector.h"
#include "src/name/name_server.h"
#include "src/placement/shard_map.h"
#include "src/server/data_server.h"
#include "src/tabs/application.h"

namespace tabs {

namespace log {
class GroupCommit;
}
namespace kernel {
class PageCleaner;
}

struct WorldOptions {
  sim::CostModel costs = sim::CostModel::Baseline();
  sim::ArchitectureModel arch = sim::ArchitectureModel::Prototype();
  // Per-node retained-log budget: the Recovery Manager reclaims log space
  // automatically when exceeded (Section 3.2.2). 0 disables.
  std::uint64_t log_space_budget = 0;
  // Fraction of the budget at which automatic reclamation fires. Reclamation
  // is incremental (fuzzy checkpoint): it flushes only the pages pinning the
  // log tail and aims at half the budget, so a lower watermark trades more
  // frequent, smaller reclamations for flatter commit-latency tails.
  double log_reclaim_watermark = 1.0;
  // TM-driven periodic checkpoints, virtual time between them. 0 disables.
  SimTime checkpoint_interval = 0;
  // Group commit: committing (and preparing) transactions batch their log
  // forces through a per-node daemon that flushes once per window instead of
  // once per transaction. 0 (the default) keeps the paper-faithful
  // per-transaction force — every table_5_* number is unchanged.
  SimTime group_commit_window_us = 0;
  // A batch flushes early when it reaches this many members.
  int group_commit_max_batch = 32;
  // Background page cleaning: a per-node daemon writes dirty unpinned frames
  // back between transactions — oldest recovery LSN first, elevator-ordered
  // by disk address — so page faults find clean victims and reclamation
  // finds little to flush. Virtual time between cleaning passes; 0 (the
  // default) disables the daemon and keeps every demand write-back on the
  // faulting transaction's path, exactly as the paper measures it.
  SimTime page_clean_interval_us = 0;
  // Pages written per cleaning pass (one elevator sweep).
  int page_clean_batch = 16;
  // Asynchronous communication fast path (CommManager). A transaction may
  // hold this many pipelined session calls in flight at once; 1 (the
  // default) is the paper's strictly sequential remote-call behaviour —
  // every table5_* number is unchanged.
  int max_outstanding_calls = 1;
  // Up to this many independent same-server operations coalesce into one
  // large message instead of paying a session call each; 1 (the default)
  // keeps the paper's one-operation-per-message model.
  int op_coalesce_batch = 1;
  // Commit-protocol vote/ack wait budget (TransactionManager). Fault sweeps
  // tighten it so a lost vote aborts in microseconds instead of 10 virtual
  // seconds; the default is the protocol's historical timeout.
  SimTime vote_timeout_us = 10'000'000;
  // Commit protocol. kPaxosCommit replicates every commit decision across
  // 2F+1 acceptors so a coordinator crash never blocks an in-doubt
  // transaction; the kTwoPhase default is paper-faithful and leaves every
  // schedule byte-identical to the seed. The default follows the
  // TABS_COMMIT_MODE environment variable ("paxos" selects kPaxosCommit) so
  // CI can run the whole suite under either protocol; absent the variable it
  // is exactly kTwoPhase as before.
  txn::CommitMode commit_mode = txn::DefaultCommitMode();
  int paxos_f = 1;  // acceptor failures tolerated under kPaxosCommit
  // Queue-oriented execution for hot objects (src/txn/op_queue.h): update
  // locks release as soon as the commit/prepare record is *appended* —
  // before it is forced — so hot-object successors pipeline into the
  // group-commit window; commit dependencies make an abort cascade to the
  // queued successors only, never to a durable transaction. Off (the
  // default) keeps every schedule byte-identical to the seed.
  bool queue_execution = false;
};

class World {
 public:
  using ServerFactory =
      std::function<std::unique_ptr<server::DataServer>(const server::ServerContext&)>;

  explicit World(int node_count, WorldOptions options = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- access ------------------------------------------------------------------
  sim::Substrate& substrate() { return *substrate_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Metrics& metrics() { return substrate_->metrics(); }
  comm::Network& network() { return *network_; }
  // The nemesis: every World owns one, installed in the substrate with its
  // crash handler wired to CrashNode. Inert until armed.
  sim::FaultInjector& faults() { return *fault_injector_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  kernel::Node& node(NodeId id);
  recovery::RecoveryManager& rm(NodeId id);
  txn::TransactionManager& tm(NodeId id);
  comm::CommManager& cm(NodeId id);
  name::NameServer& names(NodeId id);
  log::GroupCommit& group_commit(NodeId id);
  kernel::PageCleaner& page_cleaner(NodeId id);
  bool NodeAlive(NodeId id) const { return network_->IsAlive(id); }

  // --- data servers ---------------------------------------------------------------
  // Installs a server blueprint on `node` and instantiates it. The factory
  // is re-invoked whenever the node recovers from a crash; the segment id is
  // stable across incarnations (it names the on-disk file). Registers the
  // server's name with the node's Name Server.
  server::DataServer* AddServer(NodeId node, const std::string& name, ServerFactory factory);

  // Convenience: AddServer for a concrete type constructible as
  // T(const ServerContext&, Args...).
  template <typename T, typename... Args>
  T* AddServerOf(NodeId node, const std::string& name, Args... args) {
    return static_cast<T*>(AddServer(
        node, name, [args...](const server::ServerContext& ctx) {
          return std::make_unique<T>(ctx, args...);
        }));
  }

  server::DataServer* FindServer(NodeId node, const std::string& name);
  template <typename T>
  T* Server(NodeId node, const std::string& name) {
    return static_cast<T*>(FindServer(node, name));
  }

  // --- sharded services ------------------------------------------------------------
  // Installs one shard (or replica) of a logical service: like AddServer,
  // but additionally registers a *service* binding
  // <node, instance, {segment, shard, shard_count}> under the logical name.
  // Both bindings re-register when the node recovers, so resolution heals
  // with the node. The shard index/count ride in the binding's object id —
  // the resolver reads the service's shape straight out of the Name Server.
  server::DataServer* AddServiceShard(NodeId node, const std::string& service,
                                      std::uint32_t shard, std::uint32_t shard_count,
                                      const std::string& instance, ServerFactory factory);

  // Installs a whole sharded service of concrete type T, constructible as
  // T(const ServerContext&, placement::ShardSlice, Args...): shard i lands
  // on nodes[i % nodes.size()] under the instance name "service#i". Open it
  // from application code with OpenArray / OpenAccounts / OpenBTree
  // (src/tabs/service_handle.h).
  template <typename T, typename... Args>
  std::vector<T*> AddShardedServiceOf(const std::string& service,
                                      const std::vector<NodeId>& nodes,
                                      std::uint32_t shard_count, Args... args) {
    std::vector<T*> out;
    out.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      placement::ShardSlice slice{i, shard_count};
      out.push_back(static_cast<T*>(AddServiceShard(
          nodes[i % nodes.size()], service, i, shard_count,
          placement::ShardInstanceName(service, i),
          [slice, args...](const server::ServerContext& ctx) {
            return std::make_unique<T>(ctx, slice, args...);
          })));
    }
    return out;
  }

  // --- running work -------------------------------------------------------------------
  // Spawns `body` as an application task on `node` and drains the scheduler.
  // Returns the number of tasks still blocked (0 on clean completion). Must
  // be called from outside any task.
  int RunApp(NodeId node, std::function<void(Application&)> body);
  // Spawns without draining (for concurrent scenarios), then call Drain().
  void SpawnApp(NodeId node, std::string name, std::function<void(Application&)> body,
                SimTime start_time = 0);
  int Drain() { return scheduler_.Run(); }

  // --- failures --------------------------------------------------------------------------
  // Crashes `node`: every task running on it dies, volatile state is marked
  // dead. Call from inside a task (the crash is an event in virtual time).
  void CrashNode(NodeId node);
  // Rebuilds the node: fresh system components and data servers, log-driven
  // recovery, in-doubt relocking, server Recover() hooks, name
  // re-registration. With `resolve_in_doubt` (the default), prepared
  // transactions immediately query their coordinator for the verdict; pass
  // false to observe the in-doubt window (its locks stay held). Call from
  // inside a task. Returns pre-resolution recovery statistics.
  recovery::RecoveryStats RecoverNode(NodeId node, bool resolve_in_doubt = true);

  // Media recovery (Section 7 future work). DumpArchive snapshots a node's
  // non-volatile storage (and pins the log's low-water mark so replay stays
  // possible); MediaFailure destroys the node's disk contents AND crashes it
  // (the stable log device survives, as Section 7 prescribes);
  // RestoreFromArchive writes the archive back and runs crash recovery,
  // which replays the retained log over the archived state. Call from
  // inside a task.
  recovery::Archive DumpArchive(NodeId node);
  void MediaFailure(NodeId node);
  recovery::RecoveryStats RestoreFromArchive(NodeId node, const recovery::Archive& archive);

  // Single-server failure (Section 7 future work: "permit the recovery of a
  // single server without the recovery of the entire node"). CrashServer
  // kills one data server's process: its volatile state vanishes, active
  // transactions that used it abort, and the rest of the node keeps running.
  // RecoverServer re-instantiates it and replays only its records from the
  // common log. Call both from inside a task.
  void CrashServer(NodeId node, const std::string& name);
  recovery::RecoveryStats RecoverServer(NodeId node, const std::string& name);

  // Checkpoint / log reclamation on a node (normally timer-driven in TABS;
  // explicit here so tests and benches control it).
  void Checkpoint(NodeId node);
  void ReclaimLog(NodeId node);

  // A deadlock detector spanning every live server's lock manager — the
  // global waits-for graph of the R*-style detectors the paper cites
  // (Obermarck; Section 2.1.2). TABS itself relies on timeouts; this is the
  // extension. Rebuild after topology changes (crash/recover); call
  // BreakOneCycle from a task to sacrifice the youngest cycle member.
  lock::DeadlockDetector GlobalDeadlockDetector();

  // Figure 3-1 as text: the per-node process inventory.
  std::string DescribeNode(NodeId node);

 private:
  struct Runtime {
    // Declared before rm: rm holds a raw pointer to it (registration calls
    // during teardown must find it alive).
    std::unique_ptr<kernel::PageCleaner> cleaner;
    std::unique_ptr<recovery::RecoveryManager> rm;
    std::unique_ptr<comm::CommManager> cm;
    std::unique_ptr<txn::TransactionManager> tm;
    std::unique_ptr<name::NameServer> ns;
    std::map<std::string, std::unique_ptr<server::DataServer>> servers;
    // Declared after rm: it references rm's LogManager, so it must be
    // destroyed first. Dies with the runtime on CrashNode (pending waiters
    // are killed tasks; a scheduled flusher for a dead incarnation is killed
    // too and never runs).
    std::unique_ptr<log::GroupCommit> gc;
    bool dead = false;
  };
  struct Blueprint {
    std::string name;
    SegmentId segment;
    ServerFactory factory;
    // Logical-service membership (empty service: a plain standalone server).
    // Kept in the blueprint so the service binding re-registers on recovery.
    std::string service;
    std::uint32_t shard = 0;
    std::uint32_t shard_count = 0;
  };

  Runtime& runtime(NodeId id);
  void BuildRuntime(NodeId id);
  void WirePeers();
  server::DataServer* InstallServer(NodeId node_id, Blueprint bp);
  // (Re-)registers a blueprint's name bindings with `ns`: the physical
  // instance name always, the logical service name when it is a shard.
  void RegisterBindings(NodeId node_id, const Blueprint& bp, name::NameServer& ns);

  WorldOptions options_;
  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Substrate> substrate_;
  std::unique_ptr<sim::FaultInjector> fault_injector_;
  std::unique_ptr<comm::Network> network_;
  std::vector<std::unique_ptr<kernel::Node>> nodes_;
  std::map<NodeId, Runtime> runtimes_;
  std::map<NodeId, std::vector<Blueprint>> blueprints_;
  std::map<NodeId, txn::TransactionManager*> tm_peers_;
  std::map<NodeId, name::NameServer*> ns_peers_;
};

}  // namespace tabs

#endif  // TABS_TABS_WORLD_H_
