// Service handles: open a logical service by name, route by shard.
//
// The API redesign over hand-plumbed bindings: an application opens a
// logical service ("accounts") instead of naming nodes and server instances,
// and every operation routes itself — resolve the service's shard bindings
// through the Name Server (cached by a name::Resolver), pick the shard that
// owns the key or index, find the live server instance behind the binding,
// and invoke the ordinary data-server operation. Remote shards therefore
// join the transaction's spanning tree exactly like any other remote server,
// and commit runs the unchanged multi-node two-phase protocol over them.
//
// Failure handling: a kNodeDown from a routed call drops the cached
// resolution and retries once against a fresh lookup, so a stale cache heals
// itself after recovery; if a shard's node is genuinely down the fresh
// broadcast comes back incomplete and the operation fails with kNodeDown.
// Handles never cache server pointers — recovery re-instantiates servers,
// so the live instance is looked up per operation; only bindings are cached.
//
// Cross-shard batches (GetMany/SetMany) group operations per shard and put
// every shard's coalesced chunks on the wire before awaiting any
// (CommManager::AsyncRemoteCallBatch), so the fan-out composes with the
// pipelining window and coalescing limits of WorldOptions.

#ifndef TABS_TABS_SERVICE_HANDLE_H_
#define TABS_TABS_SERVICE_HANDLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/name/resolver.h"
#include "src/placement/shard_map.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/servers/btree_server.h"
#include "src/servers/replicated_directory.h"
#include "src/tabs/world.h"

namespace tabs {

class ServiceHandle {
 public:
  // `timeout` bounds each awaited batch chunk (and is handed to AsyncOps
  // joins); resolution broadcasts are bounded by the Resolver's own wait.
  ServiceHandle(World& world, std::string service,
                SimTime timeout = comm::Network::kDefaultSessionTimeout)
      : world_(&world), service_(std::move(service)), timeout_(timeout) {}

  const std::string& service() const { return service_; }
  bool resolved() const { return map_.has_value(); }
  std::uint32_t shard_count() const { return map_ ? map_->shard_count() : 0; }
  name::Resolver& resolver() { return resolver_; }

  // Drops every cached routing fact about `node` (bindings and the built
  // map); the next operation re-resolves. Called automatically on kNodeDown.
  void InvalidateNode(NodeId node) {
    resolver_.InvalidateNode(node);
    map_.reset();
  }

 protected:
  // Resolves the shard map through the Tx origin's Name Server on first use.
  // kNotFound: no such service anywhere; kNodeDown: partial shard set (some
  // shard's node did not answer). Must run inside a task.
  Status EnsureResolved(const server::Tx& tx);

  // The live server instance behind `shard` — looked up per call, never
  // cached (recovery re-instantiates servers under the same binding).
  template <typename T>
  Result<T*> ShardServer(std::uint32_t shard) {
    const name::Binding& b = map_->binding(shard);
    if (!world_->NodeAlive(b.node)) {
      return Status::kNodeDown;
    }
    T* s = world_->Server<T>(b.node, b.server);
    if (s == nullptr) {
      return Status::kNodeDown;  // crashed server, not yet re-instantiated
    }
    return s;
  }

  // Runs `attempt` against the resolved map. On kNodeDown the cached
  // resolution is refreshed with one new broadcast and the attempt retried —
  // the heal path for a cache gone stale across crash/recovery. If the fresh
  // lookup comes back incomplete (the shard's node is genuinely down), the
  // old map is kept: operations on live shards keep working, operations on
  // the dead shard keep failing fast on the liveness check.
  template <typename R, typename Fn>
  Result<R> Routed(const server::Tx& tx, Fn&& attempt) {
    Status s = EnsureResolved(tx);
    if (s != Status::kOk) {
      return s;
    }
    Result<R> r = attempt(*map_);
    if (r.ok() || r.status() != Status::kNodeDown) {
      return r;
    }
    resolver_.Invalidate(service_);  // stale? force a fresh broadcast
    name::Resolver::ServiceResolution res =
        resolver_.ResolveService(world_->names(tx.origin), service_);
    if (res.complete()) {
      Result<placement::ShardMap> fresh =
          placement::ShardMap::FromBindings(service_, res.bindings);
      if (fresh.ok()) {
        map_ = std::move(fresh.value());
      }
    }
    return attempt(*map_);
  }

  World* world_;
  std::string service_;
  SimTime timeout_;
  name::Resolver resolver_;
  std::optional<placement::ShardMap> map_;
};

// A logical integer array spanning the shards of `service` (interleaved
// index partitioning over servers::ArrayServer instances).
class ArrayService : public ServiceHandle {
 public:
  using ServiceHandle::ServiceHandle;

  Result<std::int32_t> Get(const server::Tx& tx, std::uint64_t index);
  Status Set(const server::Tx& tx, std::uint64_t index, std::int32_t value);

  // Cross-shard batches: per-shard coalesced chunks, all on the wire before
  // any is awaited. Results are in argument order.
  Result<std::vector<std::int32_t>> GetMany(const server::Tx& tx,
                                            const std::vector<std::uint64_t>& indices);
  Status SetMany(const server::Tx& tx,
                 const std::vector<std::pair<std::uint64_t, std::int32_t>>& writes);
};

// A logical bank spanning the shards of `service` (interleaved account
// partitioning over servers::AccountServer instances — typed locking,
// operation logging, and escrow admission all per shard).
class AccountService : public ServiceHandle {
 public:
  using ServiceHandle::ServiceHandle;

  Status Deposit(const server::Tx& tx, std::uint64_t account, std::int64_t amount);
  Status Withdraw(const server::Tx& tx, std::uint64_t account, std::int64_t amount);
  Result<std::int64_t> Balance(const server::Tx& tx, std::uint64_t account);
};

// A logical key-value map spanning the shards of `service` (keys hash to a
// shard and travel unchanged; each shard is an independent B-tree).
class BTreeService : public ServiceHandle {
 public:
  using ServiceHandle::ServiceHandle;

  Status Insert(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Update(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Upsert(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Remove(const server::Tx& tx, const std::string& key);
  Result<std::string> Lookup(const server::Tx& tx, const std::string& key);
};

// Open a logical service by name. Resolution is lazy (first operation), so
// these are cheap to call anywhere; operations must run inside a task.
ArrayService OpenArray(World& world, std::string service);
AccountService OpenAccounts(World& world, std::string service);
BTreeService OpenBTree(World& world, std::string service);

// Open a replicated directory by logical name: gathers the representative
// bindings through a Resolver from `from`'s Name Server and builds the
// client-linked voting module. A partial set is fine — quorum logic
// tolerates missing representatives — but an empty one is kNotFound.
// Register representatives with World::AddServiceShard (one "shard" per
// representative). Must run inside a task.
Result<servers::ReplicatedDirectory> OpenReplicatedDirectory(World& world, NodeId from,
                                                             const std::string& service,
                                                             int read_quorum,
                                                             int write_quorum);

}  // namespace tabs

#endif  // TABS_TABS_SERVICE_HANDLE_H_
