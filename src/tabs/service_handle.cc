#include "src/tabs/service_handle.h"

namespace tabs {

Status ServiceHandle::EnsureResolved(const server::Tx& tx) {
  if (map_) {
    return Status::kOk;
  }
  name::Resolver::ServiceResolution res =
      resolver_.ResolveService(world_->names(tx.origin), service_);
  if (res.bindings.empty()) {
    return Status::kNotFound;
  }
  if (!res.complete()) {
    return Status::kNodeDown;  // some shard's node could not answer
  }
  Result<placement::ShardMap> map = placement::ShardMap::FromBindings(service_, res.bindings);
  if (!map.ok()) {
    return map.status();
  }
  map_ = std::move(map.value());
  return Status::kOk;
}

namespace {

// Converts a Status-returning attempt into the Result<bool> shape Routed
// wants, and back.
Status AsStatus(const Result<bool>& r) { return r.ok() ? Status::kOk : r.status(); }

}  // namespace

// --- ArrayService ---------------------------------------------------------------

Result<std::int32_t> ArrayService::Get(const server::Tx& tx, std::uint64_t index) {
  return Routed<std::int32_t>(tx, [&](const placement::ShardMap& map) -> Result<std::int32_t> {
    Result<servers::ArrayServer*> srv = ShardServer<servers::ArrayServer>(map.ShardOfIndex(index));
    if (!srv.ok()) {
      return srv.status();
    }
    return srv.value()->GetCell(tx, static_cast<std::uint32_t>(map.LocalIndex(index)));
  });
}

Status ArrayService::Set(const server::Tx& tx, std::uint64_t index, std::int32_t value) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::ArrayServer*> srv = ShardServer<servers::ArrayServer>(map.ShardOfIndex(index));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->SetCell(tx, static_cast<std::uint32_t>(map.LocalIndex(index)), value);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Result<std::vector<std::int32_t>> ArrayService::GetMany(
    const server::Tx& tx, const std::vector<std::uint64_t>& indices) {
  using Chunk = sim::FuturePtr<Result<std::vector<Result<std::int32_t>>>>;
  return Routed<std::vector<std::int32_t>>(
      tx, [&](const placement::ShardMap& map) -> Result<std::vector<std::int32_t>> {
        std::vector<std::vector<std::uint32_t>> locals(map.shard_count());
        std::vector<std::vector<size_t>> positions(map.shard_count());
        for (size_t i = 0; i < indices.size(); ++i) {
          std::uint32_t shard = map.ShardOfIndex(indices[i]);
          locals[shard].push_back(static_cast<std::uint32_t>(map.LocalIndex(indices[i])));
          positions[shard].push_back(i);
        }
        // Issue every shard's chunks before awaiting any.
        struct ShardBatch {
          std::vector<Chunk> chunks;
          const std::vector<size_t>* pos;
        };
        std::vector<ShardBatch> batches;
        Status failed = Status::kOk;
        for (std::uint32_t shard = 0; shard < map.shard_count(); ++shard) {
          if (locals[shard].empty()) {
            continue;
          }
          Result<servers::ArrayServer*> srv = ShardServer<servers::ArrayServer>(shard);
          if (!srv.ok()) {
            failed = srv.status();  // still drain what is already on the wire
            break;
          }
          batches.push_back({srv.value()->AsyncGetCells(tx, locals[shard]), &positions[shard]});
        }
        // Await in issue order, draining everything even after a failure so
        // the pipeline window empties (exactly like AsyncOps::Join).
        std::vector<std::int32_t> out(indices.size());
        for (ShardBatch& b : batches) {
          size_t k = 0;
          for (Chunk& f : b.chunks) {
            if (!f->Await(timeout_)) {
              if (failed == Status::kOk) failed = Status::kNodeDown;
              continue;
            }
            const Result<std::vector<Result<std::int32_t>>>& chunk = f->value();
            if (!chunk.ok()) {
              if (failed == Status::kOk) failed = chunk.status();
              continue;
            }
            for (const Result<std::int32_t>& r : chunk.value()) {
              if (r.ok()) {
                out[(*b.pos)[k]] = r.value();
              } else if (failed == Status::kOk) {
                failed = r.status();
              }
              ++k;
            }
          }
        }
        if (failed != Status::kOk) {
          return failed;
        }
        return out;
      });
}

Status ArrayService::SetMany(const server::Tx& tx,
                             const std::vector<std::pair<std::uint64_t, std::int32_t>>& writes) {
  using Chunk = sim::FuturePtr<Result<std::vector<Result<bool>>>>;
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    std::vector<std::vector<std::pair<std::uint32_t, std::int32_t>>> locals(map.shard_count());
    for (const auto& [index, value] : writes) {
      locals[map.ShardOfIndex(index)].push_back(
          {static_cast<std::uint32_t>(map.LocalIndex(index)), value});
    }
    std::vector<Chunk> chunks;
    Status failed = Status::kOk;
    for (std::uint32_t shard = 0; shard < map.shard_count(); ++shard) {
      if (locals[shard].empty()) {
        continue;
      }
      Result<servers::ArrayServer*> srv = ShardServer<servers::ArrayServer>(shard);
      if (!srv.ok()) {
        failed = srv.status();  // still drain what is already on the wire
        break;
      }
      for (Chunk& c : srv.value()->AsyncSetCells(tx, locals[shard])) {
        chunks.push_back(std::move(c));
      }
    }
    for (Chunk& f : chunks) {
      if (!f->Await(timeout_)) {
        if (failed == Status::kOk) failed = Status::kNodeDown;
        continue;
      }
      const Result<std::vector<Result<bool>>>& chunk = f->value();
      if (!chunk.ok()) {
        if (failed == Status::kOk) failed = chunk.status();
        continue;
      }
      for (const Result<bool>& r : chunk.value()) {
        if (!r.ok() && failed == Status::kOk) {
          failed = r.status();
        }
      }
    }
    if (failed != Status::kOk) {
      return failed;
    }
    return true;
  }));
}

// --- AccountService -------------------------------------------------------------

Status AccountService::Deposit(const server::Tx& tx, std::uint64_t account,
                               std::int64_t amount) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::AccountServer*> srv =
        ShardServer<servers::AccountServer>(map.ShardOfIndex(account));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Deposit(tx, static_cast<std::uint32_t>(map.LocalIndex(account)),
                                    amount);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Status AccountService::Withdraw(const server::Tx& tx, std::uint64_t account,
                                std::int64_t amount) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::AccountServer*> srv =
        ShardServer<servers::AccountServer>(map.ShardOfIndex(account));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Withdraw(tx, static_cast<std::uint32_t>(map.LocalIndex(account)),
                                     amount);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Result<std::int64_t> AccountService::Balance(const server::Tx& tx, std::uint64_t account) {
  return Routed<std::int64_t>(tx, [&](const placement::ShardMap& map) -> Result<std::int64_t> {
    Result<servers::AccountServer*> srv =
        ShardServer<servers::AccountServer>(map.ShardOfIndex(account));
    if (!srv.ok()) {
      return srv.status();
    }
    return srv.value()->ReadBalance(tx, static_cast<std::uint32_t>(map.LocalIndex(account)));
  });
}

// --- BTreeService ---------------------------------------------------------------

Status BTreeService::Insert(const server::Tx& tx, const std::string& key,
                            const std::string& value) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::BTreeServer*> srv = ShardServer<servers::BTreeServer>(map.ShardOfKey(key));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Insert(tx, key, value);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Status BTreeService::Update(const server::Tx& tx, const std::string& key,
                            const std::string& value) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::BTreeServer*> srv = ShardServer<servers::BTreeServer>(map.ShardOfKey(key));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Update(tx, key, value);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Status BTreeService::Upsert(const server::Tx& tx, const std::string& key,
                            const std::string& value) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::BTreeServer*> srv = ShardServer<servers::BTreeServer>(map.ShardOfKey(key));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Upsert(tx, key, value);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Status BTreeService::Remove(const server::Tx& tx, const std::string& key) {
  return AsStatus(Routed<bool>(tx, [&](const placement::ShardMap& map) -> Result<bool> {
    Result<servers::BTreeServer*> srv = ShardServer<servers::BTreeServer>(map.ShardOfKey(key));
    if (!srv.ok()) {
      return srv.status();
    }
    Status s = srv.value()->Remove(tx, key);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  }));
}

Result<std::string> BTreeService::Lookup(const server::Tx& tx, const std::string& key) {
  return Routed<std::string>(tx, [&](const placement::ShardMap& map) -> Result<std::string> {
    Result<servers::BTreeServer*> srv = ShardServer<servers::BTreeServer>(map.ShardOfKey(key));
    if (!srv.ok()) {
      return srv.status();
    }
    return srv.value()->Lookup(tx, key);
  });
}

// --- open functions -------------------------------------------------------------

ArrayService OpenArray(World& world, std::string service) {
  return ArrayService(world, std::move(service));
}

AccountService OpenAccounts(World& world, std::string service) {
  return AccountService(world, std::move(service));
}

BTreeService OpenBTree(World& world, std::string service) {
  return BTreeService(world, std::move(service));
}

Result<servers::ReplicatedDirectory> OpenReplicatedDirectory(World& world, NodeId from,
                                                             const std::string& service,
                                                             int read_quorum,
                                                             int write_quorum) {
  name::Resolver resolver;
  name::Resolver::ServiceResolution res = resolver.ResolveService(world.names(from), service);
  std::vector<servers::ReplicatedDirectory::Replica> replicas;
  for (const name::Binding& b : res.bindings) {
    if (!world.NodeAlive(b.node)) {
      continue;
    }
    auto* rep = world.Server<servers::DirectoryRep>(b.node, b.server);
    if (rep != nullptr) {
      replicas.push_back({rep, b.node});
    }
  }
  if (replicas.empty()) {
    return Status::kNotFound;
  }
  return servers::ReplicatedDirectory(std::move(replicas), read_quorum, write_quorum);
}

}  // namespace tabs
