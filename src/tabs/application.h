// Application: a TABS application process on one node.
//
// Applications "initiate transactions and call data servers to perform
// operations on objects" (Section 3). This handle wraps the transaction
// management library of Table 3-2 — BeginTransaction / EndTransaction /
// AbortTransaction / TransactionIsAborted — and mints the Tx contexts that
// data-server operations take.

#ifndef TABS_TABS_APPLICATION_H_
#define TABS_TABS_APPLICATION_H_

#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "src/comm/comm_manager.h"
#include "src/common/result.h"
#include "src/server/data_server.h"
#include "src/txn/transaction_manager.h"

namespace tabs {

class Application {
 public:
  Application(NodeId node, txn::TransactionManager& tm, comm::CommManager& cm)
      : node_(node), tm_(&tm), cm_(&cm) {}

  NodeId node() const { return node_; }
  txn::TransactionManager& tm() { return *tm_; }
  comm::CommManager& cm() { return *cm_; }

  // BeginTransaction(TransactionID) — the null TID begins a top-level
  // transaction; a live TID begins a subtransaction of it.
  TransactionId Begin(const TransactionId& parent = kNullTransaction) {
    return tm_->Begin(parent);
  }
  // EndTransaction — commit. Returns kOk, or why the transaction did not commit.
  Status End(const TransactionId& tid) { return tm_->End(tid); }
  // AbortTransaction.
  void Abort(const TransactionId& tid) { tm_->Abort(tid); }
  // The TransactionIsAborted exception, as a query.
  bool TransactionIsAborted(const TransactionId& tid) { return tm_->IsAborted(tid); }

  // The context handed to data-server operations for `tid`.
  server::Tx MakeTx(const TransactionId& tid) {
    return server::Tx{tid, tm_->TopOf(tid), node_, cm_};
  }

  // Begin + body + End/Abort in one call. The body returns kOk to commit.
  Status Transaction(const std::function<Status(const server::Tx&)>& body) {
    TransactionId tid = Begin();
    Status s = body(MakeTx(tid));
    if (s == Status::kOk) {
      return End(tid);
    }
    Abort(tid);
    return s;
  }

  struct RetryPolicy;
  struct RunResult;
  // Runs `body` as a transaction, retrying (fresh transaction, capped
  // exponential virtual-time backoff) when it ends for a transient reason:
  // a participant voting no, a lock-wait timeout (TABS's deadlock breaker,
  // Section 2.1.2), or an abort — e.g. a deadlock-detector sacrifice.
  // Non-retryable statuses (kNotFound, kNodeDown, ...) return immediately.
  RunResult RunTransactional(const std::function<Status(const server::Tx&)>& body,
                             const RetryPolicy& policy);
  RunResult RunTransactional(const std::function<Status(const server::Tx&)>& body);

  class AsyncOps;
  // A joiner for the asynchronous fast path (see class below). `timeout`
  // bounds each awaited future — callers with their own session budget pass
  // it here instead of hardcoding Network::kDefaultSessionTimeout.
  AsyncOps Parallel(SimTime timeout = comm::Network::kDefaultSessionTimeout);

 private:
  NodeId node_;
  txn::TransactionManager* tm_;
  comm::CommManager* cm_;
};

// The join half of the parallel-ops API: collects futures minted by the
// servers' Async* operations and awaits them all. Add() registers a pending
// operation; Join() waits for every one (in issue order, so the caller's
// clock advances to the latest completion) and returns kOk or the first
// failure. A future left empty by a destination crash surfaces as kNodeDown
// after a session timeout, exactly like a blocked synchronous call.
//
// Join() must be called before the transaction Ends: TABS pipelines only
// within the pre-commit phase, so every operation's verdict is known before
// the commit protocol starts (the paper's failure semantics are unchanged).
class Application::AsyncOps {
 public:
  explicit AsyncOps(SimTime timeout = comm::Network::kDefaultSessionTimeout)
      : timeout_(timeout) {}

  // A single pipelined operation.
  template <typename R>
  void Add(sim::FuturePtr<Result<R>> f) {
    waits_.push_back([f = std::move(f), timeout = timeout_]() -> Status {
      if (!f->Await(timeout)) {
        return Status::kNodeDown;  // broken session: the reply never came
      }
      return f->value().status();
    });
  }

  // A coalesced chunk (DataServer::AsyncCallChunks): the outer Result is the
  // session verdict, the inner per-op Results are each operation's own.
  template <typename R>
  void AddBatch(sim::FuturePtr<Result<std::vector<Result<R>>>> f) {
    waits_.push_back([f = std::move(f), timeout = timeout_]() -> Status {
      if (!f->Await(timeout)) {
        return Status::kNodeDown;
      }
      if (!f->value().ok()) {
        return f->value().status();
      }
      for (const Result<R>& r : f->value().value()) {
        if (!r.ok()) {
          return r.status();
        }
      }
      return Status::kOk;
    });
  }
  template <typename R>
  void AddBatch(std::vector<sim::FuturePtr<Result<std::vector<Result<R>>>>> fs) {
    for (auto& f : fs) {
      AddBatch<R>(std::move(f));
    }
  }

  size_t pending() const { return waits_.size(); }

  // Awaits everything added so far, in issue order. Returns the first
  // non-kOk status (later operations are still awaited, so the window fully
  // drains and the caller's clock reflects every completion).
  Status Join() {
    Status first = Status::kOk;
    for (auto& wait : waits_) {
      Status s = wait();
      if (s != Status::kOk && first == Status::kOk) {
        first = s;
      }
    }
    waits_.clear();
    return first;
  }

 private:
  SimTime timeout_;
  std::vector<std::function<Status()>> waits_;
};

inline Application::AsyncOps Application::Parallel(SimTime timeout) {
  return AsyncOps(timeout);
}

// An RAII transaction handle: the constructor Begins (optionally as a
// subtransaction), Commit()/Abort() finish it explicitly, and the destructor
// aborts anything still live — so an early return or an exception can never
// leak a transaction holding locks. The raw Begin/End/Abort trio on
// Application remains the paper-faithful layer (Table 3-2) underneath.
class TxnScope {
 public:
  explicit TxnScope(Application& app, const TransactionId& parent = kNullTransaction)
      : app_(&app), tid_(app.Begin(parent)) {}
  TxnScope(TxnScope&& o) noexcept
      : app_(o.app_), tid_(o.tid_), live_(std::exchange(o.live_, false)) {}
  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;
  TxnScope& operator=(TxnScope&&) = delete;

  ~TxnScope() {
    // Auto-abort a still-live transaction — but not while unwinding a
    // TaskKilled (node crash): the dead node's TM is gone, and aborting
    // charges virtual time, which a killed task must not do.
    if (live_ && std::uncaught_exceptions() == 0) {
      app_->Abort(tid_);
    }
  }

  const TransactionId& id() const { return tid_; }
  bool live() const { return live_; }
  // The context handed to data-server operations.
  server::Tx tx() const { return app_->MakeTx(tid_); }

  // EndTransaction. The scope is finished regardless of the verdict (a
  // failed commit already aborted server-side).
  Status Commit() {
    live_ = false;
    return app_->End(tid_);
  }
  // AbortTransaction, explicitly.
  void Abort() {
    live_ = false;
    app_->Abort(tid_);
  }

 private:
  Application* app_;
  TransactionId tid_;
  bool live_ = true;
};

// Retry tuning for Application::RunTransactional.
struct Application::RetryPolicy {
  int max_attempts = 8;
  SimTime initial_backoff_us = 10'000;   // 10 ms virtual
  double backoff_multiplier = 2.0;
  SimTime max_backoff_us = 1'280'000;    // cap: 1.28 s virtual
  // Jitter: each wait is drawn uniformly from [backoff*(1-jitter), backoff],
  // so applications that aborted each other don't retry in lockstep and
  // re-collide on the same locks. Deterministic: the generator is seeded
  // from `jitter_seed` and the first attempt's transaction id, both fixed
  // per (seed, schedule) — same world seed, same waits. 0 disables.
  double jitter = 0.5;
  std::uint64_t jitter_seed = 0;

  // Transient outcomes worth a fresh attempt. kAborted covers deadlock
  // sacrifices (detector picks a victim) and peer-initiated aborts.
  static bool Retryable(Status s) {
    return s == Status::kVoteNo || s == Status::kTimeout || s == Status::kAborted;
  }
};

struct Application::RunResult {
  Status status = Status::kAborted;  // terminal status of the last attempt
  int attempts = 0;                  // bodies run (>= 1)

  bool ok() const { return status == Status::kOk; }
};

}  // namespace tabs

#endif  // TABS_TABS_APPLICATION_H_
