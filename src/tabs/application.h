// Application: a TABS application process on one node.
//
// Applications "initiate transactions and call data servers to perform
// operations on objects" (Section 3). This handle wraps the transaction
// management library of Table 3-2 — BeginTransaction / EndTransaction /
// AbortTransaction / TransactionIsAborted — and mints the Tx contexts that
// data-server operations take.

#ifndef TABS_TABS_APPLICATION_H_
#define TABS_TABS_APPLICATION_H_

#include <functional>

#include "src/comm/comm_manager.h"
#include "src/common/result.h"
#include "src/server/data_server.h"
#include "src/txn/transaction_manager.h"

namespace tabs {

class Application {
 public:
  Application(NodeId node, txn::TransactionManager& tm, comm::CommManager& cm)
      : node_(node), tm_(&tm), cm_(&cm) {}

  NodeId node() const { return node_; }
  txn::TransactionManager& tm() { return *tm_; }
  comm::CommManager& cm() { return *cm_; }

  // BeginTransaction(TransactionID) — the null TID begins a top-level
  // transaction; a live TID begins a subtransaction of it.
  TransactionId Begin(const TransactionId& parent = kNullTransaction) {
    return tm_->Begin(parent);
  }
  // EndTransaction — commit. Returns kOk, or why the transaction did not commit.
  Status End(const TransactionId& tid) { return tm_->End(tid); }
  // AbortTransaction.
  void Abort(const TransactionId& tid) { tm_->Abort(tid); }
  // The TransactionIsAborted exception, as a query.
  bool TransactionIsAborted(const TransactionId& tid) { return tm_->IsAborted(tid); }

  // The context handed to data-server operations for `tid`.
  server::Tx MakeTx(const TransactionId& tid) {
    return server::Tx{tid, tm_->TopOf(tid), node_, cm_};
  }

  // Begin + body + End/Abort in one call. The body returns kOk to commit.
  Status Transaction(const std::function<Status(const server::Tx&)>& body) {
    TransactionId tid = Begin();
    Status s = body(MakeTx(tid));
    if (s == Status::kOk) {
      return End(tid);
    }
    Abort(tid);
    return s;
  }

 private:
  NodeId node_;
  txn::TransactionManager* tm_;
  comm::CommManager* cm_;
};

}  // namespace tabs

#endif  // TABS_TABS_APPLICATION_H_
