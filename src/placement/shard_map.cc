#include "src/placement/shard_map.h"

namespace tabs::placement {

std::string ShardInstanceName(const std::string& service, std::uint32_t shard) {
  return service + "#" + std::to_string(shard);
}

std::uint64_t ShardMap::HashKey(std::string_view key) {
  // FNV-1a: deterministic across platforms and runs, which the simulator's
  // reproducibility contract requires (std::hash is not).
  std::uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Result<ShardMap> ShardMap::FromBindings(std::string service,
                                        const std::vector<name::Binding>& bindings) {
  if (bindings.empty()) {
    return Status::kNotFound;
  }
  // The shard count rides in every binding's object id (length field); the
  // shard index in its offset field.
  std::uint32_t count = bindings.front().object.length;
  if (count == 0) {
    return Status::kInternal;
  }
  std::vector<name::Binding> shards(count);
  std::vector<bool> seen(count, false);
  for (const name::Binding& b : bindings) {
    std::uint32_t shard = b.object.offset;
    if (b.object.length != count || shard >= count) {
      return Status::kInternal;  // bindings disagree about the service shape
    }
    if (seen[shard]) {
      if (!(shards[shard] == b)) {
        return Status::kInternal;  // two distinct bindings claim one shard
      }
      continue;
    }
    seen[shard] = true;
    shards[shard] = b;
  }
  for (bool s : seen) {
    if (!s) {
      return Status::kNotFound;  // partial set: some shard's node is missing
    }
  }
  return ShardMap(std::move(service), std::move(shards));
}

}  // namespace tabs::placement
