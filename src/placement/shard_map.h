// Placement: how one logical service spans several nodes.
//
// TABS names already allow one name -> many <node, server, object> bindings
// (the replicated directory registers one binding per representative,
// Section 3.1.3). The placement layer reuses exactly that mechanism for
// *partitioned* services: a logical service registers one binding per shard,
// and each binding's logical object id encodes the shard's position —
// ObjectId{segment, shard_index, shard_count} — so a resolver can tell a
// complete shard set from a partial one without any new protocol.
//
// Routing is fixed (no rebalancing): dense integer keyspaces interleave
// (global index i lives on shard i % count at local position i / count, an
// invertible mapping that spreads hot dense prefixes evenly), and string
// keyspaces hash (FNV-1a, key travels unchanged). A ShardMap is the
// client-side routing table built from the resolved bindings; a ShardSlice
// is the server-side view a sharded data server sizes itself with.

#ifndef TABS_PLACEMENT_SHARD_MAP_H_
#define TABS_PLACEMENT_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/name/name_server.h"

namespace tabs::placement {

// The slice of a logical keyspace one shard instance owns. Handed to the
// sharded data-server constructors so each instance sizes itself for its
// share of the space. The default slice is "shard 0 of 1": a whole,
// unsharded service — which is why every pre-existing single-node server is
// already a degenerate sharded service.
struct ShardSlice {
  std::uint32_t index = 0;  // this shard's position, 0 .. count-1
  std::uint32_t count = 1;  // total shards in the service

  // How many elements of a dense `total`-element keyspace this slice owns
  // under interleaved partitioning (i % count == index).
  std::uint64_t LocalSize(std::uint64_t total) const {
    if (total <= index) {
      return 0;
    }
    return (total - index + count - 1) / count;
  }

  friend bool operator==(const ShardSlice&, const ShardSlice&) = default;
};

// The instance name a shard's data server registers under: "svc#3". The
// logical service name itself resolves to the full binding set.
std::string ShardInstanceName(const std::string& service, std::uint32_t shard);

// The client-side routing table for one logical service: one binding per
// shard, ordered by shard index. Built from Name Server bindings whose
// object ids carry <segment, shard_index, shard_count>.
class ShardMap {
 public:
  // Validates and orders `bindings` into a map. Fails with kNotFound when
  // the set is incomplete (some shard has no binding — e.g. its node is down
  // and could not answer the broadcast) and kInternal when the bindings
  // disagree about the shard count or two claim the same shard.
  static Result<ShardMap> FromBindings(std::string service,
                                       const std::vector<name::Binding>& bindings);

  const std::string& service() const { return service_; }
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }
  const name::Binding& binding(std::uint32_t shard) const { return shards_[shard]; }
  const std::vector<name::Binding>& bindings() const { return shards_; }

  // Dense integer keyspaces interleave.
  std::uint32_t ShardOfIndex(std::uint64_t index) const {
    return static_cast<std::uint32_t>(index % shards_.size());
  }
  std::uint64_t LocalIndex(std::uint64_t index) const { return index / shards_.size(); }

  // String keyspaces hash; the key itself travels unchanged.
  std::uint32_t ShardOfKey(std::string_view key) const {
    return static_cast<std::uint32_t>(HashKey(key) % shards_.size());
  }
  static std::uint64_t HashKey(std::string_view key);  // FNV-1a, 64-bit

 private:
  ShardMap(std::string service, std::vector<name::Binding> shards)
      : service_(std::move(service)), shards_(std::move(shards)) {}

  std::string service_;
  std::vector<name::Binding> shards_;  // indexed by shard
};

}  // namespace tabs::placement

#endif  // TABS_PLACEMENT_SHARD_MAP_H_
