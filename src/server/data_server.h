// DataServer: the base class every TABS data server builds on, exposing the
// server library of Table 3-1.
//
// A data server encapsulates objects in a recoverable segment, locks them
// through its own lock manager (so locking can be type-specific, Section
// 2.1.2), logs updates through the node's Recovery Manager, and participates
// automatically in transaction commit, abort, and checkpoint. Operations
// execute as tasks on the server's node; the cooperative scheduler gives
// exactly the TABS coroutine monitor semantics — a switch happens only when
// an operation waits (Section 3.1.1).
//
// The modification protocol mirrors the paper exactly:
//   PinAndBuffer(oid)   — pin the object's pages and buffer its old value;
//   Staged(oid)         — the in-flight new value the operation mutates
//                         (the paper's direct assignment through the mapped
//                         segment);
//   LogAndUnPin(oid)    — send old/new to the Recovery Manager (which
//                         applies the new value under the record's LSN) and
//                         unpin.
// plus the marked-object variants (LockAndMark / PinAndBufferMarkedObjects /
// LogAndUnPinMarkedObjects) that let code like the B-tree server set all its
// locks before pinning anything, as the checkpoint protocol requires.

#ifndef TABS_SERVER_DATA_SERVER_H_
#define TABS_SERVER_DATA_SERVER_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/comm/comm_manager.h"
#include "src/kernel/node.h"
#include "src/kernel/recoverable_segment.h"
#include "src/lock/lock_manager.h"
#include "src/name/name_server.h"
#include "src/recovery/recovery_manager.h"
#include "src/txn/transaction_manager.h"

namespace tabs::server {

// Transaction context threaded through every operation: the current
// (sub)transaction, its top-level ancestor, and where the call comes from.
struct Tx {
  TransactionId tid;
  TransactionId top;
  NodeId origin = kInvalidNode;
  comm::CommManager* origin_cm = nullptr;  // for routing nested remote calls
};

// Everything a data server needs from its node, assembled by tabs::World.
struct ServerContext {
  kernel::Node* node = nullptr;
  recovery::RecoveryManager* rm = nullptr;
  txn::TransactionManager* tm = nullptr;
  comm::CommManager* cm = nullptr;
  SegmentId segment = kInvalidSegment;
  std::string name;
};

class DataServer : public txn::CommitParticipant {
 public:
  struct Options {
    PageNumber pages = 16;
    size_t buffer_frames = 1024;  // effectively unbounded unless testing paging
    lock::CompatibilityMatrix matrix = lock::CompatibilityMatrix::SharedExclusive();
    SimTime lock_timeout = 5'000'000;  // TABS breaks deadlock by timeout
  };

  DataServer(const ServerContext& ctx, Options options);
  ~DataServer() override = default;

  const std::string& participant_name() const override { return name_; }
  NodeId node_id() const { return ctx_.node->id(); }
  comm::CommManager& cm() { return *ctx_.cm; }
  kernel::RecoverableSegment& segment() { return *segment_; }
  lock::LockManager& locks() { return locks_; }
  sim::Substrate& substrate() { return ctx_.node->substrate(); }

  // --- entry point -----------------------------------------------------------
  // Runs `op` in this server on behalf of `tx`, routing remotely when the
  // caller is on another node, charging the appropriate call primitive, and
  // announcing the server to the Transaction Manager on first contact.
  template <typename R>
  Result<R> Call(const Tx& tx, std::string what, std::function<Result<R>()> op) {
    if (tx.origin == node_id()) {
      sim::SpanGuard span(substrate().tracer(), sim::Component::kDataServer, "server.call",
                          substrate().tracer().enabled() ? what : std::string());
      substrate().Charge(sim::Primitive::kDataServerCall);
      if (ctx_.tm->RefusesOps(tx.tid)) {
        return Result<R>(Status::kAborted);  // zombie op: cascade consumed tx
      }
      Join(tx);
      return op();
    }
    // Remote: session RPC through the Communication Managers, which also
    // grow the transaction's spanning tree. (Per-transaction CM session
    // setup costs are charged by the CM at first contact.)
    assert(tx.origin_cm != nullptr && "remote call without an origin CM");
    DataServer* self = this;
    Tx local_tx = tx;
    local_tx.origin = node_id();  // on arrival, the op is local to this node
    auto result = tx.origin_cm->RemoteCall<Result<R>>(
        tx.top, *ctx_.cm, std::move(what), [self, local_tx, op = std::move(op)] {
          sim::SpanGuard span(self->substrate().tracer(), sim::Component::kDataServer,
                              "server.call");
          if (self->ctx_.tm->RefusesOps(local_tx.tid)) {
            return Result<R>(Status::kAborted);
          }
          self->Join(local_tx);
          return op();
        });
    if (!result.ok()) {
      return result.status();
    }
    return result.value();
  }

  // Asynchronous entry point: like Call, but a remote invocation returns a
  // future instead of blocking, letting the caller overlap independent
  // operations on several servers (up to the CM's pipeline window). A local
  // invocation has no network latency to hide and runs synchronously,
  // returning an already-fulfilled future — so callers can use one shape for
  // both. Failure semantics match Call: a dead destination surfaces as
  // kNodeDown when the future is awaited.
  template <typename R>
  sim::FuturePtr<Result<R>> AsyncCall(const Tx& tx, std::string what,
                                      std::function<Result<R>()> op) {
    if (tx.origin == node_id()) {
      auto f = std::make_shared<sim::Future<Result<R>>>(substrate().scheduler());
      f->Fulfil(Call<R>(tx, std::move(what), std::move(op)));
      return f;
    }
    assert(tx.origin_cm != nullptr && "remote call without an origin CM");
    DataServer* self = this;
    Tx local_tx = tx;
    local_tx.origin = node_id();
    return tx.origin_cm->AsyncRemoteCall<R>(
        tx.top, *ctx_.cm, std::move(what), [self, local_tx, op = std::move(op)] {
          sim::SpanGuard span(self->substrate().tracer(), sim::Component::kDataServer,
                              "server.call");
          if (self->ctx_.tm->RefusesOps(local_tx.tid)) {
            return Result<R>(Status::kAborted);
          }
          self->Join(local_tx);
          return op();
        });
  }

  // Batch entry point: runs the independent `ops` in this server on behalf
  // of `tx`. Remote invocations chunk the batch by the CM's coalescing limit
  // and put every chunk on the wire before awaiting any (so batching
  // composes with pipelining); local invocations dispatch each op exactly
  // like separate Calls — coalescing saves messages, never server work.
  // Results are in op order.
  template <typename R>
  std::vector<Result<R>> CallBatch(const Tx& tx, const std::string& what,
                                   std::vector<std::function<Result<R>()>> ops) {
    std::vector<Result<R>> out;
    out.reserve(ops.size());
    if (tx.origin == node_id()) {
      for (auto& op : ops) {
        out.push_back(Call<R>(tx, what, std::move(op)));
      }
      return out;
    }
    for (auto& f : AsyncCallChunks<R>(tx, what, std::move(ops))) {
      Result<std::vector<Result<R>>> chunk(Status::kNodeDown);
      if (f->Await(comm::Network::kDefaultSessionTimeout)) {
        chunk = std::move(f->value());
      }
      if (!chunk.ok()) {
        out.push_back(chunk.status());
        continue;
      }
      for (auto& r : chunk.value()) {
        out.push_back(std::move(r));
      }
    }
    return out;
  }

  // The async half of CallBatch: one future per wire message (coalesced
  // chunk). Local batches dispatch synchronously into a single ready chunk.
  // tabs::AsyncOps joins these.
  template <typename R>
  std::vector<sim::FuturePtr<Result<std::vector<Result<R>>>>> AsyncCallChunks(
      const Tx& tx, const std::string& what, std::vector<std::function<Result<R>()>> ops) {
    std::vector<sim::FuturePtr<Result<std::vector<Result<R>>>>> futures;
    if (ops.empty()) {
      return futures;
    }
    if (tx.origin == node_id()) {
      std::vector<Result<R>> chunk;
      chunk.reserve(ops.size());
      for (auto& op : ops) {
        chunk.push_back(Call<R>(tx, what, std::move(op)));
      }
      auto f = std::make_shared<sim::Future<Result<std::vector<Result<R>>>>>(
          substrate().scheduler());
      f->Fulfil(std::move(chunk));
      futures.push_back(std::move(f));
      return futures;
    }
    assert(tx.origin_cm != nullptr && "remote call without an origin CM");
    DataServer* self = this;
    Tx local_tx = tx;
    local_tx.origin = node_id();
    size_t limit = static_cast<size_t>(tx.origin_cm->op_coalesce_batch());
    for (size_t base = 0; base < ops.size(); base += limit) {
      size_t count = std::min(limit, ops.size() - base);
      std::vector<std::function<Result<R>()>> wire_ops;
      wire_ops.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        auto op = std::move(ops[base + i]);
        wire_ops.push_back([self, local_tx, op = std::move(op)] {
          sim::SpanGuard span(self->substrate().tracer(), sim::Component::kDataServer,
                              "server.call");
          if (self->ctx_.tm->RefusesOps(local_tx.tid)) {
            return Result<R>(Status::kAborted);
          }
          self->Join(local_tx);
          return op();
        });
      }
      futures.push_back(tx.origin_cm->AsyncRemoteCallBatch<R>(
          tx.top, *ctx_.cm, what, std::move(wire_ops)));
    }
    return futures;
  }

  // --- Table 3-1: startup ------------------------------------------------------
  // ReadPermanentData / RecoverServer / AcceptRequests are subsumed by the
  // constructor (segment mapping), World-driven recovery, and Call dispatch.
  // Subclasses override Recover() to rebuild volatile structures, e.g. the
  // weak queue's tail pointer.
  virtual void Recover() {}

  // --- Table 3-1: address arithmetic --------------------------------------------
  ObjectId CreateObjectId(std::uint32_t offset, std::uint32_t length) const {
    return ObjectId{segment_->id(), offset, length};
  }

  // --- Table 3-1: locking ---------------------------------------------------------
  Status LockObject(const Tx& tx, const ObjectId& oid, lock::LockMode mode);
  bool ConditionallyLockObject(const Tx& tx, const ObjectId& oid, lock::LockMode mode);
  bool IsObjectLocked(const ObjectId& oid) const { return locks_.IsLocked(oid); }

  // --- Table 3-1: paging control ----------------------------------------------------
  void PinObject(const ObjectId& oid) { segment_->Pin(oid); }
  void UnPinObject(const ObjectId& oid) { segment_->Unpin(oid); }
  void UnPinAllObjects() { segment_->UnpinAll(); }

  // --- Table 3-1: paging control + logging -------------------------------------------
  // IMPORTANT: value-logged objects need stable identities. The value
  // recovery algorithm's backward pass tracks restored objects by exact
  // ObjectId, so two logged objects must either be identical or disjoint —
  // never partially overlapping (the paper's "individually logged component"
  // restriction). Servers with variable-sized data log fixed-shape units
  // (whole pages, fixed blocks) and write sub-ranges into them.
  void PinAndBuffer(const Tx& tx, const ObjectId& oid);
  // The staged new value created by PinAndBuffer (initially the old value);
  // the operation mutates it in place, then LogAndUnPin makes it real.
  Bytes& Staged(const Tx& tx, const ObjectId& oid);
  void LogAndUnPin(const Tx& tx, const ObjectId& oid);

  Status LockAndMark(const Tx& tx, const ObjectId& oid, lock::LockMode mode);
  void PinAndBufferMarkedObjects(const Tx& tx);
  void LogAndUnPinMarkedObjects(const Tx& tx);

  // Reads an object's current (volatile) value. No locking is implied — the
  // weak queue deliberately performs unprotected reads (Section 4.2).
  Bytes ReadObject(const ObjectId& oid) { return segment_->Read(oid); }

  // One-shot convenience: PinAndBuffer + overwrite + LogAndUnPin.
  void WriteValue(const Tx& tx, const ObjectId& oid, Bytes new_value);

  // --- Table 3-1: transaction management ------------------------------------------
  // ExecuteTransaction: runs `body` inside a fresh top-level transaction
  // (the IO server writes output records this way, Section 4.3).
  Status ExecuteTransaction(const std::function<Status(const Tx&)>& body);

  // --- operation logging (the server library extension of Section 7) -----------------
  using OpFn = std::function<void(const Bytes& args, Lsn lsn)>;
  void RegisterOperation(const std::string& op_name, OpFn fn);
  Lsn LogOperationRecord(const Tx& tx, const std::string& op_name, Bytes redo_args,
                         const std::string& undo_op_name, Bytes undo_args,
                         std::vector<PageId> pages);

  // --- CommitParticipant ----------------------------------------------------------
  bool HasUpdates(const TransactionId& tid) override { return updates_.contains(tid); }
  void OnCommit(const TransactionId& tid) override;
  void OnAbort(const TransactionId& tid) override;
  void OnSubtxnCommit(const TransactionId& child, const TransactionId& parent) override;
  void RelockForRecovery(const TransactionId& tid, const log::LogRecord& rec) override;
  // Queue-oriented execution (only reached when the mode is on; see the
  // base-class declarations in transaction_manager.h).
  void OnEarlyRelease(const TransactionId& tid, bool taint) override;
  void CancelLockWaits(const TransactionId& tid) override;
  void OnAbortSettled(const TransactionId& tid) override;

 protected:
  void Join(const Tx& tx);
  void MarkUpdated(const TransactionId& tid) { updates_.insert(tid); }

  ServerContext ctx_;
  Options options_;
  std::string name_;
  std::unique_ptr<kernel::RecoverableSegment> segment_;
  lock::LockManager locks_;

 private:
  struct StagedWrite {
    Bytes old_value;
    Bytes new_value;
  };
  std::map<std::pair<TransactionId, ObjectId>, StagedWrite> staged_;
  std::map<TransactionId, std::vector<ObjectId>> marked_;
  std::set<TransactionId> updates_;
  std::map<std::string, OpFn> operations_;
};

}  // namespace tabs::server

#endif  // TABS_SERVER_DATA_SERVER_H_
