#include "src/server/data_server.h"

#include <cassert>

namespace tabs::server {

DataServer::DataServer(const ServerContext& ctx, Options options)
    : ctx_(ctx),
      options_(std::move(options)),
      name_(ctx.name),
      segment_(std::make_unique<kernel::RecoverableSegment>(
          ctx.node->substrate(), ctx.node->disk(), ctx.segment, options_.pages,
          options_.buffer_frames)),
      locks_(ctx.node->substrate().scheduler(), options_.matrix, options_.lock_timeout) {
  ctx_.rm->RegisterSegment(name_, segment_.get());
  recovery::OperationHooks hooks;
  hooks.apply = [this](const std::string& op, const Bytes& args, Lsn lsn) {
    auto it = operations_.find(op);
    assert(it != operations_.end() && "operation record names an unregistered operation");
    it->second(args, lsn);
  };
  ctx_.rm->RegisterOperationHooks(name_, hooks);
  if (ctx_.tm != nullptr && ctx_.tm->queue_mode()) {
    // Queue-oriented execution: every grant reports to the op queue (so a
    // successor touching an early-released object picks up a commit
    // dependency), grants on objects whose releaser is mid-abort are vetoed,
    // and requests from a transaction that is itself being cascade-aborted
    // fail instead of handing a zombie task a lock.
    txn::TransactionManager* tm = ctx_.tm;
    locks_.SetGrantSink([tm](const TransactionId& tid, const ObjectId& oid) {
      tm->op_queue().NoteAccess(tm->TopOf(tid), oid);
    });
    locks_.SetGrantVeto(
        [tm](const ObjectId& oid) { return tm->op_queue().GrantVetoed(oid); });
    locks_.SetRequesterVeto(
        [tm](const TransactionId& tid) { return tm->RefusesOps(tid); });
  }
}

void DataServer::Join(const Tx& tx) {
  ctx_.tm->JoinServer(tx.tid, tx.top, this);
}

Status DataServer::LockObject(const Tx& tx, const ObjectId& oid, lock::LockMode mode) {
  // A library call is an operation on behalf of tx: the server announces
  // itself to the Transaction Manager on first contact (idempotent), so
  // commit/abort cleanup always reaches it even when the call bypassed the
  // request dispatcher (ExecuteTransaction bodies, nested helpers).
  sim::SpanGuard span(substrate().tracer(), sim::Component::kDataServer, "lock.acquire",
                      substrate().tracer().enabled() ? ToString(oid) : std::string());
  Join(tx);
  return locks_.Lock(tx.tid, oid, mode);
}

bool DataServer::ConditionallyLockObject(const Tx& tx, const ObjectId& oid,
                                         lock::LockMode mode) {
  Join(tx);
  return locks_.ConditionalLock(tx.tid, oid, mode);
}

void DataServer::PinAndBuffer(const Tx& tx, const ObjectId& oid) {
  Join(tx);
  segment_->Pin(oid);
  Bytes current = segment_->Read(oid);
  StagedWrite sw;
  sw.old_value = current;
  sw.new_value = std::move(current);
  staged_[{tx.tid, oid}] = std::move(sw);
}

Bytes& DataServer::Staged(const Tx& tx, const ObjectId& oid) {
  auto it = staged_.find({tx.tid, oid});
  assert(it != staged_.end() && "Staged() without PinAndBuffer()");
  return it->second.new_value;
}

void DataServer::LogAndUnPin(const Tx& tx, const ObjectId& oid) {
  auto it = staged_.find({tx.tid, oid});
  assert(it != staged_.end() && "LogAndUnPin() without PinAndBuffer()");
  // The buffered old value and the new value travel to the Recovery Manager
  // (one large local message of log data), which appends the record and
  // applies the new value to the segment under the record's LSN.
  substrate().ChargeSystemMessage(sim::Primitive::kLargeMessage, 1);
  substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);  // pin/unpin kernel msgs
  ctx_.rm->LogValue(tx.tid, tx.top, name_, oid, std::move(it->second.old_value),
                    std::move(it->second.new_value));
  staged_.erase(it);
  segment_->Unpin(oid);
  updates_.insert(tx.tid);
}

Status DataServer::LockAndMark(const Tx& tx, const ObjectId& oid, lock::LockMode mode) {
  Status s = LockObject(tx, oid, mode);
  if (s != Status::kOk) {
    return s;
  }
  marked_[tx.tid].push_back(oid);
  return Status::kOk;
}

void DataServer::PinAndBufferMarkedObjects(const Tx& tx) {
  auto it = marked_.find(tx.tid);
  if (it == marked_.end()) {
    return;
  }
  for (const ObjectId& oid : it->second) {
    PinAndBuffer(tx, oid);
  }
}

void DataServer::LogAndUnPinMarkedObjects(const Tx& tx) {
  auto it = marked_.find(tx.tid);
  if (it == marked_.end()) {
    return;
  }
  for (const ObjectId& oid : it->second) {
    LogAndUnPin(tx, oid);
  }
  marked_.erase(it);
}

void DataServer::WriteValue(const Tx& tx, const ObjectId& oid, Bytes new_value) {
  PinAndBuffer(tx, oid);
  Staged(tx, oid) = std::move(new_value);
  LogAndUnPin(tx, oid);
}

Status DataServer::ExecuteTransaction(const std::function<Status(const Tx&)>& body) {
  TransactionId tid = ctx_.tm->Begin();
  Tx tx{tid, tid, node_id(), ctx_.cm};
  // The body operates on this server directly (no dispatch), so the first-
  // operation announcement to the Transaction Manager happens here.
  Join(tx);
  Status s = body(tx);
  if (s == Status::kOk) {
    return ctx_.tm->End(tid);
  }
  ctx_.tm->Abort(tid);
  return s;
}

void DataServer::RegisterOperation(const std::string& op_name, OpFn fn) {
  operations_[op_name] = std::move(fn);
}

Lsn DataServer::LogOperationRecord(const Tx& tx, const std::string& op_name, Bytes redo_args,
                                   const std::string& undo_op_name, Bytes undo_args,
                                   std::vector<PageId> pages) {
  Join(tx);
  substrate().ChargeSystemMessage(sim::Primitive::kLargeMessage, 1);
  substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  updates_.insert(tx.tid);
  return ctx_.rm->LogOperation(tx.tid, tx.top, name_, op_name, std::move(redo_args),
                               undo_op_name, std::move(undo_args), std::move(pages));
}

void DataServer::OnCommit(const TransactionId& tid) {
  locks_.ReleaseAll(tid);
  updates_.erase(tid);
  marked_.erase(tid);
  // Any staged-but-unlogged writes vanish (they were never applied).
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (it->first.first == tid) {
      segment_->Unpin(it->first.second);
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }
}

void DataServer::OnAbort(const TransactionId& tid) {
  OnCommit(tid);  // identical cleanup; the undo itself ran through the RM
}

void DataServer::OnSubtxnCommit(const TransactionId& child, const TransactionId& parent) {
  locks_.InheritToParent(child, parent);
  if (updates_.erase(child) > 0) {
    updates_.insert(parent);
  }
  marked_.erase(child);
}

void DataServer::OnEarlyRelease(const TransactionId& tid, bool taint) {
  if (taint) {
    // In-doubt release: register the released objects as tainted BEFORE any
    // successor can be granted one, so the grant sink sees the tail.
    ctx_.tm->op_queue().NoteEarlyRelease(ctx_.tm->TopOf(tid), locks_.LocksHeldBy(tid));
  }
  // Locks drop now; updates_/staged_ stay — the outcome (OnCommit/OnAbort)
  // still needs them for HasUpdates and cleanup.
  locks_.ReleaseAll(tid);
}

void DataServer::CancelLockWaits(const TransactionId& tid) {
  locks_.CancelWaits(tid);
}

void DataServer::OnAbortSettled(const TransactionId& tid) {
  (void)tid;
  locks_.GrantAllEligible();
}

void DataServer::RelockForRecovery(const TransactionId& tid, const log::LogRecord& rec) {
  updates_.insert(tid);
  if (rec.IsValueStyle()) {
    locks_.ConditionalLock(tid, rec.oid, lock::kExclusive);
    return;
  }
  // Operation records: lock the touched pages wholesale.
  for (const PageId& p : rec.pages) {
    locks_.ConditionalLock(tid, ObjectId{p.segment, p.page * kPageSize, kPageSize},
                           lock::kExclusive);
  }
}

}  // namespace tabs::server
