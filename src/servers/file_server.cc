#include "src/servers/file_server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace tabs::servers {

namespace {
server::DataServer::Options MakeOptions(PageNumber data_pages) {
  server::DataServer::Options o;
  o.pages = 1 /*allocator*/ +
            (FileServer::kMaxFiles * (1 + 1 + FileServer::kNameBytes + 8 +
                                      4 * FileServer::kMaxFilePages) +
             kPageSize - 1) /
                kPageSize +
            data_pages;
  return o;
}
}  // namespace

Bytes FileServer::Slot::Serialize() const {
  Bytes b(kSlotSize, 0);
  b[0] = in_use ? 1 : 0;
  assert(name.size() <= kNameBytes);
  b[1] = static_cast<std::uint8_t>(name.size());
  std::memcpy(b.data() + 2, name.data(), name.size());
  std::memcpy(b.data() + 2 + kNameBytes, &size, 4);
  std::uint32_t count = static_cast<std::uint32_t>(pages.size());
  std::memcpy(b.data() + 6 + kNameBytes, &count, 4);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::memcpy(b.data() + 10 + kNameBytes + i * 4, &pages[i], 4);
  }
  return b;
}

FileServer::Slot FileServer::Slot::Deserialize(const Bytes& b) {
  Slot s;
  s.in_use = b[0] != 0;
  std::uint8_t len = b[1];
  s.name.assign(reinterpret_cast<const char*>(b.data() + 2), len);
  std::memcpy(&s.size, b.data() + 2 + kNameBytes, 4);
  std::uint32_t count;
  std::memcpy(&count, b.data() + 6 + kNameBytes, 4);
  for (std::uint32_t i = 0; i < count && i < kMaxFilePages; ++i) {
    PageNumber p;
    std::memcpy(&p, b.data() + 10 + kNameBytes + i * 4, 4);
    s.pages.push_back(p);
  }
  return s;
}

FileServer::FileServer(const server::ServerContext& ctx, PageNumber data_pages)
    : DataServer(ctx, MakeOptions(data_pages)), data_pages_(data_pages) {
  assert(data_pages_ <= kPageSize && "allocator byte map must fit in page 0");
}

FileServer::Slot FileServer::ReadSlot(std::uint32_t index) {
  return Slot::Deserialize(ReadObject(SlotOid(index)));
}

void FileServer::WriteSlot(const server::Tx& tx, std::uint32_t index, const Slot& slot) {
  ObjectId oid = SlotOid(index);
  PinAndBuffer(tx, oid);
  Staged(tx, oid) = slot.Serialize();
  LogAndUnPin(tx, oid);
}

Result<std::uint32_t> FileServer::FindSlot(const server::Tx& tx, const std::string& name,
                                           lock::LockMode mode) {
  for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
    // Unprotected peek first (weak-queue style), then confirm under lock.
    Slot s = ReadSlot(i);
    if (!s.in_use || s.name != name) {
      continue;
    }
    Status st = LockObject(tx, SlotOid(i), mode);
    if (st != Status::kOk) {
      return st;
    }
    s = ReadSlot(i);
    if (s.in_use && s.name == name) {
      return i;
    }
  }
  return Status::kNotFound;
}

Result<PageNumber> FileServer::AllocatePage(const server::Tx& tx) {
  for (PageNumber p = kFirstDataPage; p < kFirstDataPage + data_pages_; ++p) {
    ObjectId byte = AllocByteOid(p);
    if (IsObjectLocked(byte) || ReadObject(byte)[0] != 0) {
      continue;
    }
    if (!ConditionallyLockObject(tx, byte, lock::kExclusive)) {
      continue;
    }
    if (ReadObject(byte)[0] != 0) {
      continue;
    }
    PinAndBuffer(tx, byte);
    Staged(tx, byte)[0] = 1;
    LogAndUnPin(tx, byte);
    return p;
  }
  return Status::kConflict;  // disk full
}

void FileServer::FreePage(const server::Tx& tx, PageNumber page) {
  ObjectId byte = AllocByteOid(page);
  if (LockObject(tx, byte, lock::kExclusive) != Status::kOk) {
    return;  // leak rather than deadlock
  }
  PinAndBuffer(tx, byte);
  Staged(tx, byte)[0] = 0;
  LogAndUnPin(tx, byte);
}

Status FileServer::Create(const server::Tx& tx, const std::string& name) {
  auto r = Call<bool>(tx, "Create", [this, tx, name]() -> Result<bool> {
    if (name.empty() || name.size() > kNameBytes) {
      return Status::kOutOfRange;
    }
    if (FindSlot(tx, name, lock::kShared).ok()) {
      return Status::kConflict;  // exists
    }
    for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
      if (ReadSlot(i).in_use || IsObjectLocked(SlotOid(i))) {
        continue;
      }
      if (!ConditionallyLockObject(tx, SlotOid(i), lock::kExclusive)) {
        continue;
      }
      if (ReadSlot(i).in_use) {
        continue;  // raced
      }
      Slot s;
      s.in_use = true;
      s.name = name;
      WriteSlot(tx, i, s);
      return true;
    }
    return Status::kConflict;  // table full
  });
  return r.ok() ? Status::kOk : r.status();
}

Status FileServer::Remove(const server::Tx& tx, const std::string& name) {
  auto r = Call<bool>(tx, "Remove", [this, tx, name]() -> Result<bool> {
    auto idx = FindSlot(tx, name, lock::kExclusive);
    if (!idx.ok()) {
      return idx.status();
    }
    Slot s = ReadSlot(idx.value());
    for (PageNumber p : s.pages) {
      FreePage(tx, p);
    }
    WriteSlot(tx, idx.value(), Slot{});
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status FileServer::Write(const server::Tx& tx, const std::string& name, std::uint32_t offset,
                         const Bytes& data) {
  auto r = Call<bool>(tx, "Write", [this, tx, name, offset, &data]() -> Result<bool> {
    if (offset + data.size() > kMaxFileBytes) {
      return Status::kOutOfRange;
    }
    auto idx = FindSlot(tx, name, lock::kExclusive);
    if (!idx.ok()) {
      return idx.status();
    }
    Slot s = ReadSlot(idx.value());
    // Grow the page list to cover the write.
    std::uint32_t end = offset + static_cast<std::uint32_t>(data.size());
    std::uint32_t pages_needed = (end + kPageSize - 1) / kPageSize;
    while (s.pages.size() < pages_needed) {
      auto page = AllocatePage(tx);
      if (!page.ok()) {
        return page.status();
      }
      s.pages.push_back(page.value());
    }
    // Write page by page. Each data page is one logged object (whole-page
    // value records): logged components need stable identities — the value
    // algorithm's backward pass tracks objects by exact ObjectId, so
    // variable-shaped overlapping regions would alias across reuse.
    std::uint32_t written = 0;
    while (written < data.size()) {
      std::uint32_t pos = offset + written;
      std::uint32_t page_index = pos / kPageSize;
      std::uint32_t in_page = pos % kPageSize;
      std::uint32_t chunk = std::min<std::uint32_t>(
          kPageSize - in_page, static_cast<std::uint32_t>(data.size()) - written);
      ObjectId oid = DataOid(s.pages[page_index], 0, kPageSize);
      PinAndBuffer(tx, oid);
      std::memcpy(Staged(tx, oid).data() + in_page, data.data() + written, chunk);
      LogAndUnPin(tx, oid);
      written += chunk;
    }
    if (end > s.size) {
      s.size = end;
    }
    WriteSlot(tx, idx.value(), s);
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status FileServer::Append(const server::Tx& tx, const std::string& name, const Bytes& data) {
  auto size = Size(tx, name);
  if (!size.ok()) {
    return size.status();
  }
  return Write(tx, name, size.value(), data);
}

Result<Bytes> FileServer::Read(const server::Tx& tx, const std::string& name,
                               std::uint32_t offset, std::uint32_t length) {
  return Call<Bytes>(tx, "Read", [this, tx, name, offset, length]() -> Result<Bytes> {
    auto idx = FindSlot(tx, name, lock::kShared);
    if (!idx.ok()) {
      return idx.status();
    }
    Slot s = ReadSlot(idx.value());
    if (offset >= s.size) {
      return Bytes{};
    }
    std::uint32_t end = std::min(offset + length, s.size);
    Bytes out;
    out.reserve(end - offset);
    std::uint32_t pos = offset;
    while (pos < end) {
      std::uint32_t page_index = pos / kPageSize;
      std::uint32_t in_page = pos % kPageSize;
      std::uint32_t chunk = std::min(kPageSize - in_page, end - pos);
      Bytes piece = ReadObject(DataOid(s.pages[page_index], in_page, chunk));
      out.insert(out.end(), piece.begin(), piece.end());
      pos += chunk;
    }
    return out;
  });
}

Result<std::uint32_t> FileServer::Size(const server::Tx& tx, const std::string& name) {
  return Call<std::uint32_t>(tx, "Size", [this, tx, name]() -> Result<std::uint32_t> {
    auto idx = FindSlot(tx, name, lock::kShared);
    if (!idx.ok()) {
      return idx.status();
    }
    return ReadSlot(idx.value()).size;
  });
}

Result<std::vector<std::string>> FileServer::List(const server::Tx& tx) {
  using Names = std::vector<std::string>;
  return Call<Names>(tx, "List", [this, tx]() -> Result<Names> {
    Names out;
    for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
      Status s = LockObject(tx, SlotOid(i), lock::kShared);
      if (s != Status::kOk) {
        return s;
      }
      Slot slot = ReadSlot(i);
      if (slot.in_use) {
        out.push_back(slot.name);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  });
}

std::uint32_t FileServer::AllocatedPages() {
  std::uint32_t n = 0;
  for (PageNumber p = kFirstDataPage; p < kFirstDataPage + data_pages_; ++p) {
    if (ReadObject(AllocByteOid(p))[0] != 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace tabs::servers
