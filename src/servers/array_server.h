// The integer array server (paper Section 4.1).
//
// "The integer array server maintains an array of (one word) integers" with
// GetCell/SetCell operations — the simplest possible data server, using only
// two-phase read/write locking and value logging. The combined Pascal code
// for both operations was 50 lines; the structure below mirrors it: compute
// the cell's ObjectId by address arithmetic, lock it, PinAndBuffer, assign,
// LogAndUnPin.

#ifndef TABS_SERVERS_ARRAY_SERVER_H_
#define TABS_SERVERS_ARRAY_SERVER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/placement/shard_map.h"
#include "src/server/data_server.h"

namespace tabs::servers {

class ArrayServer : public server::DataServer {
 public:
  ArrayServer(const server::ServerContext& ctx, std::uint32_t cells,
              size_t buffer_frames = 1024);
  // Sharded-service constructor: this instance holds its slice's share of a
  // `total_cells`-cell logical array (interleaved partitioning; the handle
  // routes global indices and sends local ones).
  ArrayServer(const server::ServerContext& ctx, placement::ShardSlice slice,
              std::uint64_t total_cells, size_t buffer_frames = 1024);

  std::uint32_t max_cell() const { return cells_; }
  const placement::ShardSlice& shard() const { return slice_; }

  // FUNCTION GetCell(cellNum: integer): integer
  Result<std::int32_t> GetCell(const server::Tx& tx, std::uint32_t cell);
  // PROCEDURE SetCell(cellNum: integer; value: integer)
  Status SetCell(const server::Tx& tx, std::uint32_t cell, std::int32_t value);

  // Asynchronous variants (the communication fast path): the operation is
  // pipelined when this server is remote from `tx`; Await/AsyncOps joins it.
  sim::FuturePtr<Result<std::int32_t>> AsyncGetCell(const server::Tx& tx, std::uint32_t cell);
  sim::FuturePtr<Result<bool>> AsyncSetCell(const server::Tx& tx, std::uint32_t cell,
                                            std::int32_t value);

  // Coalesced batches: independent cells travel together, chunked by the
  // origin CM's op_coalesce_batch. One future per wire message.
  std::vector<sim::FuturePtr<Result<std::vector<Result<std::int32_t>>>>> AsyncGetCells(
      const server::Tx& tx, const std::vector<std::uint32_t>& cells);
  std::vector<sim::FuturePtr<Result<std::vector<Result<bool>>>>> AsyncSetCells(
      const server::Tx& tx, const std::vector<std::pair<std::uint32_t, std::int32_t>>& writes);

  // The cell's ObjectId (address arithmetic, exposed for tests/benches).
  ObjectId CellOid(std::uint32_t cell) const {
    return CreateObjectId(cell * sizeof(std::int32_t), sizeof(std::int32_t));
  }

 private:
  // The operation bodies, shared by the synchronous and pipelined entry
  // points (identical locking, paging, and logging either way).
  std::function<Result<std::int32_t>()> ReadOp(const server::Tx& tx, std::uint32_t cell);
  std::function<Result<bool>()> WriteOp(const server::Tx& tx, std::uint32_t cell,
                                        std::int32_t value);

  std::uint32_t cells_;
  placement::ShardSlice slice_;  // {0, 1} unless service-sharded
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_ARRAY_SERVER_H_
