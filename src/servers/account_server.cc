#include "src/servers/account_server.h"

#include <cstring>
#include <set>

#include "src/sim/fault_injector.h"

namespace tabs::servers {

namespace {

server::DataServer::Options MakeOptions(std::uint32_t accounts) {
  server::DataServer::Options o;
  o.pages = (accounts * 8 + kPageSize - 1) / kPageSize;
  // Typed compatibility: increments and decrements commute with each other
  // (and with themselves); reads conflict with updates; exclusive conflicts
  // with everything.
  lock::CompatibilityMatrix m(4);
  m.SetCompatible(lock::kShared, lock::kShared);
  m.SetCompatible(AccountServer::kIncrement, AccountServer::kIncrement);
  m.SetCompatible(AccountServer::kDecrement, AccountServer::kDecrement);
  m.SetCompatible(AccountServer::kIncrement, AccountServer::kDecrement);
  o.matrix = m;
  return o;
}

}  // namespace

AccountServer::AccountServer(const server::ServerContext& ctx, std::uint32_t accounts)
    : DataServer(ctx, MakeOptions(accounts)), accounts_(accounts) {
  RegisterOperation("deposit", [this](const Bytes& args, Lsn lsn) {
    std::uint32_t account;
    std::int64_t amount;
    std::memcpy(&account, args.data(), 4);
    std::memcpy(&amount, args.data() + 4, 8);
    ApplyDelta(account, amount, lsn);
  });
  RegisterOperation("withdraw", [this](const Bytes& args, Lsn lsn) {
    std::uint32_t account;
    std::int64_t amount;
    std::memcpy(&account, args.data(), 4);
    std::memcpy(&amount, args.data() + 4, 8);
    ApplyDelta(account, -amount, lsn);
  });
}

AccountServer::AccountServer(const server::ServerContext& ctx, placement::ShardSlice slice,
                             std::uint64_t total_accounts)
    : AccountServer(ctx, static_cast<std::uint32_t>(slice.LocalSize(total_accounts))) {
  slice_ = slice;
}

std::int64_t AccountServer::CurrentBalance(std::uint32_t account) {
  Bytes b = ReadObject(BalanceOid(account));
  std::int64_t v;
  std::memcpy(&v, b.data(), 8);
  return v;
}

void AccountServer::ApplyDelta(std::uint32_t account, std::int64_t delta, Lsn lsn) {
  std::int64_t v = CurrentBalance(account) + delta;
  Bytes nv(8);
  std::memcpy(nv.data(), &v, 8);
  ObjectId oid = BalanceOid(account);
  PinObject(oid);
  segment().Write(oid, nv, lsn);
  UnPinObject(oid);
}

Status AccountServer::LogDelta(const server::Tx& tx, std::uint32_t account,
                               std::int64_t delta, const char* op, const char* undo_op) {
  Bytes args(12);
  std::uint32_t acc = account;
  std::int64_t amount = delta;
  std::memcpy(args.data(), &acc, 4);
  std::memcpy(args.data() + 4, &amount, 8);
  LogOperationRecord(tx, op, args, undo_op, args,
                     {{segment().id(), BalanceOid(account).FirstPage()}});
  return Status::kOk;
}

Status AccountServer::Deposit(const server::Tx& tx, std::uint32_t account,
                              std::int64_t amount) {
  auto r = Call<bool>(tx, "Deposit", [this, tx, account, amount]() -> Result<bool> {
    if (account >= accounts_ || amount <= 0) {
      return Status::kOutOfRange;
    }
    Status s = LockObject(tx, BalanceOid(account), kIncrement);
    if (s != Status::kOk) {
      return s;
    }
    pending_increment_[account] += amount;
    txn_increments_[tx.tid][account] += amount;
    LogDelta(tx, account, amount, "deposit", "withdraw");
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status AccountServer::Withdraw(const server::Tx& tx, std::uint32_t account,
                               std::int64_t amount) {
  auto r = Call<bool>(tx, "Withdraw", [this, tx, account, amount]() -> Result<bool> {
    if (account >= accounts_ || amount <= 0) {
      return Status::kOutOfRange;
    }
    Status s = LockObject(tx, BalanceOid(account), kDecrement);
    if (s != Status::kOk) {
      return s;
    }
    // Escrow admission: the guaranteed balance assumes every concurrent
    // withdrawal commits and every uncommitted deposit (already applied to
    // the in-memory balance) aborts.
    std::int64_t guaranteed = CurrentBalance(account) - pending_decrement_[account] -
                              pending_increment_[account];
    if (guaranteed < amount) {
      if (!ctx_.tm->queue_mode()) {
        return Status::kConflict;  // might overdraw; reject rather than wait
      }
      // Queue mode: park until escrowed funds free up (a concurrent
      // withdrawal aborts or a deposit commits), bounded by the lock
      // timeout. The kDecrement lock is already held and stays held — it is
      // compatible with every other update, so deposits flow underneath.
      sim::Scheduler& sched = substrate().scheduler();
      SimTime deadline = sched.Now() + options_.lock_timeout;
      FAULT_POINT(substrate(), "escrow.wait");
      while (guaranteed < amount) {
        SimTime remaining = deadline - sched.Now();
        if (remaining <= 0) {
          return Status::kConflict;  // funds never appeared
        }
        sched.Wait(escrow_waiters_[account], remaining);
        if (ctx_.tm->RefusesOps(tx.tid)) {
          return Status::kAborted;  // cascade-aborted while parked
        }
        guaranteed = CurrentBalance(account) - pending_decrement_[account] -
                     pending_increment_[account];
      }
    }
    pending_decrement_[account] += amount;
    txn_decrements_[tx.tid][account] += amount;
    LogDelta(tx, account, amount, "withdraw", "deposit");
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Result<std::int64_t> AccountServer::ReadBalance(const server::Tx& tx, std::uint32_t account) {
  return Call<std::int64_t>(tx, "ReadBalance", [this, tx, account]() -> Result<std::int64_t> {
    if (account >= accounts_) {
      return Status::kOutOfRange;
    }
    Status s = LockObject(tx, BalanceOid(account), lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    return CurrentBalance(account);
  });
}

void AccountServer::SettleEscrow(const TransactionId& tid) {
  std::set<std::uint32_t> touched;
  auto dec = txn_decrements_.find(tid);
  if (dec != txn_decrements_.end()) {
    for (auto& [account, amount] : dec->second) {
      pending_decrement_[account] -= amount;
      touched.insert(account);
    }
    txn_decrements_.erase(dec);
  }
  auto inc = txn_increments_.find(tid);
  if (inc != txn_increments_.end()) {
    for (auto& [account, amount] : inc->second) {
      pending_increment_[account] -= amount;
      touched.insert(account);
    }
    txn_increments_.erase(inc);
  }
  if (escrow_waiters_.empty()) {
    return;  // mode off, or nothing parked
  }
  // Settling may have freed escrowed funds: wake parked withdrawals on the
  // touched accounts (they re-test and re-park if still short). std::set
  // iteration keeps the wake order deterministic.
  for (std::uint32_t account : touched) {
    auto it = escrow_waiters_.find(account);
    if (it != escrow_waiters_.end() && !it->second.empty()) {
      substrate().scheduler().NotifyAll(it->second);
    }
  }
}

void AccountServer::CancelLockWaits(const TransactionId& tid) {
  DataServer::CancelLockWaits(tid);
  // The victim may be parked in the escrow wait rather than a lock wait:
  // wake everything; innocents re-test and re-park, the victim unwinds
  // through RefusesOps.
  for (auto& [account, q] : escrow_waiters_) {
    if (!q.empty()) {
      substrate().scheduler().NotifyAll(q);
    }
  }
}

void AccountServer::OnCommit(const TransactionId& tid) {
  SettleEscrow(tid);
  DataServer::OnCommit(tid);
}

void AccountServer::OnAbort(const TransactionId& tid) {
  SettleEscrow(tid);
  DataServer::OnAbort(tid);
}

void AccountServer::OnSubtxnCommit(const TransactionId& child, const TransactionId& parent) {
  auto move_into = [&](std::map<TransactionId, PerAccount>& table) {
    auto it = table.find(child);
    if (it != table.end()) {
      auto& into = table[parent];
      for (auto& [account, amount] : it->second) {
        into[account] += amount;
      }
      table.erase(child);
    }
  };
  move_into(txn_decrements_);
  move_into(txn_increments_);
  DataServer::OnSubtxnCommit(child, parent);
}

}  // namespace tabs::servers
