#include "src/servers/btree_server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace tabs::servers {

// Node wire format (one page):
//   u8 is_leaf; u8 nkeys; u16 pad;
//   leaf:     nkeys x {key[32], value[64]}                    (max 5)
//   internal: child0 u32; nkeys x {key[32], child u32}        (max 12)
// An internal node's key[i] is the smallest key reachable through child i+1.
struct BTreeServer::Node {
  bool is_leaf = true;
  std::vector<std::string> keys;
  std::vector<std::string> values;     // leaves only
  std::vector<PageNumber> children;    // internal only, size == keys.size() + 1

  static constexpr int kLeafMax = 5;
  static constexpr int kInternalMax = 12;

  Bytes Serialize() const {
    Bytes out(kPageSize, 0);
    out[0] = is_leaf ? 1 : 0;
    out[1] = static_cast<std::uint8_t>(keys.size());
    size_t pos = 4;
    auto put_str = [&](const std::string& s, size_t cap) {
      assert(s.size() <= cap);
      std::uint8_t len = static_cast<std::uint8_t>(s.size());
      out[pos++] = len;
      std::memcpy(out.data() + pos, s.data(), s.size());
      pos += cap;
    };
    if (is_leaf) {
      for (size_t i = 0; i < keys.size(); ++i) {
        put_str(keys[i], kMaxKey);
        put_str(values[i], kMaxValue);
      }
    } else {
      std::memcpy(out.data() + pos, &children[0], 4);
      pos += 4;
      for (size_t i = 0; i < keys.size(); ++i) {
        put_str(keys[i], kMaxKey);
        std::memcpy(out.data() + pos, &children[i + 1], 4);
        pos += 4;
      }
    }
    assert(pos <= kPageSize);
    return out;
  }

  static Node Deserialize(const Bytes& in) {
    Node n;
    n.is_leaf = in[0] != 0;
    int nkeys = in[1];
    size_t pos = 4;
    auto get_str = [&](size_t cap) {
      std::uint8_t len = in[pos++];
      std::string s(reinterpret_cast<const char*>(in.data() + pos), len);
      pos += cap;
      return s;
    };
    if (n.is_leaf) {
      for (int i = 0; i < nkeys; ++i) {
        n.keys.push_back(get_str(kMaxKey));
        n.values.push_back(get_str(kMaxValue));
      }
    } else {
      PageNumber c;
      std::memcpy(&c, in.data() + pos, 4);
      pos += 4;
      n.children.push_back(c);
      for (int i = 0; i < nkeys; ++i) {
        n.keys.push_back(get_str(kMaxKey));
        std::memcpy(&c, in.data() + pos, 4);
        pos += 4;
        n.children.push_back(c);
      }
    }
    return n;
  }
};

namespace {
server::DataServer::Options MakeOptions(PageNumber pool_pages) {
  server::DataServer::Options o;
  o.pages = pool_pages;
  return o;
}
}  // namespace

BTreeServer::BTreeServer(const server::ServerContext& ctx, PageNumber pool_pages)
    : DataServer(ctx, MakeOptions(pool_pages)), pool_pages_(pool_pages) {
  assert(pool_pages_ >= 4);
  assert(32 + pool_pages_ <= kPageSize && "allocator byte map must fit in the meta page");
}

BTreeServer::BTreeServer(const server::ServerContext& ctx, placement::ShardSlice slice,
                         PageNumber pool_pages)
    : BTreeServer(ctx, pool_pages) {
  slice_ = slice;
}

std::uint32_t BTreeServer::ReadU32(const ObjectId& oid) {
  Bytes b = ReadObject(oid);
  std::uint32_t v;
  std::memcpy(&v, b.data(), 4);
  return v;
}

void BTreeServer::WriteU32(const server::Tx& tx, const ObjectId& oid, std::uint32_t v) {
  PinAndBuffer(tx, oid);
  std::memcpy(Staged(tx, oid).data(), &v, 4);
  LogAndUnPin(tx, oid);
}

Result<PageNumber> BTreeServer::AllocatePage(const server::Tx& tx) {
  // The recoverable storage allocator: an in-use byte per page, individually
  // locked; if the allocating transaction aborts, the byte reverts and the
  // page is reclaimed.
  for (PageNumber p = 1; p < pool_pages_; ++p) {
    ObjectId byte = AllocByteOid(p);
    if (IsObjectLocked(byte)) {
      continue;  // another transaction is allocating/freeing it
    }
    if (ReadObject(byte)[0] != 0) {
      continue;  // in use
    }
    if (!ConditionallyLockObject(tx, byte, lock::kExclusive)) {
      continue;
    }
    if (ReadObject(byte)[0] != 0) {
      continue;  // raced; lock retained harmlessly until commit
    }
    PinAndBuffer(tx, byte);
    Staged(tx, byte)[0] = 1;
    LogAndUnPin(tx, byte);
    return p;
  }
  return Status::kConflict;  // pool exhausted
}

void BTreeServer::FreePage(const server::Tx& tx, PageNumber page) {
  ObjectId byte = AllocByteOid(page);
  // The freeing transaction keeps the byte locked until commit, so the page
  // cannot be reused while the free might still be undone.
  if (LockObject(tx, byte, lock::kExclusive) != Status::kOk) {
    return;  // leave allocated; a leak beats a deadlock here
  }
  PinAndBuffer(tx, byte);
  Staged(tx, byte)[0] = 0;
  LogAndUnPin(tx, byte);
}

BTreeServer::Node BTreeServer::ReadNode(PageNumber page) {
  return Node::Deserialize(ReadObject(NodeOid(page)));
}

void BTreeServer::WriteNode(const server::Tx& tx, PageNumber page, const Node& node) {
  ObjectId oid = NodeOid(page);
  PinAndBuffer(tx, oid);
  Staged(tx, oid) = node.Serialize();
  LogAndUnPin(tx, oid);
}

PageNumber BTreeServer::DescendToLeaf(const std::string& key, std::vector<PathEntry>* path) {
  PageNumber page = ReadU32(MetaRootOid());
  if (page == 0) {
    return 0;
  }
  for (;;) {
    Node node = ReadNode(page);
    if (node.is_leaf) {
      return page;
    }
    int idx = static_cast<int>(
        std::upper_bound(node.keys.begin(), node.keys.end(), key) - node.keys.begin());
    if (path != nullptr) {
      path->push_back({page, idx});
    }
    page = node.children[static_cast<size_t>(idx)];
  }
}

Result<std::string> BTreeServer::Lookup(const server::Tx& tx, const std::string& key) {
  return Call<std::string>(tx, "Lookup", [this, tx, key]() -> Result<std::string> {
    Status s = LockObject(tx, TreeLockOid(), lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    PageNumber leaf = DescendToLeaf(key, nullptr);
    if (leaf == 0) {
      return Status::kNotFound;
    }
    Node node = ReadNode(leaf);
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) {
      return Status::kNotFound;
    }
    return node.values[static_cast<size_t>(it - node.keys.begin())];
  });
}

Status BTreeServer::InsertIntoLeaf(const server::Tx& tx, const std::string& key,
                                   const std::string& value, bool allow_exists,
                                   bool require_exists) {
  if (key.empty() || key.size() > kMaxKey || value.size() > kMaxValue) {
    return Status::kOutOfRange;
  }
  // Locks first, pins second (LockAndMark discipline): the tree lock covers
  // every structural change this operation makes.
  Status s = LockAndMark(tx, TreeLockOid(), lock::kExclusive);
  if (s != Status::kOk) {
    return s;
  }

  PageNumber root = ReadU32(MetaRootOid());
  if (root == 0) {
    auto page = AllocatePage(tx);
    if (!page.ok()) {
      return page.status();
    }
    if (require_exists) {
      return Status::kNotFound;
    }
    Node leaf;
    leaf.is_leaf = true;
    leaf.keys.push_back(key);
    leaf.values.push_back(value);
    WriteNode(tx, page.value(), leaf);
    WriteU32(tx, MetaRootOid(), page.value());
    WriteU32(tx, MetaCountOid(), 1);
    return Status::kOk;
  }

  std::vector<PathEntry> path;
  PageNumber leaf_page = DescendToLeaf(key, &path);
  Node leaf = ReadNode(leaf_page);
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  size_t idx = static_cast<size_t>(it - leaf.keys.begin());
  bool exists = it != leaf.keys.end() && *it == key;

  if (exists) {
    if (!allow_exists) {
      return Status::kConflict;
    }
    leaf.values[idx] = value;
    WriteNode(tx, leaf_page, leaf);
    return Status::kOk;
  }
  if (require_exists) {
    return Status::kNotFound;
  }

  leaf.keys.insert(leaf.keys.begin() + static_cast<std::ptrdiff_t>(idx), key);
  leaf.values.insert(leaf.values.begin() + static_cast<std::ptrdiff_t>(idx), value);
  WriteU32(tx, MetaCountOid(), ReadU32(MetaCountOid()) + 1);

  if (leaf.keys.size() <= Node::kLeafMax) {
    WriteNode(tx, leaf_page, leaf);
    return Status::kOk;
  }

  // Split the leaf, then propagate separators up the recorded path,
  // splitting internals as needed.
  std::string sep;
  PageNumber new_page = 0;
  {
    auto right_page = AllocatePage(tx);
    if (!right_page.ok()) {
      return right_page.status();
    }
    size_t mid = leaf.keys.size() / 2;
    Node right;
    right.is_leaf = true;
    right.keys.assign(leaf.keys.begin() + static_cast<std::ptrdiff_t>(mid), leaf.keys.end());
    right.values.assign(leaf.values.begin() + static_cast<std::ptrdiff_t>(mid),
                        leaf.values.end());
    leaf.keys.resize(mid);
    leaf.values.resize(mid);
    sep = right.keys.front();
    WriteNode(tx, leaf_page, leaf);
    WriteNode(tx, right_page.value(), right);
    new_page = right_page.value();
  }

  PageNumber child_left = leaf_page;
  while (!path.empty()) {
    PathEntry entry = path.back();
    path.pop_back();
    Node parent = ReadNode(entry.page);
    parent.keys.insert(parent.keys.begin() + entry.child_index, sep);
    parent.children.insert(parent.children.begin() + entry.child_index + 1, new_page);
    if (parent.keys.size() <= Node::kInternalMax) {
      WriteNode(tx, entry.page, parent);
      return Status::kOk;
    }
    auto right_page = AllocatePage(tx);
    if (!right_page.ok()) {
      return right_page.status();
    }
    size_t mid = parent.keys.size() / 2;
    std::string up = parent.keys[mid];
    Node right;
    right.is_leaf = false;
    right.keys.assign(parent.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                      parent.keys.end());
    right.children.assign(parent.children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                          parent.children.end());
    parent.keys.resize(mid);
    parent.children.resize(mid + 1);
    WriteNode(tx, entry.page, parent);
    WriteNode(tx, right_page.value(), right);
    sep = up;
    child_left = entry.page;
    new_page = right_page.value();
  }
  (void)child_left;

  // The root itself split: grow the tree by one level.
  auto new_root = AllocatePage(tx);
  if (!new_root.ok()) {
    return new_root.status();
  }
  Node root_node;
  root_node.is_leaf = false;
  root_node.children.push_back(ReadU32(MetaRootOid()));
  root_node.keys.push_back(sep);
  root_node.children.push_back(new_page);
  WriteNode(tx, new_root.value(), root_node);
  WriteU32(tx, MetaRootOid(), new_root.value());
  return Status::kOk;
}

Status BTreeServer::Insert(const server::Tx& tx, const std::string& key,
                           const std::string& value) {
  auto r = Call<bool>(tx, "Insert", [&]() -> Result<bool> {
    Status s = InsertIntoLeaf(tx, key, value, /*allow_exists=*/false, /*require_exists=*/false);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status BTreeServer::Update(const server::Tx& tx, const std::string& key,
                           const std::string& value) {
  auto r = Call<bool>(tx, "Update", [&]() -> Result<bool> {
    Status s = InsertIntoLeaf(tx, key, value, /*allow_exists=*/true, /*require_exists=*/true);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status BTreeServer::Upsert(const server::Tx& tx, const std::string& key,
                           const std::string& value) {
  auto r = Call<bool>(tx, "Upsert", [&]() -> Result<bool> {
    Status s = InsertIntoLeaf(tx, key, value, /*allow_exists=*/true, /*require_exists=*/false);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status BTreeServer::Remove(const server::Tx& tx, const std::string& key) {
  auto r = Call<bool>(tx, "Remove", [&]() -> Result<bool> {
    Status s = LockAndMark(tx, TreeLockOid(), lock::kExclusive);
    if (s != Status::kOk) {
      return s;
    }
    std::vector<PathEntry> path;
    PageNumber leaf_page = DescendToLeaf(key, &path);
    if (leaf_page == 0) {
      return Status::kNotFound;
    }
    Node leaf = ReadNode(leaf_page);
    auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    if (it == leaf.keys.end() || *it != key) {
      return Status::kNotFound;
    }
    size_t idx = static_cast<size_t>(it - leaf.keys.begin());
    leaf.keys.erase(leaf.keys.begin() + static_cast<std::ptrdiff_t>(idx));
    leaf.values.erase(leaf.values.begin() + static_cast<std::ptrdiff_t>(idx));
    WriteNode(tx, leaf_page, leaf);
    WriteU32(tx, MetaCountOid(), ReadU32(MetaCountOid()) - 1);
    // Lazy structure maintenance: an emptied leaf is unlinked from its
    // parent and returned to the pool when it has a parent to unlink from.
    if (leaf.keys.empty() && !path.empty()) {
      PathEntry parent_entry = path.back();
      Node parent = ReadNode(parent_entry.page);
      if (parent.keys.size() > 0) {
        size_t ci = static_cast<size_t>(parent_entry.child_index);
        parent.children.erase(parent.children.begin() + static_cast<std::ptrdiff_t>(ci));
        size_t key_idx = ci > 0 ? ci - 1 : 0;
        parent.keys.erase(parent.keys.begin() + static_cast<std::ptrdiff_t>(key_idx));
        WriteNode(tx, parent_entry.page, parent);
        FreePage(tx, leaf_page);
      }
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Result<std::vector<std::pair<std::string, std::string>>> BTreeServer::Scan(
    const server::Tx& tx, const std::string& first, const std::string& last) {
  using Entries = std::vector<std::pair<std::string, std::string>>;
  return Call<Entries>(tx, "Scan", [&]() -> Result<Entries> {
    Status s = LockObject(tx, TreeLockOid(), lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    Entries out;
    PageNumber root = ReadU32(MetaRootOid());
    if (root == 0) {
      return out;
    }
    // Depth-first in-order walk (trees are shallow: fanout 13, pool-bounded).
    std::function<void(PageNumber)> walk = [&](PageNumber page) {
      Node node = ReadNode(page);
      if (node.is_leaf) {
        for (size_t i = 0; i < node.keys.size(); ++i) {
          if (node.keys[i] >= first && node.keys[i] <= last) {
            out.emplace_back(node.keys[i], node.values[i]);
          }
        }
        return;
      }
      for (PageNumber child : node.children) {
        walk(child);
      }
    };
    walk(root);
    return out;
  });
}

Result<std::uint32_t> BTreeServer::Size(const server::Tx& tx) {
  return Call<std::uint32_t>(tx, "Size", [&]() -> Result<std::uint32_t> {
    Status s = LockObject(tx, TreeLockOid(), lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    return ReadU32(MetaCountOid());
  });
}

bool BTreeServer::CheckInvariants() {
  PageNumber root = ReadU32(MetaRootOid());
  if (root == 0) {
    return true;
  }
  bool ok = true;
  std::string prev;
  bool have_prev = false;
  std::function<void(PageNumber, const std::string&, const std::string&)> walk =
      [&](PageNumber page, const std::string& lo, const std::string& hi) {
        Node node = ReadNode(page);
        if (node.is_leaf) {
          for (const std::string& k : node.keys) {
            if (have_prev && !(prev < k)) {
              ok = false;  // global order violated
            }
            if (!lo.empty() && k < lo) {
              ok = false;
            }
            if (!hi.empty() && k >= hi) {
              ok = false;
            }
            prev = k;
            have_prev = true;
          }
          return;
        }
        if (node.children.size() != node.keys.size() + 1) {
          ok = false;
          return;
        }
        for (size_t i = 0; i < node.children.size(); ++i) {
          std::string clo = i == 0 ? lo : node.keys[i - 1];
          std::string chi = i == node.keys.size() ? hi : node.keys[i];
          walk(node.children[i], clo, chi);
        }
      };
  walk(root, "", "");
  return ok;
}

std::uint32_t BTreeServer::AllocatedPages() {
  std::uint32_t n = 0;
  for (PageNumber p = 1; p < pool_pages_; ++p) {
    if (ReadObject(AllocByteOid(p))[0] != 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace tabs::servers
