#include "src/servers/io_server.h"

#include <cstring>
#include <sstream>

namespace tabs::servers {

namespace {
server::DataServer::Options MakeOptions(std::uint32_t area_count) {
  server::DataServer::Options o;
  constexpr std::uint32_t kAreaSize = 24 + 48 * 8 + 2048;
  o.pages = (area_count * kAreaSize + kPageSize - 1) / kPageSize;
  return o;
}
}  // namespace

IoServer::IoServer(const server::ServerContext& ctx, std::uint32_t area_count)
    : DataServer(ctx, MakeOptions(area_count)), area_count_(area_count) {}

std::uint32_t IoServer::ReadU32(const ObjectId& oid) {
  Bytes b = ReadObject(oid);
  std::uint32_t v;
  std::memcpy(&v, b.data(), 4);
  return v;
}

void IoServer::PermanentWriteU32(const server::Tx&, const ObjectId& oid, std::uint32_t v) {
  // A fresh top-level transaction makes the write permanent regardless of
  // what the client transaction later does.
  Status s = ExecuteTransaction([&](const server::Tx& io_tx) {
    if (LockObject(io_tx, oid, lock::kExclusive) != Status::kOk) {
      return Status::kTimeout;
    }
    PinAndBuffer(io_tx, oid);
    std::memcpy(Staged(io_tx, oid).data(), &v, 4);
    LogAndUnPin(io_tx, oid);
    return Status::kOk;
  });
  (void)s;
}

Result<IoAreaId> IoServer::ObtainIOArea(const server::Tx& tx) {
  return Call<IoAreaId>(tx, "ObtainIOArea", [this, tx]() -> Result<IoAreaId> {
    for (IoAreaId area = 0; area < area_count_; ++area) {
      if (IsObjectLocked(StateOid(area))) {
        continue;  // owned by a live transaction
      }
      if (ReadU32(AllocatedOid(area)) != 0) {
        continue;  // still displaying a finished interaction (not destroyed)
      }
      std::uint32_t epoch = ReadU32(EpochOid(area));
      // Start a fresh epoch: clear the area's text, write `aborted` into the
      // state object — all permanent (ExecuteTransaction), then let the
      // CLIENT transaction lock the state object and set `committed`.
      Status s = ExecuteTransaction([&](const server::Tx& io_tx) {
        PermanentWriteU32(io_tx, EpochOid(area), epoch + 1);
        PermanentWriteU32(io_tx, LenOid(area), 0);
        PermanentWriteU32(io_tx, LineCountOid(area), 0);
        PermanentWriteU32(io_tx, AllocatedOid(area), 1);
        PermanentWriteU32(io_tx, StateOid(area), 0);  // aborted
        return Status::kOk;
      });
      if (s != Status::kOk) {
        return Status::kConflict;
      }
      ObjectId state = StateOid(area);
      if (LockObject(tx, state, lock::kExclusive) != Status::kOk) {
        return Status::kTimeout;
      }
      PinAndBuffer(tx, state);
      std::uint32_t committed = 1;
      std::memcpy(Staged(tx, state).data(), &committed, 4);
      LogAndUnPin(tx, state);
      // Now: locked -> in progress; on commit the 1 stays; on abort recovery
      // resets the old value 0 = aborted. Exactly the paper's trick.
      return area;
    }
    return Status::kConflict;  // no free area
  });
}

Status IoServer::DestroyIOArea(const server::Tx& tx, IoAreaId area) {
  auto r = Call<bool>(tx, "DestroyIOArea", [this, tx, area]() -> Result<bool> {
    if (area >= area_count_) {
      return Status::kOutOfRange;
    }
    Status s = ExecuteTransaction([&](const server::Tx& io_tx) {
      PermanentWriteU32(io_tx, LenOid(area), 0);
      PermanentWriteU32(io_tx, LineCountOid(area), 0);
      PermanentWriteU32(io_tx, AllocatedOid(area), 0);  // free for reuse
      return Status::kOk;
    });
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status IoServer::AppendLine(const server::Tx& tx, IoAreaId area, const std::string& text,
                            bool is_input) {
  if (area >= area_count_) {
    return Status::kOutOfRange;
  }
  // "The IO server displays all output as it occurs": the characters are
  // written in their own top-level transaction so they persist even if the
  // client aborts.
  return ExecuteTransaction([&](const server::Tx& io_tx) {
    std::uint32_t len = ReadU32(LenOid(area));
    std::uint32_t count = ReadU32(LineCountOid(area));
    std::uint32_t n = static_cast<std::uint32_t>(text.size());
    if (count >= kMaxLines || len + n > kTextBytes) {
      return Status::kConflict;  // area full
    }
    // Text bytes, written in fixed 128-byte blocks: logged objects need
    // stable identities (the value algorithm's backward pass tracks them by
    // exact ObjectId), so appends of varying length must not mint
    // varying-shape overlapping objects across epochs.
    constexpr std::uint32_t kBlock = 128;
    std::uint32_t written = 0;
    while (written < n) {
      std::uint32_t pos = len + written;
      std::uint32_t block = pos / kBlock;
      std::uint32_t in_block = pos % kBlock;
      std::uint32_t chunk = std::min(kBlock - in_block, n - written);
      ObjectId text_obj = TextOid(area, block * kBlock, kBlock);
      if (LockObject(io_tx, text_obj, lock::kExclusive) != Status::kOk) {
        return Status::kTimeout;
      }
      PinAndBuffer(io_tx, text_obj);
      std::memcpy(Staged(io_tx, text_obj).data() + in_block, text.data() + written, chunk);
      LogAndUnPin(io_tx, text_obj);
      written += chunk;
    }
    // Line-table entry: {offset u16, len u16, input u8}.
    ObjectId line_obj = LineOid(area, count);
    if (LockObject(io_tx, line_obj, lock::kExclusive) != Status::kOk) {
      return Status::kTimeout;
    }
    PinAndBuffer(io_tx, line_obj);
    Bytes& e = Staged(io_tx, line_obj);
    std::uint16_t off16 = static_cast<std::uint16_t>(len);
    std::uint16_t len16 = static_cast<std::uint16_t>(n);
    std::memcpy(e.data(), &off16, 2);
    std::memcpy(e.data() + 2, &len16, 2);
    e[4] = is_input ? 1 : 0;
    LogAndUnPin(io_tx, line_obj);
    PermanentWriteU32(io_tx, LenOid(area), len + n);
    PermanentWriteU32(io_tx, LineCountOid(area), count + 1);
    return Status::kOk;
  });
}

Status IoServer::WriteToArea(const server::Tx& tx, IoAreaId area, const std::string& text) {
  auto r = Call<bool>(tx, "WriteToArea", [this, tx, area, text]() -> Result<bool> {
    if (area >= area_count_) {
      return Status::kOutOfRange;
    }
    partial_line_[area] += text;
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Status IoServer::WriteLnToArea(const server::Tx& tx, IoAreaId area, const std::string& text) {
  auto r = Call<bool>(tx, "WriteLnToArea", [this, tx, area, text]() -> Result<bool> {
    std::string full = text;
    auto partial = partial_line_.find(area);
    if (partial != partial_line_.end()) {
      full = partial->second + text;
      partial_line_.erase(partial);
    }
    Status s = AppendLine(tx, area, full, /*is_input=*/false);
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

void IoServer::TypeInput(IoAreaId area, std::string line) {
  pending_input_[area].push_back(std::move(line));
  sim::Scheduler& sched = substrate().scheduler();
  if (sched.in_task()) {
    sched.NotifyAll(input_arrived_);
  }
}

Result<std::string> IoServer::BlockForInput(IoAreaId area) {
  auto& queue = pending_input_[area];
  while (queue.empty()) {
    if (!substrate().scheduler().Wait(input_arrived_, 60'000'000)) {
      return Status::kTimeout;  // conversational patience has limits
    }
  }
  std::string line = std::move(queue.front());
  queue.pop_front();
  return line;
}

Result<char> IoServer::ReadCharFromArea(const server::Tx& tx, IoAreaId area) {
  return Call<char>(tx, "ReadCharFromArea", [this, tx, area]() -> Result<char> {
    auto line = BlockForInput(area);
    if (!line.ok()) {
      return line.status();
    }
    char c = line.value().empty() ? '\n' : line.value()[0];
    // Unconsumed characters go back to the front of the input queue.
    if (line.value().size() > 1) {
      pending_input_[area].push_front(line.value().substr(1));
    }
    Status s = AppendLine(tx, area, std::string(1, c), /*is_input=*/true);
    if (s != Status::kOk) {
      return s;
    }
    return c;
  });
}

Result<std::string> IoServer::ReadLineFromArea(const server::Tx& tx, IoAreaId area) {
  return Call<std::string>(tx, "ReadLineFromArea", [this, tx, area]() -> Result<std::string> {
    auto line = BlockForInput(area);
    if (!line.ok()) {
      return line.status();
    }
    Status s = AppendLine(tx, area, line.value(), /*is_input=*/true);
    if (s != Status::kOk) {
      return s;
    }
    return line.value();
  });
}

std::vector<DisplayLine> IoServer::Render(IoAreaId area) {
  std::vector<DisplayLine> out;
  if (area >= area_count_) {
    return out;
  }
  // Transaction state via the paper's state-object protocol.
  DisplayState state;
  if (IsObjectLocked(StateOid(area))) {
    state = DisplayState::kInProgress;
  } else if (ReadU32(StateOid(area)) == 1) {
    state = DisplayState::kCommitted;
  } else {
    state = DisplayState::kAborted;
  }
  std::uint32_t count = ReadU32(LineCountOid(area));
  for (std::uint32_t i = 0; i < count && i < kMaxLines; ++i) {
    Bytes e = ReadObject(LineOid(area, i));
    std::uint16_t off16;
    std::uint16_t len16;
    std::memcpy(&off16, e.data(), 2);
    std::memcpy(&len16, e.data() + 2, 2);
    DisplayLine line;
    if (len16 > 0) {
      Bytes text = ReadObject(TextOid(area, off16, len16));
      line.text.assign(text.begin(), text.end());
    }
    line.state = state;
    line.is_input = e[4] != 0;
    out.push_back(std::move(line));
  }
  return out;
}

std::string IoServer::RenderScreen() {
  std::ostringstream os;
  for (IoAreaId area = 0; area < area_count_; ++area) {
    auto lines = Render(area);
    if (lines.empty()) {
      continue;
    }
    os << "--- area " << area << " ---\n";
    for (const DisplayLine& l : lines) {
      const char* mark = "";
      switch (l.state) {
        case DisplayState::kInProgress:
          mark = "[gray] ";
          break;
        case DisplayState::kCommitted:
          mark = "[black] ";
          break;
        case DisplayState::kAborted:
          mark = "[struck] ";
          break;
      }
      os << mark << (l.is_input ? "[input] " : "") << l.text << "\n";
    }
  }
  return os.str();
}

}  // namespace tabs::servers
