// A transactional file server — the paper's Section 2.2 cites Paxton's
// client-based transactional file system as prior art, and Section 7 names
// file systems first among the applications that "could be based on the
// implementation techniques that our existing servers use". This server is
// that application built on the TABS server library:
//
//  * a fixed table of file slots (name, size, page list) in the recoverable
//    segment, each slot individually lockable — two transactions can work on
//    different files concurrently;
//  * data pages allocated from a weak-queue-style recoverable allocator
//    (same technique as the B-tree server), so an aborted Create or Append
//    returns its pages;
//  * reads take shared slot locks, writes exclusive ones; every mutation
//    goes through PinAndBuffer/LogAndUnPin value logging, so file contents
//    are failure atomic and permanent, and crash recovery is the standard
//    single backward pass.
//
// Limits (documented, not hidden): at most kMaxFiles files, names up to
// kNameBytes, each file up to kMaxFilePages pages (page-granular storage).

#ifndef TABS_SERVERS_FILE_SERVER_H_
#define TABS_SERVERS_FILE_SERVER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/server/data_server.h"

namespace tabs::servers {

class FileServer : public server::DataServer {
 public:
  static constexpr std::uint32_t kMaxFiles = 32;
  static constexpr std::uint32_t kNameBytes = 24;
  static constexpr std::uint32_t kMaxFilePages = 16;
  static constexpr std::uint32_t kMaxFileBytes = kMaxFilePages * kPageSize;

  FileServer(const server::ServerContext& ctx, PageNumber data_pages = 256);

  // kConflict if the name exists or the table is full.
  Status Create(const server::Tx& tx, const std::string& name);
  // Removes the file and frees its pages (reclaimed at commit).
  Status Remove(const server::Tx& tx, const std::string& name);
  // Overwrites [offset, offset+data.size()), growing the file as needed.
  Status Write(const server::Tx& tx, const std::string& name, std::uint32_t offset,
               const Bytes& data);
  Status Append(const server::Tx& tx, const std::string& name, const Bytes& data);
  // Reads up to `length` bytes from `offset` (short reads at end of file).
  Result<Bytes> Read(const server::Tx& tx, const std::string& name, std::uint32_t offset,
                     std::uint32_t length);
  Result<std::uint32_t> Size(const server::Tx& tx, const std::string& name);
  Result<std::vector<std::string>> List(const server::Tx& tx);

  // Allocator introspection for tests.
  std::uint32_t AllocatedPages();

 private:
  // Segment layout:
  //   page 0:   allocator in-use bytes for data pages [kFirstDataPage, end)
  //   pages 1..kSlotPages: the file table, kMaxFiles slots of kSlotSize bytes
  //   pages kFirstDataPage..: file data pages
  // Slot layout: u8 in_use; name[kNameBytes] (len-prefixed); u32 size;
  //              u32 page_count; u32 pages[kMaxFilePages].
  static constexpr std::uint32_t kSlotSize = 1 + 1 + kNameBytes + 4 + 4 + 4 * kMaxFilePages;
  static constexpr std::uint32_t kSlotPages =
      (kMaxFiles * kSlotSize + kPageSize - 1) / kPageSize;
  static constexpr PageNumber kFirstDataPage = 1 + kSlotPages;

  struct Slot {
    bool in_use = false;
    std::string name;
    std::uint32_t size = 0;
    std::vector<PageNumber> pages;

    Bytes Serialize() const;
    static Slot Deserialize(const Bytes& b);
  };

  ObjectId SlotOid(std::uint32_t index) const {
    return CreateObjectId(kPageSize + index * kSlotSize, kSlotSize);
  }
  ObjectId AllocByteOid(PageNumber page) const {
    return CreateObjectId(page - kFirstDataPage, 1);
  }
  ObjectId DataOid(PageNumber page, std::uint32_t offset_in_page, std::uint32_t len) const {
    return CreateObjectId(page * kPageSize + offset_in_page, len);
  }

  Slot ReadSlot(std::uint32_t index);
  void WriteSlot(const server::Tx& tx, std::uint32_t index, const Slot& slot);
  // Finds the slot holding `name`; locks it in `mode` first-come.
  Result<std::uint32_t> FindSlot(const server::Tx& tx, const std::string& name,
                                 lock::LockMode mode);
  Result<PageNumber> AllocatePage(const server::Tx& tx);
  void FreePage(const server::Tx& tx, PageNumber page);

  PageNumber data_pages_;
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_FILE_SERVER_H_
