#include "src/servers/array_server.h"

#include <cstring>

namespace tabs::servers {

namespace {
server::DataServer::Options MakeOptions(std::uint32_t cells, size_t buffer_frames) {
  server::DataServer::Options o;
  o.pages = (cells * sizeof(std::int32_t) + kPageSize - 1) / kPageSize;
  o.buffer_frames = buffer_frames;
  return o;
}
}  // namespace

ArrayServer::ArrayServer(const server::ServerContext& ctx, std::uint32_t cells,
                         size_t buffer_frames)
    : DataServer(ctx, MakeOptions(cells, buffer_frames)), cells_(cells) {}

Result<std::int32_t> ArrayServer::GetCell(const server::Tx& tx, std::uint32_t cell) {
  return Call<std::int32_t>(tx, "GetCell", [this, tx, cell]() -> Result<std::int32_t> {
    if (cell >= cells_) {
      return Status::kOutOfRange;
    }
    ObjectId obj = CellOid(cell);
    Status s = LockObject(tx, obj, lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    Bytes v = ReadObject(obj);
    std::int32_t value;
    std::memcpy(&value, v.data(), sizeof value);
    return value;
  });
}

Status ArrayServer::SetCell(const server::Tx& tx, std::uint32_t cell, std::int32_t value) {
  auto r = Call<bool>(tx, "SetCell", [this, tx, cell, value]() -> Result<bool> {
    if (cell >= cells_) {
      return Status::kOutOfRange;
    }
    ObjectId obj = CellOid(cell);
    Status s = LockObject(tx, obj, lock::kExclusive);
    if (s != Status::kOk) {
      return s;
    }
    PinAndBuffer(tx, obj);
    std::memcpy(Staged(tx, obj).data(), &value, sizeof value);  // obj.ptr^ := value
    LogAndUnPin(tx, obj);
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

}  // namespace tabs::servers
