#include "src/servers/array_server.h"

#include <cstring>

namespace tabs::servers {

namespace {
server::DataServer::Options MakeOptions(std::uint32_t cells, size_t buffer_frames) {
  server::DataServer::Options o;
  o.pages = (cells * sizeof(std::int32_t) + kPageSize - 1) / kPageSize;
  o.buffer_frames = buffer_frames;
  return o;
}
}  // namespace

ArrayServer::ArrayServer(const server::ServerContext& ctx, std::uint32_t cells,
                         size_t buffer_frames)
    : DataServer(ctx, MakeOptions(cells, buffer_frames)), cells_(cells) {}

ArrayServer::ArrayServer(const server::ServerContext& ctx, placement::ShardSlice slice,
                         std::uint64_t total_cells, size_t buffer_frames)
    : ArrayServer(ctx, static_cast<std::uint32_t>(slice.LocalSize(total_cells)),
                  buffer_frames) {
  slice_ = slice;
}

std::function<Result<std::int32_t>()> ArrayServer::ReadOp(const server::Tx& tx,
                                                          std::uint32_t cell) {
  return [this, tx, cell]() -> Result<std::int32_t> {
    if (cell >= cells_) {
      return Status::kOutOfRange;
    }
    ObjectId obj = CellOid(cell);
    Status s = LockObject(tx, obj, lock::kShared);
    if (s != Status::kOk) {
      return s;
    }
    Bytes v = ReadObject(obj);
    std::int32_t value;
    std::memcpy(&value, v.data(), sizeof value);
    return value;
  };
}

std::function<Result<bool>()> ArrayServer::WriteOp(const server::Tx& tx, std::uint32_t cell,
                                                   std::int32_t value) {
  return [this, tx, cell, value]() -> Result<bool> {
    if (cell >= cells_) {
      return Status::kOutOfRange;
    }
    ObjectId obj = CellOid(cell);
    Status s = LockObject(tx, obj, lock::kExclusive);
    if (s != Status::kOk) {
      return s;
    }
    PinAndBuffer(tx, obj);
    std::memcpy(Staged(tx, obj).data(), &value, sizeof value);  // obj.ptr^ := value
    LogAndUnPin(tx, obj);
    return true;
  };
}

Result<std::int32_t> ArrayServer::GetCell(const server::Tx& tx, std::uint32_t cell) {
  return Call<std::int32_t>(tx, "GetCell", ReadOp(tx, cell));
}

Status ArrayServer::SetCell(const server::Tx& tx, std::uint32_t cell, std::int32_t value) {
  auto r = Call<bool>(tx, "SetCell", WriteOp(tx, cell, value));
  return r.ok() ? Status::kOk : r.status();
}

sim::FuturePtr<Result<std::int32_t>> ArrayServer::AsyncGetCell(const server::Tx& tx,
                                                               std::uint32_t cell) {
  return AsyncCall<std::int32_t>(tx, "GetCell", ReadOp(tx, cell));
}

sim::FuturePtr<Result<bool>> ArrayServer::AsyncSetCell(const server::Tx& tx,
                                                       std::uint32_t cell,
                                                       std::int32_t value) {
  return AsyncCall<bool>(tx, "SetCell", WriteOp(tx, cell, value));
}

std::vector<sim::FuturePtr<Result<std::vector<Result<std::int32_t>>>>>
ArrayServer::AsyncGetCells(const server::Tx& tx, const std::vector<std::uint32_t>& cells) {
  std::vector<std::function<Result<std::int32_t>()>> ops;
  ops.reserve(cells.size());
  for (std::uint32_t cell : cells) {
    ops.push_back(ReadOp(tx, cell));
  }
  return AsyncCallChunks<std::int32_t>(tx, "GetCells", std::move(ops));
}

std::vector<sim::FuturePtr<Result<std::vector<Result<bool>>>>> ArrayServer::AsyncSetCells(
    const server::Tx& tx, const std::vector<std::pair<std::uint32_t, std::int32_t>>& writes) {
  std::vector<std::function<Result<bool>()>> ops;
  ops.reserve(writes.size());
  for (const auto& [cell, value] : writes) {
    ops.push_back(WriteOp(tx, cell, value));
  }
  return AsyncCallChunks<bool>(tx, "SetCells", std::move(ops));
}

}  // namespace tabs::servers
