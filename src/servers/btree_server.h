// The B-tree server (paper Section 4.4).
//
// Maintains collections of directory entries in a B-tree inside a
// recoverable segment; it is the storage engine under the replicated
// directory (Section 4.5). Because nodes are allocated dynamically, the
// server needs a *recoverable storage allocator*: pages are allocated from a
// pool using "techniques similar to the weak queue server" — an in-use byte
// per page, individually locked, so that aborting a transaction that
// allocated storage returns the memory, and pages freed by a transaction
// stay locked (unreusable) until it commits.
//
// The paper's port of the pre-existing B-tree program used LockAndMark /
// PinAndBufferMarkedObjects / LogAndUnPinMarkedObjects so every lock is set
// before anything is pinned (the checkpoint protocol forbids waiting for a
// lock while holding pins); operations here follow the same discipline:
// tree-level two-phase locking, then pin/modify/log node by node.
//
// Simplifications relative to a production B-tree (documented in DESIGN.md):
// deletion removes keys without rebalancing (emptied non-root leaves are
// freed lazily), and keys/values are fixed-capacity byte strings.

#ifndef TABS_SERVERS_BTREE_SERVER_H_
#define TABS_SERVERS_BTREE_SERVER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/placement/shard_map.h"
#include "src/server/data_server.h"

namespace tabs::servers {

class BTreeServer : public server::DataServer {
 public:
  static constexpr std::uint32_t kMaxKey = 32;
  static constexpr std::uint32_t kMaxValue = 64;

  BTreeServer(const server::ServerContext& ctx, PageNumber pool_pages = 256);
  // Sharded-service constructor: this instance holds the keys that hash to
  // its slice (keys travel unchanged; each shard is an independent tree).
  BTreeServer(const server::ServerContext& ctx, placement::ShardSlice slice,
              PageNumber pool_pages = 256);

  const placement::ShardSlice& shard() const { return slice_; }

  // All operations run under the caller's transaction with strict 2PL on a
  // tree lock (shared for reads, exclusive for updates).
  Status Insert(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Update(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Upsert(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Remove(const server::Tx& tx, const std::string& key);
  Result<std::string> Lookup(const server::Tx& tx, const std::string& key);
  // All entries with first <= key <= last, in order.
  Result<std::vector<std::pair<std::string, std::string>>> Scan(const server::Tx& tx,
                                                                const std::string& first,
                                                                const std::string& last);
  Result<std::uint32_t> Size(const server::Tx& tx);

  // Structural checks for tests: sortedness, key bounds, reachability.
  bool CheckInvariants();
  std::uint32_t AllocatedPages();

 private:
  // Segment layout:
  //   page 0: meta {root u32, entry_count u32, tree-lock object at offset 16}
  //           + allocator in-use bytes for pages [1, pool_pages).
  //   pages 1..: tree nodes.
  struct Node;  // defined in the .cc

  ObjectId MetaRootOid() const { return CreateObjectId(0, 4); }
  ObjectId MetaCountOid() const { return CreateObjectId(4, 4); }
  ObjectId TreeLockOid() const { return CreateObjectId(16, 4); }
  ObjectId AllocByteOid(PageNumber page) const { return CreateObjectId(32 + page, 1); }
  ObjectId NodeOid(PageNumber page) const { return CreateObjectId(page * kPageSize, kPageSize); }

  Result<PageNumber> AllocatePage(const server::Tx& tx);
  void FreePage(const server::Tx& tx, PageNumber page);

  Node ReadNode(PageNumber page);
  void WriteNode(const server::Tx& tx, PageNumber page, const Node& node);

  std::uint32_t ReadU32(const ObjectId& oid);
  void WriteU32(const server::Tx& tx, const ObjectId& oid, std::uint32_t v);

  // Descends to the leaf for `key`, recording the path (pages + child slot).
  struct PathEntry {
    PageNumber page;
    int child_index;
  };
  PageNumber DescendToLeaf(const std::string& key, std::vector<PathEntry>* path);

  Status InsertIntoLeaf(const server::Tx& tx, const std::string& key,
                        const std::string& value, bool allow_exists, bool require_exists);

  PageNumber pool_pages_;
  placement::ShardSlice slice_;  // {0, 1} unless service-sharded
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_BTREE_SERVER_H_
