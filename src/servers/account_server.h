// The account server: the type-specific-locking data server the paper
// promises to explore (Section 4.6: "We intend to explore the type-specific
// locking capability of TABS with future data servers"; Section 2.1.2:
// "implementors can obtain increased concurrency by defining type-specific
// lock modes and lock protocols").
//
// Balances support Deposit and Withdraw operations locked in *increment* and
// *decrement* modes. Increments and decrements commute with each other, so
// any number of transactions may concurrently update the same account —
// something classic shared/exclusive locking forbids (the ablation bench
// measures the difference). Reads still need a shared lock, incompatible
// with in-flight updates, preserving serializability (Schwarz/Spector's
// typed-locking theory: modes conflict iff the operations fail to commute).
//
// Because concurrent transactions interleave updates on the same balance,
// before/after value logging would be wrong under this lock protocol (a
// value record's images capture other transactions' effects). The server
// therefore uses *operation logging*: Deposit/Withdraw log themselves with
// their inverse, undo is logical, and crash recovery replays operations
// under the page-sequence-number guard — the exact pairing of typed locking
// with operation logging the paper describes as the richer environment
// (Section 4.6).
//
// Withdrawals use escrow-style admission: a withdrawal is admitted only if
// it cannot overdraw even when every concurrent uncommitted withdrawal
// commits and every uncommitted deposit aborts.

#ifndef TABS_SERVERS_ACCOUNT_SERVER_H_
#define TABS_SERVERS_ACCOUNT_SERVER_H_

#include <cstdint>
#include <map>

#include "src/placement/shard_map.h"
#include "src/server/data_server.h"

namespace tabs::servers {

class AccountServer : public server::DataServer {
 public:
  // Typed lock modes (0/1 keep their standard meanings).
  static constexpr lock::LockMode kIncrement = 2;
  static constexpr lock::LockMode kDecrement = 3;

  AccountServer(const server::ServerContext& ctx, std::uint32_t accounts);
  // Sharded-service constructor: this instance holds its slice's share of a
  // `total_accounts`-account logical bank (interleaved partitioning).
  AccountServer(const server::ServerContext& ctx, placement::ShardSlice slice,
                std::uint64_t total_accounts);

  std::uint32_t account_count() const { return accounts_; }
  const placement::ShardSlice& shard() const { return slice_; }

  Status Deposit(const server::Tx& tx, std::uint32_t account, std::int64_t amount);
  // kConflict when the escrow test fails (would risk overdraft).
  Status Withdraw(const server::Tx& tx, std::uint32_t account, std::int64_t amount);
  // Serializable read: shared lock, conflicts with in-flight updates.
  Result<std::int64_t> ReadBalance(const server::Tx& tx, std::uint32_t account);

  // Rebuild escrow tracking after a crash (no uncommitted updates survive).
  void Recover() override {
    pending_decrement_.clear();
    pending_increment_.clear();
    txn_decrements_.clear();
    txn_increments_.clear();
  }

  // Escrow bookkeeping follows transaction outcomes.
  void OnCommit(const TransactionId& tid) override;
  void OnAbort(const TransactionId& tid) override;
  void OnSubtxnCommit(const TransactionId& child, const TransactionId& parent) override;
  // Queue mode: a cascade-abort victim may be parked in the escrow wait
  // rather than a lock wait; wake every escrow waiter so it unwinds.
  void CancelLockWaits(const TransactionId& tid) override;

 private:
  ObjectId BalanceOid(std::uint32_t account) const {
    return CreateObjectId(account * 8, 8);
  }
  std::int64_t CurrentBalance(std::uint32_t account);
  void ApplyDelta(std::uint32_t account, std::int64_t delta, Lsn lsn);
  Status LogDelta(const server::Tx& tx, std::uint32_t account, std::int64_t delta,
                  const char* op, const char* undo_op);
  void SettleEscrow(const TransactionId& tid);

  using PerAccount = std::map<std::uint32_t, std::int64_t>;

  std::uint32_t accounts_;
  placement::ShardSlice slice_;  // {0, 1} unless service-sharded
  // Escrow bookkeeping: uncommitted withdrawals and deposits per account.
  // Volatile — the undo lists in the log are the durable truth; this only
  // guards admission. A withdrawal is admitted against the balance minus
  // every uncommitted withdrawal (they may all commit) minus every
  // uncommitted deposit (they may all abort, and they are already applied
  // to the in-memory balance).
  PerAccount pending_decrement_;
  PerAccount pending_increment_;
  std::map<TransactionId, PerAccount> txn_decrements_;
  std::map<TransactionId, PerAccount> txn_increments_;
  // Queue mode only: withdrawals that failed the escrow test park here (per
  // account) instead of returning kConflict; SettleEscrow wakes them when a
  // transaction's outcome may have freed funds. Always empty when the mode
  // is off — mode-off admission stays a pure reject.
  std::map<std::uint32_t, sim::WaitQueue> escrow_waiters_;
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_ACCOUNT_SERVER_H_
