// The Input/Output server (paper Section 4.3).
//
// The IO server extends the transaction domain to the display: output is
// shown immediately but rendered in a style that reveals the state of the
// transaction that produced it —
//   * in progress: gray ("tentative nature"),
//   * committed:   black ("the operation really occurred"),
//   * aborted:     struck through ("preferable to making output disappear").
// After a node failure the screen contents are restored from a recoverable
// segment (TABS marked real screens with grease pencils to check this; we
// settle for assertions).
//
// The trick for determining a finished transaction's outcome without asking
// the Transaction Manager (which "would require retaining an infinite amount
// of log data") is the paper's: when a transaction takes ownership of an
// area the server runs ExecuteTransaction to write `aborted` into a state
// object, then has the client transaction lock the state object and set it
// to `committed`. Later:
//   * state object locked        -> the client transaction is in progress;
//   * unlocked, reads committed  -> it committed;
//   * unlocked, reads aborted    -> it aborted (recovery reset the value).
//
// Output characters are permanent but NOT failure atomic: each write happens
// inside its own ExecuteTransaction, so text survives even when the client
// transaction later aborts.

#ifndef TABS_SERVERS_IO_SERVER_H_
#define TABS_SERVERS_IO_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/server/data_server.h"

namespace tabs::servers {

enum class DisplayState { kInProgress, kCommitted, kAborted };

struct DisplayLine {
  std::string text;
  DisplayState state = DisplayState::kInProgress;
  bool is_input = false;  // echoed user input (the paper draws boxes around it)
};

using IoAreaId = std::uint32_t;

class IoServer : public server::DataServer {
 public:
  IoServer(const server::ServerContext& ctx, std::uint32_t area_count = 8);

  // FUNCTION ObtainIOarea: ioAreaID — the client transaction becomes the
  // area's owner; its outcome will color the area's subsequent output.
  Result<IoAreaId> ObtainIOArea(const server::Tx& tx);
  // PROCEDURE DestroyIOarea
  Status DestroyIOArea(const server::Tx& tx, IoAreaId area);
  // PROCEDURE WriteToArea — appends to the area's current line.
  Status WriteToArea(const server::Tx& tx, IoAreaId area, const std::string& text);
  // PROCEDURE WriteLnToArea — writes text and terminates the line.
  Status WriteLnToArea(const server::Tx& tx, IoAreaId area, const std::string& text);
  // FUNCTION ReadCharFromArea — one echoed character of input.
  Result<char> ReadCharFromArea(const server::Tx& tx, IoAreaId area);
  // FUNCTION ReadLineFromArea — blocks until input is available; the echo is
  // written to the area (the paper boxes characters the application read).
  Result<std::string> ReadLineFromArea(const server::Tx& tx, IoAreaId area);

  // Simulated keyboard: queue a line of input for an area.
  void TypeInput(IoAreaId area, std::string line);

  // The screen, reconstructed from the recoverable segment + lock state.
  // Works identically before and after a crash.
  std::vector<DisplayLine> Render(IoAreaId area);
  std::string RenderScreen();  // all areas, ANSI-free textual markup

 private:
  // Segment layout per area (fixed-size record):
  //   state object (4): 0 = aborted, 1 = committed
  //   epoch (4): increments per ObtainIOArea, clears the text
  //   text length (4)
  //   line table count (4)
  //   allocated flag (4): the area is owned until DestroyIOArea frees it
  //   (4 pad), then kMaxLines x {offset u16, len u16, input u8, pad},
  //   then text bytes (kTextBytes)
  static constexpr std::uint32_t kMaxLines = 48;
  static constexpr std::uint32_t kTextBytes = 2048;
  static constexpr std::uint32_t kLineEntry = 8;
  static constexpr std::uint32_t kHeader = 24;
  static constexpr std::uint32_t kAreaSize =
      kHeader + kMaxLines * kLineEntry + kTextBytes;

  std::uint32_t AreaBase(IoAreaId area) const { return area * kAreaSize; }
  ObjectId StateOid(IoAreaId area) const { return CreateObjectId(AreaBase(area), 4); }
  ObjectId EpochOid(IoAreaId area) const { return CreateObjectId(AreaBase(area) + 4, 4); }
  ObjectId LenOid(IoAreaId area) const { return CreateObjectId(AreaBase(area) + 8, 4); }
  ObjectId LineCountOid(IoAreaId area) const { return CreateObjectId(AreaBase(area) + 12, 4); }
  ObjectId AllocatedOid(IoAreaId area) const { return CreateObjectId(AreaBase(area) + 16, 4); }
  ObjectId LineOid(IoAreaId area, std::uint32_t line) const {
    return CreateObjectId(AreaBase(area) + kHeader + line * kLineEntry, kLineEntry);
  }
  ObjectId TextOid(IoAreaId area, std::uint32_t offset, std::uint32_t len) const {
    return CreateObjectId(AreaBase(area) + kHeader + kMaxLines * kLineEntry + offset, len);
  }

  std::uint32_t ReadU32(const ObjectId& oid);
  // Writes one u32 object inside a fresh top-level transaction (permanent,
  // non-failure-atomic with respect to the *client* transaction).
  void PermanentWriteU32(const server::Tx& io_tx, const ObjectId& oid, std::uint32_t v);

  Status AppendLine(const server::Tx& tx, IoAreaId area, const std::string& text,
                    bool is_input);
  Result<std::string> BlockForInput(IoAreaId area);

  std::uint32_t area_count_;
  std::map<IoAreaId, std::deque<std::string>> pending_input_;
  // Partial lines accumulated by WriteToArea, flushed by WriteLnToArea.
  // Volatile by design: an unterminated line is in-flight terminal state.
  std::map<IoAreaId, std::string> partial_line_;
  sim::WaitQueue input_arrived_;
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_IO_SERVER_H_
