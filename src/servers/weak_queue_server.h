// The weak queue server (paper Section 4.2).
//
// A weak queue (semi-queue) relaxes FIFO order to gain concurrency while
// remaining failure atomic: items are not guaranteed to be dequeued strictly
// in the order they were enqueued. The implementation is the paper's:
//
//  * an array of individually lockable elements, each holding its contents
//    and an InUse bit;
//  * a head pointer that is a permanent, failure-atomic object;
//  * a tail pointer kept in volatile storage and recomputed after crashes by
//    examining the head pointer and the InUse bits;
//  * Enqueue places the item below the tail pointer, relying on the monitor
//    semantics of TABS coroutines (our cooperative scheduler: no switch
//    between waits) so only one transaction at a time updates the tail;
//  * Dequeue scans from the head using IsObjectLocked and the InUse bit —
//    exactly the primitives whose addition to the server library this
//    server prompted — skipping elements other transactions still own;
//  * aborted Enqueues leave gaps (InUse reset to false) that a garbage
//    collection pass, run as a side effect of Enqueue, reclaims by advancing
//    the head past unlocked not-in-use elements.

#ifndef TABS_SERVERS_WEAK_QUEUE_SERVER_H_
#define TABS_SERVERS_WEAK_QUEUE_SERVER_H_

#include <cstdint>

#include "src/server/data_server.h"

namespace tabs::servers {

class WeakQueueServer : public server::DataServer {
 public:
  WeakQueueServer(const server::ServerContext& ctx, std::uint32_t capacity);

  std::uint32_t capacity() const { return capacity_; }

  // PROCEDURE Enqueue(data: integer)
  Status Enqueue(const server::Tx& tx, std::int32_t data);
  // FUNCTION Dequeue: integer — kNotFound when no dequeuable element exists.
  Result<std::int32_t> Dequeue(const server::Tx& tx);
  // FUNCTION IsQueueEmpty: boolean
  Result<bool> IsQueueEmpty(const server::Tx& tx);

  // Recomputes the volatile tail pointer from head and the InUse bits.
  void Recover() override;

  // Introspection for tests.
  std::uint32_t head() { return ReadHead(); }
  std::uint32_t tail() const { return tail_; }

 private:
  // Segment layout: [0,4) head pointer; elements from kElementBase, 8 bytes
  // each: {int32 value, uint8 in_use, 3 pad}.
  static constexpr std::uint32_t kElementBase = 64;
  static constexpr std::uint32_t kElementSize = 8;

  ObjectId HeadOid() const { return CreateObjectId(0, 4); }
  ObjectId ElementOid(std::uint32_t index) const {
    return CreateObjectId(kElementBase + (index % capacity_) * kElementSize, kElementSize);
  }

  std::uint32_t ReadHead();
  struct Element {
    std::int32_t value;
    bool in_use;
  };
  Element ReadElement(std::uint32_t index);

  std::uint32_t capacity_;
  std::uint32_t tail_ = 0;  // volatile; recomputed by Recover()
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_WEAK_QUEUE_SERVER_H_
