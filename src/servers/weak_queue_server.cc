#include "src/servers/weak_queue_server.h"

#include <cstring>

namespace tabs::servers {

namespace {
server::DataServer::Options MakeOptions(std::uint32_t capacity) {
  server::DataServer::Options o;
  o.pages = (64 + capacity * 8 + kPageSize - 1) / kPageSize;
  return o;
}
}  // namespace

WeakQueueServer::WeakQueueServer(const server::ServerContext& ctx, std::uint32_t capacity)
    : DataServer(ctx, MakeOptions(capacity)), capacity_(capacity) {
  Recover();
}

std::uint32_t WeakQueueServer::ReadHead() {
  Bytes b = ReadObject(HeadOid());
  std::uint32_t h;
  std::memcpy(&h, b.data(), 4);
  return h;
}

WeakQueueServer::Element WeakQueueServer::ReadElement(std::uint32_t index) {
  Bytes b = ReadObject(ElementOid(index));
  Element e;
  std::memcpy(&e.value, b.data(), 4);
  e.in_use = b[4] != 0;
  return e;
}

void WeakQueueServer::Recover() {
  // "The tail pointer can be recomputed after crashes by examining the head
  // pointer and InUse bits, so it is kept in volatile storage."
  std::uint32_t head = ReadHead();
  tail_ = head;
  for (std::uint32_t i = head; i < head + capacity_; ++i) {
    if (ReadElement(i).in_use) {
      tail_ = i + 1;
    }
  }
}

Status WeakQueueServer::Enqueue(const server::Tx& tx, std::int32_t data) {
  auto r = Call<bool>(tx, "Enqueue", [this, tx, data]() -> Result<bool> {
    // Garbage collection as a side effect of Enqueue: move the head past
    // elements that are not locked and not in use (aborted enqueues and
    // completed dequeues). The head is failure atomic, so an abort of this
    // transaction rolls the collection back harmlessly.
    std::uint32_t head = ReadHead();
    std::uint32_t collected = head;
    while (collected < tail_ && !IsObjectLocked(ElementOid(collected)) &&
           !ReadElement(collected).in_use) {
      ++collected;
    }
    if (collected != head) {
      if (ConditionallyLockObject(tx, HeadOid(), lock::kExclusive)) {
        PinAndBuffer(tx, HeadOid());
        std::memcpy(Staged(tx, HeadOid()).data(), &collected, 4);
        LogAndUnPin(tx, HeadOid());
        head = collected;
      }
    }

    // Full check reads the head pointer without locking it (the paper's
    // deliberate unprotected read — blocking here would serialize the queue).
    if (tail_ - head >= capacity_) {
      return Status::kConflict;  // queue full
    }

    // Place the item below the tail pointer. The tail is volatile and only
    // ever updated between waits (monitor semantics): no lock needed.
    std::uint32_t slot = tail_;
    ObjectId obj = ElementOid(slot);
    Status s = LockObject(tx, obj, lock::kExclusive);
    if (s != Status::kOk) {
      return s;
    }
    tail_ = slot + 1;
    PinAndBuffer(tx, obj);
    Bytes& staged = Staged(tx, obj);
    std::memcpy(staged.data(), &data, 4);
    staged[4] = 1;  // InUse := true (abort restores the gap)
    LogAndUnPin(tx, obj);
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

Result<std::int32_t> WeakQueueServer::Dequeue(const server::Tx& tx) {
  return Call<std::int32_t>(tx, "Dequeue", [this, tx]() -> Result<std::int32_t> {
    std::uint32_t head = ReadHead();
    for (std::uint32_t i = head; i < tail_; ++i) {
      ObjectId obj = ElementOid(i);
      // "If an element is locked, another operation is still manipulating
      // it; if its InUse bit is false, the Enqueue aborted or it was already
      // removed."
      if (IsObjectLocked(obj)) {
        continue;
      }
      Element e = ReadElement(i);
      if (!e.in_use) {
        continue;
      }
      if (!ConditionallyLockObject(tx, obj, lock::kExclusive)) {
        continue;  // raced another dequeuer between the check and the lock
      }
      // Re-read under the lock: the element may have changed while unlocked.
      e = ReadElement(i);
      if (!e.in_use) {
        continue;  // lock retained (strict 2PL); element was emptied
      }
      PinAndBuffer(tx, obj);
      Staged(tx, obj)[4] = 0;  // InUse := false; abort restores the element
      LogAndUnPin(tx, obj);
      return e.value;
    }
    return Status::kNotFound;  // nothing dequeuable right now
  });
}

Result<bool> WeakQueueServer::IsQueueEmpty(const server::Tx& tx) {
  return Call<bool>(tx, "IsQueueEmpty", [this, tx]() -> Result<bool> {
    std::uint32_t head = ReadHead();
    for (std::uint32_t i = head; i < tail_; ++i) {
      if (IsObjectLocked(ElementOid(i)) || ReadElement(i).in_use) {
        return false;
      }
    }
    return true;
  });
}

}  // namespace tabs::servers
