#include "src/servers/replicated_directory.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace tabs::servers {

namespace {

// B-tree value encoding: 8 hex digits of version, 'D'/'L' deleted flag,
// then the data (B-tree values are capped at 64 bytes, leaving 55 for data).
std::string EncodeEntry(const RepEntry& e) {
  char head[16];
  std::snprintf(head, sizeof head, "%08x%c", e.version, e.deleted ? 'D' : 'L');
  return std::string(head) + e.value;
}

RepEntry DecodeEntry(const std::string& s) {
  RepEntry e;
  assert(s.size() >= 9);
  e.version = static_cast<std::uint32_t>(std::strtoul(s.substr(0, 8).c_str(), nullptr, 16));
  e.deleted = s[8] == 'D';
  e.value = s.substr(9);
  return e;
}

server::DataServer::Options RepOptions() {
  server::DataServer::Options o;
  o.pages = 2;  // the representative itself stores nothing; the B-tree does
  return o;
}

}  // namespace

DirectoryRep::DirectoryRep(const server::ServerContext& ctx, BTreeServer* storage, int votes)
    : DataServer(ctx, RepOptions()), storage_(storage), votes_(votes) {
  assert(votes_ > 0);
}

Result<RepEntry> DirectoryRep::RepRead(const server::Tx& tx, const std::string& key) {
  return Call<RepEntry>(tx, "RepRead", [this, tx, key]() -> Result<RepEntry> {
    // The representative calls its local B-tree server (a nested data-server
    // call, as in the paper's layering).
    server::Tx local = tx;
    local.origin = node_id();
    local.origin_cm = &cm();
    auto v = storage_->Lookup(local, key);
    if (!v.ok()) {
      if (v.status() == Status::kNotFound) {
        return RepEntry{};  // version 0: never written here
      }
      return v.status();
    }
    return DecodeEntry(v.value());
  });
}

Status DirectoryRep::RepWrite(const server::Tx& tx, const std::string& key,
                              const RepEntry& entry) {
  auto r = Call<bool>(tx, "RepWrite", [this, tx, key, entry]() -> Result<bool> {
    server::Tx local = tx;
    local.origin = node_id();
    local.origin_cm = &cm();
    Status s = storage_->Upsert(local, key, EncodeEntry(entry));
    if (s != Status::kOk) {
      return s;
    }
    return true;
  });
  return r.ok() ? Status::kOk : r.status();
}

ReplicatedDirectory::ReplicatedDirectory(std::vector<Replica> replicas, int read_quorum,
                                         int write_quorum)
    : replicas_(std::move(replicas)), read_quorum_(read_quorum), write_quorum_(write_quorum) {
  for (const Replica& r : replicas_) {
    total_votes_ += r.rep->votes();
  }
  // Quorum intersection: any read sees the latest committed write.
  assert(read_quorum_ + write_quorum_ > total_votes_);
  assert(2 * write_quorum_ > total_votes_);  // two writes cannot both succeed blindly
}

Result<ReplicatedDirectory::QuorumRead> ReplicatedDirectory::GatherReadQuorum(
    const server::Tx& tx, const std::string& key) {
  QuorumRead q;
  for (size_t i = 0; i < replicas_.size() && q.votes < read_quorum_; ++i) {
    auto r = replicas_[i].rep->RepRead(tx, key);
    if (!r.ok()) {
      if (r.status() == Status::kNodeDown) {
        continue;  // skip unreachable representatives
      }
      return r.status();
    }
    q.votes += replicas_[i].rep->votes();
    q.reachable.push_back(i);
    if (r.value().version > q.current.version) {
      q.current = r.value();
    }
  }
  if (q.votes < read_quorum_) {
    return Status::kNoQuorum;
  }
  return q;
}

Status ReplicatedDirectory::InstallWrite(const server::Tx& tx, const std::string& key,
                                         const RepEntry& entry) {
  int votes = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Status s = replicas_[i].rep->RepWrite(tx, key, entry);
    if (s == Status::kOk) {
      votes += replicas_[i].rep->votes();
    } else if (s != Status::kNodeDown) {
      return s;  // a real failure (timeout etc.): let the caller abort
    }
  }
  // Partial installs below quorum are aborted by the caller; the distributed
  // transaction guarantees no representative keeps an unquorate write.
  return votes >= write_quorum_ ? Status::kOk : Status::kNoQuorum;
}

Result<std::string> ReplicatedDirectory::Lookup(const server::Tx& tx, const std::string& key) {
  auto q = GatherReadQuorum(tx, key);
  if (!q.ok()) {
    return q.status();
  }
  const RepEntry& e = q.value().current;
  if (e.version == 0 || e.deleted) {
    return Status::kNotFound;
  }
  return e.value;
}

Status ReplicatedDirectory::Insert(const server::Tx& tx, const std::string& key,
                                   const std::string& value) {
  auto q = GatherReadQuorum(tx, key);
  if (!q.ok()) {
    return q.status();
  }
  const RepEntry& cur = q.value().current;
  if (cur.version != 0 && !cur.deleted) {
    return Status::kConflict;  // already exists
  }
  RepEntry next;
  next.version = cur.version + 1;
  next.deleted = false;
  next.value = value;
  return InstallWrite(tx, key, next);
}

Status ReplicatedDirectory::Update(const server::Tx& tx, const std::string& key,
                                   const std::string& value) {
  auto q = GatherReadQuorum(tx, key);
  if (!q.ok()) {
    return q.status();
  }
  const RepEntry& cur = q.value().current;
  if (cur.version == 0 || cur.deleted) {
    return Status::kNotFound;
  }
  RepEntry next;
  next.version = cur.version + 1;
  next.deleted = false;
  next.value = value;
  return InstallWrite(tx, key, next);
}

Status ReplicatedDirectory::Remove(const server::Tx& tx, const std::string& key) {
  auto q = GatherReadQuorum(tx, key);
  if (!q.ok()) {
    return q.status();
  }
  const RepEntry& cur = q.value().current;
  if (cur.version == 0 || cur.deleted) {
    return Status::kNotFound;
  }
  RepEntry tombstone;
  tombstone.version = cur.version + 1;
  tombstone.deleted = true;
  return InstallWrite(tx, key, tombstone);
}

}  // namespace tabs::servers
