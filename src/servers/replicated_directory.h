// The replicated directory object (paper Section 4.5).
//
// "The replicated directory object provides an abstraction identical to a
// conventional directory but stores its data in multiple directory
// representative servers on different nodes" using the Daniels/Spector
// variation of Gifford's weighted voting. Each representative holds a
// per-entry version number next to the data, stored in a B-tree server on
// its node (the paper's representatives "use a B-tree server to actually
// store the data"); the client-side module — linked into the client program,
// as in the paper — coordinates voting:
//
//  * a read collects representatives until their votes reach the read
//    quorum r and believes the highest version;
//  * a write first reads a quorum to learn the current version, then
//    installs version+1 at representatives worth at least the write quorum
//    w, all inside the caller's transaction — so distributed transactions do
//    the heavy lifting: partial writes abort atomically across nodes, and
//    commit runs the multi-node two-phase protocol.
// With r + w greater than the total votes, any read quorum intersects any
// write quorum, so the highest version in a read quorum is current. One
// node of three can be down and the data stays available (the paper's test
// configuration).
//
// Deletion writes a tombstone (deleted flag, version bumped) rather than
// removing the entry, so stale representatives cannot resurrect old data.

#ifndef TABS_SERVERS_REPLICATED_DIRECTORY_H_
#define TABS_SERVERS_REPLICATED_DIRECTORY_H_

#include <string>
#include <vector>

#include "src/servers/btree_server.h"

namespace tabs::servers {

struct RepEntry {
  std::uint32_t version = 0;  // 0: never written at this representative
  bool deleted = false;
  std::string value;
};

// A directory representative: versioned read/write over a local B-tree
// server. Performs localized functions of the voting algorithm.
class DirectoryRep : public server::DataServer {
 public:
  DirectoryRep(const server::ServerContext& ctx, BTreeServer* storage, int votes);

  int votes() const { return votes_; }
  // Representatives are re-created on node recovery; World re-wires storage.
  void SetStorage(BTreeServer* storage) { storage_ = storage; }

  Result<RepEntry> RepRead(const server::Tx& tx, const std::string& key);
  Status RepWrite(const server::Tx& tx, const std::string& key, const RepEntry& entry);

 private:
  BTreeServer* storage_;
  int votes_;
};

// The client-linked global-coordination module (not a data server).
class ReplicatedDirectory {
 public:
  struct Replica {
    DirectoryRep* rep = nullptr;
    NodeId node = kInvalidNode;
  };

  ReplicatedDirectory(std::vector<Replica> replicas, int read_quorum, int write_quorum);

  int total_votes() const { return total_votes_; }

  // All operations run inside the caller's transaction.
  Result<std::string> Lookup(const server::Tx& tx, const std::string& key);
  Status Insert(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Update(const server::Tx& tx, const std::string& key, const std::string& value);
  Status Remove(const server::Tx& tx, const std::string& key);

  // Lets tests re-point at re-created representatives after recovery.
  std::vector<Replica>& replicas() { return replicas_; }

 private:
  struct QuorumRead {
    RepEntry current;               // the max-version entry seen
    int votes = 0;                  // votes gathered
    std::vector<size_t> reachable;  // replica indices that answered
  };
  Result<QuorumRead> GatherReadQuorum(const server::Tx& tx, const std::string& key);
  Status InstallWrite(const server::Tx& tx, const std::string& key, const RepEntry& entry);

  std::vector<Replica> replicas_;
  int read_quorum_;
  int write_quorum_;
  int total_votes_ = 0;
};

}  // namespace tabs::servers

#endif  // TABS_SERVERS_REPLICATED_DIRECTORY_H_
