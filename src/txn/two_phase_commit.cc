// The tree-structured two-phase commit protocol (Section 3.2.3) and
// subtransaction commit/abort propagation.
//
// Every node coordinates its own children in the transaction's spanning tree
// (built by the Communication Managers as operations flowed). Prepares and
// votes travel as datagrams — "TABS has been careful to use datagrams for
// communication during transaction commit" (Section 2.1.2). The protocol
// includes the read-only optimization: a subtree with no updates votes
// read-only, releases its locks at prepare time, and drops out of phase two.
//
// Under ArchitectureModel::Improved (Section 5.3), phase two of a
// distributed write commit leaves the latency-critical path: the coordinator
// returns to the application as soon as the commit record is stable and the
// commit datagrams are on the wire.

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/sim/fault_injector.h"
#include "src/txn/transaction_manager.h"

namespace tabs::txn {

using log::LogRecord;
using log::RecordType;
using recovery::TxnOutcome;

TransactionManager* TransactionManager::Peer(NodeId node) const {
  if (peers_ == nullptr) {
    return nullptr;
  }
  auto it = peers_->find(node);
  return it == peers_->end() ? nullptr : it->second;
}

Status TransactionManager::CommitTopLevel(Txn& txn) {
  assert(txn.born_here && "EndTransaction must run at the transaction's birth node");
  sim::Substrate& sub = node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.commit",
                      sub.tracer().enabled() ? ToString(txn.top) : std::string());

  // Open subtransactions commit with their parent (Section 2.1.3).
  for (const TransactionId& s : std::set<TransactionId>(txn.live_subtxns)) {
    Txn* st = Find(s);
    if (st != nullptr) {
      CommitSubtransaction(*st);
    }
  }

  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // app -> TM: commit
  txn.state = TxnState::kPreparing;

  const auto& info = cm_.InfoFor(txn.top);
  if (!info.children.empty()) {
    // The CM hands the TM the complete site list (a pointer message).
    sub.Charge(sim::Primitive::kPointerMessage, 1);
  }

  Vote vote = PrepareSubtree(txn);
  if (vote == Vote::kNo) {
    AbortSubtree(txn, /*notify_children=*/true);
    TransactionId tid = txn.tid;
    ForgetTxn(tid);
    return Status::kVoteNo;
  }

  if (op_queue_.enabled()) {
    // A dependent may not decide before its predecessors: wait out every
    // commit dependency picked up from early-released locks, then re-resolve
    // — a predecessor's abort may have cascaded to this transaction while we
    // slept (the entry is then owned by the cascade, or already gone; `txn`
    // must not be touched until the re-resolve proves it alive).
    const TransactionId self = txn.tid;
    Status ws = op_queue_.AwaitPredecessors(txn.top, vote_timeout_);
    Txn* again = Find(self);
    if (again == nullptr || again->state == TxnState::kAborted || AbortInProgress(*again)) {
      return Status::kAborted;
    }
    if (ws != Status::kOk) {
      AbortSubtree(txn, /*notify_children=*/true);
      ForgetTxn(self);
      return Status::kVoteNo;
    }
  }

  // TABS process CPU time for local transaction management (Section 5.2).
  sub.scheduler().Charge(sub.costs().coordinator_overhead_us);
  bool updates = vote == Vote::kYes;
  if (updates) {
    sub.scheduler().Charge(sub.costs().coordinator_write_extra_us);
    // Every participant is prepared but the verdict is not yet durable: a
    // crash here must resolve to abort (presumed abort).
    FAULT_POINT(sub, "2pc.commit.before_record");
    if (op_queue_.enabled()) {
      // Queue mode: the outcome is decided the moment the commit record is
      // appended — the WAL forces in LSN order, so any successor's durable
      // record implies ours. Locks release before the force (no taint, no
      // dependency) and successors pipeline into the group-commit window.
      Lsn lsn = AppendTxnRecord(RecordType::kTxnCommit, txn, /*force=*/false);
      FAULT_POINT(sub, "queue.commit.early-release");
      EarlyRelease(txn, /*taint=*/false);
      ForceLsn(lsn);
    } else {
      // The commit point: the commit record reaches stable storage.
      AppendTxnRecord(RecordType::kTxnCommit, txn, /*force=*/true);
    }
    // The verdict is durable but no participant knows it: a crash here must
    // resolve to commit via the in-doubt query.
    FAULT_POINT(sub, "2pc.commit.after_record");
  }
  txn.state = TxnState::kCommitted;
  logged_outcomes_[txn.top] = TxnOutcome::kCommitted;

  CommitSubtree(txn, /*is_root=*/true);
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> app: done
  TransactionId tid = txn.tid;
  ForgetTxn(tid);
  return Status::kOk;
}

TransactionManager::Vote TransactionManager::PrepareSubtree(Txn& txn) {
  sim::Substrate& sub = node_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.prepare",
                      sub.tracer().enabled() ? ToString(txn.top) : std::string());
  const auto& info = cm_.InfoFor(txn.top);
  FAULT_POINT(sub, "2pc.prepare.begin");

  // Phase one downward: prepare datagrams to every child, in parallel. The
  // sender serializes sends, so each datagram after the first delays by half
  // a datagram time (the paper's half-datagram estimate, Table 5-3 note).
  auto votes = std::make_shared<sim::Channel<std::pair<NodeId, Vote>>>(sched);
  int expected = 0;
  bool first_send = true;
  for (NodeId child : info.children) {
    TransactionManager* child_tm = Peer(child);
    if (child_tm == nullptr) {
      return Vote::kNo;  // child crashed: cannot guarantee its updates
    }
    if (!first_send) {
      sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
    }
    first_send = false;
    ++expected;
    TransactionId tid = txn.top;
    NodeId self = node_.id();
    comm::CommManager* child_cm = &child_tm->cm_;
    // The prepare carries the sibling list so an in-doubt participant can
    // run cooperative termination if this coordinator later crashes.
    std::vector<NodeId> siblings(info.children.begin(), info.children.end());
    cm_.SendDatagram(child, "2pc-prepare",
                     [child_tm, child_cm, tid, self, votes, child, siblings] {
                       Vote v = child_tm->HandlePrepare(tid, self, siblings);
                       child_cm->SendDatagram(
                           self, "2pc-vote", [votes, child, v] { votes->Push({child, v}); });
                     });
  }

  // Local prepare: ask each joined server whether it wrote updates. A server
  // with updates ships its buffered log images to the Recovery Manager with
  // its prepare work (one large message).
  bool local_updates = false;
  for (CommitParticipant* s : txn.servers) {
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server: prepare
    if (s->HasUpdates(txn.tid)) {
      local_updates = true;
      sub.ChargeSystemMessage(sim::Primitive::kLargeMessage, 1);
    }
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // server -> TM: vote
  }

  // Prepares are on the wire (and the local vote is computed) but no remote
  // vote has been consumed yet.
  FAULT_POINT(sub, "2pc.prepare.before_votes");
  bool any_no = false;
  bool child_updates = false;
  // One deadline across ALL votes: children prepared in parallel, so the
  // coordinator's wait budget must not scale with the child count (a lost
  // vote previously restarted the timeout per child, waiting up to
  // children x vote_timeout_). A vote already queued consumes none of it.
  SimTime vote_deadline = sched.Now() + vote_timeout_;
  for (int i = 0; i < expected; ++i) {
    std::pair<NodeId, Vote> v;
    // A zero budget still pops an already-delivered vote without waiting.
    SimTime remaining = std::max<SimTime>(vote_deadline - sched.Now(), 0);
    if (!votes->PopWithTimeout(remaining, &v)) {
      any_no = true;  // lost vote or crashed child: abort is always safe
      break;
    }
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // CM -> TM: vote arrived
    if (v.second == Vote::kNo) {
      any_no = true;
    } else if (v.second == Vote::kYes) {
      child_updates = true;
      txn.update_children.insert(v.first);
    }
  }
  if (any_no) {
    return Vote::kNo;
  }
  if (!local_updates && !child_updates) {
    return Vote::kReadOnly;
  }
  return Vote::kYes;
}

TransactionManager::Vote TransactionManager::HandlePrepare(const TransactionId& tid,
                                                           NodeId parent_node,
                                                           const std::vector<NodeId>& siblings) {
  sim::Substrate& sub = node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.handle-prepare",
                      sub.tracer().enabled() ? ToString(tid) : std::string());
  Txn* found = Find(tid);
  if (found == nullptr) {
    // We never saw an operation for this transaction: read-only by vacuity.
    // But a transaction this node aborted and rolled back (an orphan sweep
    // racing the prepare datagram) must vote No — its updates are undone,
    // so a yes-side vote could commit a transaction missing them.
    return OutcomeOf(tid) == TxnOutcome::kAborted ? Vote::kNo : Vote::kReadOnly;
  }
  Txn& txn = *found;
  if (txn.state == TxnState::kAborted) {
    return Vote::kNo;
  }
  // CM -> TM: prepare arrived; TM -> CM: vote handed back for the wire.
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  txn.parent_node = parent_node;
  txn.siblings = siblings;
  txn.state = TxnState::kPreparing;

  Vote v = PrepareSubtree(txn);
  // PrepareSubtree blocks awaiting child votes, and the prepare force below
  // blocks too: either wait can overlap the coordinator's vote timeout, whose
  // abort message rolls this subtree back and erases the Txn while we sleep.
  // Re-resolve the entry after every blocking window — a stale vote must not
  // touch (or resurrect) a transaction that was aborted and forgotten.
  if (Find(tid) == nullptr) {
    return Vote::kNo;
  }
  if (v == Vote::kNo) {
    AbortSubtree(txn, /*notify_children=*/true);
    ForgetTxn(tid);
    return Vote::kNo;
  }
  if (op_queue_.enabled()) {
    // Even a read-only vote must wait: the subtree may have read a
    // predecessor's early-released (still undecided) state, and voting it
    // through would let the coordinator commit a dirty read.
    Status ws = op_queue_.AwaitPredecessors(tid, vote_timeout_);
    Txn* again = Find(tid);
    if (again == nullptr || again->state == TxnState::kAborted || AbortInProgress(*again)) {
      return Vote::kNo;
    }
    if (ws != Status::kOk) {
      AbortSubtree(txn, /*notify_children=*/true);
      ForgetTxn(tid);
      return Vote::kNo;
    }
  }
  if (v == Vote::kReadOnly) {
    // Read-only optimization: release locks now and drop out of phase two.
    sub.scheduler().Charge(sub.costs().participant_read_overhead_us);
    for (CommitParticipant* s : txn.servers) {
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server: release
      s->OnCommit(tid);
    }
    ForgetTxn(tid);
    return Vote::kReadOnly;
  }
  // Updates here (or below): become prepared — in doubt until the verdict.
  sub.scheduler().Charge(sub.costs().participant_prepare_overhead_us);
  // The subtree voted yes but the prepare record is still volatile: a crash
  // here means this participant never prepared, and presumed abort applies.
  FAULT_POINT(sub, "2pc.vote.before_record");
  if (op_queue_.enabled()) {
    // In-doubt early release: the outcome is undecided until the verdict, so
    // the released objects are tainted and any successor granted a lock on
    // them becomes commit-dependent on this transaction.
    Lsn lsn = AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/false);
    FAULT_POINT(sub, "queue.prepare.early-release");
    EarlyRelease(txn, /*taint=*/true);
    ForceLsn(lsn);
  } else {
    AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/true);
  }
  // Prepared and in doubt: a crash here must leave the updates locked until
  // the coordinator's verdict is learned.
  FAULT_POINT(sub, "2pc.vote.after_record");
  Txn* after_force = Find(tid);
  if (after_force == nullptr || AbortInProgress(*after_force)) {
    return Vote::kNo;  // aborted (or being aborted) during the prepare force
  }
  txn.state = TxnState::kPrepared;
  logged_outcomes_[tid] = TxnOutcome::kPrepared;
  logged_parent_node_[tid] = parent_node;
  return Vote::kYes;
}

void TransactionManager::CommitSubtree(Txn& txn, bool is_root) {
  sim::Substrate& sub = node_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.commit-subtree",
                      sub.tracer().enabled() ? ToString(txn.top) : std::string());
  bool wait_for_acks = !sub.arch().optimized_commit;

  auto acks = std::make_shared<sim::Channel<bool>>(sched);
  int expected = 0;
  bool first_send = true;
  for (NodeId child : txn.update_children) {
    TransactionManager* child_tm = Peer(child);
    if (child_tm == nullptr) {
      continue;  // crashed child resolves via in-doubt query after recovery
    }
    if (!first_send) {
      sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
    }
    first_send = false;
    ++expected;
    TransactionId tid = txn.tid;
    NodeId self = node_.id();
    comm::CommManager* child_cm = &child_tm->cm_;
    cm_.SendDatagram(child, "2pc-commit", [child_tm, child_cm, tid, self, acks] {
      child_tm->HandleCommit(tid);
      child_cm->SendDatagram(self, "2pc-ack", [acks] { acks->Push(true); });
    });
  }

  for (CommitParticipant* s : txn.servers) {
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server: commit
    bool had_updates = s->HasUpdates(txn.tid);  // OnCommit clears the flag
    s->OnCommit(txn.tid);
    if (had_updates) {
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // server -> TM: done
    }
  }

  if (wait_for_acks) {
    if (is_root && expected > 0) {
      // Commit datagrams are on the wire, acks outstanding: the commit
      // already stands, so a crash here must still commit everywhere.
      FAULT_POINT(sub, "2pc.commit.before_acks");
    }
    for (int i = 0; i < expected; ++i) {
      bool b = false;
      if (!acks->PopWithTimeout(vote_timeout_, &b)) {
        break;  // a child will resolve via in-doubt query; commit stands
      }
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // CM -> TM: ack arrived
    }
    if (is_root && expected > 0) {
      FAULT_POINT(sub, "2pc.commit.after_acks");
      AppendTxnRecord(RecordType::kTxnEnd, txn, /*force=*/false);
    }
  }
}

void TransactionManager::HandleCommit(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn == nullptr) {
    return;  // duplicate delivery (at-most-once handlers make this benign)
  }
  sim::Substrate& sub = node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.handle-commit",
                      sub.tracer().enabled() ? ToString(tid) : std::string());
  // CM -> TM: commit arrived; TM -> CM: acknowledgement handed back.
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  sub.scheduler().Charge(sub.costs().participant_commit_overhead_us);
  // The verdict arrived but this participant's commit record is volatile: a
  // crash here re-enters in-doubt and must resolve to commit again.
  FAULT_POINT(sub, "2pc.participant.before_commit");
  AppendTxnRecord(RecordType::kTxnCommit, *txn, /*force=*/false);
  txn->state = TxnState::kCommitted;
  logged_outcomes_[tid] = TxnOutcome::kCommitted;
  in_doubt_.erase(tid);
  if (op_queue_.enabled()) {
    // Decided: clear this transaction's taints and discharge its dependents.
    op_queue_.NoteCommitted(txn->top);
  }
  CommitSubtree(*txn, /*is_root=*/false);
  FAULT_POINT(sub, "2pc.participant.after_commit");
  ForgetTxn(tid);
}

void TransactionManager::AbortSubtree(Txn& txn, bool notify_children) {
  sim::Substrate& sub = node_.substrate();
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "2pc.abort",
                      sub.tracer().enabled() ? ToString(txn.top) : std::string());
  txn.abort_started = true;  // this task owns the abort through ForgetTxn
  if (op_queue_.enabled()) {
    // Arm the grant veto first: no lock on this transaction's tainted
    // objects may be granted into the undo window below. Then cascade to
    // the queued successors — their undo must run BEFORE ours, because
    // their before-images are our after-images.
    op_queue_.BeginAbort(txn.top);
    FAULT_POINT(sub, "queue.cascade");
    for (const TransactionId& d : op_queue_.TakeDependents(txn.top)) {
      CascadeAbort(d);
    }
  }
  if (notify_children) {
    const auto& info = cm_.InfoFor(txn.top);
    for (NodeId child : info.children) {
      TransactionManager* child_tm = Peer(child);
      if (child_tm == nullptr) {
        continue;
      }
      TransactionId tid = txn.top;
      cm_.SendDatagram(child, "2pc-abort", [child_tm, tid] { child_tm->HandleAbortMsg(tid); });
    }
  }
  // Undo local effects (backward chain through the Recovery Manager), then
  // release locks.
  rm_.UndoTransaction(txn.tid, txn.top);
  for (CommitParticipant* s : txn.servers) {
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server: abort
    s->OnAbort(txn.tid);
  }
  // Undo is applied but the abort record is volatile: a crash here must
  // reach the same rolled-back state by replaying the undo at recovery.
  FAULT_POINT(sub, "2pc.abort.before_record");
  AppendTxnRecord(RecordType::kTxnAbort, txn, /*force=*/false);
  FAULT_POINT(sub, "2pc.abort.after_record");
  txn.state = TxnState::kAborted;
  logged_outcomes_[txn.top] = TxnOutcome::kAborted;
  if (op_queue_.enabled()) {
    // Undo complete: lift the veto, wake anything parked on this
    // transaction, and re-run the grant sweep for waiters the veto held.
    op_queue_.FinishAbort(txn.top);
    for (CommitParticipant* s : txn.servers) {
      s->OnAbortSettled(txn.tid);
    }
  }
}

void TransactionManager::HandleAbortMsg(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn == nullptr || AbortInProgress(*txn)) {
    return;  // unknown, or another task already owns this abort
  }
  AbortSubtree(*txn, /*notify_children=*/true);
  in_doubt_.erase(tid);
  ForgetTxn(tid);
}

void TransactionManager::CommitSubtransaction(Txn& txn) {
  assert(!txn.parent.IsNull());
  Txn* parent = Find(txn.parent);
  assert(parent != nullptr && "subtransaction outlived its parent");

  // Grandchildren commit into this subtransaction first.
  for (const TransactionId& s : std::set<TransactionId>(txn.live_subtxns)) {
    Txn* st = Find(s);
    if (st != nullptr) {
      CommitSubtransaction(*st);
    }
  }

  for (CommitParticipant* s : txn.servers) {
    s->OnSubtxnCommit(txn.tid, txn.parent);
    if (std::find(parent->servers.begin(), parent->servers.end(), s) ==
        parent->servers.end()) {
      parent->servers.push_back(s);
    }
  }
  rm_.MergeChild(txn.tid, txn.parent);

  LogRecord rec;
  rec.type = RecordType::kSubtxnCommit;
  rec.owner = txn.tid;
  rec.top = txn.top;
  rec.parent_tid = txn.parent;
  rm_.log().Append(std::move(rec));

  // Remote participants of the top-level transaction inherit the
  // subtransaction's locks and undo records too.
  const auto& info = cm_.InfoFor(txn.top);
  for (NodeId child : info.children) {
    TransactionManager* child_tm = Peer(child);
    if (child_tm == nullptr) {
      continue;
    }
    TransactionId child_tid = txn.tid;
    TransactionId parent_tid = txn.parent;
    TransactionId top = txn.top;
    cm_.SendDatagram(child, "subtxn-commit", [child_tm, child_tid, parent_tid, top] {
      child_tm->HandleSubtxnCommit(child_tid, parent_tid, top);
    });
  }

  parent->live_subtxns.erase(txn.tid);
  txns_.erase(txn.tid);
}

void TransactionManager::HandleSubtxnCommit(const TransactionId& child,
                                            const TransactionId& parent,
                                            const TransactionId& top) {
  rm_.MergeChild(child, parent);
  Txn* txn = Find(top);
  if (txn != nullptr) {
    for (CommitParticipant* s : txn->servers) {
      s->OnSubtxnCommit(child, parent);
    }
    for (NodeId grandchild : cm_.InfoFor(top).children) {
      TransactionManager* gtm = Peer(grandchild);
      if (gtm != nullptr) {
        cm_.SendDatagram(grandchild, "subtxn-commit", [gtm, child, parent, top] {
          gtm->HandleSubtxnCommit(child, parent, top);
        });
      }
    }
  }
}

void TransactionManager::HandleSubtxnAbort(const TransactionId& child,
                                           const TransactionId& top) {
  rm_.UndoTransaction(child, top);
  Txn* txn = Find(top);
  if (txn != nullptr) {
    for (CommitParticipant* s : txn->servers) {
      s->OnAbort(child);
    }
    for (NodeId grandchild : cm_.InfoFor(top).children) {
      TransactionManager* gtm = Peer(grandchild);
      if (gtm != nullptr) {
        cm_.SendDatagram(grandchild, "subtxn-abort", [gtm, child, top] {
          gtm->HandleSubtxnAbort(child, top);
        });
      }
    }
  }
}

}  // namespace tabs::txn
