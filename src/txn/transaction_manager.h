// The Transaction Manager: transaction identifiers, the transaction tree,
// and the tree-structured two-phase commit protocol (Section 3.2.3).
//
// One Transaction Manager runs per node. Applications and data servers send
// it messages to begin, commit, or abort transactions; data servers announce
// themselves the first time they perform an operation for a transaction
// (JoinServer), and the Communication Manager announces remote involvement.
// The commit protocol is two-phase over the transaction's spanning tree:
// "each node serves as coordinator for the nodes that are its children."
//
// Subtransactions use the same machinery: BeginTransaction of a non-null
// parent creates a subtransaction that synchronizes as a separate
// transaction, cannot commit before its parent, and may abort independently
// (Section 2.1.3). EndTransaction of a subtransaction merges its locks, undo
// records and joined servers into the parent.

#ifndef TABS_TXN_TRANSACTION_MANAGER_H_
#define TABS_TXN_TRANSACTION_MANAGER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/comm/comm_manager.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/recovery/recovery_manager.h"
#include "src/txn/op_queue.h"
#include "src/txn/paxos_commit.h"

namespace tabs::log {
class GroupCommit;
}

namespace tabs::txn {

// A local data server's participation hooks. DataServer implements this.
class CommitParticipant {
 public:
  virtual ~CommitParticipant() = default;
  virtual const std::string& participant_name() const = 0;
  // Did this server log updates on behalf of `tid`?
  virtual bool HasUpdates(const TransactionId& tid) = 0;
  // Outcome callbacks: release locks and per-transaction state. Undo (on
  // abort) has already been performed through the Recovery Manager.
  virtual void OnCommit(const TransactionId& tid) = 0;
  virtual void OnAbort(const TransactionId& tid) = 0;
  // Subtransaction commit: child's locks and state merge into the parent.
  virtual void OnSubtxnCommit(const TransactionId& child, const TransactionId& parent) = 0;
  // After crash recovery, re-acquire the lock protecting an in-doubt
  // transaction's update (TABS nodes "restrict access to some data until
  // other nodes recover").
  virtual void RelockForRecovery(const TransactionId& tid, const log::LogRecord& rec) = 0;

  // --- queue-oriented execution hooks (src/txn/op_queue.h) -------------------
  // All three default to no-ops so servers that keep strict two-phase locking
  // are unaffected; DataServer overrides them when the mode is on.
  // Release `tid`'s locks now, before its outcome record is durable. A true
  // `taint` means the outcome is still undecided (prepare-time release): the
  // released objects must be registered with the op queue first so successors
  // pick up a commit dependency.
  virtual void OnEarlyRelease(const TransactionId& tid, bool taint) {}
  // A cascade abort is consuming `tid`: wake any lock/escrow wait it is
  // parked in with a cancellation, so its task unwinds instead of being
  // granted a lock under a dead transaction.
  virtual void CancelLockWaits(const TransactionId& tid) {}
  // An abort fully settled (undo complete, grant veto lifted): re-run the
  // grant sweep for waiters the veto parked.
  virtual void OnAbortSettled(const TransactionId& tid) {}
};

enum class TxnState {
  kActive,
  kPreparing,
  kPrepared,   // in doubt: awaiting the parent's verdict
  kCommitted,
  kAborted,
};

class TransactionManager : public comm::TransactionTreeListener,
                           public recovery::TxnOutcomeSource {
 public:
  TransactionManager(kernel::Node& node, recovery::RecoveryManager& rm,
                     comm::CommManager& cm);
  ~TransactionManager();

  void SetPeers(const std::map<NodeId, TransactionManager*>* peers) { peers_ = peers; }

  // Commit protocol selection (WorldOptions::commit_mode). kPaxosCommit
  // tolerates `paxos_f` acceptor failures with 2F+1 acceptors per
  // transaction; kTwoPhase is the paper-faithful default.
  void SetCommitMode(CommitMode mode, int paxos_f) {
    commit_mode_ = mode;
    paxos_->SetF(paxos_f);
  }
  CommitMode commit_mode() const { return commit_mode_; }
  PaxosCommit& paxos() { return *paxos_; }

  // Queue-oriented execution (WorldOptions::queue_execution): update locks
  // release as soon as the commit/prepare record is appended — before it is
  // forced — with commit dependencies tracked through the per-node OpQueue.
  // Default off; every paper-faithful schedule is byte-identical.
  void SetQueueMode(bool on) {
    op_queue_.Enable(on);
    op_queue_.Attach(&node_.substrate().scheduler());
  }
  bool queue_mode() const { return op_queue_.enabled(); }
  OpQueue& op_queue() { return op_queue_; }
  // Queue mode: true when new operations on behalf of `tid` must be refused
  // because a cascade abort consumed (or is consuming) the transaction. Data
  // servers consult this before dispatching an operation so a zombie task —
  // one whose transaction was cascade-aborted while it ran — cannot log new
  // records under the dead id.
  bool RefusesOps(const TransactionId& tid) const;

  // --- application interface (Table 3-2) ------------------------------------
  // BeginTransaction: null parent creates a top-level transaction.
  TransactionId Begin(const TransactionId& parent = kNullTransaction);
  // EndTransaction: commits. For a top-level transaction this runs the
  // tree-structured two-phase commit; for a subtransaction it merges into
  // the parent. Returns kOk on commit, kAborted/kVoteNo/kNodeDown otherwise.
  Status End(const TransactionId& tid);
  // AbortTransaction: rolls back `tid` (and, transitively, its live
  // subtransactions). A subtransaction abort does not disturb the parent.
  void Abort(const TransactionId& tid);

  TxnState StateOf(const TransactionId& tid) const;
  bool IsAborted(const TransactionId& tid) const;
  TransactionId TopOf(const TransactionId& tid) const;

  // --- data server interface --------------------------------------------------
  // First operation by `server` on behalf of `tid` at this node. Remote
  // operations are tracked under the top-level transaction (whose entry the
  // Communication Manager created on first contact); local ones under the
  // (sub)transaction itself.
  void JoinServer(const TransactionId& tid, const TransactionId& top,
                  CommitParticipant* server);

  // Single-server crash support (Section 7 future work): transactions that
  // used a crashed server, and removal of its dangling participant pointer
  // before those transactions are aborted.
  std::vector<TransactionId> TransactionsInvolving(const CommitParticipant* server) const;
  void DetachParticipant(const CommitParticipant* server);

  // --- Communication Manager callbacks (TransactionTreeListener) --------------
  void OnRemoteChildJoined(const TransactionId& tid, NodeId child) override;
  void OnRemoteParentObserved(const TransactionId& tid, NodeId parent) override;

  // --- two-phase commit participant side (invoked via datagram handlers) ------
  // Prepares the subtree rooted at this node. Returns the vote.
  enum class Vote { kYes, kReadOnly, kNo };
  Vote HandlePrepare(const TransactionId& tid, NodeId parent_node,
                     const std::vector<NodeId>& siblings = {});
  void HandleCommit(const TransactionId& tid);
  // Cooperative termination (Dwork/Skeen): what this participant knows about
  // `tid` — 1 committed, -1 aborted, 0 no knowledge (possibly in doubt too).
  int ParticipantKnowledge(const TransactionId& tid);
  void HandleAbortMsg(const TransactionId& tid);
  // --- Paxos Commit participant side (kPaxosCommit mode only) -----------------
  // The paxos-prepare datagram handler: prepare the local subtree as in 2PC,
  // then cast the vote straight to every acceptor (ballot-0 phase 2a), with
  // acceptances reported to `leader` through `replies`.
  void HandlePaxosPrepare(const TransactionId& tid, NodeId leader,
                          const std::vector<NodeId>& participants,
                          const std::vector<NodeId>& acceptors, AcceptChannelPtr replies);
  // A decided verdict arriving from a takeover leader: applies commit/abort
  // to a live prepared transaction or a recovered in-doubt one.
  void HandlePaxosVerdict(const TransactionId& tid, bool committed);
  // Dead-coordinator takeover sweep (folded into the orphan-sweep machinery):
  // every prepared transaction whose 2PC parent is `dead` and that has an
  // acceptor set is driven to a decision through the acceptors — in-doubt
  // transactions release their locks without coordinator recovery.
  void ResolvePaxosOrphansOf(NodeId dead);

  // Subtransaction outcome propagation to remote participants: locks and
  // undo records of `child` merge into `parent` (commit) or unwind (abort).
  void HandleSubtxnCommit(const TransactionId& child, const TransactionId& parent,
                          const TransactionId& top);
  void HandleSubtxnAbort(const TransactionId& child, const TransactionId& top);
  // Remote query for a transaction's outcome (in-doubt resolution after a
  // coordinator or participant crash). Presumes abort for unknown tids.
  bool QueryCommitted(const TransactionId& tid);

  // --- crash recovery (TxnOutcomeSource) ---------------------------------------
  void ObserveTxnRecord(const log::LogRecord& rec) override;
  recovery::TxnOutcome OutcomeOf(const TransactionId& top) override;

  // After RecoveryManager::Recover: re-locks in-doubt transactions' objects
  // through the named participants and remembers them for resolution.
  void PostRecovery(const recovery::RecoveryStats& stats,
                    const std::map<std::string, CommitParticipant*>& participants);
  // Crash recovery only (not single-server repair, not first boot): moves
  // this node into a fresh transaction-id incarnation and forces a NODE_EPOCH
  // record so the bump survives another crash. Guarantees that ids the dead
  // incarnation minted but never logged — alive only as orphan state on
  // remote participants — can never be re-minted and aliased.
  void BeginNewIncarnation();
  // Presumed abort for orphans: rolls back every ACTIVE transaction whose
  // spanning-tree parent is `dead` and that was initiated remotely. Such a
  // transaction can never prepare (its coordinator's volatile state died
  // with it), so aborting is safe the instant the session layer reports the
  // node down. Prepared transactions are untouched — they are in doubt and
  // resolve through ResolveInDoubt.
  void AbortRemoteOrphansOf(NodeId dead);
  // Contacts the in-doubt transaction's parent node for the verdict and
  // applies it locally. Returns the outcome, or kNodeDown if still unreachable.
  Status ResolveInDoubt(const TransactionId& tid);
  std::vector<TransactionId> InDoubt() const;

  // Active-transaction table for checkpoints.
  std::vector<recovery::RecoveryManager::ActiveTxn> ActiveTransactions() const;

  // "Checkpoints are performed at intervals determined by the transaction
  // manager" (Section 3.2.2): after a commit, if at least `interval` virtual
  // time has passed since the last checkpoint, take one. 0 disables.
  void SetCheckpointInterval(SimTime interval) { checkpoint_interval_ = interval; }
  int checkpoint_count() const { return checkpoints_taken_; }

  sim::Substrate& substrate() { return node_.substrate(); }

  // Routes commit/prepare-record forces through the node's group-commit
  // daemon instead of a per-transaction Force. Null (the default) or a
  // disabled daemon preserves the paper-faithful per-transaction behaviour.
  void SetGroupCommit(log::GroupCommit* gc) { group_commit_ = gc; }

  // Vote/ack wait budget for the commit protocol (default 10 s virtual).
  void SetVoteTimeout(SimTime timeout_us) { vote_timeout_ = timeout_us; }
  SimTime vote_timeout() const { return vote_timeout_; }

 private:
  struct Txn {
    TransactionId tid;
    TransactionId parent;           // null for top-level
    TransactionId top;
    TxnState state = TxnState::kActive;
    NodeId parent_node = kInvalidNode;  // 2PC tree parent (kInvalid: rooted here)
    std::vector<CommitParticipant*> servers;
    Lsn first_lsn = kNullLsn;
    std::set<TransactionId> live_subtxns;
    std::set<NodeId> update_children;  // children that voted yes (not read-only)
    std::vector<NodeId> siblings;      // fellow participants (from the prepare)
    std::vector<NodeId> acceptors;     // Paxos Commit: the 2F+1 acceptor set
                                       // (empty: plain 2PC governs this txn)
    bool born_here = true;
    // Exactly one task may drive this transaction's abort. Whoever sets the
    // flag owns the whole path through AbortSubtree and ForgetTxn; every
    // other abort/commit attempt that observes it backs off — re-entering
    // mid-undo would apply the undo chain twice and then dangle the Txn&.
    bool abort_started = false;
  };

  Txn* Find(const TransactionId& tid);
  const Txn* Find(const TransactionId& tid) const;
  Txn& GetOrCreateRemote(const TransactionId& tid, NodeId parent_node);
  // The unguarded abort path: sets abort_started and unwinds. Abort() and
  // CascadeAbort() are the guarded entry points.
  void AbortImpl(Txn& txn);

  // Implemented in two_phase_commit.cc.
  Status CommitTopLevel(Txn& txn);
  Vote PrepareSubtree(Txn& txn);
  void CommitSubtree(Txn& txn, bool is_root);
  void AbortSubtree(Txn& txn, bool notify_children);
  void CommitSubtransaction(Txn& txn);
  TransactionManager* Peer(NodeId node) const;

  // Implemented in paxos_commit.cc.
  Status CommitTopLevelPaxos(Txn& txn);
  // Applies a verdict to a recovered in-doubt transaction: re-log the
  // outcome, redo/undo through the Recovery Manager, release locks.
  void ApplyRecoveredOutcome(const TransactionId& tid, bool committed);

  // Appends the record and returns its LSN; with `force`, also blocks until
  // it is stable (ForceLsn). Queue mode splits the two so locks can release
  // between append and force.
  Lsn AppendTxnRecord(log::RecordType type, const Txn& txn, bool force);
  void ForceLsn(Lsn lsn);
  // Queue mode: drop txn's locks through every joined server (OnEarlyRelease).
  void EarlyRelease(Txn& txn, bool taint);
  // Queue mode: abort a queued successor of an aborting early-releaser. The
  // victim's entry is consumed here; its own task observes the abort through
  // the RefusesOps / cascading-set guards.
  void CascadeAbort(const TransactionId& tid);
  void ForgetTxn(const TransactionId& tid);
  void MaybeCheckpoint();

  kernel::Node& node_;
  recovery::RecoveryManager& rm_;
  comm::CommManager& cm_;
  const std::map<NodeId, TransactionManager*>* peers_ = nullptr;
  log::GroupCommit* group_commit_ = nullptr;

  // Transaction ids are (incarnation_ << kIncarnationShift) | next_sequence_.
  // The counter restarts at 1 with every incarnation; the incarnation only
  // moves forward (replay of NODE_EPOCH records, then BeginNewIncarnation).
  std::uint64_t incarnation_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::map<TransactionId, Txn> txns_;

  // Durable knowledge rebuilt from the log by ObserveTxnRecord, plus
  // outcomes decided since; consulted by QueryCommitted and OutcomeOf.
  std::map<TransactionId, recovery::TxnOutcome> logged_outcomes_;
  std::map<TransactionId, NodeId> logged_parent_node_;
  std::map<TransactionId, std::vector<NodeId>> logged_siblings_;
  std::map<TransactionId, std::vector<NodeId>> logged_acceptors_;
  std::set<TransactionId> in_doubt_;
  std::map<std::string, CommitParticipant*> recovered_participants_;

  SimTime checkpoint_interval_ = 0;
  SimTime last_checkpoint_time_ = 0;
  int checkpoints_taken_ = 0;

  // Commit-protocol tuning (paper Section 5.3): when the architecture model
  // says optimized_commit, phase two leaves the latency-critical path.
  // How long the coordinator waits for each vote or ack before treating the
  // child as failed (WorldOptions::vote_timeout_us; fault sweeps tighten it).
  SimTime vote_timeout_ = 10'000'000;  // 10 s virtual

  CommitMode commit_mode_ = CommitMode::kTwoPhase;
  std::unique_ptr<PaxosCommit> paxos_;

  // True when an abort of `txn` — or of the top-level transaction it belongs
  // to — is already in flight on some other task.
  bool AbortInProgress(const Txn& txn) const;

  // Queue-oriented execution state (volatile; empty when the mode is off).
  OpQueue op_queue_;

  friend class PaxosCommit;
};

}  // namespace tabs::txn

#endif  // TABS_TXN_TRANSACTION_MANAGER_H_
