// Paxos Commit (see paxos_commit.h for the protocol overview) and the
// TransactionManager entry points that drive it: the coordinator path
// (CommitTopLevelPaxos), the participant prepare handler, verdict delivery,
// and the dead-coordinator takeover sweep.
//
// Everything here reuses the 2PC building blocks — PrepareSubtree for the
// local and subtree prepare work, CommitSubtree/AbortSubtree for outcome
// propagation, AppendTxnRecord for prepare/commit records — so a transaction
// committed under kPaxosCommit pays exactly the 2PC prices plus the acceptor
// traffic, which is what bench/commit_ablation measures.

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>

#include "src/log/group_commit.h"
#include "src/sim/fault_injector.h"
#include "src/txn/transaction_manager.h"

namespace tabs::txn {

using log::LogRecord;
using log::RecordType;
using recovery::TxnOutcome;

namespace {
// Ballot b belongs to node (b % kBallotStride) in round (b / kBallotStride):
// concurrent takeover leaders can never mint the same ballot, and a leader
// that loses phase 1 leapfrogs the winner by jumping past its round.
constexpr Ballot kBallotStride = 1024;
// Base unit of the takeover retry backoff: multiplied by the attempt number
// and the node id, so no two nodes ever share a retry schedule.
constexpr SimTime kTakeoverBackoffUs = 50'000;
}  // namespace

CommitMode DefaultCommitMode() {
  const char* mode = std::getenv("TABS_COMMIT_MODE");
  if (mode != nullptr && std::strcmp(mode, "paxos") == 0) {
    return CommitMode::kPaxosCommit;
  }
  return CommitMode::kTwoPhase;
}

// --- PaxosCommit helpers -----------------------------------------------------

NodeId PaxosCommit::self() const { return tm_.node_.id(); }

Ballot PaxosCommit::NextBallot() {
  ++takeover_round_;
  return static_cast<Ballot>(takeover_round_) * kBallotStride +
         static_cast<Ballot>(self() % kBallotStride);
}

std::vector<NodeId> PaxosCommit::ChooseAcceptors(const TransactionId& tid) const {
  std::vector<NodeId> members;
  if (tm_.peers_ != nullptr) {
    for (const auto& [id, tm] : *tm_.peers_) {
      members.push_back(id);  // includes dead nodes: pure function of membership
    }
  }
  if (members.empty()) {
    members.push_back(self());
  }
  size_t want = static_cast<size_t>(2 * f_ + 1);
  if (want > members.size()) {
    want = members.size();
  }
  if (want % 2 == 0) {
    --want;  // an even set tolerates no more failures than the next odd one down
  }
  size_t start = tid.counter() % members.size();
  std::vector<NodeId> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    out.push_back(members[(start + i) % members.size()]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Lsn PaxosCommit::AppendPaxosRecord(RecordType type, const TransactionId& tid,
                                   NodeId participant, Ballot ballot, PaxosVote vote) {
  LogRecord rec;
  rec.type = type;
  rec.owner = tid;
  rec.top = tid;
  rec.paxos_participant = participant;
  rec.paxos_ballot = ballot;
  rec.paxos_vote = static_cast<std::int8_t>(vote);
  Lsn lsn = tm_.rm_.log().Append(std::move(rec));
  AcceptorState& st = states_[tid];
  if (st.first_lsn == kNullLsn) {
    st.first_lsn = lsn;
  }
  return lsn;
}

void PaxosCommit::ForceLog(Lsn lsn) {
  // TM -> RM force request and completion, then the stable write itself
  // (charged by the log manager) — same price as a 2PC prepare force.
  tm_.node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  if (tm_.group_commit_ != nullptr) {
    tm_.group_commit_->WaitStable(lsn);
  } else {
    tm_.rm_.log().ForceAll();
  }
}

// --- participant/leader side -------------------------------------------------

void PaxosCommit::CastVote(const TransactionId& tid, PaxosVote vote,
                           const std::vector<NodeId>& acceptors, NodeId leader,
                           AcceptChannelPtr replies) {
  sim::Substrate& sub = tm_.node_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  // The vote is computed but not yet on the wire to any acceptor: a crash
  // here leaves the instance open, decided by takeover as Aborted.
  FAULT_POINT(sub, "paxos.vote-send");
  NodeId me = self();
  bool first_send = true;
  for (NodeId a : acceptors) {
    if (a == me) {
      AcceptVote(tid, me, 0, vote, leader, replies);
      continue;
    }
    TransactionManager* atm = tm_.Peer(a);
    if (atm == nullptr) {
      continue;  // dead acceptor: a quorum of the others suffices
    }
    if (!first_send) {
      sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
    }
    first_send = false;
    PaxosCommit* ap = atm->paxos_.get();
    tm_.cm_.SendDatagram(a, "paxos-vote", [ap, tid, me, vote, leader, replies] {
      ap->AcceptVote(tid, me, 0, vote, leader, replies);
    });
  }
}

int PaxosCommit::Resolve(const TransactionId& tid, const std::vector<NodeId>& participants,
                         const std::vector<NodeId>& acceptors) {
  if (acceptors.empty()) {
    return 0;
  }
  // One takeover leader per transaction per node: the crash sweep and a
  // manual ResolveInDoubt would otherwise duel each other with competing
  // ballots from the SAME node. Later callers park until the verdict.
  sim::Scheduler& sched = tm_.node_.substrate().scheduler();
  if (resolving_.contains(tid)) {
    auto verdict = std::make_shared<sim::Channel<int>>(sched);
    resolve_waiters_[tid].push_back(verdict);
    int v = 0;
    verdict->PopWithTimeout(tm_.vote_timeout_, &v);
    return v;  // 0 when the leader also gave up (or never answered)
  }
  resolving_.insert(tid);
  int outcome = RunTakeover(tid, participants, acceptors);
  resolving_.erase(tid);
  auto it = resolve_waiters_.find(tid);
  if (it != resolve_waiters_.end()) {
    for (auto& ch : it->second) {
      ch->Push(outcome);
    }
    resolve_waiters_.erase(it);
  }
  return outcome;
}

int PaxosCommit::RunTakeover(const TransactionId& tid,
                             const std::vector<NodeId>& participants,
                             const std::vector<NodeId>& acceptors) {
  sim::Substrate& sub = tm_.node_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "paxos.takeover",
                      sub.tracer().enabled() ? ToString(tid) : std::string());
  // Takeover is starting but nothing durable has happened: a crash here
  // leaves the transaction in doubt for the next standby leader.
  FAULT_POINT(sub, "paxos.takeover");
  NodeId me = self();
  const size_t quorum = Quorum(acceptors);

  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0) {
      // Competing takeover leaders on different nodes would otherwise
      // outpromise each other forever. A node-keyed backoff (deterministic:
      // no randomness in the simulation) makes one leader retry strictly
      // before the others, so its round runs uncontended.
      sched.Charge(kTakeoverBackoffUs * static_cast<SimTime>(attempt) *
                   static_cast<SimTime>(1 + self() % kBallotStride));
      sched.Yield();
    }
    Ballot b = NextBallot();

    // ---- phase 1: promises from an acceptor quorum ----
    auto promises = std::make_shared<PromiseChannel>(sched);
    size_t sent = 0;
    bool first_send = true;
    for (NodeId a : acceptors) {
      if (a == me) {
        promises->Push(Promise(tid, b));
        ++sent;
        continue;
      }
      TransactionManager* atm = tm_.Peer(a);
      if (atm == nullptr) {
        continue;
      }
      if (!first_send) {
        sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
      }
      first_send = false;
      ++sent;
      PaxosCommit* ap = atm->paxos_.get();
      comm::CommManager* acm = &atm->cm_;
      tm_.cm_.SendDatagram(a, "paxos-ballot", [ap, acm, tid, b, me, promises] {
        PaxosPromise p = ap->Promise(tid, b);
        acm->SendDatagram(me, "paxos-promise", [promises, p] { promises->Push(p); });
      });
    }

    std::vector<PaxosPromise> oks;
    Ballot highest = b;
    SimTime deadline = sched.Now() + tm_.vote_timeout_;
    for (size_t i = 0; i < sent && oks.size() < quorum; ++i) {
      PaxosPromise p;
      SimTime remaining = std::max<SimTime>(deadline - sched.Now(), 0);
      if (!promises->PopWithTimeout(remaining, &p)) {
        break;
      }
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // CM -> TM
      if (p.learned != 0) {
        return p.learned;  // an acceptor already knows the outcome: adopt it
      }
      if (p.ok) {
        oks.push_back(std::move(p));
      } else {
        highest = std::max(highest, p.promised);
      }
    }
    if (oks.size() < quorum) {
      if (highest <= b) {
        return 0;  // no quorum reachable: still in doubt, locks stay held
      }
      // A competing takeover holds a higher ballot: leapfrog its round.
      takeover_round_ = std::max(takeover_round_, highest / kBallotStride);
      continue;
    }

    // ---- value selection: for each instance the highest-ballot accepted
    // vote anywhere in the quorum; Aborted for instances no quorum member
    // has accepted (quorum intersection: a ballot-0 decision always leaves
    // at least one acceptance in ANY quorum, so a free choice is safe).
    std::vector<InstanceValue> values;
    values.reserve(participants.size());
    for (NodeId part : participants) {
      InstanceValue chosen{part, 0, PaxosVote::kAborted};
      bool found = false;
      for (const PaxosPromise& p : oks) {
        for (const InstanceValue& iv : p.accepted) {
          if (iv.participant != part) {
            continue;
          }
          if (!found || iv.ballot > chosen.ballot) {
            chosen.ballot = iv.ballot;
            chosen.vote = iv.vote;
          }
          found = true;
        }
      }
      values.push_back(chosen);
    }

    // ---- phase 2: accept-all at ballot b ----
    auto acks = std::make_shared<AcceptChannel>(sched);
    size_t sent2 = 0;
    first_send = true;
    for (NodeId a : acceptors) {
      if (a == me) {
        PaxosAccepted r;
        r.tid = tid;
        r.acceptor = me;
        r.ballot = b;
        r.ok = AcceptAll(tid, b, values);
        acks->Push(r);
        ++sent2;
        continue;
      }
      TransactionManager* atm = tm_.Peer(a);
      if (atm == nullptr) {
        continue;
      }
      if (!first_send) {
        sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
      }
      first_send = false;
      ++sent2;
      PaxosCommit* ap = atm->paxos_.get();
      comm::CommManager* acm = &atm->cm_;
      NodeId aid = a;
      tm_.cm_.SendDatagram(a, "paxos-accept", [ap, acm, tid, b, me, aid, values, acks] {
        PaxosAccepted r;
        r.tid = tid;
        r.acceptor = aid;
        r.ballot = b;
        r.ok = ap->AcceptAll(tid, b, values);
        acm->SendDatagram(me, "paxos-accept-ack", [acks, r] { acks->Push(r); });
      });
    }

    size_t got = 0;
    bool nacked = false;
    deadline = sched.Now() + tm_.vote_timeout_;
    for (size_t i = 0; i < sent2 && got < quorum; ++i) {
      PaxosAccepted r;
      SimTime remaining = std::max<SimTime>(deadline - sched.Now(), 0);
      if (!acks->PopWithTimeout(remaining, &r)) {
        break;
      }
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // CM -> TM
      if (r.ok) {
        ++got;
      } else {
        nacked = true;
      }
    }
    if (got < quorum) {
      if (!nacked) {
        return 0;  // acceptors fell silent mid-phase-2: still in doubt
      }
      continue;  // outpromised between our phases: retry with a fresh ballot
    }

    // ---- decided: F+1 acceptors logged every instance's value ----
    int outcome = 1;
    for (const InstanceValue& v : values) {
      if (v.vote == PaxosVote::kAborted) {
        outcome = -1;
      }
    }
    // The decision stands at the acceptors but no learn/verdict datagram is
    // out yet: a crash here re-resolves to the SAME outcome (phase 1 of the
    // next takeover must see our phase-2 acceptances).
    FAULT_POINT(sub, "paxos.learn");
    BroadcastLearn(tid, outcome, acceptors);
    bool committed = outcome > 0;
    for (NodeId part : participants) {
      if (part == me) {
        continue;
      }
      TransactionManager* ptm = tm_.Peer(part);
      if (ptm == nullptr) {
        continue;  // dead participant learns through ResolveInDoubt at recovery
      }
      tm_.cm_.SendDatagram(part, "paxos-verdict", [ptm, tid, committed] {
        ptm->HandlePaxosVerdict(tid, committed);
      });
    }
    return outcome;
  }
  return 0;  // repeatedly outpromised: give up for now, a later sweep retries
}

void PaxosCommit::BroadcastLearn(const TransactionId& tid, int outcome,
                                 const std::vector<NodeId>& acceptors) {
  for (NodeId a : acceptors) {
    if (a == self()) {
      Learn(tid, outcome);
      continue;
    }
    TransactionManager* atm = tm_.Peer(a);
    if (atm == nullptr) {
      continue;
    }
    PaxosCommit* ap = atm->paxos_.get();
    tm_.cm_.SendDatagram(a, "paxos-learn", [ap, tid, outcome] { ap->Learn(tid, outcome); });
  }
}

// --- acceptor side -----------------------------------------------------------

void PaxosCommit::AcceptVote(const TransactionId& tid, NodeId participant, Ballot ballot,
                             PaxosVote vote, NodeId leader, AcceptChannelPtr replies) {
  sim::Substrate& sub = tm_.node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "paxos.accept",
                      sub.tracer().enabled() ? ToString(tid) : std::string());
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);  // CM -> TM, TM -> CM
  AcceptorState& st = states_[tid];
  if (st.learned != 0 || st.promised > ballot) {
    // A takeover moved past this ballot (or the outcome is already known):
    // acknowledging a stale vote now could hand the original leader a
    // quorum that contradicts the takeover's decision. Stay silent — the
    // leader learns the truth through the phase-1 read path instead.
    return;
  }
  auto it = st.accepted.find(participant);
  bool duplicate =
      it != st.accepted.end() && it->second.ballot == ballot && it->second.vote == vote;
  if (!duplicate) {
    st.accepted[participant] = InstanceValue{participant, ballot, vote};
    // The acceptance is volatile: a crash here and this acceptor never
    // accepted — takeover still reaches a correct decision from the rest.
    FAULT_POINT(sub, "paxos.accept-log");
    ForceLog(AppendPaxosRecord(RecordType::kPaxosAccept, tid, participant, ballot, vote));
  }
  // The acceptance is durable but unreported: the leader times out and the
  // takeover path must find it here during phase 1.
  FAULT_POINT(sub, "paxos.accept-send");
  PaxosAccepted acc;
  acc.tid = tid;
  acc.participant = participant;
  acc.acceptor = self();
  acc.ballot = ballot;
  acc.vote = vote;
  acc.ok = true;
  if (leader == self()) {
    replies->Push(acc);
    return;
  }
  tm_.cm_.SendDatagram(leader, "paxos-accepted", [replies, acc] { replies->Push(acc); });
}

PaxosPromise PaxosCommit::Promise(const TransactionId& tid, Ballot ballot) {
  sim::Substrate& sub = tm_.node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);  // CM -> TM, TM -> CM
  AcceptorState& st = states_[tid];
  PaxosPromise p;
  p.acceptor = self();
  if (st.learned != 0) {
    // Decided long ago: short-circuit with the outcome, no ballot movement.
    p.ok = true;
    p.promised = st.promised;
    p.learned = st.learned;
    return p;
  }
  if (ballot <= st.promised) {
    p.ok = false;
    p.promised = st.promised;
    return p;
  }
  st.promised = ballot;
  // The promise must survive this acceptor's crash, or a recovered acceptor
  // could accept a lower ballot it already promised away.
  ForceLog(AppendPaxosRecord(RecordType::kPaxosPromise, tid, kInvalidNode, ballot,
                             PaxosVote::kNone));
  p.ok = true;
  p.promised = ballot;
  for (const auto& [part, iv] : st.accepted) {
    p.accepted.push_back(iv);
  }
  return p;
}

bool PaxosCommit::AcceptAll(const TransactionId& tid, Ballot ballot,
                            const std::vector<InstanceValue>& values) {
  sim::Substrate& sub = tm_.node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);  // CM -> TM, TM -> CM
  AcceptorState& st = states_[tid];
  if (st.learned != 0) {
    return true;  // decided: any consistent leader proposes the same outcome
  }
  if (ballot < st.promised) {
    return false;
  }
  st.promised = ballot;
  FAULT_POINT(sub, "paxos.accept-log");
  Lsn last = kNullLsn;
  for (const InstanceValue& v : values) {
    st.accepted[v.participant] = InstanceValue{v.participant, ballot, v.vote};
    last = AppendPaxosRecord(RecordType::kPaxosAccept, tid, v.participant, ballot, v.vote);
  }
  if (last != kNullLsn) {
    ForceLog(last);  // one combined force covers every instance's record
  }
  return true;
}

void PaxosCommit::Learn(const TransactionId& tid, int outcome) {
  AcceptorState& st = states_[tid];
  if (st.learned == outcome) {
    return;  // duplicate learn datagram
  }
  st.learned = outcome;
  // Unforced: losing a learn record only costs a takeover round later.
  AppendPaxosRecord(RecordType::kPaxosLearn, tid, kInvalidNode, 0,
                    outcome > 0 ? PaxosVote::kPrepared : PaxosVote::kAborted);
  tm_.node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);
}

int PaxosCommit::LearnedOutcome(const TransactionId& tid) const {
  auto it = states_.find(tid);
  return it == states_.end() ? 0 : it->second.learned;
}

// --- recovery ----------------------------------------------------------------

void PaxosCommit::ObserveRecord(const log::LogRecord& rec) {
  AcceptorState& st = states_[rec.top];
  if (st.first_lsn == kNullLsn && rec.lsn != kNullLsn) {
    st.first_lsn = rec.lsn;
  }
  switch (rec.type) {
    case RecordType::kPaxosPromise:
      st.promised = std::max(st.promised, rec.paxos_ballot);
      break;
    case RecordType::kPaxosAccept: {
      st.promised = std::max(st.promised, rec.paxos_ballot);
      auto it = st.accepted.find(rec.paxos_participant);
      if (it == st.accepted.end() || it->second.ballot <= rec.paxos_ballot) {
        st.accepted[rec.paxos_participant] =
            InstanceValue{rec.paxos_participant, rec.paxos_ballot,
                          static_cast<PaxosVote>(rec.paxos_vote)};
      }
      break;
    }
    case RecordType::kPaxosLearn:
      st.learned = rec.paxos_vote > 0 ? 1 : -1;
      break;
    default:
      break;
  }
}

std::vector<recovery::RecoveryManager::ActiveTxn> PaxosCommit::PinnedInstances() const {
  std::vector<recovery::RecoveryManager::ActiveTxn> out;
  for (const auto& [tid, st] : states_) {
    if (st.learned != 0 || st.first_lsn == kNullLsn) {
      continue;
    }
    recovery::RecoveryManager::ActiveTxn at;
    at.owner = tid;
    at.top = tid;
    at.prepared = true;  // undecided acceptor state pins like an in-doubt txn
    at.first_lsn = st.first_lsn;
    out.push_back(at);
  }
  return out;
}

// --- TransactionManager: coordinator path ------------------------------------

Status TransactionManager::CommitTopLevelPaxos(Txn& txn) {
  assert(txn.born_here && "EndTransaction must run at the transaction's birth node");
  sim::Substrate& sub = node_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager, "paxos.commit",
                      sub.tracer().enabled() ? ToString(txn.top) : std::string());

  // Open subtransactions commit with their parent (Section 2.1.3).
  for (const TransactionId& s : std::set<TransactionId>(txn.live_subtxns)) {
    Txn* st = Find(s);
    if (st != nullptr) {
      CommitSubtransaction(*st);
    }
  }

  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // app -> TM: commit
  txn.state = TxnState::kPreparing;

  const auto& info = cm_.InfoFor(txn.top);
  if (!info.children.empty()) {
    // The CM hands the TM the complete site list (a pointer message).
    sub.Charge(sim::Primitive::kPointerMessage, 1);
  }

  // The participant set is this node plus its direct children; each child
  // prepares its own subtree with plain 2PC and votes on the subtree's
  // behalf, so one Paxos instance per direct participant covers the tree.
  std::vector<NodeId> participants(info.children.begin(), info.children.end());
  participants.push_back(node_.id());
  std::sort(participants.begin(), participants.end());
  txn.siblings = participants;
  txn.acceptors = paxos_->ChooseAcceptors(txn.top);

  for (NodeId child : info.children) {
    if (Peer(child) == nullptr) {
      // A participant is already dead: abort now, no consensus needed.
      AbortSubtree(txn, /*notify_children=*/true);
      TransactionId tid = txn.tid;
      ForgetTxn(tid);
      return Status::kVoteNo;
    }
  }

  FAULT_POINT(sub, "2pc.prepare.begin");

  // Phase one downward: paxos-prepare datagrams carry the participant and
  // acceptor sets, so any survivor can later run a takeover.
  auto replies = std::make_shared<AcceptChannel>(sched);
  bool first_send = true;
  for (NodeId child : info.children) {
    TransactionManager* child_tm = Peer(child);
    if (!first_send) {
      sched.Charge(sub.CostOf(sim::Primitive::kDatagram) / 2);
    }
    first_send = false;
    TransactionId tid = txn.top;
    NodeId self_id = node_.id();
    std::vector<NodeId> parts = participants;
    std::vector<NodeId> accs = txn.acceptors;
    cm_.SendDatagram(child, "paxos-prepare", [child_tm, tid, self_id, parts, accs, replies] {
      child_tm->HandlePaxosPrepare(tid, self_id, parts, accs, replies);
    });
  }

  if (op_queue_.enabled()) {
    // A dependent may not vote before its predecessors decide: the local
    // prepare record below would otherwise make a dirty read durable. The
    // children prepare in parallel while we wait; re-resolve afterwards — a
    // predecessor's abort may have cascaded to this transaction while we
    // slept.
    const TransactionId self = txn.tid;
    Status ws = op_queue_.AwaitPredecessors(txn.top, vote_timeout_);
    Txn* again = Find(self);
    if (again == nullptr || again->state == TxnState::kAborted || AbortInProgress(*again)) {
      return Status::kAborted;
    }
    if (ws != Status::kOk) {
      AbortSubtree(txn, /*notify_children=*/true);
      ForgetTxn(self);
      return Status::kVoteNo;
    }
  }

  // Local prepare: same as the 2PC local half of PrepareSubtree.
  bool local_updates = false;
  for (CommitParticipant* s : txn.servers) {
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server: prepare
    if (s->HasUpdates(txn.tid)) {
      local_updates = true;
      sub.ChargeSystemMessage(sim::Primitive::kLargeMessage, 1);
    }
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // server -> TM: vote
  }
  PaxosVote my_vote = PaxosVote::kReadOnly;
  if (local_updates) {
    sub.scheduler().Charge(sub.costs().participant_prepare_overhead_us);
    FAULT_POINT(sub, "2pc.vote.before_record");
    if (op_queue_.enabled()) {
      // In-doubt early release: the Paxos outcome is undecided until a
      // quorum accepts each instance, so the released objects are tainted
      // exactly like a 2PC participant's prepare.
      Lsn lsn = AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/false);
      FAULT_POINT(sub, "queue.prepare.early-release");
      EarlyRelease(txn, /*taint=*/true);
      ForceLsn(lsn);
    } else {
      AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/true);
    }
    FAULT_POINT(sub, "2pc.vote.after_record");
    Txn* after_force = Find(txn.top);
    if (after_force == nullptr || AbortInProgress(*after_force)) {
      return Status::kAborted;  // aborted (or being aborted) during the force
    }
    txn.state = TxnState::kPrepared;
    logged_outcomes_[txn.top] = TxnOutcome::kPrepared;
    my_vote = PaxosVote::kPrepared;
  }
  paxos_->CastVote(txn.top, my_vote, txn.acceptors, node_.id(), replies);

  // Collect ballot-0 acceptances. An instance is decided at a quorum of
  // acceptors; the F+1-th acceptance of the LAST instance is the commit
  // point — it, not any coordinator record, makes the outcome durable.
  const size_t quorum = PaxosCommit::Quorum(txn.acceptors);
  std::map<NodeId, std::set<NodeId>> accepts;
  std::map<NodeId, PaxosVote> decided;
  SimTime vote_deadline = sched.Now() + vote_timeout_;
  while (decided.size() < participants.size()) {
    PaxosAccepted a;
    SimTime remaining = std::max<SimTime>(vote_deadline - sched.Now(), 0);
    if (!replies->PopWithTimeout(remaining, &a)) {
      break;
    }
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // CM -> TM: 2b arrived
    if (a.tid != txn.top || a.ballot != 0 || !a.ok || decided.contains(a.participant)) {
      continue;
    }
    auto& who = accepts[a.participant];
    who.insert(a.acceptor);
    if (who.size() >= quorum) {
      decided[a.participant] = a.vote;
    }
  }

  int outcome = 0;
  bool via_takeover = false;
  if (decided.size() == participants.size()) {
    outcome = 1;
    for (const auto& [p, v] : decided) {
      if (v == PaxosVote::kAborted) {
        outcome = -1;
      }
    }
  } else {
    // Timed out short of a decision. Presumed abort is UNSOUND here: some
    // instance may already have a ballot-0 quorum, making the transaction
    // committed at the acceptors while this coordinator saw too few
    // replies. Read the truth through the consensus path instead.
    via_takeover = true;
    outcome = paxos_->Resolve(txn.top, participants, txn.acceptors);
    if (Find(txn.top) == nullptr) {
      return outcome > 0 ? Status::kOk : Status::kAborted;  // verdict raced us
    }
    if (outcome == 0) {
      // No acceptor quorum reachable: genuinely in doubt. Keep the locks —
      // blocking here is the price of consistency; any survivor (or this
      // node after recovery) resolves through the acceptors later.
      return Status::kNodeDown;
    }
  }

  if (outcome > 0) {
    sub.scheduler().Charge(sub.costs().coordinator_overhead_us);
    bool updates = local_updates;
    if (!via_takeover) {
      for (const auto& [p, v] : decided) {
        if (p != node_.id() && v == PaxosVote::kPrepared) {
          txn.update_children.insert(p);
          updates = true;
        }
      }
    } else {
      updates = true;  // rare path: can't tell read-only apart, log the record
    }
    if (updates) {
      sub.scheduler().Charge(sub.costs().coordinator_write_extra_us);
      // Unforced on purpose: the commit point already passed at the
      // acceptors, so this record is a lazy hint that spares a takeover
      // after a coordinator crash — exactly the force 2PC cannot skip.
      AppendTxnRecord(RecordType::kTxnCommit, txn, /*force=*/false);
    }
    txn.state = TxnState::kCommitted;
    logged_outcomes_[txn.top] = TxnOutcome::kCommitted;
    if (!via_takeover) {
      // Commit stands at the acceptors but no learn datagram is out: a
      // crash here must still commit everywhere via takeover.
      FAULT_POINT(sub, "paxos.learn");
      paxos_->BroadcastLearn(txn.top, 1, txn.acceptors);
    }
    if (op_queue_.enabled()) {
      // Decided: clear the local prepare's taints, discharge dependents.
      op_queue_.NoteCommitted(txn.top);
    }
    CommitSubtree(txn, /*is_root=*/true);
    sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> app: done
    TransactionId tid = txn.tid;
    ForgetTxn(tid);
    return Status::kOk;
  }

  if (!via_takeover) {
    FAULT_POINT(sub, "paxos.learn");
    paxos_->BroadcastLearn(txn.top, -1, txn.acceptors);
  }
  AbortSubtree(txn, /*notify_children=*/true);
  TransactionId tid = txn.tid;
  ForgetTxn(tid);
  return Status::kVoteNo;
}

// --- TransactionManager: participant side ------------------------------------

void TransactionManager::HandlePaxosPrepare(const TransactionId& tid, NodeId leader,
                                            const std::vector<NodeId>& participants,
                                            const std::vector<NodeId>& acceptors,
                                            AcceptChannelPtr replies) {
  sim::Substrate& sub = node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  sim::SpanGuard span(sub.tracer(), sim::Component::kTransactionManager,
                      "paxos.handle-prepare",
                      sub.tracer().enabled() ? ToString(tid) : std::string());
  Txn* found = Find(tid);
  if (found == nullptr) {
    // No live entry: usually this node never saw an operation (read-only by
    // vacuity), but the instance must still decide or the commit blocks.
    // EXCEPT when this node already aborted and rolled the transaction back
    // — the orphan sweep after the coordinator's crash can beat the
    // coordinator's last prepare datagram here. The updates are undone, so
    // a ReadOnly vote would let a takeover assemble a commit missing this
    // node's writes; the instance must decide Aborted instead.
    PaxosVote vacuous = OutcomeOf(tid) == TxnOutcome::kAborted ? PaxosVote::kAborted
                                                               : PaxosVote::kReadOnly;
    paxos_->CastVote(tid, vacuous, acceptors, leader, replies);
    return;
  }
  Txn& txn = *found;
  if (txn.state == TxnState::kAborted) {
    paxos_->CastVote(tid, PaxosVote::kAborted, acceptors, leader, replies);
    return;
  }
  // CM -> TM: prepare arrived; TM -> CM: vote handed back for the wire.
  sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  txn.parent_node = leader;
  txn.siblings = participants;
  txn.acceptors = acceptors;
  txn.state = TxnState::kPreparing;

  Vote v = PrepareSubtree(txn);
  // Re-resolve after every blocking window (see HandlePrepare): an abort
  // datagram may have rolled this subtree back while we waited.
  if (Find(tid) == nullptr) {
    paxos_->CastVote(tid, PaxosVote::kAborted, acceptors, leader, replies);
    return;
  }
  if (v == Vote::kNo) {
    AbortSubtree(txn, /*notify_children=*/true);
    ForgetTxn(tid);
    paxos_->CastVote(tid, PaxosVote::kAborted, acceptors, leader, replies);
    return;
  }
  if (op_queue_.enabled()) {
    // Even a read-only vote must wait: the subtree may have read a
    // predecessor's early-released (still undecided) state, and voting it
    // through would let the leader commit a dirty read.
    Status ws = op_queue_.AwaitPredecessors(tid, vote_timeout_);
    Txn* again = Find(tid);
    if (again == nullptr || again->state == TxnState::kAborted || AbortInProgress(*again)) {
      paxos_->CastVote(tid, PaxosVote::kAborted, acceptors, leader, replies);
      return;
    }
    if (ws != Status::kOk) {
      AbortSubtree(txn, /*notify_children=*/true);
      ForgetTxn(tid);
      paxos_->CastVote(tid, PaxosVote::kAborted, acceptors, leader, replies);
      return;
    }
  }
  if (v == Vote::kReadOnly) {
    // Read-only optimization survives Paxos Commit: release locks now; the
    // vote still runs through consensus so the instance closes.
    sub.scheduler().Charge(sub.costs().participant_read_overhead_us);
    for (CommitParticipant* s : txn.servers) {
      sub.ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);  // TM -> server
      s->OnCommit(tid);
    }
    ForgetTxn(tid);
    paxos_->CastVote(tid, PaxosVote::kReadOnly, acceptors, leader, replies);
    return;
  }
  sub.scheduler().Charge(sub.costs().participant_prepare_overhead_us);
  FAULT_POINT(sub, "2pc.vote.before_record");
  // The prepare record carries the acceptor set, so this participant can be
  // resolved through the acceptors after ANY combination of crashes.
  if (op_queue_.enabled()) {
    // In-doubt early release, same taint regime as the 2PC participant.
    Lsn lsn = AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/false);
    FAULT_POINT(sub, "queue.prepare.early-release");
    EarlyRelease(txn, /*taint=*/true);
    ForceLsn(lsn);
  } else {
    AppendTxnRecord(RecordType::kTxnPrepare, txn, /*force=*/true);
  }
  FAULT_POINT(sub, "2pc.vote.after_record");
  Txn* after_force = Find(tid);
  if (after_force == nullptr || AbortInProgress(*after_force)) {
    return;  // aborted (or being aborted) during the prepare force
  }
  txn.state = TxnState::kPrepared;
  logged_outcomes_[tid] = TxnOutcome::kPrepared;
  logged_parent_node_[tid] = leader;
  paxos_->CastVote(tid, PaxosVote::kPrepared, acceptors, leader, replies);
}

void TransactionManager::HandlePaxosVerdict(const TransactionId& tid, bool committed) {
  sim::Substrate& sub = node_.substrate();
  sim::PhaseScope commit_phase(sub.metrics(), sim::Phase::kCommit);
  Txn* txn = Find(tid);
  if (txn != nullptr && txn->state == TxnState::kPrepared) {
    if (committed) {
      HandleCommit(tid);
    } else {
      HandleAbortMsg(tid);
    }
    return;
  }
  if (in_doubt_.contains(tid)) {
    ApplyRecoveredOutcome(tid, committed);
  }
}

void TransactionManager::ResolvePaxosOrphansOf(NodeId dead) {
  std::set<TransactionId> doomed;
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kPrepared && !txn.acceptors.empty() &&
        txn.parent_node == dead) {
      doomed.insert(tid);
    }
  }
  for (const TransactionId& tid : in_doubt_) {
    auto it = logged_parent_node_.find(tid);
    if (it != logged_parent_node_.end() && it->second == dead &&
        logged_acceptors_.contains(tid)) {
      doomed.insert(tid);
    }
  }
  for (const TransactionId& tid : doomed) {
    // ResolveInDoubt routes every acceptor-backed transaction through the
    // consensus read path — this is where "coordinator death never blocks
    // an in-doubt transaction" is made true.
    ResolveInDoubt(tid);
  }
}

}  // namespace tabs::txn
