// Queue-oriented execution for hot objects: commit-dependency tracking for
// early lock release.
//
// The hot-spot throughput wall (ROADMAP, BENCH_throughput.json) is lock hold
// time: under two-phase locking a writer holds its update lock across the
// commit record's log *force*, so at most one hot-object transaction commits
// per group-commit window. Queue-oriented execution (after "A Queue-oriented
// Transaction Processing Paradigm", PAPERS.md) releases update locks as soon
// as the commit/prepare record is *appended* — before it is durable — and
// admits the next queued transaction immediately. Successors pipeline into
// the group-commit window in arrival order; the force is amortized over the
// whole queue instead of serializing it.
//
// Early release is safe in two different regimes, and this class tracks the
// difference:
//
//  * Root commit (the outcome is already decided, only durability is
//    pending): the node's WAL is forced strictly in LSN order, so a
//    successor's durable commit record implies the predecessor's. No
//    dependency is needed — the release is NOT a taint.
//
//  * In-doubt release (a participant released after appending its *prepare*
//    record; the outcome is still undecided): a successor that touches the
//    released object has read uncommitted state. The grant records a commit
//    dependency — the successor may not append its own prepare/commit record
//    until every such predecessor decides. If a predecessor aborts, the
//    abort cascades to exactly the queued successors (never to a durable
//    transaction: a successor with an undischarged dependency cannot have
//    logged its outcome yet, by construction).
//
// All state here is volatile and keyed by top-level transaction id; a crash
// wipes it together with the transactions it describes (in-doubt ones are
// re-locked by PostRecovery exactly as without queue mode).
//
// Everything is deterministic: std::map/std::set keyed by TransactionId /
// ObjectId give a fixed iteration order, and wake-ups ride the simulator's
// FIFO wait queues.

#ifndef TABS_TXN_OP_QUEUE_H_
#define TABS_TXN_OP_QUEUE_H_

#include <map>
#include <set>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/sim/scheduler.h"

namespace tabs::txn {

class OpQueue {
 public:
  void Attach(sim::Scheduler* sched) { sched_ = sched; }
  void Enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // An in-doubt early release: `top` appended (but has not forced) its
  // prepare record and released its locks on `oids`. Each object is tainted
  // until `top` decides.
  void NoteEarlyRelease(const TransactionId& top, const std::vector<ObjectId>& oids);

  // A lock on `oid` was granted to (a subtransaction of) `top`: record a
  // commit dependency on every undecided tainter of `oid`. Invoked through
  // the lock manager's grant sink on every grant path.
  void NoteAccess(const TransactionId& top, const ObjectId& oid);

  // True while any tainter of `oid` is mid-abort. The lock manager consults
  // this before every grant: a request admitted during the predecessor's
  // undo window could read half-rolled-back state, so it parks as a waiter
  // until FinishAbort lifts the veto and the regrant sweep runs.
  bool GrantVetoed(const ObjectId& oid) const;

  // Blocks until every commit dependency of `top` is discharged (kOk) or
  // `timeout` virtual time passes (kTimeout). Called before a transaction
  // appends its own prepare/commit record; the caller must re-resolve its
  // transaction entry afterwards — a cascade abort may have consumed it
  // while it slept.
  Status AwaitPredecessors(const TransactionId& top, SimTime timeout);

  // `top` decided commit: clear its taints and discharge its dependents.
  void NoteCommitted(const TransactionId& top);

  // Abort protocol: BeginAbort arms the grant veto for `top`'s taints,
  // TakeDependents drains the successors to cascade (sorted, deterministic),
  // FinishAbort clears taints/veto and wakes anything parked on `top`.
  void BeginAbort(const TransactionId& top);
  std::vector<TransactionId> TakeDependents(const TransactionId& top);
  void FinishAbort(const TransactionId& top);

  bool HasDependents(const TransactionId& top) const {
    auto it = dependents_.find(top);
    return it != dependents_.end() && !it->second.empty();
  }

 private:
  void Discharge(const TransactionId& dependent, const TransactionId& predecessor);

  bool enabled_ = false;
  sim::Scheduler* sched_ = nullptr;
  // Undecided early-releasers per object, in release order.
  std::map<ObjectId, std::vector<TransactionId>> tails_;
  // Reverse view: objects tainted per early-releaser.
  std::map<TransactionId, std::set<ObjectId>> tainted_oids_;
  // dependent -> undecided predecessors it must await.
  std::map<TransactionId, std::set<TransactionId>> deps_;
  // predecessor -> dependents to cascade on abort / wake on commit.
  std::map<TransactionId, std::set<TransactionId>> dependents_;
  // Transactions whose abort is in progress (grant veto armed).
  std::set<TransactionId> aborting_;
  // One queue per awaiting transaction (AwaitPredecessors).
  std::map<TransactionId, sim::WaitQueue> waiters_;
};

}  // namespace tabs::txn

#endif  // TABS_TXN_OP_QUEUE_H_
