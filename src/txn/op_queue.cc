#include "src/txn/op_queue.h"

#include <algorithm>
#include <cassert>

namespace tabs::txn {

void OpQueue::NoteEarlyRelease(const TransactionId& top, const std::vector<ObjectId>& oids) {
  for (const ObjectId& oid : oids) {
    auto& tail = tails_[oid];
    if (std::find(tail.begin(), tail.end(), top) == tail.end()) {
      tail.push_back(top);
      tainted_oids_[top].insert(oid);
    }
  }
}

void OpQueue::NoteAccess(const TransactionId& top, const ObjectId& oid) {
  auto it = tails_.find(oid);
  if (it == tails_.end()) {
    return;
  }
  for (const TransactionId& pred : it->second) {
    if (pred == top || aborting_.contains(pred)) {
      continue;
    }
    deps_[top].insert(pred);
    dependents_[pred].insert(top);
  }
}

bool OpQueue::GrantVetoed(const ObjectId& oid) const {
  auto it = tails_.find(oid);
  if (it == tails_.end()) {
    return false;
  }
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const TransactionId& t) { return aborting_.contains(t); });
}

Status OpQueue::AwaitPredecessors(const TransactionId& top, SimTime timeout) {
  auto pending = [&] {
    auto it = deps_.find(top);
    return it != deps_.end() && !it->second.empty();
  };
  if (!pending()) {
    return Status::kOk;
  }
  assert(sched_ != nullptr && sched_->in_task());
  SimTime deadline = sched_->Now() + timeout;
  while (pending()) {
    SimTime remaining = deadline - sched_->Now();
    if (remaining <= 0) {
      return Status::kTimeout;
    }
    sched_->Wait(waiters_[top], remaining);
  }
  auto wit = waiters_.find(top);
  if (wit != waiters_.end() && wit->second.empty()) {
    waiters_.erase(wit);
  }
  return Status::kOk;
}

void OpQueue::Discharge(const TransactionId& dependent, const TransactionId& predecessor) {
  auto dit = deps_.find(dependent);
  if (dit == deps_.end()) {
    return;
  }
  dit->second.erase(predecessor);
  if (dit->second.empty()) {
    deps_.erase(dit);
    auto wit = waiters_.find(dependent);
    if (wit != waiters_.end() && !wit->second.empty()) {
      sched_->NotifyAll(wit->second);
    }
  }
}

void OpQueue::NoteCommitted(const TransactionId& top) {
  auto tit = tainted_oids_.find(top);
  if (tit != tainted_oids_.end()) {
    for (const ObjectId& oid : tit->second) {
      auto& tail = tails_[oid];
      tail.erase(std::remove(tail.begin(), tail.end(), top), tail.end());
      if (tail.empty()) {
        tails_.erase(oid);
      }
    }
    tainted_oids_.erase(tit);
  }
  auto dit = dependents_.find(top);
  if (dit != dependents_.end()) {
    // std::set iteration: dependents wake in TransactionId order.
    auto dependents = std::move(dit->second);
    dependents_.erase(dit);
    for (const TransactionId& d : dependents) {
      Discharge(d, top);
    }
  }
}

void OpQueue::BeginAbort(const TransactionId& top) { aborting_.insert(top); }

std::vector<TransactionId> OpQueue::TakeDependents(const TransactionId& top) {
  auto dit = dependents_.find(top);
  if (dit == dependents_.end()) {
    return {};
  }
  std::vector<TransactionId> out(dit->second.begin(), dit->second.end());
  dependents_.erase(dit);
  for (const TransactionId& d : out) {
    // Unlink without waking: each dependent is about to be cascade-aborted,
    // not released to proceed.
    auto it = deps_.find(d);
    if (it != deps_.end()) {
      it->second.erase(top);
      if (it->second.empty()) {
        deps_.erase(it);
      }
    }
  }
  return out;
}

void OpQueue::FinishAbort(const TransactionId& top) {
  // Clear this transaction's taints: its undo is complete, the on-disk and
  // in-memory state it touched is clean again.
  auto tit = tainted_oids_.find(top);
  if (tit != tainted_oids_.end()) {
    for (const ObjectId& oid : tit->second) {
      auto& tail = tails_[oid];
      tail.erase(std::remove(tail.begin(), tail.end(), top), tail.end());
      if (tail.empty()) {
        tails_.erase(oid);
      }
    }
    tainted_oids_.erase(tit);
  }
  aborting_.erase(top);
  // Unlink any dependencies this transaction itself still held (both
  // directions), then wake it if it is parked in AwaitPredecessors — it will
  // re-resolve its entry and observe the abort.
  auto dit = deps_.find(top);
  if (dit != deps_.end()) {
    for (const TransactionId& pred : dit->second) {
      auto pit = dependents_.find(pred);
      if (pit != dependents_.end()) {
        pit->second.erase(top);
        if (pit->second.empty()) {
          dependents_.erase(pit);
        }
      }
    }
    deps_.erase(dit);
  }
  auto wit = waiters_.find(top);
  if (wit != waiters_.end() && !wit->second.empty()) {
    sched_->NotifyAll(wit->second);
  }
}

}  // namespace tabs::txn
