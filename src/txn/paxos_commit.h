// Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"): the
// non-blocking commit mode behind WorldOptions::commit_mode = kPaxosCommit.
//
// Plain two-phase commit blocks: if the coordinator dies after collecting
// votes but before any commit datagram lands, every prepared participant
// holds its locks until the coordinator node recovers (the window the paper
// concedes and the crash-point explorer demonstrates). Paxos Commit removes
// the single point of knowledge by running one Paxos consensus instance per
// participant vote, with a per-transaction set of 2F+1 acceptors chosen
// deterministically from the cluster membership:
//
//  * Ballot 0 (the fast path): each participant prepares exactly as in 2PC,
//    then sends its vote directly to every acceptor as a pre-assigned
//    phase-2a message. An acceptor logs the acceptance (forced — its promise
//    must survive its own crash) and replies to the leader. An instance is
//    decided once F+1 acceptors accepted; the transaction commits iff every
//    instance decided Prepared or ReadOnly.
//  * Takeover (the non-blocking guarantee): any node that knows the
//    participant and acceptor sets — they ride in every prepare record and
//    prepare datagram — can drive all instances to a decision with a fresh
//    ballot: phase 1a to the acceptors, adopt the highest accepted vote per
//    instance (Aborted for instances no quorum member has seen), phase 2a,
//    decided at F+1 acks. Tolerates F acceptor failures AND the death of
//    coordinator and every participant: the decision lives at the acceptors.
//
// Acceptor state (promised ballot, accepted votes, learned outcome) is
// logged through the node's common WAL and rebuilt by the analysis pass, so
// acceptors crash-recover into the same instance. The commit point moves
// from the coordinator's forced commit record to the F+1-th acceptance of
// the last instance; the coordinator's own commit record is a lazy hint.

#ifndef TABS_TXN_PAXOS_COMMIT_H_
#define TABS_TXN_PAXOS_COMMIT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/log/log_record.h"
#include "src/recovery/recovery_manager.h"
#include "src/sim/scheduler.h"

namespace tabs::txn {

class TransactionManager;

// Which protocol EndTransaction runs for a top-level commit.
enum class CommitMode {
  kTwoPhase,     // the paper's tree-structured 2PC (default)
  kPaxosCommit,  // non-blocking: 2F+1 acceptors replicate the decision
};

// The process-wide default commit mode: kTwoPhase unless the environment
// variable TABS_COMMIT_MODE says "paxos". WorldOptions::commit_mode defaults
// to this, which is how CI runs the whole test suite under either protocol
// without per-test plumbing; tests that exercise protocol-specific behaviour
// pin the mode explicitly.
CommitMode DefaultCommitMode();

using Ballot = std::int32_t;

// Per-instance consensus values. A participant's instance decides its vote;
// the transaction commits iff no instance decides kAborted.
enum class PaxosVote : std::int8_t {
  kNone = 0,
  kPrepared = 1,
  kReadOnly = 2,
  kAborted = -1,
};

// One accepted (participant, ballot, vote) triple at an acceptor.
struct InstanceValue {
  NodeId participant = kInvalidNode;
  Ballot ballot = 0;
  PaxosVote vote = PaxosVote::kNone;
};

// Phase-2b reply: `acceptor` accepted `vote` for `participant`'s instance of
// `tid` at `ballot` (ok), or rejected the ballot (takeover phase 2 only).
struct PaxosAccepted {
  TransactionId tid;
  NodeId participant = kInvalidNode;
  NodeId acceptor = kInvalidNode;
  Ballot ballot = 0;
  PaxosVote vote = PaxosVote::kNone;
  bool ok = true;
};
using AcceptChannel = sim::Channel<PaxosAccepted>;
using AcceptChannelPtr = std::shared_ptr<AcceptChannel>;

// Phase-1b reply: promise (with everything this acceptor has accepted for
// the transaction's instances) or rejection, plus any learned outcome.
struct PaxosPromise {
  NodeId acceptor = kInvalidNode;
  bool ok = false;
  Ballot promised = 0;
  int learned = 0;  // +1 committed, -1 aborted, 0 unknown
  std::vector<InstanceValue> accepted;
};
using PromiseChannel = sim::Channel<PaxosPromise>;

// The per-node Paxos Commit engine: acceptor role for any transaction whose
// acceptor set includes this node, plus the leader-side primitives the
// TransactionManager's coordinator path and takeover path drive. Owned by
// (and a friend of) the TransactionManager; peers are reached through the
// TM's peer table with datagrams, exactly like the 2PC messages.
class PaxosCommit {
 public:
  explicit PaxosCommit(TransactionManager& tm) : tm_(tm) {}

  void SetF(int f) { f_ = f < 0 ? 0 : f; }
  int f() const { return f_; }

  // The 2F+1 acceptors for `tid`: a deterministic rotation of the sorted
  // cluster membership keyed by the transaction counter, so concurrent
  // transactions spread acceptor load. Clamped to the largest odd set the
  // membership supports. Includes dead nodes on purpose: the set must be a
  // pure function of (membership, tid) so every participant, standby leader
  // and recovered node derives the same one.
  std::vector<NodeId> ChooseAcceptors(const TransactionId& tid) const;
  static size_t Quorum(const std::vector<NodeId>& acceptors) {
    return acceptors.size() / 2 + 1;
  }

  // --- participant/leader side ----------------------------------------------
  // Ballot-0 phase 2a: send `vote` for this node's instance of `tid` to every
  // acceptor; each acceptance is reported to `leader` through `replies`.
  void CastVote(const TransactionId& tid, PaxosVote vote,
                const std::vector<NodeId>& acceptors, NodeId leader,
                AcceptChannelPtr replies);

  // Takeover: drive every instance of `tid` to a decision with a fresh
  // ballot (phase 1, value selection, phase 2). Returns +1 commit, -1 abort,
  // or 0 if no acceptor quorum is reachable right now (still in doubt).
  // On a decision, learn datagrams go to the acceptors and verdict datagrams
  // to the other participants, so every in-doubt peer unblocks too.
  // Concurrent callers on one node are serialized per transaction (the
  // second waits for the first's verdict); competing leaders on different
  // nodes de-synchronize with a deterministic node-keyed retry backoff.
  int Resolve(const TransactionId& tid, const std::vector<NodeId>& participants,
              const std::vector<NodeId>& acceptors);

  // Learn datagrams to every acceptor (the local one applies directly).
  void BroadcastLearn(const TransactionId& tid, int outcome,
                      const std::vector<NodeId>& acceptors);

  // --- acceptor side (run on the acceptor's node via datagram handlers) -----
  // Ballot-0 2a: log and acknowledge `participant`'s vote.
  void AcceptVote(const TransactionId& tid, NodeId participant, Ballot ballot,
                  PaxosVote vote, NodeId leader, AcceptChannelPtr replies);
  // Phase 1a at `ballot`: promise (durably) or reject.
  PaxosPromise Promise(const TransactionId& tid, Ballot ballot);
  // Takeover phase 2a at `ballot`: accept values for every instance at once.
  bool AcceptAll(const TransactionId& tid, Ballot ballot,
                 const std::vector<InstanceValue>& values);
  // The decided outcome (+1/-1) reached this acceptor.
  void Learn(const TransactionId& tid, int outcome);
  int LearnedOutcome(const TransactionId& tid) const;

  // --- recovery --------------------------------------------------------------
  // Analysis-pass replay of kPaxos* records: rebuilds promised ballots,
  // accepted votes and learned outcomes.
  void ObserveRecord(const log::LogRecord& rec);
  // Undecided acceptor state pins the log (as synthetic prepared entries in
  // the active-transaction table) so reclamation cannot truncate an accept
  // record that a takeover may still need after this acceptor's next crash.
  std::vector<recovery::RecoveryManager::ActiveTxn> PinnedInstances() const;

 private:
  struct AcceptorState {
    Ballot promised = 0;
    std::map<NodeId, InstanceValue> accepted;  // by participant
    int learned = 0;
    Lsn first_lsn = kNullLsn;
  };

  NodeId self() const;
  Ballot NextBallot();
  Lsn AppendPaxosRecord(log::RecordType type, const TransactionId& tid,
                        NodeId participant, Ballot ballot, PaxosVote vote);
  void ForceLog(Lsn lsn);
  // The ballot-driving loop behind Resolve (which adds the per-transaction
  // single-leader guard around it).
  int RunTakeover(const TransactionId& tid, const std::vector<NodeId>& participants,
                  const std::vector<NodeId>& acceptors);

  TransactionManager& tm_;
  int f_ = 1;
  std::map<TransactionId, AcceptorState> states_;
  int takeover_round_ = 0;
  // Transactions with a takeover in flight on this node, and the local
  // callers parked until that takeover returns its verdict.
  std::set<TransactionId> resolving_;
  std::map<TransactionId, std::vector<std::shared_ptr<sim::Channel<int>>>> resolve_waiters_;
};

}  // namespace tabs::txn

#endif  // TABS_TXN_PAXOS_COMMIT_H_
