#include "src/txn/transaction_manager.h"

#include <algorithm>
#include <cassert>

#include "src/log/group_commit.h"

namespace tabs::txn {

using log::LogRecord;
using log::RecordType;
using recovery::TxnOutcome;

TransactionManager::TransactionManager(kernel::Node& node, recovery::RecoveryManager& rm,
                                       comm::CommManager& cm)
    : node_(node), rm_(rm), cm_(cm), paxos_(std::make_unique<PaxosCommit>(*this)) {
  cm_.SetListener(this);
}

// Out of line so the unique_ptr<PaxosCommit> destructor sees a complete type.
TransactionManager::~TransactionManager() = default;

TransactionManager::Txn* TransactionManager::Find(const TransactionId& tid) {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

const TransactionManager::Txn* TransactionManager::Find(const TransactionId& tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

TransactionId TransactionManager::Begin(const TransactionId& parent) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kTransactionManager,
                      "txn.begin");
  // Application -> TM request and reply (two small local messages).
  node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  TransactionId tid{node_.id(), (incarnation_ << kIncarnationShift) | next_sequence_++};
  Txn txn;
  txn.tid = tid;
  txn.parent = parent;
  if (parent.IsNull()) {
    txn.top = tid;
  } else {
    Txn* p = Find(parent);
    assert(p != nullptr && "BeginTransaction with unknown parent");
    txn.top = p->top;
    p->live_subtxns.insert(tid);
  }
  txns_[tid] = std::move(txn);
  return tid;
}

TransactionManager::Txn& TransactionManager::GetOrCreateRemote(const TransactionId& tid,
                                                               NodeId parent_node) {
  Txn* existing = Find(tid);
  if (existing != nullptr) {
    return *existing;
  }
  Txn txn;
  txn.tid = tid;
  txn.top = tid;  // remote entries are tracked under the identifier used on the wire
  txn.parent_node = parent_node;
  txn.born_here = false;
  auto [it, inserted] = txns_.emplace(tid, std::move(txn));
  return it->second;
}

void TransactionManager::JoinServer(const TransactionId& tid, const TransactionId& top,
                                    CommitParticipant* server) {
  Txn* txn = Find(tid);
  if (txn == nullptr) {
    txn = Find(top);
  }
  assert(txn != nullptr && "operation on behalf of unknown transaction");
  if (std::find(txn->servers.begin(), txn->servers.end(), server) != txn->servers.end()) {
    return;
  }
  // "...sent by a data server the first time it is asked to perform an
  // operation on behalf of a particular transaction" — plus the TM's ack.
  node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  txn->servers.push_back(server);
}

std::vector<TransactionId> TransactionManager::TransactionsInvolving(
    const CommitParticipant* server) const {
  std::vector<TransactionId> out;
  for (const auto& [tid, txn] : txns_) {
    if (std::find(txn.servers.begin(), txn.servers.end(), server) != txn.servers.end()) {
      out.push_back(tid);
    }
  }
  return out;
}

void TransactionManager::DetachParticipant(const CommitParticipant* server) {
  for (auto& [tid, txn] : txns_) {
    auto& s = txn.servers;
    s.erase(std::remove(s.begin(), s.end(), server), s.end());
  }
  for (auto& [name, participant] : recovered_participants_) {
    if (participant == server) {
      participant = nullptr;
    }
  }
}

void TransactionManager::OnRemoteChildJoined(const TransactionId& tid, NodeId child) {
  // The CM already charged the progress message; nothing further here.
}

void TransactionManager::OnRemoteParentObserved(const TransactionId& tid, NodeId parent) {
  GetOrCreateRemote(tid, parent);
}

TxnState TransactionManager::StateOf(const TransactionId& tid) const {
  const Txn* txn = Find(tid);
  if (txn != nullptr) {
    return txn->state;
  }
  auto it = logged_outcomes_.find(tid);
  if (it != logged_outcomes_.end()) {
    switch (it->second) {
      case TxnOutcome::kCommitted:
        return TxnState::kCommitted;
      case TxnOutcome::kPrepared:
        return TxnState::kPrepared;
      default:
        return TxnState::kAborted;
    }
  }
  return TxnState::kAborted;  // forgotten implies resolved; presume abort
}

bool TransactionManager::IsAborted(const TransactionId& tid) const {
  return StateOf(tid) == TxnState::kAborted;
}

TransactionId TransactionManager::TopOf(const TransactionId& tid) const {
  const Txn* txn = Find(tid);
  return txn == nullptr ? tid : txn->top;
}

Status TransactionManager::End(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn == nullptr || txn->state == TxnState::kAborted) {
    return Status::kAborted;
  }
  if (AbortInProgress(*txn)) {
    // An abort is consuming this transaction right now (e.g. a cascade abort
    // while this task ran the body to completion). The abort's driver owns
    // the entry; just report the outcome.
    return Status::kAborted;
  }
  if (!txn->parent.IsNull()) {
    CommitSubtransaction(*txn);
    return Status::kOk;
  }
  Status s = commit_mode_ == CommitMode::kPaxosCommit ? CommitTopLevelPaxos(*txn)
                                                      : CommitTopLevel(*txn);
  MaybeCheckpoint();
  return s;
}

void TransactionManager::MaybeCheckpoint() {
  if (checkpoint_interval_ <= 0 || !node_.substrate().scheduler().in_task()) {
    return;
  }
  SimTime now = node_.substrate().scheduler().Now();
  if (now - last_checkpoint_time_ < checkpoint_interval_) {
    return;
  }
  last_checkpoint_time_ = now;
  rm_.TakeCheckpoint(ActiveTransactions());
  ++checkpoints_taken_;
}

void TransactionManager::Abort(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn == nullptr) {
    return;
  }
  if (AbortInProgress(*txn)) {
    return;  // another task owns this abort; double-undo would corrupt
  }
  AbortImpl(*txn);
}

void TransactionManager::AbortImpl(Txn& txn) {
  txn.abort_started = true;
  const TransactionId tid = txn.tid;
  // Abort live subtransactions first (deepest effects unwind first).
  for (const TransactionId& sub : std::set<TransactionId>(txn.live_subtxns)) {
    Txn* st = Find(sub);
    if (st != nullptr && !st->abort_started) {
      AbortImpl(*st);
    }
  }
  if (txn.parent.IsNull()) {
    AbortSubtree(txn, /*notify_children=*/true);
  } else {
    // Independent subtransaction abort: unwind only the subtransaction's own
    // effects — here and at remote participants — leaving the parent intact.
    rm_.UndoTransaction(tid, txn.top);
    for (CommitParticipant* s : txn.servers) {
      s->OnAbort(tid);
    }
    for (NodeId child : cm_.InfoFor(txn.top).children) {
      TransactionManager* child_tm = Peer(child);
      if (child_tm == nullptr) {
        continue;
      }
      TransactionId top = txn.top;
      cm_.SendDatagram(child, "subtxn-abort",
                       [child_tm, tid, top] { child_tm->HandleSubtxnAbort(tid, top); });
    }
    txn.state = TxnState::kAborted;
    Txn* p = Find(txn.parent);
    if (p != nullptr) {
      p->live_subtxns.erase(tid);
    }
    txns_.erase(tid);
    return;
  }
  ForgetTxn(tid);
}

bool TransactionManager::AbortInProgress(const Txn& txn) const {
  if (txn.abort_started) {
    return true;
  }
  const Txn* top = Find(txn.top);
  return top != nullptr && top != &txn && top->abort_started;
}

Lsn TransactionManager::AppendTxnRecord(RecordType type, const Txn& txn, bool force) {
  LogRecord rec;
  rec.type = type;
  rec.owner = txn.tid;
  rec.top = txn.top;
  rec.parent_node = txn.parent_node;
  rec.siblings = txn.siblings;
  rec.acceptors = txn.acceptors;
  const auto& info = cm_.InfoFor(txn.top);
  rec.children.assign(info.children.begin(), info.children.end());
  for (CommitParticipant* s : txn.servers) {
    rec.local_servers.push_back(s->participant_name());
  }
  Lsn lsn = rm_.log().Append(std::move(rec));
  if (force) {
    ForceLsn(lsn);
  }
  return lsn;
}

void TransactionManager::ForceLsn(Lsn lsn) {
  // TM -> RM force request and completion (two small messages), then the
  // stable write itself (charged by the log manager).
  node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 2);
  if (group_commit_ != nullptr) {
    // Group commit: block until a shared force covers this record. With
    // the daemon disabled (window 0) this degenerates to ForceAll and the
    // paper-faithful per-transaction force is preserved. Either way this
    // call does not return until the record is stable, so every state
    // transition that follows it (kPrepared, kCommitted, logged_outcomes_)
    // happens only after durability — which is exactly the crash
    // guarantee: a node killed mid-batch unwinds here via TaskKilled
    // before anything claims the outcome.
    group_commit_->WaitStable(lsn);
  } else {
    rm_.log().ForceAll();
  }
}

void TransactionManager::EarlyRelease(Txn& txn, bool taint) {
  for (CommitParticipant* s : txn.servers) {
    s->OnEarlyRelease(txn.tid, taint);
  }
}

bool TransactionManager::RefusesOps(const TransactionId& tid) const {
  if (!op_queue_.enabled()) {
    return false;
  }
  const Txn* txn = Find(tid);
  if (txn == nullptr) {
    // A transaction the application still drives but the TM no longer knows
    // was consumed by a cascade (its abort is already logged). Refuse; the
    // application's End/Abort will observe kAborted.
    return true;
  }
  return txn->state == TxnState::kAborted || AbortInProgress(*txn);
}

void TransactionManager::CascadeAbort(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn == nullptr || txn->state == TxnState::kAborted || AbortInProgress(*txn)) {
    return;
  }
  // A dependent with an undischarged commit dependency cannot have appended
  // its own prepare/commit record (AwaitPredecessors runs first), so the
  // cascade can never reach a decided — let alone durable — transaction.
  assert(txn->state != TxnState::kCommitted && txn->state != TxnState::kPrepared &&
         "cascade abort reached a decided transaction");
  // Wake any lock or escrow wait the victim's task is parked in: it unwinds
  // with kAborted instead of being granted a lock under a dead transaction.
  for (CommitParticipant* s : txn->servers) {
    s->CancelLockWaits(tid);
  }
  AbortImpl(*txn);
}

void TransactionManager::ForgetTxn(const TransactionId& tid) {
  cm_.Forget(tid);
  rm_.ForgetTransaction(tid);
  txns_.erase(tid);
}

// --- crash recovery ---------------------------------------------------------

void TransactionManager::ObserveTxnRecord(const LogRecord& rec) {
  switch (rec.type) {
    case RecordType::kTxnCommit:
      logged_outcomes_[rec.top] = TxnOutcome::kCommitted;
      break;
    case RecordType::kTxnAbort:
      logged_outcomes_[rec.top] = TxnOutcome::kAborted;
      break;
    case RecordType::kTxnPrepare:
      if (!logged_outcomes_.contains(rec.top)) {
        logged_outcomes_[rec.top] = TxnOutcome::kPrepared;
      }
      logged_parent_node_[rec.top] = rec.parent_node;
      logged_siblings_[rec.top] = rec.siblings;
      if (!rec.acceptors.empty()) {
        logged_acceptors_[rec.top] = rec.acceptors;
      }
      break;
    case RecordType::kPaxosPromise:
    case RecordType::kPaxosAccept:
    case RecordType::kPaxosLearn:
      paxos_->ObserveRecord(rec);
      break;
    case RecordType::kTxnEnd:
      // Fully acknowledged; the outcome entry may be garbage-collected, but
      // keeping it is harmless and answers stragglers.
      break;
    case RecordType::kSubtxnCommit:
    default:
      break;
  }
  // Sequence numbers must stay unique across restarts: track the highest
  // (incarnation, counter) this node is known to have minted. Only ids born
  // here matter — a participant's log is full of remote coordinators' ids,
  // which live in those nodes' sequence spaces.
  auto note = [this](const TransactionId& t) {
    if (t.node != node_.id()) {
      return;
    }
    if (t.incarnation() > incarnation_) {
      incarnation_ = t.incarnation();
      next_sequence_ = t.counter() + 1;
    } else if (t.incarnation() == incarnation_) {
      next_sequence_ = std::max(next_sequence_, t.counter() + 1);
    }
  };
  note(rec.owner);
  note(rec.top);
}

TxnOutcome TransactionManager::OutcomeOf(const TransactionId& top) {
  auto it = logged_outcomes_.find(top);
  return it == logged_outcomes_.end() ? TxnOutcome::kActive : it->second;
}

void TransactionManager::PostRecovery(
    const recovery::RecoveryStats& stats,
    const std::map<std::string, CommitParticipant*>& participants) {
  for (const TransactionId& tid : stats.in_doubt) {
    in_doubt_.insert(tid);
    // Rebuild lock state: every object the in-doubt transaction updated
    // stays inaccessible until the coordinator's verdict arrives.
    for (Lsn lsn : rm_.UndoListOf(tid)) {
      auto rec = rm_.log().ReadRecord(lsn);
      if (!rec.has_value()) {
        continue;
      }
      auto it = participants.find(rec->server);
      if (it != participants.end()) {
        it->second->RelockForRecovery(tid, *rec);
      }
    }
  }
  for (const auto& [name, participant] : participants) {
    recovered_participants_[name] = participant;
  }
  for (const TransactionId& loser : stats.losers) {
    logged_outcomes_[loser] = TxnOutcome::kAborted;
  }
}

void TransactionManager::BeginNewIncarnation() {
  ++incarnation_;
  next_sequence_ = 1;
  // Durable before the first new id is minted: if this node crashes again
  // before logging anything else, the next recovery still replays this
  // record and starts at incarnation_ + 1.
  LogRecord rec;
  rec.type = RecordType::kNodeEpoch;
  rec.owner = TransactionId{node_.id(), incarnation_ << kIncarnationShift};
  rec.top = rec.owner;
  rm_.log().Append(std::move(rec));
  rm_.log().ForceAll();
}

void TransactionManager::AbortRemoteOrphansOf(NodeId dead) {
  std::vector<TransactionId> doomed;
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kActive && !txn.born_here && txn.parent_node == dead) {
      doomed.push_back(tid);
    }
  }
  for (const TransactionId& tid : doomed) {
    Abort(tid);  // undo through the RM, release locks, notify our children
  }
}

std::vector<TransactionId> TransactionManager::InDoubt() const {
  std::set<TransactionId> all = in_doubt_;
  // Live prepared transactions whose verdict datagram was lost are equally
  // in doubt: they hold locks until they re-query the coordinator.
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kPrepared) {
      all.insert(tid);
    }
  }
  return {all.begin(), all.end()};
}

Status TransactionManager::ResolveInDoubt(const TransactionId& tid) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kTransactionManager,
                      "txn.resolve-in-doubt",
                      node_.substrate().tracer().enabled() ? ToString(tid) : std::string());
  bool recovered = in_doubt_.contains(tid);
  Txn* live = Find(tid);
  if (!recovered && (live == nullptr || live->state != TxnState::kPrepared)) {
    return Status::kNotFound;
  }
  if (peers_ == nullptr) {
    return Status::kNodeDown;
  }

  // Whom to ask: the parent is authoritative (presumed abort applies); if it
  // is unreachable, the sibling participants recorded in the prepare record
  // may already know the verdict — Dwork/Skeen-style cooperative
  // termination, which shrinks the blocking window the paper notes plain
  // two-phase commit has.
  NodeId parent = recovered ? logged_parent_node_[tid] : live->parent_node;
  std::vector<NodeId> siblings;
  if (recovered) {
    auto it = logged_siblings_.find(tid);
    if (it != logged_siblings_.end()) {
      siblings = it->second;
    }
  } else {
    siblings = live->siblings;
  }

  auto ask = [&](NodeId node, bool authoritative, bool* committed) -> bool {
    TransactionManager* tm = Peer(node);
    if (tm == nullptr || !cm_.network().Reachable(node_.id(), node)) {
      return false;
    }
    if (authoritative) {
      auto verdict = cm_.network().SessionCall<bool>(
          node_.id(), node, "resolve-in-doubt",
          [tm, tid]() { return tm->QueryCommitted(tid); });
      if (!verdict.ok()) {
        return false;
      }
      *committed = verdict.value();
      return true;
    }
    // A sibling only helps if it KNOWS (it may be in doubt itself).
    auto verdict = cm_.network().SessionCall<int>(
        node_.id(), node, "cooperative-termination",
        [tm, tid]() { return tm->ParticipantKnowledge(tid); });
    if (!verdict.ok() || verdict.value() == 0) {
      return false;
    }
    *committed = verdict.value() > 0;
    return true;
  };

  bool committed = false;
  bool resolved = false;
  std::vector<NodeId> acceptors;
  if (recovered) {
    auto it = logged_acceptors_.find(tid);
    if (it != logged_acceptors_.end()) {
      acceptors = it->second;
    }
  } else {
    acceptors = live->acceptors;
  }
  if (!acceptors.empty()) {
    // Paxos Commit: the acceptors are authoritative, never the parent. In
    // particular the parent's presumed abort does NOT apply — a recovered,
    // locally-read-only coordinator has no commit record even for a
    // transaction the acceptors decided to commit, so asking it would split
    // the brain. The consensus read path is the only sound source.
    int outcome = paxos_->Resolve(tid, siblings, acceptors);
    if (outcome == 0) {
      return Status::kNodeDown;  // no acceptor quorum; still in doubt
    }
    committed = outcome > 0;
    resolved = true;
    // Resolve blocks on acceptor round-trips: a takeover verdict datagram
    // may have resolved this transaction while we waited.
    if (!recovered && Find(tid) == nullptr) {
      return committed ? Status::kOk : Status::kAborted;
    }
    if (recovered && !in_doubt_.contains(tid)) {
      return committed ? Status::kOk : Status::kAborted;
    }
  } else {
    resolved = ask(parent, /*authoritative=*/true, &committed);
    for (size_t i = 0; !resolved && i < siblings.size(); ++i) {
      if (siblings[i] == node_.id()) {
        continue;
      }
      resolved = ask(siblings[i], /*authoritative=*/false, &committed);
    }
  }
  if (!resolved) {
    return Status::kNodeDown;  // still in doubt; locks stay held
  }

  if (!recovered) {
    if (committed) {
      HandleCommit(tid);
      return Status::kOk;
    }
    HandleAbortMsg(tid);
    return Status::kAborted;
  }

  ApplyRecoveredOutcome(tid, committed);
  return committed ? Status::kOk : Status::kAborted;
}

void TransactionManager::ApplyRecoveredOutcome(const TransactionId& tid, bool committed) {
  in_doubt_.erase(tid);
  if (committed) {
    logged_outcomes_[tid] = TxnOutcome::kCommitted;
    LogRecord rec;
    rec.type = RecordType::kTxnCommit;
    rec.owner = tid;
    rec.top = tid;
    rm_.log().Append(std::move(rec));
    rm_.log().ForceAll();
    rm_.ForgetTransaction(tid);
    for (auto& [name, participant] : recovered_participants_) {
      if (participant != nullptr) {
        participant->OnCommit(tid);
      }
    }
    return;
  }
  logged_outcomes_[tid] = TxnOutcome::kAborted;
  rm_.UndoTransaction(tid, tid);
  for (auto& [name, participant] : recovered_participants_) {
    if (participant != nullptr) {
      participant->OnAbort(tid);
    }
  }
  LogRecord rec;
  rec.type = RecordType::kTxnAbort;
  rec.owner = tid;
  rec.top = tid;
  rm_.log().Append(std::move(rec));
  rm_.log().ForceAll();
  rm_.ForgetTransaction(tid);
}

int TransactionManager::ParticipantKnowledge(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn != nullptr) {
    switch (txn->state) {
      case TxnState::kCommitted:
        return 1;
      case TxnState::kAborted:
        return -1;
      default:
        return 0;  // in doubt too
    }
  }
  auto it = logged_outcomes_.find(tid);
  if (it == logged_outcomes_.end()) {
    return 0;  // never heard of it: no knowledge either way (it might have
               // been read-only here and forgotten — do not presume)
  }
  switch (it->second) {
    case TxnOutcome::kCommitted:
      return 1;
    case TxnOutcome::kAborted:
      return -1;
    default:
      return 0;
  }
}

bool TransactionManager::QueryCommitted(const TransactionId& tid) {
  Txn* txn = Find(tid);
  if (txn != nullptr) {
    return txn->state == TxnState::kCommitted;
  }
  auto it = logged_outcomes_.find(tid);
  // Presumed abort: a forgotten transaction without a durable commit record
  // did not commit.
  return it != logged_outcomes_.end() && it->second == TxnOutcome::kCommitted;
}

std::vector<recovery::RecoveryManager::ActiveTxn> TransactionManager::ActiveTransactions()
    const {
  std::vector<recovery::RecoveryManager::ActiveTxn> out;
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kCommitted || txn.state == TxnState::kAborted) {
      continue;
    }
    recovery::RecoveryManager::ActiveTxn at;
    at.owner = tid;
    at.top = txn.top;
    at.prepared = txn.state == TxnState::kPrepared;
    at.first_lsn = rm_.FirstLsnOf(tid);
    out.push_back(at);
  }
  // Undecided Paxos instances this node accepts for pin the log exactly like
  // in-doubt transactions: a takeover may still need their accept records.
  for (auto& at : paxos_->PinnedInstances()) {
    out.push_back(at);
  }
  return out;
}

}  // namespace tabs::txn
