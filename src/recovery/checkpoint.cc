// Checkpoints and log-space reclamation (Section 3.2.2).
//
// "At checkpoint time, a list of the pages currently in volatile storage and
// the status of currently active transactions are written to the log."
// Checkpoints bound how much log must survive: everything below the oldest
// of (the checkpoint itself, the first record of any active transaction, the
// recovery LSN of any dirty page) can be reclaimed. When the system nears
// the end of its log space, the Recovery Manager "runs a reclamation
// algorithm... [which] may force pages back to disk before they would
// otherwise be written."

#include <algorithm>

#include "src/recovery/recovery_manager.h"
#include "src/sim/fault_injector.h"

namespace tabs::recovery {

using log::LogRecord;
using log::RecordType;

Lsn RecoveryManager::TakeCheckpoint(const std::vector<ActiveTxn>& active) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager,
                      "rm.checkpoint");
  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(active.size()));
  for (const ActiveTxn& t : active) {
    w.Tid(t.owner);
    w.Tid(t.top);
    w.U8(t.prepared ? 1 : 0);
    w.U64(t.first_lsn);
  }
  std::uint32_t dirty_total = 0;
  ByteWriter dirty;
  for (const auto& [name, seg] : segments_) {
    for (const auto& [page, rec_lsn] : seg->DirtyPages()) {
      dirty.U32(seg->id());
      dirty.U32(page);
      dirty.U64(rec_lsn);
      ++dirty_total;
    }
  }
  w.U32(dirty_total);
  const Bytes& db = dirty.bytes();
  w.Blob(db);

  LogRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.checkpoint_data = w.Take();
  // The checkpoint's view of active transactions and dirty pages is
  // collected but not yet in the log: a crash here must leave the previous
  // checkpoint authoritative.
  FAULT_POINT(node_.substrate(), "checkpoint.before_append");
  Lsn lsn = log_.Append(std::move(rec));
  // This force also covers any commit records a group-commit batch has
  // appended but not yet flushed: it advances the durable frontier and wakes
  // their WaitDurable waiters, whose (now stale) batch flusher then no-ops.
  // Blocked committers therefore never wait longer because a checkpoint
  // intervened — they finish earlier, their forces absorbed by this one.
  log_.ForceAll();
  FAULT_POINT(node_.substrate(), "checkpoint.after_force");
  return lsn;
}

void RecoveryManager::ReclaimTo(const std::vector<ActiveTxn>& active,
                                std::uint64_t target_retained_bytes) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager,
                      "rm.reclaim");
  // The checkpoint is fuzzy: segments need not be clean. Only pages whose
  // recovery LSNs would hold the low-water mark below the target get
  // flushed — oldest dirt first, and only that dirt. LSNs are 1 + the byte
  // offset in the log stream, so "retain at most N bytes" translates
  // directly into the lowest LSN allowed to stay pinned.
  Lsn target_low;
  if (target_retained_bytes == 0 || log_.last_lsn() <= target_retained_bytes) {
    target_low = log_.last_lsn() + 1;  // reclaim everything reclaimable
  } else {
    target_low = log_.last_lsn() - target_retained_bytes;
  }
  // A crash mid-reclamation must be harmless at every stage: before the
  // flushes (nothing changed), after flushes but before the checkpoint and
  // truncation (pages are just cleaner than required), and after truncation
  // (only reclaimable records were cut).
  FAULT_POINT(node_.substrate(), "reclaim.before_flush");
  for (auto& [name, seg] : segments_) {
    // One elevator sweep per segment: ascending disk addresses, so
    // contiguous dirty runs go out as cheap sequential writes. Pinned pages
    // are written too (not stolen): reclamation often fires from inside the
    // very update whose page is pinned, and frames only ever hold logged
    // modifications, so the WAL gate alone orders the write.
    std::vector<PageNumber> sweep;
    for (const auto& [page, rec_lsn] : seg->DirtyPages()) {
      if (rec_lsn < target_low) {
        sweep.push_back(page);
      }
    }
    // DirtyPages is page-ordered already; the reclamation flushes are
    // foreground work — the triggering transaction waits.
    seg->FlushPages(sweep, /*background=*/false, /*write_pinned=*/true);
  }
  Lsn checkpoint_lsn = TakeCheckpoint(active);

  Lsn low = checkpoint_lsn;
  for (const ActiveTxn& t : active) {
    if (t.first_lsn != kNullLsn) {
      low = std::min(low, t.first_lsn);
    }
  }
  // Fuzzy checkpoint: every page still dirty pins the log at its recovery
  // LSN (its committed contents may exist only as log records above it).
  for (auto& [name, seg] : segments_) {
    for (const auto& [page, rec_lsn] : seg->DirtyPages()) {
      low = std::min(low, rec_lsn);
    }
  }
  // Media recovery needs the log from the last archive dump onward.
  if (archive_low_water_ != kNullLsn) {
    low = std::min(low, archive_low_water_);
  }
  FAULT_POINT(node_.substrate(), "reclaim.before_truncate");
  if (low > log_.first_lsn()) {
    log_.device().TruncateBefore(low - 1);
  }
  FAULT_POINT(node_.substrate(), "reclaim.after_truncate");
}

Archive RecoveryManager::DumpArchive() {
  Archive archive;
  for (auto& [name, seg] : segments_) {
    seg->FlushAll();
  }
  log_.ForceAll();
  archive.dump_lsn = log_.LastDurableLsn();
  for (auto& [name, seg] : segments_) {
    auto& pages = archive.segments[seg->id()];
    for (PageNumber p = 0; p < seg->page_count(); ++p) {
      pages.push_back(node_.disk().PeekPage({seg->id(), p}));
      // Reading a page into the archive is sequential disk traffic.
      node_.substrate().Charge(sim::Primitive::kSequentialRead);
    }
  }
  return archive;
}

void RecoveryManager::RestoreArchive(const Archive& archive) {
  for (const auto& [segment, pages] : archive.segments) {
    node_.disk().EnsureSegment(segment, static_cast<PageNumber>(pages.size()));
    for (PageNumber p = 0; p < pages.size(); ++p) {
      node_.disk().RestorePage({segment, p}, pages[p]);
    }
  }
}

}  // namespace tabs::recovery
