// The analysis pass shared by both recovery algorithms, and the
// operation-logging redo/undo passes.
//
// Operation logging buys multi-page records, more concurrency, and less log
// space, at the price of "three passes over the log during crash recovery,
// instead of the single pass needed for the value-based algorithm"
// (Section 2.1.3):
//
//  pass 1 (analysis) — forward: replay transaction-management records into
//    the Transaction Manager, classify every top-level transaction, find the
//    losers and the in-doubt (prepared) set.
//  pass 2 (redo) — forward: repeat history. An operation (or compensation)
//    is re-applied iff some page it touches carries a sector sequence number
//    older than the record's LSN — the kernel's atomically-stamped sequence
//    number is exactly the guard that makes non-idempotent operations safe
//    to replay (Section 3.2.1).
//  pass 3 (undo) — backward: invoke the inverse operation for every loser
//    update not already compensated, writing compensation records whose
//    undo_next pointers make the undo itself restartable.

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "src/recovery/recovery_manager.h"

namespace tabs::recovery {

using log::LogRecord;
using log::RecordType;

Lsn RecoveryManager::AnalysisPass(TxnOutcomeSource& outcomes, RecoveryStats* stats,
                                  bool* saw_operations, const std::string* only_server) {
  Lsn scan_low = log_.first_lsn();
  *saw_operations = false;

  // Transactions seen with updates, in first-contact order, plus the LSNs of
  // their (non-compensation) updates for rebuilding in-doubt undo lists.
  std::vector<TransactionId> update_tops;
  std::unordered_set<TransactionId> seen_tops;
  std::unordered_map<TransactionId, std::vector<Lsn>> update_lsns_by_owner;
  std::unordered_map<TransactionId, std::vector<TransactionId>> owners_by_top;

  for (Lsn lsn = scan_low; lsn != kNullLsn; lsn = log_.NextLsn(lsn)) {
    auto rec = log_.ReadRecord(lsn);
    if (!rec.has_value()) {
      break;  // torn tail: everything durable ends here
    }
    ++stats->records_scanned;
    switch (rec->type) {
      case RecordType::kTxnPrepare:
      case RecordType::kTxnCommit:
      case RecordType::kTxnAbort:
      case RecordType::kTxnEnd:
      case RecordType::kSubtxnCommit:
      case RecordType::kNodeEpoch:
      case RecordType::kPaxosPromise:
      case RecordType::kPaxosAccept:
      case RecordType::kPaxosLearn:
        outcomes.ObserveTxnRecord(*rec);
        break;
      case RecordType::kOperationUpdate:
      case RecordType::kOpCompensation:
        *saw_operations = true;
        [[fallthrough]];
      case RecordType::kValueUpdate:
      case RecordType::kCompensation:
        if (only_server != nullptr && rec->server != *only_server) {
          break;  // another (live) server's record: not ours to recover
        }
        if (!seen_tops.contains(rec->top)) {
          seen_tops.insert(rec->top);
          update_tops.push_back(rec->top);
        }
        if (!rec->IsCompensation()) {
          auto& owner_list = update_lsns_by_owner[rec->owner];
          if (owner_list.empty()) {
            owners_by_top[rec->top].push_back(rec->owner);
          }
          owner_list.push_back(lsn);
        }
        break;
      case RecordType::kCheckpoint:
        break;  // full-scan recovery; checkpoints drive reclamation only
    }
  }

  for (const TransactionId& top : update_tops) {
    switch (outcomes.OutcomeOf(top)) {
      case TxnOutcome::kActive:
        stats->losers.push_back(top);
        break;
      case TxnOutcome::kPrepared: {
        stats->in_doubt.push_back(top);
        if (only_server != nullptr) {
          break;  // the node is alive: its undo lists are already current
        }
        // Rebuild the undo list so a later coordinator "abort" verdict can
        // unwind this in-doubt transaction through the normal path.
        std::vector<Lsn> merged;
        for (const TransactionId& owner : owners_by_top[top]) {
          auto& lsns = update_lsns_by_owner[owner];
          merged.insert(merged.end(), lsns.begin(), lsns.end());
        }
        std::sort(merged.begin(), merged.end());
        undo_lists_[top] = std::move(merged);
        break;
      }
      case TxnOutcome::kCommitted:
      case TxnOutcome::kAborted:
        break;
    }
  }
  return scan_low;
}

void RecoveryManager::RunOperationPasses(TxnOutcomeSource& outcomes, Lsn scan_low,
                                         RecoveryStats* stats,
                                         const std::string* only_server) {
  // ---- pass 2: redo (repeat history, guarded by sector sequence numbers) --
  // Sequence numbers are read from disk once per page and then tracked as
  // redo progresses (redone effects live in volatile frames until the final
  // flush re-stamps the sectors).
  std::unordered_map<PageId, std::uint64_t> page_seq;
  auto effective_seq = [&](kernel::RecoverableSegment* seg, PageId page) {
    auto it = page_seq.find(page);
    if (it == page_seq.end()) {
      it = page_seq.emplace(page, seg->DiskSequenceNumber(page.page)).first;
    }
    return it->second;
  };

  for (Lsn lsn = scan_low; lsn != kNullLsn; lsn = log_.NextLsn(lsn)) {
    auto rec = log_.ReadRecord(lsn);
    if (!rec.has_value()) {
      break;
    }
    ++stats->records_scanned;
    if (rec->type != RecordType::kOperationUpdate && rec->type != RecordType::kOpCompensation) {
      continue;
    }
    if (only_server != nullptr && rec->server != *only_server) {
      continue;
    }
    kernel::RecoverableSegment* seg = SegmentOf(rec->server);
    auto hooks = op_hooks_.find(rec->server);
    if (seg == nullptr || hooks == op_hooks_.end()) {
      continue;
    }
    bool needs_redo = false;
    for (const PageId& page : rec->pages) {
      if (effective_seq(seg, page) < rec->lsn) {
        needs_redo = true;
      }
    }
    if (!needs_redo) {
      continue;
    }
    hooks->second.apply(rec->op_name, rec->redo_args, rec->lsn);
    for (const PageId& page : rec->pages) {
      page_seq[page] = rec->lsn;
    }
    ++stats->operations_redone;
  }

  // ---- pass 3: undo losers (backward, compensation-aware) -----------------
  std::unordered_set<TransactionId> losers(stats->losers.begin(), stats->losers.end());
  // Records with LSN above an owner's cursor were already compensated before
  // the crash (the compensation's undo_next points below them).
  std::unordered_map<TransactionId, Lsn> cursor;

  for (Lsn lsn = log_.LastDurableLsn(); lsn != kNullLsn && lsn >= scan_low;
       lsn = log_.PrevLsn(lsn)) {
    auto rec = log_.ReadRecord(lsn);
    if (!rec.has_value()) {
      break;
    }
    ++stats->records_scanned;
    if (!losers.contains(rec->top)) {
      continue;
    }
    if (rec->type == RecordType::kOpCompensation) {
      // Only the latest compensation (first seen walking backward) matters:
      // its undo_next names the next record still needing undo.
      cursor.try_emplace(rec->owner, rec->undo_next_lsn);
      continue;
    }
    if (rec->type != RecordType::kOperationUpdate) {
      continue;  // value records of losers are handled by the value pass
    }
    if (only_server != nullptr && rec->server != *only_server) {
      continue;
    }
    auto cur = cursor.find(rec->owner);
    if (cur != cursor.end() && (cur->second == kNullLsn || rec->lsn > cur->second)) {
      continue;  // already compensated before the crash
    }
    auto hooks = op_hooks_.find(rec->server);
    if (hooks == op_hooks_.end()) {
      continue;
    }
    LogRecord comp;
    comp.type = RecordType::kOpCompensation;
    comp.owner = rec->owner;
    comp.top = rec->top;
    comp.undo_next_lsn = rec->prev_lsn;
    comp.server = rec->server;
    comp.op_name = rec->undo_op_name;
    comp.redo_args = rec->undo_args;
    comp.pages = rec->pages;
    Lsn comp_lsn = log_.Append(std::move(comp));
    hooks->second.apply(rec->undo_op_name, rec->undo_args, comp_lsn);
    cursor[rec->owner] = rec->prev_lsn;  // this record is now compensated
    ++stats->operations_undone;
  }
}

}  // namespace tabs::recovery
