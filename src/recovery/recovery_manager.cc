#include "src/recovery/recovery_manager.h"

#include <algorithm>
#include <cassert>

#include "src/kernel/page_cleaner.h"

namespace tabs::recovery {

using log::LogRecord;
using log::RecordType;

RecoveryManager::RecoveryManager(kernel::Node& node)
    : node_(node), log_(node.substrate(), node.stable_log()) {}

void RecoveryManager::RegisterSegment(const std::string& server,
                                      kernel::RecoverableSegment* segment) {
  segments_[server] = segment;
  segment->SetHooks(this);
  if (cleaner_ != nullptr && cleaner_->enabled()) {
    cleaner_->AddSegment(segment);
    // The cleaner keeps clean frames available; make eviction prefer them so
    // page faults stop paying synchronous write-backs.
    segment->set_prefer_clean_eviction(true);
  }
}

void RecoveryManager::RegisterOperationHooks(const std::string& server, OperationHooks hooks) {
  op_hooks_[server] = std::move(hooks);
}

void RecoveryManager::UnregisterServer(const std::string& server) {
  auto it = segments_.find(server);
  if (it != segments_.end() && cleaner_ != nullptr) {
    cleaner_->RemoveSegment(it->second);
  }
  segments_.erase(server);
  op_hooks_.erase(server);
}

kernel::RecoverableSegment* RecoveryManager::SegmentOf(const std::string& server) const {
  auto it = segments_.find(server);
  return it == segments_.end() ? nullptr : it->second;
}

kernel::RecoverableSegment* RecoveryManager::SegmentForOid(const std::string& server,
                                                           const ObjectId& oid) {
  kernel::RecoverableSegment* seg = SegmentOf(server);
  assert(seg != nullptr && "value record for unregistered server");
  assert(seg->id() == oid.segment && "ObjectId names a different segment");
  return seg;
}

Lsn RecoveryManager::LogValue(const TransactionId& owner, const TransactionId& top,
                              const std::string& server, const ObjectId& oid,
                              Bytes old_value, Bytes new_value) {
  assert(old_value.size() == oid.length && new_value.size() == oid.length);
  assert(oid.length <= kPageSize && "value records hold at most one page");
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager,
                      "rm.log-value");
  LogRecord rec;
  rec.type = RecordType::kValueUpdate;
  rec.owner = owner;
  rec.top = top;
  rec.server = server;
  rec.oid = oid;
  rec.old_value = std::move(old_value);
  Bytes new_copy = new_value;  // applied to the segment below
  rec.new_value = std::move(new_value);
  Lsn lsn = log_.Append(std::move(rec));
  undo_lists_[owner].push_back(lsn);
  // Apply to volatile storage under the record's LSN: write-ahead ordering is
  // then enforced by the page-out gate (BeforePageWrite forces through LSN).
  SegmentForOid(server, oid)->Write(oid, new_copy, lsn);
  MaybeAutoReclaim();
  return lsn;
}

void RecoveryManager::MaybeAutoReclaim() {
  if (log_budget_bytes_ == 0 || reclaiming_ || !active_source_) {
    return;
  }
  std::uint64_t in_use = log_.StableBytesInUse() + (log_.last_lsn() - log_.durable_lsn());
  std::uint64_t trigger =
      static_cast<std::uint64_t>(static_cast<double>(log_budget_bytes_) * reclaim_watermark_);
  if (in_use < trigger) {
    return;
  }
  reclaiming_ = true;  // Reclaim itself appends records; don't recurse
  // Incremental: reclaim down to half the budget instead of flushing every
  // segment clean — the pages whose recovery LSNs sit above the target keep
  // their dirt (the background cleaner will get to them).
  ReclaimTo(active_source_(), log_budget_bytes_ / 2);
  reclaiming_ = false;
  ++auto_reclaims_;
}

Lsn RecoveryManager::LogOperation(const TransactionId& owner, const TransactionId& top,
                                  const std::string& server, const std::string& op_name,
                                  Bytes redo_args, const std::string& undo_op_name,
                                  Bytes undo_args, std::vector<PageId> pages) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager,
                      "rm.log-operation");
  LogRecord rec;
  rec.type = RecordType::kOperationUpdate;
  rec.owner = owner;
  rec.top = top;
  rec.server = server;
  rec.op_name = op_name;
  Bytes apply_args = redo_args;
  rec.redo_args = std::move(redo_args);
  rec.undo_op_name = undo_op_name;
  rec.undo_args = std::move(undo_args);
  rec.pages = std::move(pages);
  Lsn lsn = log_.Append(std::move(rec));
  undo_lists_[owner].push_back(lsn);
  // Apply the operation's effect through the server's dispatcher under the
  // record's LSN (forward processing applies exactly once).
  auto hooks = op_hooks_.find(server);
  assert(hooks != op_hooks_.end() && hooks->second.apply &&
         "operation logging requires registered hooks");
  hooks->second.apply(op_name, apply_args, lsn);
  MaybeAutoReclaim();
  return lsn;
}

void RecoveryManager::UndoTransaction(const TransactionId& owner, const TransactionId& top) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager, "rm.undo",
                      node_.substrate().tracer().enabled() ? ToString(owner) : std::string());
  auto it = undo_lists_.find(owner);
  if (it == undo_lists_.end()) {
    return;
  }
  // "...the recovery manager follows the backward chain of log records that
  // were written by the transaction and sends messages to the servers
  // instructing them to undo their effects." (Section 3.2.2)
  std::vector<Lsn> list = std::move(it->second);
  undo_lists_.erase(it);
  for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
    auto rec = log_.ReadRecord(*rit);
    assert(rec.has_value() && "undo-list record vanished before abort finished");
    if (SegmentOf(rec->server) == nullptr) {
      // The server crashed independently: its volatile state is gone and no
      // compensation is written now. Its single-server recovery will roll
      // this (aborted) record back from the log.
      continue;
    }
    if (rec->type == RecordType::kValueUpdate) {
      LogRecord comp;
      comp.type = RecordType::kCompensation;
      comp.owner = owner;
      comp.top = top;
      comp.undo_next_lsn = rec->prev_lsn;
      comp.server = rec->server;
      comp.oid = rec->oid;
      comp.old_value = rec->new_value;
      comp.new_value = rec->old_value;
      Bytes restored = rec->old_value;
      Lsn comp_lsn = log_.Append(std::move(comp));
      kernel::RecoverableSegment* seg = SegmentForOid(rec->server, rec->oid);
      seg->Pin(rec->oid);
      seg->Write(rec->oid, restored, comp_lsn);
      seg->Unpin(rec->oid);
    } else if (rec->type == RecordType::kOperationUpdate) {
      LogRecord comp;
      comp.type = RecordType::kOpCompensation;
      comp.owner = owner;
      comp.top = top;
      comp.undo_next_lsn = rec->prev_lsn;
      comp.server = rec->server;
      // The compensation's redo *is* the original's undo: replaying it after
      // a crash re-applies the inverse operation.
      comp.op_name = rec->undo_op_name;
      comp.redo_args = rec->undo_args;
      comp.pages = rec->pages;
      Lsn comp_lsn = log_.Append(std::move(comp));
      auto hooks = op_hooks_.find(rec->server);
      assert(hooks != op_hooks_.end() && hooks->second.apply &&
             "operation record for server without hooks");
      hooks->second.apply(rec->undo_op_name, rec->undo_args, comp_lsn);
    }
    // Compensation records themselves never appear in undo lists.
  }
}

void RecoveryManager::MergeChild(const TransactionId& child, const TransactionId& parent) {
  auto it = undo_lists_.find(child);
  if (it == undo_lists_.end()) {
    return;
  }
  auto& parent_list = undo_lists_[parent];
  parent_list.insert(parent_list.end(), it->second.begin(), it->second.end());
  // Keep LSN order so a parent abort unwinds newest-first across children.
  std::sort(parent_list.begin(), parent_list.end());
  undo_lists_.erase(child);
}

void RecoveryManager::ForgetTransaction(const TransactionId& owner) {
  undo_lists_.erase(owner);
  log_.ForgetChain(owner);
}

std::vector<Lsn> RecoveryManager::UndoListOf(const TransactionId& owner) const {
  auto it = undo_lists_.find(owner);
  return it == undo_lists_.end() ? std::vector<Lsn>{} : it->second;
}

Lsn RecoveryManager::FirstLsnOf(const TransactionId& owner) const {
  auto it = undo_lists_.find(owner);
  return it == undo_lists_.end() || it->second.empty() ? kNullLsn : it->second.front();
}

void RecoveryManager::OnFirstDirty(PageId page, Lsn recovery_lsn) {
  // Kernel -> RM: "a page frame backed by a recoverable segment has been
  // modified for the first time". Its message cost is folded into the
  // write-back bundle charged by BeforePageWrite (the paper's counts bill
  // the WAL messages where the transaction actually waits for paging).
  if (cleaner_ != nullptr) {
    cleaner_->NotifyDirty();
  }
}

std::uint64_t RecoveryManager::BeforePageWrite(PageId page, Lsn last_lsn) {
  // The write-back message bundle: first-dirty notification, kernel -> RM
  // write request, RM -> kernel permission — after the log covering the
  // page is safely on stable storage.
  node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 3);
  log_.Force(last_lsn);
  // The sequence number the kernel stamps into the sector header is the LSN
  // of the latest record applying to the page (the operation-logging guard).
  return last_lsn;
}

void RecoveryManager::AfterPageWrite(PageId page, bool ok) {
  assert(ok);
  node_.substrate().ChargeSystemMessage(sim::Primitive::kSmallMessage, 1);
}

RecoveryStats RecoveryManager::Recover(TxnOutcomeSource& outcomes,
                                       const std::string* only_server) {
  sim::SpanGuard span(node_.substrate().tracer(), sim::Component::kRecoveryManager,
                      "rm.recover");
  node_.substrate().metrics().CountCrashRecovery();
  RecoveryStats stats;
  bool saw_operations = false;
  Lsn scan_low = AnalysisPass(outcomes, &stats, &saw_operations, only_server);
  stats.passes = 1;
  if (saw_operations) {
    // Three-pass algorithm for operation-logged objects (Section 2.1.3:
    // "it requires three passes over the log during crash recovery").
    RunOperationPasses(outcomes, scan_low, &stats, only_server);
    stats.passes = 3;
  }
  // Single backward pass for value-logged objects. Runs in every recovery:
  // both techniques co-exist in the common log.
  RunValueBackwardPass(outcomes, scan_low, &stats, only_server);
  // Reading the retained log from disk costs sequential I/O per pass — the
  // reason checkpoints "shorten the time to recover after a crash".
  std::uint64_t retained = log_.StableBytesInUse();
  node_.substrate().Charge(sim::Primitive::kSequentialRead,
                           static_cast<double>(stats.passes) *
                               static_cast<double>((retained + kPageSize - 1) / kPageSize));
  // Losers are now rolled back; make that outcome durable so a second crash
  // classifies them as aborted immediately. (Single-server recovery writes
  // none: the node is alive and its Transaction Manager owns the outcomes —
  // World::CrashServer aborted every transaction involving the server.)
  if (only_server == nullptr) {
    for (const TransactionId& loser : stats.losers) {
      LogRecord abort_rec;
      abort_rec.type = RecordType::kTxnAbort;
      abort_rec.owner = loser;
      abort_rec.top = loser;
      log_.Append(std::move(abort_rec));
    }
  }
  // Settle the rebuilt state onto non-volatile storage so a crash during the
  // next epoch starts from here.
  for (auto& [name, seg] : segments_) {
    seg->FlushAll();
  }
  log_.ForceAll();
  return stats;
}

}  // namespace tabs::recovery
