// The value-logging crash-recovery algorithm: a single backward pass.
//
// "During recovery processing, objects are reset to their most recently
// committed values during a one pass scan that begins at the last log record
// written and proceeds backward." (Section 2.1.3.)
//
// The pass keeps a per-object open/closed set. Scanning backward:
//   * a record of a COMMITTED (or prepared/in-doubt) top-level transaction
//     supplies the object's final value (its after-image) and closes it;
//   * a record of a loser supplies its before-image and leaves the object
//     open, so earlier records keep unwinding it (the oldest before-image of
//     an uncommitted chain is the pre-transaction value).
// Compensation records participate with exactly the same rule, which makes
// a crash in the middle of an abort recover correctly: the compensations
// and the records they compensate cancel out in either outcome.
//
// Correctness relies on the value-logging restriction the paper states:
// "only one transaction at a time may modify any individually logged
// component of an object" — i.e. strict two-phase locking per object.

#include <unordered_set>

#include "src/recovery/recovery_manager.h"

namespace tabs::recovery {

using log::LogRecord;
using log::RecordType;

namespace {

struct ObjectKey {
  std::string server;
  ObjectId oid;
  bool operator==(const ObjectKey&) const = default;
};

struct ObjectKeyHash {
  size_t operator()(const ObjectKey& k) const {
    return std::hash<std::string>()(k.server) ^ std::hash<ObjectId>()(k.oid);
  }
};

}  // namespace

void RecoveryManager::RunValueBackwardPass(TxnOutcomeSource& outcomes, Lsn scan_low,
                                           RecoveryStats* stats,
                                           const std::string* only_server) {
  std::unordered_set<ObjectKey, ObjectKeyHash> closed;

  for (Lsn lsn = log_.LastDurableLsn(); lsn != kNullLsn && lsn >= scan_low;
       lsn = log_.PrevLsn(lsn)) {
    auto rec = log_.ReadRecord(lsn);
    if (!rec.has_value()) {
      break;  // reclaimed prefix
    }
    ++stats->records_scanned;
    if (!rec->IsValueStyle()) {
      continue;
    }
    if (only_server != nullptr && rec->server != *only_server) {
      continue;
    }
    ObjectKey key{rec->server, rec->oid};
    if (closed.contains(key)) {
      continue;
    }
    kernel::RecoverableSegment* seg = SegmentOf(rec->server);
    if (seg == nullptr) {
      continue;  // server not re-registered; its segment is not being recovered
    }
    TxnOutcome outcome = outcomes.OutcomeOf(rec->top);
    const Bytes* restore = nullptr;
    if (outcome == TxnOutcome::kCommitted || outcome == TxnOutcome::kPrepared) {
      // Winners and in-doubt transactions keep their after-images. (If an
      // in-doubt transaction is later told to abort, its records are still in
      // the log and the normal abort path unwinds them.)
      restore = &rec->new_value;
      closed.insert(key);
    } else {
      restore = &rec->old_value;
      // Leave open: an earlier record of the same loser chain may carry an
      // older before-image.
    }
    seg->Pin(rec->oid);
    seg->Write(rec->oid, *restore, rec->lsn);
    seg->Unpin(rec->oid);
    ++stats->values_restored;
  }
}

}  // namespace tabs::recovery
