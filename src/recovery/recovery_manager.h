// The Recovery Manager: log coordination, abort processing, checkpoints and
// crash recovery (Section 3.2.2).
//
// One Recovery Manager runs per node. It owns the node's log, implements the
// kernel's write-ahead-log hooks (pages cannot reach non-volatile storage
// before their log records do), undoes aborted transactions by following the
// backward chain of their log records, and rebuilds recoverable segments
// after a crash using the two co-existing techniques of Section 2.1.3:
//
//  * Value logging — records carry old/new images; crash recovery is a
//    single backward pass that resets every object to its most recently
//    committed value.
//  * Operation logging — records name an operation and its redo/undo
//    arguments; crash recovery is three passes (analysis, redo, undo),
//    guarded by the sequence numbers the kernel stamps into sector headers.
//
// Both kinds share one common log, as in TABS.

#ifndef TABS_RECOVERY_RECOVERY_MANAGER_H_
#define TABS_RECOVERY_RECOVERY_MANAGER_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/kernel/node.h"
#include "src/kernel/recoverable_segment.h"
#include "src/log/log_manager.h"

namespace tabs::kernel {
class PageCleaner;
}

namespace tabs::recovery {

// How the analysis pass classifies a top-level transaction.
enum class TxnOutcome {
  kCommitted,  // commit record present
  kAborted,    // abort record present (or implied loser)
  kPrepared,   // prepare record, no outcome: in doubt, awaiting coordinator
  kActive,     // updates but no prepare/commit/abort: a loser
};

// The Transaction Manager's side of crash recovery: the Recovery Manager
// "must pass transaction management records back to the Transaction Manager
// [and] then queries the Transaction Manager to discover the state of the
// transaction" (Section 3.2.2).
class TxnOutcomeSource {
 public:
  virtual ~TxnOutcomeSource() = default;
  virtual void ObserveTxnRecord(const log::LogRecord& rec) = 0;
  virtual TxnOutcome OutcomeOf(const TransactionId& top) = 0;
};

// Per-server callback for operation logging: applies a named operation with
// serialized arguments to the server's segment, stamping writes with
// `apply_lsn`. Redo passes apply (op_name, redo_args); undo applies
// (undo_op_name, undo_args). Application must be deterministic given the
// arguments (the page-sequence-number guard supplies exactly-once replay).
struct OperationHooks {
  std::function<void(const std::string& op_name, const Bytes& args, Lsn apply_lsn)> apply;
};

// An off-line archive of a node's non-volatile storage (Section 2.1.3: "to
// reduce the cost of recovering from disk failures, systems infrequently
// dump the contents of non-volatile storage into an off-line archive";
// media recovery itself is Section 7 future work, implemented here). The
// dump is sharp: segments are flushed and the log forced first, so replaying
// the retained log over the archive reproduces any later state.
struct Archive {
  std::map<SegmentId, std::vector<sim::DiskPage>> segments;
  Lsn dump_lsn = kNullLsn;  // everything ≤ this is reflected in the pages
};

struct RecoveryStats {
  int passes = 0;             // 1 for value-only logs, 3 when operations present
  int records_scanned = 0;
  int values_restored = 0;
  int operations_redone = 0;
  int operations_undone = 0;
  std::vector<TransactionId> in_doubt;  // prepared, awaiting coordinator word
  std::vector<TransactionId> losers;    // active at crash, rolled back
};

class RecoveryManager : public kernel::WriteAheadHooks {
 public:
  explicit RecoveryManager(kernel::Node& node);

  log::LogManager& log() { return log_; }
  sim::Substrate& substrate() { return node_.substrate(); }

  // --- server registration -------------------------------------------------
  void RegisterSegment(const std::string& server, kernel::RecoverableSegment* segment);
  void RegisterOperationHooks(const std::string& server, OperationHooks hooks);
  // Detaches a crashed server: undo and recovery skip its records until a
  // fresh instance re-registers (its on-disk segment is untouched).
  void UnregisterServer(const std::string& server);
  kernel::RecoverableSegment* SegmentOf(const std::string& server) const;

  // Attaches the node's background page cleaner. Registered segments are
  // added to the cleaner (and switched to clean-frame-preferring eviction),
  // and the kernel's first-dirty notifications arm it. Call before servers
  // register; a null (or disabled) cleaner leaves the paper-faithful
  // demand-only write-back behaviour untouched.
  void SetPageCleaner(kernel::PageCleaner* cleaner) { cleaner_ = cleaner; }

  // --- forward processing ---------------------------------------------------
  // Appends a value record (old/new images ≤ one page) and applies the new
  // value to the segment under the record's LSN. The covered pages must be
  // pinned by the caller (the server library's PinAndBuffer/LogAndUnPin).
  Lsn LogValue(const TransactionId& owner, const TransactionId& top,
               const std::string& server, const ObjectId& oid, Bytes old_value,
               Bytes new_value);

  // Appends an operation record and applies it through the server's hook
  // under the returned LSN. The undo pair names the inverse operation.
  Lsn LogOperation(const TransactionId& owner, const TransactionId& top,
                   const std::string& server, const std::string& op_name, Bytes redo_args,
                   const std::string& undo_op_name, Bytes undo_args,
                   std::vector<PageId> pages);

  // Undoes everything `owner` (and its committed subtransactions, which were
  // merged via MergeChild) did, writing compensation records. Used for both
  // transaction abort and independent subtransaction abort (Section 2.1.3).
  void UndoTransaction(const TransactionId& owner, const TransactionId& top);

  // Subtransaction commit: the child's undo list joins the parent's, so a
  // later parent abort rolls the child's updates back too.
  void MergeChild(const TransactionId& child, const TransactionId& parent);
  void ForgetTransaction(const TransactionId& owner);

  // The (sub)transaction's update LSNs in append order (empty if none).
  std::vector<Lsn> UndoListOf(const TransactionId& owner) const;
  // LSN of the owner's first update, or kNullLsn (checkpoint low-point).
  Lsn FirstLsnOf(const TransactionId& owner) const;

  // --- checkpoints & reclamation (checkpoint.cc) ----------------------------
  struct ActiveTxn {
    TransactionId owner;
    TransactionId top;
    bool prepared = false;
    Lsn first_lsn = kNullLsn;
  };
  // Writes a checkpoint record with the active-transaction table and every
  // registered segment's dirty-page table, forces it, and records it as the
  // restart point. Returns the checkpoint's LSN.
  Lsn TakeCheckpoint(const std::vector<ActiveTxn>& active);

  // Log-space reclamation with a *fuzzy* checkpoint: flushes only the dirty
  // pages whose recovery LSNs actually pin the log below the target (oldest
  // first, elevator-ordered — which may still write pages "before they would
  // otherwise be written", Section 3.2.2), checkpoints, and truncates the
  // stable log below the new low-water mark. The mark honours every
  // remaining dirty page's recovery LSN, so segments never need to be fully
  // clean. `target_retained_bytes` is how much log may remain retained; 0
  // reclaims everything reclaimable (every dirty unpinned page is flushed —
  // the behaviour of explicit Reclaim calls).
  void Reclaim(const std::vector<ActiveTxn>& active) { ReclaimTo(active, 0); }
  void ReclaimTo(const std::vector<ActiveTxn>& active, std::uint64_t target_retained_bytes);

  // Automatic reclamation: when the retained log grows past the watermark
  // fraction of `budget_bytes`, the next update triggers an incremental
  // ReclaimTo aiming at half the budget ("when the system is close to
  // running out of log space", Section 3.2.2). The source callback supplies
  // the Transaction Manager's active-transaction table. 0 disables.
  void SetLogSpaceBudget(std::uint64_t budget_bytes,
                         std::function<std::vector<ActiveTxn>()> active_source,
                         double watermark = 1.0) {
    log_budget_bytes_ = budget_bytes;
    active_source_ = std::move(active_source);
    reclaim_watermark_ = watermark;
  }
  int auto_reclaim_count() const { return auto_reclaims_; }

  std::uint64_t StableLogBytesInUse() const { return log_.StableBytesInUse(); }

  // --- archives & media recovery ---------------------------------------------
  // Dumps every registered segment's non-volatile contents (after flushing
  // volatile pages and forcing the log). The log must not be reclaimed past
  // the returned dump_lsn while the archive is the latest one; pass the
  // archive's dump_lsn to SetArchiveLowWaterMark to enforce that.
  Archive DumpArchive();
  void SetArchiveLowWaterMark(Lsn lsn) { archive_low_water_ = lsn; }
  // Writes an archive's pages back to disk after a media failure. Following
  // this with normal crash recovery (Recover) replays the retained log over
  // the archived state.
  void RestoreArchive(const Archive& archive);

  // --- crash recovery --------------------------------------------------------
  // Rebuilds all registered segments from the stable log. Caller must have
  // re-created the volatile stack (fresh segments, re-registered servers)
  // first. `outcomes` replays transaction-management records and answers
  // outcome queries. With `only_server` set, recovery is restricted to that
  // server's records — the Section 7 "recovery of a single server without
  // the recovery of the entire node".
  RecoveryStats Recover(TxnOutcomeSource& outcomes, const std::string* only_server = nullptr);

  // --- kernel hooks (WriteAheadHooks) ----------------------------------------
  void OnFirstDirty(PageId page, Lsn recovery_lsn) override;
  std::uint64_t BeforePageWrite(PageId page, Lsn last_lsn) override;
  void AfterPageWrite(PageId page, bool ok) override;

 private:
  friend class ValueRecoveryPass;
  friend class OperationRecoveryPass;

  // Implemented in value_recovery.cc / operation_recovery.cc. `only_server`
  // (nullptr = all) restricts which servers' records are applied.
  void RunValueBackwardPass(TxnOutcomeSource& outcomes, Lsn scan_low, RecoveryStats* stats,
                            const std::string* only_server);
  void RunOperationPasses(TxnOutcomeSource& outcomes, Lsn scan_low, RecoveryStats* stats,
                          const std::string* only_server);
  // Analysis shared by both: feeds txn records to `outcomes`, finds scan low
  // point from the last checkpoint, collects loser/in-doubt sets.
  Lsn AnalysisPass(TxnOutcomeSource& outcomes, RecoveryStats* stats, bool* saw_operations,
                   const std::string* only_server);

  kernel::RecoverableSegment* SegmentForOid(const std::string& server, const ObjectId& oid);

  void MaybeAutoReclaim();

  kernel::Node& node_;
  log::LogManager log_;
  std::map<std::string, kernel::RecoverableSegment*> segments_;
  std::map<std::string, OperationHooks> op_hooks_;
  kernel::PageCleaner* cleaner_ = nullptr;
  // Volatile per-(sub)transaction undo lists (normal-operation abort).
  std::unordered_map<TransactionId, std::vector<Lsn>> undo_lists_;
  std::uint64_t log_budget_bytes_ = 0;
  double reclaim_watermark_ = 1.0;
  std::function<std::vector<ActiveTxn>()> active_source_;
  int auto_reclaims_ = 0;
  bool reclaiming_ = false;
  Lsn archive_low_water_ = kNullLsn;
};

}  // namespace tabs::recovery

#endif  // TABS_RECOVERY_RECOVERY_MANAGER_H_
