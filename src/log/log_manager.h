// The per-node log: a volatile buffer in front of an append-only stable
// device, with group force and backward chains.
//
// "All log records are written into a volatile buffer until the buffer fills
// or until the buffer is forced to non-volatile storage by either the
// write-ahead-log or commit protocols." (Section 3.2.2.)
//
// LSNs are 1 + the byte offset of the record in the log stream; kNullLsn (0)
// terminates backward chains. Each record is framed as
//   [u32 length][record bytes][u32 length]
// so the log can be scanned in either direction (the value-logging crash
// recovery is a single *backward* pass).

#ifndef TABS_LOG_LOG_MANAGER_H_
#define TABS_LOG_LOG_MANAGER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/common/types.h"
#include "src/log/log_record.h"
#include "src/sim/substrate.h"

namespace tabs::log {

// The stable device. Its contents survive node crashes; the space-reclamation
// low-water mark models the paper's log-space reclamation (Section 3.2.2).
class StableLogDevice {
 public:
  std::uint64_t size() const { return data_.size(); }
  std::uint64_t truncated_prefix() const { return truncated_prefix_; }

  void Append(const Bytes& bytes) { data_.insert(data_.end(), bytes.begin(), bytes.end()); }
  std::span<const std::uint8_t> Read(std::uint64_t offset, std::uint64_t length) const;

  // Logically discards everything before `offset` (checkpoint-driven
  // reclamation). Reads below the prefix fail.
  void TruncateBefore(std::uint64_t offset);

 private:
  Bytes data_;  // offsets below truncated_prefix_ are zeroed and unreadable
  std::uint64_t truncated_prefix_ = 0;
};

class LogManager {
 public:
  LogManager(sim::Substrate& substrate, StableLogDevice& device);

  // Appends `rec` to the volatile buffer, filling in prev_lsn from the
  // owner's chain and rec.lsn. Returns the record's LSN. Does not force.
  Lsn Append(LogRecord rec);

  // Forces the buffer through `upto` to the stable device, charging one
  // stable-storage write per page of forced log data (grouped). No-op if
  // already durable. The stable device is a single spindle: concurrent
  // forces from different tasks queue behind each other in virtual time.
  // Every force that advances the durable frontier wakes WaitDurable
  // waiters whose LSN it covered.
  void Force(Lsn upto);
  void ForceAll() { Force(next_lsn_ - 1); }

  // Blocks the calling task until durable_lsn() >= lsn. The caller (or the
  // group-commit daemon on its behalf) must have arranged for a force to
  // happen; this only waits. Callable only from inside a task.
  void WaitDurable(Lsn lsn);

  Lsn durable_lsn() const { return durable_lsn_; }   // everything ≤ this is stable
  // LSN of the most recently appended record (durable or buffered).
  Lsn last_lsn() const { return last_record_lsn_; }
  // First LSN at/after which records exist (moves up with reclamation).
  Lsn first_lsn() const { return device_.truncated_prefix() + 1; }

  // Reads a record by LSN. During normal operation this reads through the
  // volatile buffer (abort processing follows chains into unforced records);
  // after a crash the buffer is empty, so recovery naturally sees only what
  // reached the stable device. Returns nullopt for unknown/reclaimed LSNs.
  std::optional<LogRecord> ReadRecord(Lsn lsn) const;

  // LSN of the record after `lsn`, or kNullLsn at the durable frontier.
  Lsn NextLsn(Lsn lsn) const;
  // LSN of the last durable record, for starting a backward scan.
  Lsn LastDurableLsn() const;
  // LSN of the record preceding `lsn` in the stable log, or kNullLsn.
  Lsn PrevLsn(Lsn lsn) const;

  // Backward chain bookkeeping: last LSN appended by `owner` (volatile; used
  // for abort processing during normal operation).
  Lsn LastLsnOf(const TransactionId& owner) const;
  void ForgetChain(const TransactionId& owner) { chains_.erase(owner); }

  // Bytes of stable log in use (for reclamation policy tests).
  std::uint64_t StableBytesInUse() const {
    return device_.size() - device_.truncated_prefix();
  }

  StableLogDevice& device() { return device_; }
  sim::Substrate& substrate() { return substrate_; }

 private:
  sim::Substrate& substrate_;
  StableLogDevice& device_;
  Bytes buffer_;            // volatile: records past durable_lsn_
  Lsn buffer_start_ = 1;    // LSN corresponding to buffer_[0]
  Lsn next_lsn_ = 1;
  Lsn last_record_lsn_ = kNullLsn;
  Lsn durable_lsn_ = kNullLsn;
  std::unordered_map<TransactionId, Lsn> chains_;
  // Virtual time at which the stable device finishes its in-flight write;
  // forces queue behind it (it is one spindle, not one per transaction).
  SimTime device_busy_until_ = 0;
  // Tasks blocked in WaitDurable until a force covers their LSN.
  sim::WaitQueue durable_waiters_;
};

}  // namespace tabs::log

#endif  // TABS_LOG_LOG_MANAGER_H_
