// The per-node log: a volatile buffer in front of an append-only stable
// device, with group force and backward chains.
//
// "All log records are written into a volatile buffer until the buffer fills
// or until the buffer is forced to non-volatile storage by either the
// write-ahead-log or commit protocols." (Section 3.2.2.)
//
// LSNs are 1 + the byte offset of the record in the log stream; kNullLsn (0)
// terminates backward chains. Each record is framed as
//   [u32 length][record bytes][u32 length]
// so the log can be scanned in either direction (the value-logging crash
// recovery is a single *backward* pass).

#ifndef TABS_LOG_LOG_MANAGER_H_
#define TABS_LOG_LOG_MANAGER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/log/log_record.h"
#include "src/sim/substrate.h"

namespace tabs::log {

// The stable device. Its contents survive node crashes; the space-reclamation
// low-water mark models the paper's log-space reclamation (Section 3.2.2).
//
// The device is sectored: every kSectorBytes-sized sector carries a checksum
// in its header space (the same out-of-band header area that holds the
// kernel's page sequence numbers on data pages). Appends maintain the
// checksums; fault injection can tear an append (a prefix of its sectors
// durable, the tail lost — power failure mid-write) or scramble a sector in
// place without fixing its checksum. Recovery validates the tail against the
// checksums and the record framing before trusting it (LogManager ctor).
class StableLogDevice {
 public:
  static constexpr std::uint64_t kSectorBytes = 512;

  std::uint64_t size() const { return data_.size(); }
  std::uint64_t truncated_prefix() const { return truncated_prefix_; }

  void Append(const Bytes& bytes);
  std::span<const std::uint8_t> Read(std::uint64_t offset, std::uint64_t length) const;

  // Logically discards everything before `offset` (checkpoint-driven
  // reclamation). Reads below the prefix fail.
  void TruncateBefore(std::uint64_t offset);

  // Recovery-side tail truncation: everything at/after `offset` is dropped
  // (a torn or corrupt tail must never be replayed).
  void TruncateAfter(std::uint64_t offset);

  // --- fault injection ------------------------------------------------------
  // A torn write: only the first `durable_sectors` sectors touched by this
  // append reach the platter; the rest of the bytes are lost. Models power
  // failure mid-force — the caller is expected to crash the node.
  void AppendTorn(const Bytes& bytes, int durable_sectors);
  // Scrambles a sector's data in place, leaving its checksum stale, as a
  // failing medium would. No virtual-time charge: this is damage, not I/O.
  void CorruptSector(std::uint64_t sector);

  // --- checksum inspection --------------------------------------------------
  std::uint64_t SectorCount() const { return sums_.size(); }
  // Recomputes sector `s` over its valid byte range and compares with the
  // stored checksum.
  bool SectorValid(std::uint64_t sector) const;
  // Byte offset of the first sector (at/after the truncated prefix) whose
  // checksum fails, or size() when all sectors verify.
  std::uint64_t FirstInvalidByte() const;

 private:
  std::uint32_t ComputeSum(std::uint64_t sector) const;
  // Recomputes checksums for every sector overlapping [begin, end).
  void ResyncSums(std::uint64_t begin, std::uint64_t end);

  Bytes data_;  // offsets below truncated_prefix_ are zeroed and unreadable
  std::uint64_t truncated_prefix_ = 0;
  std::vector<std::uint32_t> sums_;  // one per sector, header-space checksums
};

class LogManager {
 public:
  LogManager(sim::Substrate& substrate, StableLogDevice& device);

  // Appends `rec` to the volatile buffer, filling in prev_lsn from the
  // owner's chain and rec.lsn. Returns the record's LSN. Does not force.
  Lsn Append(LogRecord rec);

  // Forces the buffer through `upto` to the stable device, charging one
  // stable-storage write per page of forced log data (grouped). No-op if
  // already durable. The stable device is a single spindle: concurrent
  // forces from different tasks queue behind each other in virtual time.
  // Every force that advances the durable frontier wakes WaitDurable
  // waiters whose LSN it covered.
  void Force(Lsn upto);
  void ForceAll() { Force(next_lsn_ - 1); }

  // Blocks the calling task until durable_lsn() >= lsn. The caller (or the
  // group-commit daemon on its behalf) must have arranged for a force to
  // happen; this only waits. Callable only from inside a task.
  void WaitDurable(Lsn lsn);

  Lsn durable_lsn() const { return durable_lsn_; }   // everything ≤ this is stable
  // LSN of the most recently appended record (durable or buffered).
  Lsn last_lsn() const { return last_record_lsn_; }
  // First LSN at/after which records exist (moves up with reclamation).
  Lsn first_lsn() const { return device_.truncated_prefix() + 1; }

  // Reads a record by LSN. During normal operation this reads through the
  // volatile buffer (abort processing follows chains into unforced records);
  // after a crash the buffer is empty, so recovery naturally sees only what
  // reached the stable device. Returns nullopt for unknown/reclaimed LSNs.
  std::optional<LogRecord> ReadRecord(Lsn lsn) const;

  // LSN of the record after `lsn`, or kNullLsn at the durable frontier.
  Lsn NextLsn(Lsn lsn) const;
  // LSN of the last durable record, for starting a backward scan.
  Lsn LastDurableLsn() const;
  // LSN of the record preceding `lsn` in the stable log, or kNullLsn.
  Lsn PrevLsn(Lsn lsn) const;

  // Backward chain bookkeeping: last LSN appended by `owner` (volatile; used
  // for abort processing during normal operation).
  Lsn LastLsnOf(const TransactionId& owner) const;
  void ForgetChain(const TransactionId& owner) { chains_.erase(owner); }

  // Bytes of stable log in use (for reclamation policy tests).
  std::uint64_t StableBytesInUse() const {
    return device_.size() - device_.truncated_prefix();
  }

  StableLogDevice& device() { return device_; }
  sim::Substrate& substrate() { return substrate_; }

 private:
  // Walks the stable tail forward from the truncated prefix, validating
  // sector checksums and record framing; truncates the device at the first
  // damage (torn or corrupt tail must never be replayed). Runs at rebind
  // (crash recovery). Counts a log-tail truncation when it cuts anything.
  void ValidateStableTail();

  sim::Substrate& substrate_;
  StableLogDevice& device_;
  Bytes buffer_;            // volatile: records past durable_lsn_
  Lsn buffer_start_ = 1;    // LSN corresponding to buffer_[0]
  Lsn next_lsn_ = 1;
  Lsn last_record_lsn_ = kNullLsn;
  Lsn durable_lsn_ = kNullLsn;
  std::unordered_map<TransactionId, Lsn> chains_;
  // Virtual time at which the stable device finishes its in-flight write;
  // forces queue behind it (it is one spindle, not one per transaction).
  SimTime device_busy_until_ = 0;
  // Tasks blocked in WaitDurable until a force covers their LSN.
  sim::WaitQueue durable_waiters_;
};

}  // namespace tabs::log

#endif  // TABS_LOG_LOG_MANAGER_H_
