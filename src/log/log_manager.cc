#include "src/log/log_manager.h"

#include <cassert>
#include <cstring>

namespace tabs::log {

namespace {

constexpr std::uint64_t kFrameOverhead = 8;  // leading + trailing u32 lengths

std::uint32_t ReadU32(std::span<const std::uint8_t> s) {
  std::uint32_t v;
  assert(s.size() >= sizeof v);
  std::memcpy(&v, s.data(), sizeof v);
  return v;
}

}  // namespace

std::span<const std::uint8_t> StableLogDevice::Read(std::uint64_t offset,
                                                    std::uint64_t length) const {
  if (offset < truncated_prefix_ || offset + length > data_.size()) {
    return {};
  }
  return {data_.data() + offset, length};
}

void StableLogDevice::TruncateBefore(std::uint64_t offset) {
  if (offset <= truncated_prefix_) {
    return;
  }
  assert(offset <= data_.size());
  std::fill(data_.begin() + static_cast<std::ptrdiff_t>(truncated_prefix_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset), std::uint8_t{0});
  truncated_prefix_ = offset;
}

LogManager::LogManager(sim::Substrate& substrate, StableLogDevice& device)
    : substrate_(substrate), device_(device) {
  // Rebinding to a device that already holds log data (recovery after a
  // crash): the volatile buffer starts empty at the stable frontier.
  next_lsn_ = device_.size() + 1;
  buffer_start_ = next_lsn_;
  durable_lsn_ = LastDurableLsn();
  last_record_lsn_ = durable_lsn_;
}

Lsn LogManager::Append(LogRecord rec) {
  rec.prev_lsn = LastLsnOf(rec.owner);
  rec.lsn = next_lsn_;
  Bytes payload = rec.Serialize();
  auto len = static_cast<std::uint32_t>(payload.size());

  ByteWriter w;
  w.U32(len);
  Bytes framed = w.Take();
  framed.insert(framed.end(), payload.begin(), payload.end());
  ByteWriter w2;
  w2.U32(len);
  Bytes trailer = w2.Take();
  framed.insert(framed.end(), trailer.begin(), trailer.end());

  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  if (!rec.owner.IsNull()) {
    chains_[rec.owner] = rec.lsn;
  }
  Lsn lsn = next_lsn_;
  next_lsn_ += framed.size();
  last_record_lsn_ = lsn;
  return lsn;
}

void LogManager::Force(Lsn upto) {
  if (upto == kNullLsn || upto < buffer_start_ || buffer_.empty()) {
    return;
  }
  sim::Scheduler& sched = substrate_.scheduler();
  bool in_task = sched.in_task();
  // The log device is one spindle: a force that arrives while an earlier
  // force's write is still spinning queues behind it in virtual time. (A
  // single sequential task never queues — its clock is already past the
  // previous write's completion.)
  if (in_task) {
    sched.AdvanceTo(device_busy_until_);
  }
  // The buffer is forced as a unit (group force): TABS spools records and
  // writes them together, so one commit typically costs one stable write.
  std::uint64_t bytes = buffer_.size();
  auto pages = static_cast<double>((bytes + kPageSize - 1) / kPageSize);
  substrate_.Charge(sim::Primitive::kStableWrite, pages);
  device_.Append(buffer_);
  buffer_.clear();
  buffer_start_ = next_lsn_;
  durable_lsn_ = LastDurableLsn();
  substrate_.metrics().CountForceIssued();
  // A force is an I/O wait performed by the Recovery Manager process: other
  // processes (and server coroutines) run while the disk spins (Section
  // 2.1.1's wait-driven switching). Page faults, by contrast, suspend the
  // whole server and do NOT yield.
  if (in_task) {
    device_busy_until_ = sched.Now();
    // Wake everything waiting on the durable frontier (group-commit batch
    // members, or a bystander absorbed by a checkpoint's force). Woken
    // tasks re-check their LSN and re-wait if this write missed them.
    sched.NotifyAll(durable_waiters_);
    sched.Yield();
  }
}

void LogManager::WaitDurable(Lsn lsn) {
  sim::Scheduler& sched = substrate_.scheduler();
  assert(sched.in_task() && "WaitDurable outside a task");
  while (durable_lsn_ < lsn) {
    sched.Wait(durable_waiters_);
  }
}

std::optional<LogRecord> LogManager::ReadRecord(Lsn lsn) const {
  if (lsn == kNullLsn || lsn <= device_.truncated_prefix() || lsn >= next_lsn_) {
    return std::nullopt;
  }
  std::span<const std::uint8_t> head;
  std::span<const std::uint8_t> body;
  if (lsn >= buffer_start_) {
    // Still in the volatile buffer.
    std::uint64_t off = lsn - buffer_start_;
    if (off + 4 > buffer_.size()) {
      return std::nullopt;
    }
    head = {buffer_.data() + off, 4};
    std::uint32_t len = ReadU32(head);
    if (off + 4 + len > buffer_.size()) {
      return std::nullopt;
    }
    body = {buffer_.data() + off + 4, len};
  } else {
    std::uint64_t offset = lsn - 1;
    head = device_.Read(offset, 4);
    if (head.empty()) {
      return std::nullopt;
    }
    std::uint32_t len = ReadU32(head);
    body = device_.Read(offset + 4, len);
    if (body.empty() && len != 0) {
      return std::nullopt;
    }
  }
  auto rec = LogRecord::Deserialize(body);
  if (rec) {
    rec->lsn = lsn;
  }
  return rec;
}

Lsn LogManager::NextLsn(Lsn lsn) const {
  if (lsn == kNullLsn) {
    return kNullLsn;
  }
  std::uint64_t offset = lsn - 1;
  auto head = device_.Read(offset, 4);
  if (head.empty()) {
    return kNullLsn;
  }
  std::uint64_t next = offset + kFrameOverhead + ReadU32(head);
  return next >= device_.size() ? kNullLsn : next + 1;
}

Lsn LogManager::LastDurableLsn() const {
  std::uint64_t size = device_.size();
  if (size <= device_.truncated_prefix()) {
    return kNullLsn;
  }
  auto trailer = device_.Read(size - 4, 4);
  if (trailer.empty()) {
    return kNullLsn;
  }
  std::uint32_t len = ReadU32(trailer);
  return size - kFrameOverhead - len + 1;
}

Lsn LogManager::PrevLsn(Lsn lsn) const {
  if (lsn == kNullLsn) {
    return kNullLsn;
  }
  std::uint64_t offset = lsn - 1;
  if (offset < kFrameOverhead || offset - 4 < device_.truncated_prefix()) {
    return kNullLsn;
  }
  auto trailer = device_.Read(offset - 4, 4);
  if (trailer.empty()) {
    return kNullLsn;
  }
  std::uint32_t len = ReadU32(trailer);
  if (offset < kFrameOverhead + len) {
    return kNullLsn;
  }
  std::uint64_t prev = offset - kFrameOverhead - len;
  return prev < device_.truncated_prefix() ? kNullLsn : prev + 1;
}

Lsn LogManager::LastLsnOf(const TransactionId& owner) const {
  auto it = chains_.find(owner);
  return it == chains_.end() ? kNullLsn : it->second;
}

}  // namespace tabs::log
