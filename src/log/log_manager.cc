#include "src/log/log_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/sim/fault_injector.h"

namespace tabs::log {

namespace {

constexpr std::uint64_t kFrameOverhead = 8;  // leading + trailing u32 lengths

std::uint32_t ReadU32(std::span<const std::uint8_t> s) {
  std::uint32_t v;
  assert(s.size() >= sizeof v);
  std::memcpy(&v, s.data(), sizeof v);
  return v;
}

}  // namespace

std::span<const std::uint8_t> StableLogDevice::Read(std::uint64_t offset,
                                                    std::uint64_t length) const {
  if (offset < truncated_prefix_ || offset + length > data_.size()) {
    return {};
  }
  return {data_.data() + offset, length};
}

std::uint32_t StableLogDevice::ComputeSum(std::uint64_t sector) const {
  // FNV-1a over the sector's valid byte range (the final sector may be
  // partial; its checksum covers only the bytes written so far).
  std::uint64_t begin = sector * kSectorBytes;
  std::uint64_t end = std::min(begin + kSectorBytes, static_cast<std::uint64_t>(data_.size()));
  std::uint32_t h = 2166136261u;
  for (std::uint64_t i = begin; i < end; ++i) {
    h ^= data_[i];
    h *= 16777619u;
  }
  return h;
}

void StableLogDevice::ResyncSums(std::uint64_t begin, std::uint64_t end) {
  if (data_.empty()) {
    sums_.clear();
    return;
  }
  sums_.resize((data_.size() + kSectorBytes - 1) / kSectorBytes);
  std::uint64_t first = begin / kSectorBytes;
  std::uint64_t last = end == 0 ? 0 : (end - 1) / kSectorBytes;
  for (std::uint64_t s = first; s <= last && s < sums_.size(); ++s) {
    sums_[s] = ComputeSum(s);
  }
}

void StableLogDevice::Append(const Bytes& bytes) {
  std::uint64_t begin = data_.size();
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  ResyncSums(begin, data_.size());
}

void StableLogDevice::AppendTorn(const Bytes& bytes, int durable_sectors) {
  assert(durable_sectors >= 0);
  std::uint64_t begin = data_.size();
  std::uint64_t first_sector = begin / kSectorBytes;
  // Only the bytes landing in the first `durable_sectors` sectors touched by
  // this write survive; everything past that sector boundary is lost.
  std::uint64_t keep_limit = (first_sector + static_cast<std::uint64_t>(durable_sectors)) *
                             kSectorBytes;
  std::uint64_t keep = keep_limit <= begin ? 0 : std::min<std::uint64_t>(bytes.size(),
                                                                         keep_limit - begin);
  data_.insert(data_.end(), bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
  ResyncSums(begin, data_.size());
}

void StableLogDevice::CorruptSector(std::uint64_t sector) {
  std::uint64_t begin = sector * kSectorBytes;
  std::uint64_t end = std::min(begin + kSectorBytes, static_cast<std::uint64_t>(data_.size()));
  assert(begin < data_.size() && "corrupting a sector that does not exist");
  for (std::uint64_t i = begin; i < end; ++i) {
    data_[i] = static_cast<std::uint8_t>((data_[i] ^ 0xA5u) + 1);
  }
  // Deliberately no ResyncSums: the stored checksum is now stale, which is
  // exactly how recovery detects the damage.
}

bool StableLogDevice::SectorValid(std::uint64_t sector) const {
  assert(sector < sums_.size());
  return ComputeSum(sector) == sums_[sector];
}

std::uint64_t StableLogDevice::FirstInvalidByte() const {
  std::uint64_t first_sector = truncated_prefix_ / kSectorBytes;
  for (std::uint64_t s = first_sector; s < sums_.size(); ++s) {
    if (!SectorValid(s)) {
      return s * kSectorBytes;
    }
  }
  return data_.size();
}

void StableLogDevice::TruncateBefore(std::uint64_t offset) {
  if (offset <= truncated_prefix_) {
    return;
  }
  assert(offset <= data_.size());
  std::fill(data_.begin() + static_cast<std::ptrdiff_t>(truncated_prefix_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset), std::uint8_t{0});
  std::uint64_t old_prefix = truncated_prefix_;
  truncated_prefix_ = offset;
  ResyncSums(old_prefix, offset);
}

void StableLogDevice::TruncateAfter(std::uint64_t offset) {
  assert(offset >= truncated_prefix_ && offset <= data_.size());
  data_.resize(offset);
  sums_.resize(data_.empty() ? 0 : (data_.size() + kSectorBytes - 1) / kSectorBytes);
  if (!data_.empty()) {
    // The cut may leave a partial final sector: its checksum now covers a
    // shorter valid range.
    ResyncSums(data_.size() - 1, data_.size());
  }
}

LogManager::LogManager(sim::Substrate& substrate, StableLogDevice& device)
    : substrate_(substrate), device_(device) {
  // Rebinding to a device that already holds log data (recovery after a
  // crash): validate the stable tail first — a torn force or a corrupt
  // sector must be cut off before anything trusts LastDurableLsn, whose
  // trailer read would otherwise decode garbage. Then the volatile buffer
  // starts empty at the (possibly shortened) stable frontier.
  ValidateStableTail();
  next_lsn_ = device_.size() + 1;
  buffer_start_ = next_lsn_;
  durable_lsn_ = LastDurableLsn();
  last_record_lsn_ = durable_lsn_;
}

void LogManager::ValidateStableTail() {
  std::uint64_t end = device_.size();
  std::uint64_t off = device_.truncated_prefix();
  if (off >= end) {
    return;
  }
  // Bytes at/after the first checksum-failing sector are suspect: a frame is
  // only trusted if it lies entirely below that limit AND its framing is
  // intact AND its payload deserializes. The walk stops at the first record
  // that fails any test; everything from there on is the torn/corrupt tail.
  std::uint64_t trusted_limit = device_.FirstInvalidByte();
  if (trusted_limit < end) {
    // A checksum-failing sector is medium damage (a clean torn tail leaves
    // every durable sector's checksum valid). Counted here, at detection:
    // the device itself has no metrics channel.
    substrate_.metrics().CountFault(sim::FaultKind::kCorruptSector);
  }
  std::uint64_t good = off;
  while (off + kFrameOverhead <= trusted_limit) {
    std::uint32_t len = ReadU32(device_.Read(off, 4));
    std::uint64_t frame_end = off + kFrameOverhead + len;
    if (frame_end > trusted_limit) {
      break;  // frame runs into lost or corrupt sectors: torn tail
    }
    if (ReadU32(device_.Read(off + 4 + len, 4)) != len) {
      break;  // trailer mismatch: the tail of the frame never landed
    }
    if (!LogRecord::Deserialize(device_.Read(off + 4, len))) {
      break;  // framing looks plausible but the payload is garbage
    }
    off = frame_end;
    good = off;
  }
  if (good < end) {
    device_.TruncateAfter(good);
    substrate_.metrics().CountLogTailTruncation(end - good);
  }
}

Lsn LogManager::Append(LogRecord rec) {
  rec.prev_lsn = LastLsnOf(rec.owner);
  rec.lsn = next_lsn_;
  Bytes payload = rec.Serialize();
  auto len = static_cast<std::uint32_t>(payload.size());

  ByteWriter w;
  w.U32(len);
  Bytes framed = w.Take();
  framed.insert(framed.end(), payload.begin(), payload.end());
  ByteWriter w2;
  w2.U32(len);
  Bytes trailer = w2.Take();
  framed.insert(framed.end(), trailer.begin(), trailer.end());

  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  if (!rec.owner.IsNull()) {
    chains_[rec.owner] = rec.lsn;
  }
  Lsn lsn = next_lsn_;
  next_lsn_ += framed.size();
  last_record_lsn_ = lsn;
  return lsn;
}

void LogManager::Force(Lsn upto) {
  if (upto == kNullLsn || upto < buffer_start_ || buffer_.empty()) {
    return;
  }
  sim::Scheduler& sched = substrate_.scheduler();
  bool in_task = sched.in_task();
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kLog, "log.force");
  // The log device is one spindle: a force that arrives while an earlier
  // force's write is still spinning queues behind it in virtual time. (A
  // single sequential task never queues — its clock is already past the
  // previous write's completion.)
  if (in_task) {
    sched.AdvanceTo(device_busy_until_);
  }
  FAULT_POINT(substrate_, "log.force.before_write");
  // The buffer is forced as a unit (group force): TABS spools records and
  // writes them together, so one commit typically costs one stable write.
  std::uint64_t bytes = buffer_.size();
  auto pages = static_cast<double>((bytes + kPageSize - 1) / kPageSize);
  if (in_task && substrate_.faults() != nullptr) {
    int durable_sectors = substrate_.faults()->TakeTornLogForce();
    if (durable_sectors >= 0) {
      // Power fails mid-force: a prefix of the write's sectors reaches the
      // platter, the tail is lost, and the node dies with its volatile
      // buffer. Recovery's tail validation finds and cuts the damage.
      substrate_.Charge(sim::Primitive::kStableWrite, pages);
      device_.AppendTorn(buffer_, durable_sectors);
      substrate_.metrics().CountFault(sim::FaultKind::kTornLogWrite);
      substrate_.faults()->CrashCurrentNode(substrate_, "log.force.torn");
      return;  // reached only when no crash handler is wired (unit tests)
    }
  }
  substrate_.Charge(sim::Primitive::kStableWrite, pages);
  device_.Append(buffer_);
  buffer_.clear();
  buffer_start_ = next_lsn_;
  durable_lsn_ = LastDurableLsn();
  substrate_.metrics().CountForceIssued();
  FAULT_POINT(substrate_, "log.force.after_write");
  // A force is an I/O wait performed by the Recovery Manager process: other
  // processes (and server coroutines) run while the disk spins (Section
  // 2.1.1's wait-driven switching). Page faults, by contrast, suspend the
  // whole server and do NOT yield.
  if (in_task) {
    device_busy_until_ = sched.Now();
    // Wake everything waiting on the durable frontier (group-commit batch
    // members, or a bystander absorbed by a checkpoint's force). Woken
    // tasks re-check their LSN and re-wait if this write missed them.
    sched.NotifyAll(durable_waiters_);
    sched.Yield();
  }
}

void LogManager::WaitDurable(Lsn lsn) {
  sim::Scheduler& sched = substrate_.scheduler();
  assert(sched.in_task() && "WaitDurable outside a task");
  sim::SpanGuard span(substrate_.tracer(), sim::Component::kLog, "log.wait-durable");
  while (durable_lsn_ < lsn) {
    sched.Wait(durable_waiters_);
  }
}

std::optional<LogRecord> LogManager::ReadRecord(Lsn lsn) const {
  if (lsn == kNullLsn || lsn <= device_.truncated_prefix() || lsn >= next_lsn_) {
    return std::nullopt;
  }
  std::span<const std::uint8_t> head;
  std::span<const std::uint8_t> body;
  if (lsn >= buffer_start_) {
    // Still in the volatile buffer.
    std::uint64_t off = lsn - buffer_start_;
    if (off + 4 > buffer_.size()) {
      return std::nullopt;
    }
    head = {buffer_.data() + off, 4};
    std::uint32_t len = ReadU32(head);
    if (off + 4 + len > buffer_.size()) {
      return std::nullopt;
    }
    body = {buffer_.data() + off + 4, len};
  } else {
    std::uint64_t offset = lsn - 1;
    head = device_.Read(offset, 4);
    if (head.empty()) {
      return std::nullopt;
    }
    std::uint32_t len = ReadU32(head);
    body = device_.Read(offset + 4, len);
    if (body.empty() && len != 0) {
      return std::nullopt;
    }
  }
  auto rec = LogRecord::Deserialize(body);
  if (rec) {
    rec->lsn = lsn;
  }
  return rec;
}

Lsn LogManager::NextLsn(Lsn lsn) const {
  if (lsn == kNullLsn) {
    return kNullLsn;
  }
  std::uint64_t offset = lsn - 1;
  auto head = device_.Read(offset, 4);
  if (head.empty()) {
    return kNullLsn;
  }
  std::uint64_t next = offset + kFrameOverhead + ReadU32(head);
  return next >= device_.size() ? kNullLsn : next + 1;
}

Lsn LogManager::LastDurableLsn() const {
  std::uint64_t size = device_.size();
  if (size <= device_.truncated_prefix()) {
    return kNullLsn;
  }
  auto trailer = device_.Read(size - 4, 4);
  if (trailer.empty()) {
    return kNullLsn;
  }
  std::uint32_t len = ReadU32(trailer);
  return size - kFrameOverhead - len + 1;
}

Lsn LogManager::PrevLsn(Lsn lsn) const {
  if (lsn == kNullLsn) {
    return kNullLsn;
  }
  std::uint64_t offset = lsn - 1;
  if (offset < kFrameOverhead || offset - 4 < device_.truncated_prefix()) {
    return kNullLsn;
  }
  auto trailer = device_.Read(offset - 4, 4);
  if (trailer.empty()) {
    return kNullLsn;
  }
  std::uint32_t len = ReadU32(trailer);
  if (offset < kFrameOverhead + len) {
    return kNullLsn;
  }
  std::uint64_t prev = offset - kFrameOverhead - len;
  return prev < device_.truncated_prefix() ? kNullLsn : prev + 1;
}

Lsn LogManager::LastLsnOf(const TransactionId& owner) const {
  auto it = chains_.find(owner);
  return it == chains_.end() ? kNullLsn : it->second;
}

}  // namespace tabs::log
