// Log record formats.
//
// TABS bases recovery on write-ahead logging with a single common log per
// node shared by all data servers and the Transaction Manager (Sections
// 2.1.3, 3.2.2). Two update-record families co-exist in that log:
//
//  * Value records carry the old and new values of at most one page of an
//    object's representation. Crash recovery for value-logged objects is a
//    single backward pass.
//  * Operation records carry an operation name and enough information to
//    invoke its redo/undo. Crash recovery is three passes (analysis, redo,
//    undo) guarded by the page sequence numbers the modified kernel stamps
//    into each sector header.
//
// Every update record carries two transaction identifiers: `owner`, the
// (sub)transaction that wrote it — whose backward chain `prev_lsn` threads —
// and `top`, the top-level ancestor whose commit outcome decides redo-vs-undo
// at crash recovery (subtransactions commit only with their top-level parent,
// Section 2.1.3).
//
// Compensation records (written while undoing) carry `undo_next_lsn`, the
// prev_lsn of the record they compensate, so that an abort interrupted by a
// crash never undoes the same update twice.

#ifndef TABS_LOG_LOG_RECORD_H_
#define TABS_LOG_LOG_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"

namespace tabs::log {

enum class RecordType : std::uint8_t {
  kValueUpdate = 1,     // old/new images of one object (≤ 1 page)
  kOperationUpdate,     // redoable/undoable operation description
  kCompensation,        // value-style compensation written during undo
  kOpCompensation,      // operation-style compensation written during undo
  kTxnPrepare,          // participant prepared (2PC phase one)
  kTxnCommit,           // commit decided
  kTxnAbort,            // abort decided
  kTxnEnd,              // all participants acknowledged; forget the txn
  kSubtxnCommit,        // subtransaction committed into its parent
  kCheckpoint,          // active-txn table + dirty-page table snapshot
  kNodeEpoch,           // new TM incarnation after crash recovery (owner's
                        // sequence carries the incarnation in its high bits)
  // Paxos Commit acceptor state (Gray & Lamport, "Consensus on Transaction
  // Commit"). One Paxos instance per participant vote; an acceptor's promise
  // and acceptance must be durable before its reply, so a crashed acceptor
  // rejoins the same instance without contradicting itself.
  kPaxosPromise,        // acceptor promised `paxos_ballot` for every instance of `top`
  kPaxosAccept,         // acceptor accepted `paxos_vote` for `paxos_participant`'s
                        // instance at `paxos_ballot`
  kPaxosLearn,          // acceptor learned the decided outcome (paxos_vote: +1/-1)
};

const char* RecordTypeName(RecordType t);

struct LogRecord {
  RecordType type = RecordType::kValueUpdate;
  TransactionId owner;          // writing (sub)transaction
  TransactionId top;            // top-level ancestor (== owner for top-level)
  Lsn prev_lsn = kNullLsn;      // backward chain of `owner` (filled by LogManager)
  Lsn undo_next_lsn = kNullLsn; // compensation records only

  // Update / compensation records.
  std::string server;           // data server the object belongs to
  ObjectId oid;
  Bytes old_value;              // value records: before-image
  Bytes new_value;              // value records: after-image

  // Operation records. `op_name`/`redo_args` re-apply the operation;
  // `undo_op_name`/`undo_args` name the inverse operation that cancels it.
  std::string op_name;
  Bytes redo_args;
  std::string undo_op_name;
  Bytes undo_args;
  std::vector<PageId> pages;    // pages the operation touches (for seqno guard)

  // Transaction-management records.
  NodeId parent_node = kInvalidNode;       // prepare: my 2PC parent in the tree
  std::vector<NodeId> children;            // prepare/commit: my subtree children
  std::vector<NodeId> siblings;            // prepare: my parent's other children
                                           // (for cooperative termination)
  std::vector<std::string> local_servers;  // prepare: servers with updates here
  TransactionId parent_tid;                // subtxn-commit: the parent

  // Checkpoint payload (opaque to the log; recovery interprets it).
  Bytes checkpoint_data;

  // Paxos Commit fields. Serialized as an optional tail: records that carry
  // none of them (every record the default kTwoPhase mode writes) keep their
  // exact historical byte layout, so log sizes — and everything downstream
  // of them, like reclamation timing — are unchanged unless Paxos is on.
  std::vector<NodeId> acceptors;           // prepare: the 2F+1 acceptor set
  NodeId paxos_participant = kInvalidNode; // accept: whose instance
  std::int32_t paxos_ballot = 0;           // promise/accept: the ballot
  std::int8_t paxos_vote = 0;              // accept: 1 prepared, 2 read-only,
                                           // -1 abort; learn: +1/-1 outcome

  // Filled in by LogManager on append / on read.
  Lsn lsn = kNullLsn;

  Bytes Serialize() const;
  static std::optional<LogRecord> Deserialize(std::span<const std::uint8_t> data);

  bool IsUpdate() const {
    return type == RecordType::kValueUpdate || type == RecordType::kOperationUpdate ||
           type == RecordType::kCompensation || type == RecordType::kOpCompensation;
  }
  bool IsCompensation() const {
    return type == RecordType::kCompensation || type == RecordType::kOpCompensation;
  }
  bool IsValueStyle() const {
    return type == RecordType::kValueUpdate || type == RecordType::kCompensation;
  }
};

}  // namespace tabs::log

#endif  // TABS_LOG_LOG_RECORD_H_
