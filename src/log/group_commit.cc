#include "src/log/group_commit.h"

#include <string>

#include "src/sim/fault_injector.h"
#include "src/sim/metrics.h"
#include "src/sim/scheduler.h"
#include "src/sim/substrate.h"

namespace tabs::log {

void GroupCommit::WaitStable(Lsn lsn) {
  sim::Substrate& sub = log_.substrate();
  sim::Scheduler& sched = sub.scheduler();
  sim::SpanGuard span(sub.tracer(), sim::Component::kLog, "gc.wait-stable");
  if (!enabled() || !sched.in_task()) {
    // Legacy per-transaction force: the committer pays the stable write
    // itself. This is the paper-faithful path (window == 0) and the only
    // one reachable outside a task (recovery-time callers).
    log_.Force(lsn);
    return;
  }
  if (log_.durable_lsn() >= lsn) {
    // Someone else's force (an earlier batch, a checkpoint) already covered
    // us — a force fully absorbed, zero additional I/O.
    sub.metrics().CountForceAbsorbed();
    return;
  }
  if (pending_ == 0) {
    // First member opens the batch and schedules its flusher one window
    // out. The flusher carries the batch's generation so it becomes a
    // no-op if the batch was flushed early (or absorbed) before it fires.
    std::uint64_t gen = generation_;
    sched.Spawn("group-commit", node_, sched.Now() + window_us_,
                [this, gen] { FlushBatch(gen); });
  }
  ++pending_;
  if (pending_ >= max_batch_) {
    // Batch is full: the arriving member flushes on behalf of everyone
    // rather than letting latency accumulate until the timer fires.
    FlushBatch(generation_);
  }
  log_.WaitDurable(lsn);
}

void GroupCommit::FlushBatch(std::uint64_t generation) {
  if (generation != generation_ || pending_ == 0) {
    return;  // stale timer: this batch was already flushed (or never formed)
  }
  int batch = pending_;
  // Close the batch *before* the force's I/O yield: members arriving while
  // the disk spins must open a fresh batch (with its own flusher) instead of
  // joining one whose write has already been cut.
  pending_ = 0;
  ++generation_;
  ++batches_;
  if (batch > largest_batch_) {
    largest_batch_ = batch;
  }
  sim::Substrate& sub = log_.substrate();
  sim::SpanGuard span(sub.tracer(), sim::Component::kLog, "gc.flush",
                      sub.tracer().enabled() ? "batch=" + std::to_string(batch)
                                             : std::string());
  // One member's force covers the whole batch: all but one stable write are
  // absorbed.
  if (batch > 1) {
    sub.metrics().CountForceAbsorbed(batch - 1);
  }
  if (sub.tracer().enabled()) {
    sim::Scheduler& sched = sub.scheduler();
    sub.tracer().Record(sched.Now(), node_, "group-commit-flush",
                        "batch=" + std::to_string(batch));
  }
  // Forcing is commit processing regardless of which task's clock pays for
  // it (the timer flusher is not inside any transaction's phase).
  sim::PhaseScope phase(sub.metrics(), sim::Phase::kCommit);
  // The window where a batch is closed but its members' records are still
  // volatile: a crash here loses every commit in the batch at once.
  FAULT_POINT(sub, "gc.flush.before_force");
  log_.ForceAll();  // wakes every WaitDurable waiter it covered
  FAULT_POINT(sub, "gc.flush.after_force");
}

}  // namespace tabs::log
