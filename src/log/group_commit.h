// Group commit: one stable log write per *batch* of committing transactions.
//
// The paper's TABS forces the log once per committing transaction (the
// Section 5.2 tables charge every commit a stable write). Section 5.3's
// "Improved architecture" observes that forces dominate commit latency and
// proposes taking them off the per-transaction path; group commit is the
// classic realisation. A transaction that needs its records stable no longer
// calls Force itself — it registers its LSN with the per-node GroupCommit
// daemon and blocks. The daemon flushes the whole buffer once per batch
// window (or earlier, when the batch fills), and a single Force wakes every
// member whose LSN it covered.
//
// With window == 0 the daemon is disabled and WaitStable degenerates to an
// immediate Force — byte-identical to the paper-faithful per-transaction
// behaviour, so all regenerated table_5_* numbers are preserved.

#ifndef TABS_LOG_GROUP_COMMIT_H_
#define TABS_LOG_GROUP_COMMIT_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/log/log_manager.h"

namespace tabs::log {

class GroupCommit {
 public:
  // window_us <= 0 disables batching (legacy per-transaction force).
  GroupCommit(NodeId node, LogManager& log, SimTime window_us, int max_batch)
      : node_(node), log_(log), window_us_(window_us),
        max_batch_(max_batch < 1 ? 1 : max_batch) {}
  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  bool enabled() const { return window_us_ > 0; }
  SimTime window_us() const { return window_us_; }
  int max_batch() const { return max_batch_; }

  // Blocks the calling task until everything through `lsn` is on the stable
  // device. Disabled (or outside a task): forces immediately, exactly like
  // the old code path. Enabled: joins the open batch (opening one, and
  // scheduling its flusher `window_us` out, if none is open), flushes
  // eagerly if the batch just filled, then waits on the log's durable
  // frontier. Safe across CrashNode: a killed waiter unwinds via TaskKilled
  // before observing stability, and a killed flusher never runs.
  void WaitStable(Lsn lsn);

  // Flush statistics (for benches and the batch-determinism test).
  std::uint64_t batches() const { return batches_; }
  int largest_batch() const { return largest_batch_; }

 private:
  void FlushBatch(std::uint64_t generation);

  NodeId node_;
  LogManager& log_;
  SimTime window_us_;
  int max_batch_;
  // Membership of the currently open batch. The generation counter lets a
  // timer-spawned flusher detect that its batch was already flushed early
  // (or that it fired for a batch that a checkpoint force absorbed).
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t batches_ = 0;
  int largest_batch_ = 0;
};

}  // namespace tabs::log

#endif  // TABS_LOG_GROUP_COMMIT_H_
