#include "src/log/log_record.h"

namespace tabs::log {

const char* RecordTypeName(RecordType t) {
  switch (t) {
    case RecordType::kValueUpdate:
      return "VALUE";
    case RecordType::kOperationUpdate:
      return "OPERATION";
    case RecordType::kCompensation:
      return "COMPENSATION";
    case RecordType::kOpCompensation:
      return "OP_COMPENSATION";
    case RecordType::kTxnPrepare:
      return "PREPARE";
    case RecordType::kTxnCommit:
      return "COMMIT";
    case RecordType::kTxnAbort:
      return "ABORT";
    case RecordType::kTxnEnd:
      return "END";
    case RecordType::kSubtxnCommit:
      return "SUBTXN_COMMIT";
    case RecordType::kCheckpoint:
      return "CHECKPOINT";
    case RecordType::kNodeEpoch:
      return "NODE_EPOCH";
    case RecordType::kPaxosPromise:
      return "PAXOS_PROMISE";
    case RecordType::kPaxosAccept:
      return "PAXOS_ACCEPT";
    case RecordType::kPaxosLearn:
      return "PAXOS_LEARN";
  }
  return "?";
}

Bytes LogRecord::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(type));
  w.Tid(owner);
  w.Tid(top);
  w.U64(prev_lsn);
  w.U64(undo_next_lsn);
  w.Str(server);
  w.Oid(oid);
  w.Blob(old_value);
  w.Blob(new_value);
  w.Str(op_name);
  w.Blob(redo_args);
  w.Str(undo_op_name);
  w.Blob(undo_args);
  w.U32(static_cast<std::uint32_t>(pages.size()));
  for (const PageId& p : pages) {
    w.U32(p.segment);
    w.U32(p.page);
  }
  w.U32(parent_node);
  w.U32(static_cast<std::uint32_t>(children.size()));
  for (NodeId n : children) {
    w.U32(n);
  }
  w.U32(static_cast<std::uint32_t>(siblings.size()));
  for (NodeId n : siblings) {
    w.U32(n);
  }
  w.U32(static_cast<std::uint32_t>(local_servers.size()));
  for (const std::string& s : local_servers) {
    w.Str(s);
  }
  w.Tid(parent_tid);
  w.Blob(checkpoint_data);
  // Optional Paxos tail: present iff any field is non-default, detected on
  // read by bytes remaining. Records the default commit mode writes carry no
  // tail and keep their exact historical layout.
  if (!acceptors.empty() || paxos_participant != kInvalidNode || paxos_ballot != 0 ||
      paxos_vote != 0) {
    w.U32(static_cast<std::uint32_t>(acceptors.size()));
    for (NodeId n : acceptors) {
      w.U32(n);
    }
    w.U32(paxos_participant);
    w.U32(static_cast<std::uint32_t>(paxos_ballot));
    w.U8(static_cast<std::uint8_t>(paxos_vote));
  }
  return w.Take();
}

std::optional<LogRecord> LogRecord::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  LogRecord rec;
  rec.type = static_cast<RecordType>(r.U8());
  rec.owner = r.Tid();
  rec.top = r.Tid();
  rec.prev_lsn = r.U64();
  rec.undo_next_lsn = r.U64();
  rec.server = r.Str();
  rec.oid = r.Oid();
  rec.old_value = r.Blob();
  rec.new_value = r.Blob();
  rec.op_name = r.Str();
  rec.redo_args = r.Blob();
  rec.undo_op_name = r.Str();
  rec.undo_args = r.Blob();
  std::uint32_t npages = r.U32();
  for (std::uint32_t i = 0; i < npages && r.ok(); ++i) {
    PageId p;
    p.segment = r.U32();
    p.page = r.U32();
    rec.pages.push_back(p);
  }
  rec.parent_node = r.U32();
  std::uint32_t nchildren = r.U32();
  for (std::uint32_t i = 0; i < nchildren && r.ok(); ++i) {
    rec.children.push_back(r.U32());
  }
  std::uint32_t nsiblings = r.U32();
  for (std::uint32_t i = 0; i < nsiblings && r.ok(); ++i) {
    rec.siblings.push_back(r.U32());
  }
  std::uint32_t nservers = r.U32();
  for (std::uint32_t i = 0; i < nservers && r.ok(); ++i) {
    rec.local_servers.push_back(r.Str());
  }
  rec.parent_tid = r.Tid();
  rec.checkpoint_data = r.Blob();
  if (r.ok() && r.remaining() > 0) {
    std::uint32_t nacceptors = r.U32();
    for (std::uint32_t i = 0; i < nacceptors && r.ok(); ++i) {
      rec.acceptors.push_back(r.U32());
    }
    rec.paxos_participant = r.U32();
    rec.paxos_ballot = static_cast<std::int32_t>(r.U32());
    rec.paxos_vote = static_cast<std::int8_t>(r.U8());
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return rec;
}

}  // namespace tabs::log
