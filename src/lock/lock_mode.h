// Lock modes and type-specific compatibility relations.
//
// TABS synchronizes transactions by locking (Section 2.1.2). The default is
// classic shared/exclusive locking, but the design point the paper argues for
// is *type-specific* locking: a data server may define its own lock modes and
// its own compatibility relation to expose more concurrency (Schwarz &
// Spector's typed locking). CompatibilityMatrix is that relation.

#ifndef TABS_LOCK_LOCK_MODE_H_
#define TABS_LOCK_LOCK_MODE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tabs::lock {

// A lock mode is a small integer index into the server's compatibility
// matrix. The two standard modes exist in every matrix.
using LockMode = std::uint8_t;
constexpr LockMode kShared = 0;
constexpr LockMode kExclusive = 1;

class CompatibilityMatrix {
 public:
  // The standard read/write relation: S-S compatible, anything with X not.
  static CompatibilityMatrix SharedExclusive();

  // A matrix with `mode_count` modes, initially nothing compatible. Modes 0
  // and 1 should keep their shared/exclusive meaning by convention.
  explicit CompatibilityMatrix(int mode_count);

  int mode_count() const { return mode_count_; }
  void SetCompatible(LockMode a, LockMode b, bool compatible = true);
  bool Compatible(LockMode requested, LockMode held) const;

  // Convenience for building typed matrices, e.g. a directory server's
  // insert/delete modes that commute with each other but not with scans.
  static CompatibilityMatrix FromRows(const std::vector<std::vector<bool>>& rows);

 private:
  int mode_count_;
  std::vector<bool> compat_;  // mode_count_ x mode_count_, row-major
};

}  // namespace tabs::lock

#endif  // TABS_LOCK_LOCK_MODE_H_
