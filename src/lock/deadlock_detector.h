// Local waits-for-graph deadlock detection.
//
// TABS itself "currently relies on time-outs" to break deadlock (Section
// 2.1.2) but cites systems that run deadlock detectors (Obermarck; R*). This
// detector is that extension: it assembles the waits-for graph from one or
// more lock managers on a node, finds a cycle, and names a victim (the
// youngest transaction in the cycle) whose waits are then cancelled.

#ifndef TABS_LOCK_DEADLOCK_DETECTOR_H_
#define TABS_LOCK_DEADLOCK_DETECTOR_H_

#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/lock/lock_manager.h"

namespace tabs::lock {

class DeadlockDetector {
 public:
  // Registers a lock manager whose waiters participate in the graph.
  void AddLockManager(LockManager* lm) { managers_.push_back(lm); }

  // Returns the transactions forming one cycle, or empty when deadlock-free.
  std::vector<TransactionId> FindCycle() const;

  // Picks a victim from FindCycle() (the youngest = largest sequence) and
  // cancels its lock waits in every registered manager, causing its Lock()
  // calls to return kAborted. Returns the victim, or nullopt if no cycle.
  std::optional<TransactionId> BreakOneCycle();

 private:
  std::vector<LockManager*> managers_;
};

}  // namespace tabs::lock

#endif  // TABS_LOCK_DEADLOCK_DETECTOR_H_
