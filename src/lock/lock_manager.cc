#include "src/lock/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace tabs::lock {

LockManager::LockManager(sim::Scheduler& sched, CompatibilityMatrix matrix,
                         SimTime default_timeout)
    : sched_(sched), matrix_(std::move(matrix)), default_timeout_(default_timeout) {}

bool LockManager::CanGrant(const LockHead& head, const TransactionId& tid,
                           LockMode mode) const {
  for (const auto& [holder, modes] : head.granted) {
    if (holder == tid) {
      continue;  // conversion: own locks never conflict with the request
    }
    for (LockMode held : modes) {
      if (!matrix_.Compatible(mode, held)) {
        return false;
      }
    }
  }
  return true;
}

Status LockManager::Lock(const TransactionId& tid, const ObjectId& oid, LockMode mode,
                         SimTime timeout) {
  if (timeout == kUseDefault) {
    timeout = default_timeout_;
  }
  if (requester_veto_ && requester_veto_(tid)) {
    return Status::kAborted;  // the requester is mid-abort: refuse new locks
  }
  LockHead& head = heads_[oid];
  if (CanGrant(head, tid, mode) && !(grant_veto_ && grant_veto_(oid))) {
    head.granted[tid].insert(mode);
    if (grant_sink_) {
      grant_sink_(tid, oid);
    }
    return Status::kOk;
  }
  auto waiter = std::make_shared<Waiter>();
  waiter->tid = tid;
  waiter->oid = oid;
  waiter->mode = mode;
  head.waiters.push_back(waiter);

  bool granted_flag = false;
  bool notified = sched_.Wait(waiter->queue, timeout);
  // Re-look-up: the head may have been erased/recreated while we slept.
  LockHead& head2 = heads_[oid];
  auto held = head2.granted.find(tid);
  granted_flag = held != head2.granted.end() && held->second.contains(mode);

  if (granted_flag) {
    if (requester_veto_ && requester_veto_(tid)) {
      // Granted while a cascade abort consumed this transaction (the grant
      // sweep ran before this task resumed). The abort's ReleaseAll cleans
      // the grant up; proceeding would write after our own undo.
      return Status::kAborted;
    }
    return Status::kOk;  // granted, possibly racing a timeout
  }
  // Timed out or cancelled: withdraw the request.
  auto& w = head2.waiters;
  w.erase(std::remove(w.begin(), w.end(), waiter), w.end());
  if (head2.granted.empty() && head2.waiters.empty()) {
    heads_.erase(oid);
  }
  if (waiter->cancelled) {
    return Status::kAborted;
  }
  (void)notified;
  return Status::kTimeout;
}

bool LockManager::ConditionalLock(const TransactionId& tid, const ObjectId& oid,
                                  LockMode mode) {
  LockHead& head = heads_[oid];
  if (!CanGrant(head, tid, mode) || (grant_veto_ && grant_veto_(oid))) {
    if (head.granted.empty() && head.waiters.empty()) {
      heads_.erase(oid);
    }
    return false;
  }
  head.granted[tid].insert(mode);
  if (grant_sink_) {
    grant_sink_(tid, oid);
  }
  return true;
}

bool LockManager::IsLocked(const ObjectId& oid) const {
  auto it = heads_.find(oid);
  return it != heads_.end() && !it->second.granted.empty();
}

bool LockManager::Holds(const TransactionId& tid, const ObjectId& oid, LockMode mode) const {
  auto it = heads_.find(oid);
  if (it == heads_.end()) {
    return false;
  }
  auto h = it->second.granted.find(tid);
  return h != it->second.granted.end() && h->second.contains(mode);
}

void LockManager::GrantEligibleWaiters(LockHead& head) {
  // Strict FIFO: grant from the front until the first request that still
  // conflicts. This avoids starving writers behind a stream of readers.
  while (!head.waiters.empty()) {
    auto& w = head.waiters.front();
    if (grant_sink_ && w->cancelled) {
      // Queue mode: a waiter cancelled by a cascade abort must not be
      // granted before its task resumes — drop the request; the sleeping
      // task re-checks `cancelled` on wake and fails kAborted.
      head.waiters.erase(head.waiters.begin());
      continue;
    }
    if (!CanGrant(head, w->tid, w->mode)) {
      break;
    }
    if (grant_veto_ && grant_veto_(w->oid)) {
      break;  // a predecessor is mid-abort: stay parked until it settles
    }
    head.granted[w->tid].insert(w->mode);
    if (grant_sink_) {
      grant_sink_(w->tid, w->oid);
    }
    sched_.NotifyOne(w->queue);
    head.waiters.erase(head.waiters.begin());
  }
}

void LockManager::GrantAllEligible() {
  // Same deterministic walk as ReleaseAll. Used after an abort settles: the
  // grant veto parked requests as waiters; with the veto lifted they become
  // eligible again.
  for (const ObjectId& oid : SortedOids()) {
    auto it = heads_.find(oid);
    if (it == heads_.end()) {
      continue;
    }
    GrantEligibleWaiters(it->second);
    if (it->second.granted.empty() && it->second.waiters.empty()) {
      heads_.erase(it);
    }
  }
}

std::vector<ObjectId> LockManager::SortedOids() const {
  std::vector<ObjectId> oids;
  oids.reserve(heads_.size());
  for (const auto& [oid, head] : heads_) {
    oids.push_back(oid);
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

void LockManager::ReleaseAll(const TransactionId& tid) {
  // Walk in ObjectId order: GrantEligibleWaiters wakes tasks, and the wake
  // sequence must not depend on hash-table iteration order.
  for (const ObjectId& oid : SortedOids()) {
    auto it = heads_.find(oid);
    if (it == heads_.end()) {
      continue;
    }
    LockHead& head = it->second;
    if (head.granted.erase(tid) > 0) {
      GrantEligibleWaiters(head);
    }
    if (head.granted.empty() && head.waiters.empty()) {
      heads_.erase(it);
    }
  }
}

void LockManager::InheritToParent(const TransactionId& child, const TransactionId& parent) {
  // Pure re-keying: no wakes, no charges, and the final table state is the
  // same whatever order the heads are visited in.
  for (auto& [oid, head] : heads_) {
    auto it = head.granted.find(child);
    if (it == head.granted.end()) {
      continue;
    }
    auto modes = std::move(it->second);
    head.granted.erase(it);
    head.granted[parent].insert(modes.begin(), modes.end());
  }
}

std::vector<ObjectId> LockManager::LocksHeldBy(const TransactionId& tid) const {
  std::vector<ObjectId> out;
  for (const ObjectId& oid : SortedOids()) {
    if (heads_.at(oid).granted.contains(tid)) {
      out.push_back(oid);
    }
  }
  return out;
}

std::vector<LockManager::WaitsForEdge> LockManager::WaitsFor() const {
  // Edge order feeds the deadlock detector's victim choice: keep it in
  // ObjectId order, independent of hashing.
  std::vector<WaitsForEdge> edges;
  for (const ObjectId& oid : SortedOids()) {
    const LockHead& head = heads_.at(oid);
    for (const auto& w : head.waiters) {
      for (const auto& [holder, modes] : head.granted) {
        if (holder == w->tid) {
          continue;
        }
        bool conflicts = std::any_of(modes.begin(), modes.end(), [&](LockMode m) {
          return !matrix_.Compatible(w->mode, m);
        });
        if (conflicts) {
          edges.push_back({w->tid, holder, oid});
        }
      }
    }
  }
  return edges;
}

void LockManager::CancelWaits(const TransactionId& tid) {
  // NotifyOne order is observable: ObjectId order, as with ReleaseAll.
  for (const ObjectId& oid : SortedOids()) {
    for (auto& w : heads_.at(oid).waiters) {
      if (w->tid == tid && !w->queue.empty()) {
        w->cancelled = true;
        sched_.NotifyOne(w->queue);
      }
    }
  }
}

}  // namespace tabs::lock
