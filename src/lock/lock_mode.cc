#include "src/lock/lock_mode.h"

#include <cassert>

namespace tabs::lock {

CompatibilityMatrix CompatibilityMatrix::SharedExclusive() {
  CompatibilityMatrix m(2);
  m.SetCompatible(kShared, kShared);
  return m;
}

CompatibilityMatrix::CompatibilityMatrix(int mode_count)
    : mode_count_(mode_count), compat_(static_cast<size_t>(mode_count) * mode_count, false) {
  assert(mode_count >= 2 && "modes 0/1 are reserved for shared/exclusive");
}

void CompatibilityMatrix::SetCompatible(LockMode a, LockMode b, bool compatible) {
  assert(a < mode_count_ && b < mode_count_);
  compat_[static_cast<size_t>(a) * mode_count_ + b] = compatible;
  compat_[static_cast<size_t>(b) * mode_count_ + a] = compatible;
}

bool CompatibilityMatrix::Compatible(LockMode requested, LockMode held) const {
  assert(requested < mode_count_ && held < mode_count_);
  return compat_[static_cast<size_t>(requested) * mode_count_ + held];
}

CompatibilityMatrix CompatibilityMatrix::FromRows(const std::vector<std::vector<bool>>& rows) {
  CompatibilityMatrix m(static_cast<int>(rows.size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].size() == rows.size());
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j]) {
        m.SetCompatible(static_cast<LockMode>(i), static_cast<LockMode>(j));
      }
    }
  }
  return m;
}

}  // namespace tabs::lock
