// The per-data-server lock manager.
//
// Each TABS data server implements locking locally so it can tailor the
// mechanism (Section 2.1.2); one LockManager instance therefore belongs to
// one server. Deadlock is broken by time-outs explicitly set by system users,
// as in the paper (an optional waits-for-graph detector lives in
// deadlock_detector.h as the R*-style extension the paper cites).
//
// Lock acquisition follows strict two-phase locking: locks accumulate during
// a transaction and are released only at commit or abort by the server
// library (ReleaseAll). When a subtransaction commits, its locks are
// inherited by its parent (InheritToParent) — with respect to
// synchronization, a subtransaction behaves as a completely separate
// transaction until then (Section 2.1.3).

#ifndef TABS_LOCK_LOCK_MANAGER_H_
#define TABS_LOCK_LOCK_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/lock/lock_mode.h"
#include "src/sim/scheduler.h"

namespace tabs::lock {

class LockManager {
 public:
  // `default_timeout` applies when Lock() is called without an explicit
  // timeout; pass kNoTimeout to wait forever (tests only — production
  // servers always configure a timeout).
  static constexpr SimTime kNoTimeout = -1;
  static constexpr SimTime kUseDefault = -2;

  LockManager(sim::Scheduler& sched, CompatibilityMatrix matrix, SimTime default_timeout);

  // Blocks the calling task until the lock is granted or the timeout
  // expires. Re-requests by a holder are granted immediately when the new
  // mode is compatible with every *other* holder (lock conversion).
  Status Lock(const TransactionId& tid, const ObjectId& oid, LockMode mode,
              SimTime timeout = kUseDefault);

  // ConditionallyLockObject: acquires if immediately available, else returns
  // false without waiting (Table 3-1).
  bool ConditionalLock(const TransactionId& tid, const ObjectId& oid, LockMode mode);

  // IsObjectLocked: true iff any transaction holds a lock on `oid`. The weak
  // queue and IO servers use this to observe transaction state (Section 4).
  bool IsLocked(const ObjectId& oid) const;

  // True iff `tid` holds a lock on `oid` in exactly/at least `mode`.
  bool Holds(const TransactionId& tid, const ObjectId& oid, LockMode mode) const;

  // Releases every lock held by `tid` and wakes eligible waiters.
  void ReleaseAll(const TransactionId& tid);

  // Subtransaction commit: re-owns every lock of `child` to `parent`.
  void InheritToParent(const TransactionId& child, const TransactionId& parent);

  std::vector<ObjectId> LocksHeldBy(const TransactionId& tid) const;
  size_t LockedObjectCount() const { return heads_.size(); }

  // Waits-for edges (waiter -> holder) for the deadlock detector.
  struct WaitsForEdge {
    TransactionId waiter;
    TransactionId holder;
    ObjectId object;
  };
  std::vector<WaitsForEdge> WaitsFor() const;

  // Forcibly wakes any waiter belonging to `tid` with a timeout-style
  // failure; used by the deadlock detector to sacrifice a victim.
  void CancelWaits(const TransactionId& tid);

  // Queue-oriented execution hooks (src/txn/op_queue.h). The grant sink is
  // invoked on every successful grant — including conversions and waiter
  // wake-ups — so the operation queue can record a commit dependency on any
  // early-releaser whose lock covered `oid`. The grant veto is consulted
  // before any grant; while it returns true for an object (a predecessor is
  // mid-abort), requests on that object park as waiters instead of being
  // granted into the abort's undo window. Both default to absent, which
  // keeps every existing code path byte-identical.
  using GrantSink = std::function<void(const TransactionId&, const ObjectId&)>;
  using GrantVeto = std::function<bool(const ObjectId&)>;
  void SetGrantSink(GrantSink sink) { grant_sink_ = std::move(sink); }
  void SetGrantVeto(GrantVeto veto) { grant_veto_ = std::move(veto); }

  // Consulted with the *requesting* transaction on lock entry and again when
  // a sleeping waiter is woken with its lock granted. Returns true while the
  // requester itself is being (cascade-)aborted: the request fails kAborted
  // instead of handing a zombie task a lock it would use to write after its
  // own undo already ran. Queue mode only; absent otherwise.
  using RequesterVeto = std::function<bool(const TransactionId&)>;
  void SetRequesterVeto(RequesterVeto veto) { requester_veto_ = std::move(veto); }

  // Re-runs the FIFO grant sweep on every object. Called after an abort
  // settles (veto lifted) to grant waiters that were parked by the veto.
  void GrantAllEligible();

 private:
  struct Waiter {
    TransactionId tid;
    ObjectId oid;
    LockMode mode;
    bool cancelled = false;
    sim::WaitQueue queue;  // exactly one task waits here
  };
  struct LockHead {
    // Modes held, per transaction (a holder may hold several modes).
    std::map<TransactionId, std::set<LockMode>> granted;
    std::vector<std::shared_ptr<Waiter>> waiters;  // FIFO
  };

  bool CanGrant(const LockHead& head, const TransactionId& tid, LockMode mode) const;
  void GrantEligibleWaiters(LockHead& head);
  // The object table's keys in ObjectId order. Everywhere iteration order is
  // observable (waiter wake order, waits-for edge order, held-lock listings)
  // we walk this sorted view, which is exactly the order the table had when
  // it was a std::map — so scheduling stays bit-identical while the hot
  // per-operation lookups (Lock, ConditionalLock, IsLocked, Holds) drop from
  // O(log n) to O(1).
  std::vector<ObjectId> SortedOids() const;

  sim::Scheduler& sched_;
  CompatibilityMatrix matrix_;
  SimTime default_timeout_;
  std::unordered_map<ObjectId, LockHead> heads_;
  GrantSink grant_sink_;
  GrantVeto grant_veto_;
  RequesterVeto requester_veto_;
};

}  // namespace tabs::lock

#endif  // TABS_LOCK_LOCK_MANAGER_H_
