#include "src/lock/deadlock_detector.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace tabs::lock {

std::vector<TransactionId> DeadlockDetector::FindCycle() const {
  std::map<TransactionId, std::set<TransactionId>> graph;
  for (const LockManager* lm : managers_) {
    for (const auto& e : lm->WaitsFor()) {
      graph[e.waiter].insert(e.holder);
    }
  }

  // Iterative DFS with colour marking; reconstructs the first cycle found.
  std::map<TransactionId, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<TransactionId> stack;
  std::vector<TransactionId> cycle;

  std::function<bool(const TransactionId&)> dfs = [&](const TransactionId& u) -> bool {
    colour[u] = 1;
    stack.push_back(u);
    auto it = graph.find(u);
    if (it != graph.end()) {
      for (const TransactionId& v : it->second) {
        int c = colour.count(v) ? colour[v] : 0;
        if (c == 1) {
          // Found a back edge: the cycle is stack from v to the top.
          auto start = std::find(stack.begin(), stack.end(), v);
          cycle.assign(start, stack.end());
          return true;
        }
        if (c == 0 && dfs(v)) {
          return true;
        }
      }
    }
    colour[u] = 2;
    stack.pop_back();
    return false;
  };

  for (const auto& [tid, _] : graph) {
    if ((colour.count(tid) ? colour[tid] : 0) == 0 && dfs(tid)) {
      return cycle;
    }
  }
  return {};
}

std::optional<TransactionId> DeadlockDetector::BreakOneCycle() {
  std::vector<TransactionId> cycle = FindCycle();
  if (cycle.empty()) {
    return std::nullopt;
  }
  // Victim: the youngest transaction (largest sequence number) — it has done
  // the least work.
  TransactionId victim = *std::max_element(
      cycle.begin(), cycle.end(), [](const TransactionId& a, const TransactionId& b) {
        return a.sequence < b.sequence;
      });
  for (LockManager* lm : managers_) {
    lm->CancelWaits(victim);
  }
  return victim;
}

}  // namespace tabs::lock
