file(REMOVE_RECURSE
  "CMakeFiles/replicated_directory_demo.dir/replicated_directory_demo.cpp.o"
  "CMakeFiles/replicated_directory_demo.dir/replicated_directory_demo.cpp.o.d"
  "replicated_directory_demo"
  "replicated_directory_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_directory_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
