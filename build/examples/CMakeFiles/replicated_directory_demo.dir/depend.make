# Empty dependencies file for replicated_directory_demo.
# This may be replaced when dependencies are built.
