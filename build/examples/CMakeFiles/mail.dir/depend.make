# Empty dependencies file for mail.
# This may be replaced when dependencies are built.
