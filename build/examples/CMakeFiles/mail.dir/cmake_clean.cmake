file(REMOVE_RECURSE
  "CMakeFiles/mail.dir/mail.cpp.o"
  "CMakeFiles/mail.dir/mail.cpp.o.d"
  "mail"
  "mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
