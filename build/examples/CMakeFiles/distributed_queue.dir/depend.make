# Empty dependencies file for distributed_queue.
# This may be replaced when dependencies are built.
