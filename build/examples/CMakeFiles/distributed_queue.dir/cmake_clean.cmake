file(REMOVE_RECURSE
  "CMakeFiles/distributed_queue.dir/distributed_queue.cpp.o"
  "CMakeFiles/distributed_queue.dir/distributed_queue.cpp.o.d"
  "distributed_queue"
  "distributed_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
