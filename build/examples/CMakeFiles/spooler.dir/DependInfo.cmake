
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spooler.cpp" "examples/CMakeFiles/spooler.dir/spooler.cpp.o" "gcc" "examples/CMakeFiles/spooler.dir/spooler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tabs_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_name.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
