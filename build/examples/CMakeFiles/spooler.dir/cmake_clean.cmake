file(REMOVE_RECURSE
  "CMakeFiles/spooler.dir/spooler.cpp.o"
  "CMakeFiles/spooler.dir/spooler.cpp.o.d"
  "spooler"
  "spooler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spooler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
