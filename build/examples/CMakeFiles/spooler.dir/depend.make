# Empty dependencies file for spooler.
# This may be replaced when dependencies are built.
