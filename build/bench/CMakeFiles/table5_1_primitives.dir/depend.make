# Empty dependencies file for table5_1_primitives.
# This may be replaced when dependencies are built.
