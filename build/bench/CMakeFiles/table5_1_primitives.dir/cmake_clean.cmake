file(REMOVE_RECURSE
  "CMakeFiles/table5_1_primitives.dir/table5_1_primitives.cc.o"
  "CMakeFiles/table5_1_primitives.dir/table5_1_primitives.cc.o.d"
  "table5_1_primitives"
  "table5_1_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_1_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
