# Empty dependencies file for tabs_bench_common.
# This may be replaced when dependencies are built.
