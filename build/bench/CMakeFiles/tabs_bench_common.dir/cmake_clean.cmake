file(REMOVE_RECURSE
  "CMakeFiles/tabs_bench_common.dir/workloads.cc.o"
  "CMakeFiles/tabs_bench_common.dir/workloads.cc.o.d"
  "libtabs_bench_common.a"
  "libtabs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
