file(REMOVE_RECURSE
  "libtabs_bench_common.a"
)
