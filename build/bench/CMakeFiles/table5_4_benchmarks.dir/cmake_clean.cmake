file(REMOVE_RECURSE
  "CMakeFiles/table5_4_benchmarks.dir/table5_4_benchmarks.cc.o"
  "CMakeFiles/table5_4_benchmarks.dir/table5_4_benchmarks.cc.o.d"
  "table5_4_benchmarks"
  "table5_4_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_4_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
