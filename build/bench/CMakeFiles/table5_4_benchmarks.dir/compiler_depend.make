# Empty compiler generated dependencies file for table5_4_benchmarks.
# This may be replaced when dependencies are built.
