# Empty dependencies file for table5_2_precommit_counts.
# This may be replaced when dependencies are built.
