# Empty dependencies file for checkpoint_ablation.
# This may be replaced when dependencies are built.
