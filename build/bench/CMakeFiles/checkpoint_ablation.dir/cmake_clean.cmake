file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_ablation.dir/checkpoint_ablation.cc.o"
  "CMakeFiles/checkpoint_ablation.dir/checkpoint_ablation.cc.o.d"
  "checkpoint_ablation"
  "checkpoint_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
