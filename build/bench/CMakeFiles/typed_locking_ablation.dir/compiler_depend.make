# Empty compiler generated dependencies file for typed_locking_ablation.
# This may be replaced when dependencies are built.
