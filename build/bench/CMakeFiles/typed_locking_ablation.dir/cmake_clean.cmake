file(REMOVE_RECURSE
  "CMakeFiles/typed_locking_ablation.dir/typed_locking_ablation.cc.o"
  "CMakeFiles/typed_locking_ablation.dir/typed_locking_ablation.cc.o.d"
  "typed_locking_ablation"
  "typed_locking_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_locking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
