# Empty compiler generated dependencies file for table5_3_commit_counts.
# This may be replaced when dependencies are built.
