# Empty dependencies file for debitcredit.
# This may be replaced when dependencies are built.
