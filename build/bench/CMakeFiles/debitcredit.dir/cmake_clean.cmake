file(REMOVE_RECURSE
  "CMakeFiles/debitcredit.dir/debitcredit.cc.o"
  "CMakeFiles/debitcredit.dir/debitcredit.cc.o.d"
  "debitcredit"
  "debitcredit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debitcredit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
