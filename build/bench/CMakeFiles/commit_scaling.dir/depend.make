# Empty dependencies file for commit_scaling.
# This may be replaced when dependencies are built.
