file(REMOVE_RECURSE
  "CMakeFiles/commit_scaling.dir/commit_scaling.cc.o"
  "CMakeFiles/commit_scaling.dir/commit_scaling.cc.o.d"
  "commit_scaling"
  "commit_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
