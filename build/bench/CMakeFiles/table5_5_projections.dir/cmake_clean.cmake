file(REMOVE_RECURSE
  "CMakeFiles/table5_5_projections.dir/table5_5_projections.cc.o"
  "CMakeFiles/table5_5_projections.dir/table5_5_projections.cc.o.d"
  "table5_5_projections"
  "table5_5_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_5_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
