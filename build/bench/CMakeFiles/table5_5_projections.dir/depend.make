# Empty dependencies file for table5_5_projections.
# This may be replaced when dependencies are built.
