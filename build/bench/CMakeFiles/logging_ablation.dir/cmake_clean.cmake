file(REMOVE_RECURSE
  "CMakeFiles/logging_ablation.dir/logging_ablation.cc.o"
  "CMakeFiles/logging_ablation.dir/logging_ablation.cc.o.d"
  "logging_ablation"
  "logging_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
