# Empty compiler generated dependencies file for logging_ablation.
# This may be replaced when dependencies are built.
