file(REMOVE_RECURSE
  "CMakeFiles/account_server_test.dir/servers/account_server_test.cc.o"
  "CMakeFiles/account_server_test.dir/servers/account_server_test.cc.o.d"
  "account_server_test"
  "account_server_test.pdb"
  "account_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/account_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
