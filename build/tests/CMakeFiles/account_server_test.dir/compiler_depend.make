# Empty compiler generated dependencies file for account_server_test.
# This may be replaced when dependencies are built.
