file(REMOVE_RECURSE
  "CMakeFiles/session_order_test.dir/comm/session_order_test.cc.o"
  "CMakeFiles/session_order_test.dir/comm/session_order_test.cc.o.d"
  "session_order_test"
  "session_order_test.pdb"
  "session_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
