file(REMOVE_RECURSE
  "CMakeFiles/transaction_manager_test.dir/txn/transaction_manager_test.cc.o"
  "CMakeFiles/transaction_manager_test.dir/txn/transaction_manager_test.cc.o.d"
  "transaction_manager_test"
  "transaction_manager_test.pdb"
  "transaction_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
