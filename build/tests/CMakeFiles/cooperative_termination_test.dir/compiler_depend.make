# Empty compiler generated dependencies file for cooperative_termination_test.
# This may be replaced when dependencies are built.
