file(REMOVE_RECURSE
  "CMakeFiles/cooperative_termination_test.dir/integration/cooperative_termination_test.cc.o"
  "CMakeFiles/cooperative_termination_test.dir/integration/cooperative_termination_test.cc.o.d"
  "cooperative_termination_test"
  "cooperative_termination_test.pdb"
  "cooperative_termination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_termination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
