file(REMOVE_RECURSE
  "CMakeFiles/distributed_account_test.dir/integration/distributed_account_test.cc.o"
  "CMakeFiles/distributed_account_test.dir/integration/distributed_account_test.cc.o.d"
  "distributed_account_test"
  "distributed_account_test.pdb"
  "distributed_account_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_account_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
