# Empty compiler generated dependencies file for distributed_account_test.
# This may be replaced when dependencies are built.
