# Empty compiler generated dependencies file for segment_property_test.
# This may be replaced when dependencies are built.
