file(REMOVE_RECURSE
  "CMakeFiles/segment_property_test.dir/kernel/segment_property_test.cc.o"
  "CMakeFiles/segment_property_test.dir/kernel/segment_property_test.cc.o.d"
  "segment_property_test"
  "segment_property_test.pdb"
  "segment_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
