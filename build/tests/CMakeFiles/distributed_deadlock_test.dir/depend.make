# Empty dependencies file for distributed_deadlock_test.
# This may be replaced when dependencies are built.
