file(REMOVE_RECURSE
  "CMakeFiles/distributed_deadlock_test.dir/integration/distributed_deadlock_test.cc.o"
  "CMakeFiles/distributed_deadlock_test.dir/integration/distributed_deadlock_test.cc.o.d"
  "distributed_deadlock_test"
  "distributed_deadlock_test.pdb"
  "distributed_deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
