file(REMOVE_RECURSE
  "CMakeFiles/io_server_test.dir/servers/io_server_test.cc.o"
  "CMakeFiles/io_server_test.dir/servers/io_server_test.cc.o.d"
  "io_server_test"
  "io_server_test.pdb"
  "io_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
