file(REMOVE_RECURSE
  "CMakeFiles/server_library_test.dir/server/server_library_test.cc.o"
  "CMakeFiles/server_library_test.dir/server/server_library_test.cc.o.d"
  "server_library_test"
  "server_library_test.pdb"
  "server_library_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
