file(REMOVE_RECURSE
  "CMakeFiles/replicated_directory_test.dir/servers/replicated_directory_test.cc.o"
  "CMakeFiles/replicated_directory_test.dir/servers/replicated_directory_test.cc.o.d"
  "replicated_directory_test"
  "replicated_directory_test.pdb"
  "replicated_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
