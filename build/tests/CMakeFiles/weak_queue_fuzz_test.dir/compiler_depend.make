# Empty compiler generated dependencies file for weak_queue_fuzz_test.
# This may be replaced when dependencies are built.
