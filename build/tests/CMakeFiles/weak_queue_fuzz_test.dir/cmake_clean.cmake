file(REMOVE_RECURSE
  "CMakeFiles/weak_queue_fuzz_test.dir/servers/weak_queue_fuzz_test.cc.o"
  "CMakeFiles/weak_queue_fuzz_test.dir/servers/weak_queue_fuzz_test.cc.o.d"
  "weak_queue_fuzz_test"
  "weak_queue_fuzz_test.pdb"
  "weak_queue_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_queue_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
