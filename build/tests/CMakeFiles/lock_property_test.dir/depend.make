# Empty dependencies file for lock_property_test.
# This may be replaced when dependencies are built.
