file(REMOVE_RECURSE
  "CMakeFiles/lock_property_test.dir/lock/lock_property_test.cc.o"
  "CMakeFiles/lock_property_test.dir/lock/lock_property_test.cc.o.d"
  "lock_property_test"
  "lock_property_test.pdb"
  "lock_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
