# Empty dependencies file for replication_fuzz_test.
# This may be replaced when dependencies are built.
