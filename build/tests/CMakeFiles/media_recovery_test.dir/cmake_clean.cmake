file(REMOVE_RECURSE
  "CMakeFiles/media_recovery_test.dir/integration/media_recovery_test.cc.o"
  "CMakeFiles/media_recovery_test.dir/integration/media_recovery_test.cc.o.d"
  "media_recovery_test"
  "media_recovery_test.pdb"
  "media_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
