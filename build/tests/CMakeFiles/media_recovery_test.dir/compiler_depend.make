# Empty compiler generated dependencies file for media_recovery_test.
# This may be replaced when dependencies are built.
