# Empty dependencies file for weak_queue_test.
# This may be replaced when dependencies are built.
