# Empty dependencies file for server_recovery_test.
# This may be replaced when dependencies are built.
