file(REMOVE_RECURSE
  "libtabs_common.a"
)
