# Empty compiler generated dependencies file for tabs_common.
# This may be replaced when dependencies are built.
