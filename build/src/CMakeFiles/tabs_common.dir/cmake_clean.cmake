file(REMOVE_RECURSE
  "CMakeFiles/tabs_common.dir/common/bytes.cc.o"
  "CMakeFiles/tabs_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/tabs_common.dir/common/result.cc.o"
  "CMakeFiles/tabs_common.dir/common/result.cc.o.d"
  "CMakeFiles/tabs_common.dir/common/types.cc.o"
  "CMakeFiles/tabs_common.dir/common/types.cc.o.d"
  "libtabs_common.a"
  "libtabs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
