file(REMOVE_RECURSE
  "libtabs_name.a"
)
