file(REMOVE_RECURSE
  "CMakeFiles/tabs_name.dir/name/name_server.cc.o"
  "CMakeFiles/tabs_name.dir/name/name_server.cc.o.d"
  "libtabs_name.a"
  "libtabs_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
