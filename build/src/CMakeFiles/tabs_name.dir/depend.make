# Empty dependencies file for tabs_name.
# This may be replaced when dependencies are built.
