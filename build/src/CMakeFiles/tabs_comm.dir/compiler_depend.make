# Empty compiler generated dependencies file for tabs_comm.
# This may be replaced when dependencies are built.
