file(REMOVE_RECURSE
  "libtabs_comm.a"
)
