file(REMOVE_RECURSE
  "CMakeFiles/tabs_comm.dir/comm/comm_manager.cc.o"
  "CMakeFiles/tabs_comm.dir/comm/comm_manager.cc.o.d"
  "CMakeFiles/tabs_comm.dir/comm/network.cc.o"
  "CMakeFiles/tabs_comm.dir/comm/network.cc.o.d"
  "libtabs_comm.a"
  "libtabs_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
