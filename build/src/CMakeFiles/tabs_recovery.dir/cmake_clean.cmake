file(REMOVE_RECURSE
  "CMakeFiles/tabs_recovery.dir/recovery/checkpoint.cc.o"
  "CMakeFiles/tabs_recovery.dir/recovery/checkpoint.cc.o.d"
  "CMakeFiles/tabs_recovery.dir/recovery/operation_recovery.cc.o"
  "CMakeFiles/tabs_recovery.dir/recovery/operation_recovery.cc.o.d"
  "CMakeFiles/tabs_recovery.dir/recovery/recovery_manager.cc.o"
  "CMakeFiles/tabs_recovery.dir/recovery/recovery_manager.cc.o.d"
  "CMakeFiles/tabs_recovery.dir/recovery/value_recovery.cc.o"
  "CMakeFiles/tabs_recovery.dir/recovery/value_recovery.cc.o.d"
  "libtabs_recovery.a"
  "libtabs_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
