# Empty compiler generated dependencies file for tabs_recovery.
# This may be replaced when dependencies are built.
