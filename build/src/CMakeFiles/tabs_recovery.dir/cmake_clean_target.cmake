file(REMOVE_RECURSE
  "libtabs_recovery.a"
)
