file(REMOVE_RECURSE
  "libtabs_txn.a"
)
