# Empty compiler generated dependencies file for tabs_txn.
# This may be replaced when dependencies are built.
