file(REMOVE_RECURSE
  "CMakeFiles/tabs_txn.dir/txn/transaction_manager.cc.o"
  "CMakeFiles/tabs_txn.dir/txn/transaction_manager.cc.o.d"
  "CMakeFiles/tabs_txn.dir/txn/two_phase_commit.cc.o"
  "CMakeFiles/tabs_txn.dir/txn/two_phase_commit.cc.o.d"
  "libtabs_txn.a"
  "libtabs_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
