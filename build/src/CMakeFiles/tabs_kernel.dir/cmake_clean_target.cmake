file(REMOVE_RECURSE
  "libtabs_kernel.a"
)
