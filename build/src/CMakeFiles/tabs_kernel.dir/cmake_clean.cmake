file(REMOVE_RECURSE
  "CMakeFiles/tabs_kernel.dir/kernel/node.cc.o"
  "CMakeFiles/tabs_kernel.dir/kernel/node.cc.o.d"
  "CMakeFiles/tabs_kernel.dir/kernel/recoverable_segment.cc.o"
  "CMakeFiles/tabs_kernel.dir/kernel/recoverable_segment.cc.o.d"
  "libtabs_kernel.a"
  "libtabs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
