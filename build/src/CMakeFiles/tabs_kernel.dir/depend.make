# Empty dependencies file for tabs_kernel.
# This may be replaced when dependencies are built.
