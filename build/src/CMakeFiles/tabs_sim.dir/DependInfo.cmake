
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/tabs_sim.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/tabs_sim.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/tabs_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/tabs_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/tabs_sim.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/tabs_sim.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/sim_disk.cc" "src/CMakeFiles/tabs_sim.dir/sim/sim_disk.cc.o" "gcc" "src/CMakeFiles/tabs_sim.dir/sim/sim_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tabs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
