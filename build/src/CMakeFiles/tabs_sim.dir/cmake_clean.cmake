file(REMOVE_RECURSE
  "CMakeFiles/tabs_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/tabs_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/tabs_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/tabs_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/tabs_sim.dir/sim/scheduler.cc.o"
  "CMakeFiles/tabs_sim.dir/sim/scheduler.cc.o.d"
  "CMakeFiles/tabs_sim.dir/sim/sim_disk.cc.o"
  "CMakeFiles/tabs_sim.dir/sim/sim_disk.cc.o.d"
  "libtabs_sim.a"
  "libtabs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
