file(REMOVE_RECURSE
  "libtabs_sim.a"
)
