# Empty compiler generated dependencies file for tabs_sim.
# This may be replaced when dependencies are built.
