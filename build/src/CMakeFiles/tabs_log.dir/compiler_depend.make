# Empty compiler generated dependencies file for tabs_log.
# This may be replaced when dependencies are built.
