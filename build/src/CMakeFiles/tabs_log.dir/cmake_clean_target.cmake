file(REMOVE_RECURSE
  "libtabs_log.a"
)
