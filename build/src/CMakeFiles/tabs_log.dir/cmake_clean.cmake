file(REMOVE_RECURSE
  "CMakeFiles/tabs_log.dir/log/log_manager.cc.o"
  "CMakeFiles/tabs_log.dir/log/log_manager.cc.o.d"
  "CMakeFiles/tabs_log.dir/log/log_record.cc.o"
  "CMakeFiles/tabs_log.dir/log/log_record.cc.o.d"
  "libtabs_log.a"
  "libtabs_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
