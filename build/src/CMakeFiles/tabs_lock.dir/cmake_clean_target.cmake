file(REMOVE_RECURSE
  "libtabs_lock.a"
)
