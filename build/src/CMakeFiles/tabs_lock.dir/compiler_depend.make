# Empty compiler generated dependencies file for tabs_lock.
# This may be replaced when dependencies are built.
