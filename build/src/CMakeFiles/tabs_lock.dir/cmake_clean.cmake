file(REMOVE_RECURSE
  "CMakeFiles/tabs_lock.dir/lock/deadlock_detector.cc.o"
  "CMakeFiles/tabs_lock.dir/lock/deadlock_detector.cc.o.d"
  "CMakeFiles/tabs_lock.dir/lock/lock_manager.cc.o"
  "CMakeFiles/tabs_lock.dir/lock/lock_manager.cc.o.d"
  "CMakeFiles/tabs_lock.dir/lock/lock_mode.cc.o"
  "CMakeFiles/tabs_lock.dir/lock/lock_mode.cc.o.d"
  "libtabs_lock.a"
  "libtabs_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
