
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/servers/account_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/account_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/account_server.cc.o.d"
  "/root/repo/src/servers/array_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/array_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/array_server.cc.o.d"
  "/root/repo/src/servers/btree_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/btree_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/btree_server.cc.o.d"
  "/root/repo/src/servers/file_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/file_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/file_server.cc.o.d"
  "/root/repo/src/servers/io_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/io_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/io_server.cc.o.d"
  "/root/repo/src/servers/replicated_directory.cc" "src/CMakeFiles/tabs_servers.dir/servers/replicated_directory.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/replicated_directory.cc.o.d"
  "/root/repo/src/servers/weak_queue_server.cc" "src/CMakeFiles/tabs_servers.dir/servers/weak_queue_server.cc.o" "gcc" "src/CMakeFiles/tabs_servers.dir/servers/weak_queue_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tabs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_name.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tabs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
