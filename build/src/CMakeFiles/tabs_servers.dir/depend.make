# Empty dependencies file for tabs_servers.
# This may be replaced when dependencies are built.
