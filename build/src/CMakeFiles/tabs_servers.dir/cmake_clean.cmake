file(REMOVE_RECURSE
  "CMakeFiles/tabs_servers.dir/servers/account_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/account_server.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/array_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/array_server.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/btree_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/btree_server.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/file_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/file_server.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/io_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/io_server.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/replicated_directory.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/replicated_directory.cc.o.d"
  "CMakeFiles/tabs_servers.dir/servers/weak_queue_server.cc.o"
  "CMakeFiles/tabs_servers.dir/servers/weak_queue_server.cc.o.d"
  "libtabs_servers.a"
  "libtabs_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
