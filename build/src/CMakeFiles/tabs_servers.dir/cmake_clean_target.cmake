file(REMOVE_RECURSE
  "libtabs_servers.a"
)
