# Empty dependencies file for tabs_facade.
# This may be replaced when dependencies are built.
