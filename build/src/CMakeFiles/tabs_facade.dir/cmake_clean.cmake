file(REMOVE_RECURSE
  "CMakeFiles/tabs_facade.dir/tabs/application.cc.o"
  "CMakeFiles/tabs_facade.dir/tabs/application.cc.o.d"
  "CMakeFiles/tabs_facade.dir/tabs/world.cc.o"
  "CMakeFiles/tabs_facade.dir/tabs/world.cc.o.d"
  "libtabs_facade.a"
  "libtabs_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
