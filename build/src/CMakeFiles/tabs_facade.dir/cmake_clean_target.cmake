file(REMOVE_RECURSE
  "libtabs_facade.a"
)
