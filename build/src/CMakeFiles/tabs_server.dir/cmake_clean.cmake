file(REMOVE_RECURSE
  "CMakeFiles/tabs_server.dir/server/data_server.cc.o"
  "CMakeFiles/tabs_server.dir/server/data_server.cc.o.d"
  "libtabs_server.a"
  "libtabs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
