# Empty dependencies file for tabs_server.
# This may be replaced when dependencies are built.
