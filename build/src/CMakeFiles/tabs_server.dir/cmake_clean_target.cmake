file(REMOVE_RECURSE
  "libtabs_server.a"
)
