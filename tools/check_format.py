#!/usr/bin/env python3
"""Machine-checkable formatting gate (see .clang-format for the full style).

Checks every tracked C++ source, Python tool, shell script, and workflow file
for the invariants that never need human judgment:

  * no tab characters (C++/Python; Makefiles and YAML are exempt by type)
  * no trailing whitespace
  * LF line endings (no CR)
  * lines at most 100 columns (the .clang-format ColumnLimit)
  * file ends with exactly one newline

Runs identically everywhere (no clang-format binary dependency), so the CI
result is reproducible on any dev machine: tools/check_format.py
"""

import subprocess
import sys

MAX_COLUMNS = 100
SUFFIXES = (".cc", ".h", ".py", ".sh", ".yml", ".yaml", ".cmake")
NAMES = ("CMakeLists.txt",)


def tracked_files():
    out = subprocess.run(["git", "ls-files"], check=True, capture_output=True, text=True)
    for line in out.stdout.splitlines():
        if line.endswith(SUFFIXES) or line.rsplit("/", 1)[-1] in NAMES:
            yield line


def check(path):
    problems = []
    with open(path, "rb") as f:
        data = f.read()
    if b"\r" in data:
        problems.append("CR line ending")
    if not data.endswith(b"\n"):
        problems.append("missing final newline")
    elif data.endswith(b"\n\n"):
        problems.append("trailing blank line at EOF")
    tabs_ok = path.endswith((".yml", ".yaml"))  # YAML forbids tabs anyway; be lenient
    for i, line in enumerate(data.split(b"\n")[:-1], start=1):
        text = line.decode("utf-8", errors="replace")
        if "\t" in text and not tabs_ok:
            problems.append(f"line {i}: tab character")
        if text != text.rstrip():
            problems.append(f"line {i}: trailing whitespace")
        if len(text) > MAX_COLUMNS:
            problems.append(f"line {i}: {len(text)} columns (max {MAX_COLUMNS})")
    return problems


def main():
    bad = 0
    for path in tracked_files():
        for problem in check(path):
            print(f"{path}: {problem}")
            bad += 1
    if bad:
        print(f"\n{bad} formatting problem(s); style reference: .clang-format")
        return 1
    print("formatting clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
