#!/usr/bin/env python3
"""Compare a bench JSON artifact against its committed baseline.

The simulator runs on virtual time, so every number a bench emits is exactly
reproducible: the gate is an *exact* comparison, not a tolerance band. Any
drift — a primitive count up by one, a component picking up microseconds, a
histogram bucket moving — fails CI and must be either fixed or explicitly
re-baselined (tools/refresh_baselines.sh, commit the diff with the PR that
caused it).

Usage:
    tools/check_bench.py BASELINE CURRENT [--allow GLOB]... [--tolerance GLOB=REL]...
                         [--summary FILE]
    tools/check_bench.py --self-test

  BASELINE   committed baseline JSON (bench/baselines/smoke/...)
  CURRENT    freshly produced BENCH_*.json
  --allow    fnmatch pattern of value paths to exclude from comparison
             (repeatable), e.g. --allow 'rows/*/histograms/span.*'
  --tolerance  GLOB=REL: paths matching GLOB compare numerically with
             relative tolerance REL instead of exactly (repeatable), e.g.
             --tolerance 'rows/*/wall_ms=9.0'. For wall-clock metrics the
             simulator cannot pin down: generous enough to absorb machine
             variance, tight enough to catch order-of-magnitude regressions.
  --summary  append a compact markdown before/after table to FILE (use
             $GITHUB_STEP_SUMMARY in CI; silently skipped if empty).
  --self-test  run the built-in unit checks (CI runs this before trusting
             the gate) and exit.

Schema check: a value path present on one side and absent on the other is a
*structural* failure — a renamed row, a dropped field, a bench that silently
stopped emitting a metric. It fails even if an --allow or --tolerance glob
matches, so a masking pattern can never hide a disappearing metric.

The top-level "meta" object (generation provenance written by the refresh
script) is always ignored. Exit status: 0 clean, 1 on any difference.
"""

import argparse
import fnmatch
import json
import sys


def flatten(value, prefix=""):
    """Yield (path, scalar) pairs; paths use '/' so dotted names stay intact."""
    if isinstance(value, dict):
        for k in value:
            yield from flatten(value[k], f"{prefix}{k}/")
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from flatten(v, f"{prefix}{i}/")
    else:
        yield prefix[:-1] if prefix.endswith("/") else prefix, value


def name_rows(doc):
    """Re-key 'rows' arrays by each row's 'name' so diffs read naturally and
    row insertion doesn't misalign every later index."""
    if isinstance(doc, dict):
        out = {}
        for k, v in doc.items():
            if k == "rows" and isinstance(v, list) and all(
                isinstance(r, dict) and "name" in r for r in v
            ):
                out[k] = {r["name"]: name_rows(r) for r in v}
            else:
                out[k] = name_rows(v)
        return out
    if isinstance(doc, list):
        return [name_rows(v) for v in doc]
    return doc


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return flatten_doc(doc)


def flatten_doc(doc):
    if isinstance(doc, dict):
        doc = dict(doc)
        doc.pop("meta", None)
    return dict(flatten(name_rows(doc)))


def compare(base, cur, allow=(), tolerances=()):
    """Compare two flattened docs.

    Returns (schema_rows, value_rows): schema_rows are paths missing on one
    side (never maskable); value_rows are (path, baseline, current)
    mismatches after --allow/--tolerance filtering.
    """

    def allowed(path):
        return any(fnmatch.fnmatch(path, pat) for pat in allow)

    def tolerance_for(path):
        matched = [rel for glob, rel in tolerances if fnmatch.fnmatch(path, glob)]
        return max(matched) if matched else None

    def within(b, c, rel):
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            return b == c
        return abs(c - b) <= rel * abs(b)

    schema_rows = []
    value_rows = []
    for path in sorted(base.keys() | cur.keys()):
        in_base = path in base
        in_cur = path in cur
        if not (in_base and in_cur):
            # Structural difference: unmaskable by design. A baseline key the
            # bench stopped emitting (or a new key with no baseline) must
            # surface even when a broad --allow/--tolerance glob matches it.
            schema_rows.append(
                (path, base.get(path, "<missing>"), cur.get(path, "<missing>"))
            )
            continue
        if allowed(path):
            continue
        b, c = base[path], cur[path]
        rel = tolerance_for(path)
        ok = within(b, c, rel) if rel is not None else b == c
        if not ok:
            value_rows.append((path, b, c))
    return schema_rows, value_rows


def write_summary(path, baseline, current, compared, schema_rows, value_rows):
    """Append a compact markdown before/after table for $GITHUB_STEP_SUMMARY."""
    rows = schema_rows + value_rows
    with open(path, "a") as f:
        if not rows:
            f.write(f"- ✅ `{current}` matches `{baseline}` "
                    f"({compared} values)\n")
            return
        f.write(f"### ❌ `{current}` vs `{baseline}` "
                f"({len(schema_rows)} schema / {len(value_rows)} value "
                f"difference(s))\n\n")
        f.write("| path | baseline | current |\n|---|---|---|\n")
        for p, b, c in rows[:50]:
            f.write(f"| `{p}` | {b} | {c} |\n")
        if len(rows) > 50:
            f.write(f"| … {len(rows) - 50} more | | |\n")
        f.write("\n")


def self_test():
    """Unit checks for the gate itself: the comparison and schema logic."""
    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)

    base = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b", "x": 2, "wall_ms": 20.0}],
    })
    same = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b", "x": 2, "wall_ms": 20.0}],
    })
    s, v = compare(base, same)
    check("identical docs compare clean", not s and not v)

    # Row re-keying by name: reordering rows is not a difference.
    reordered = flatten_doc({
        "bench": "t",
        "rows": [{"name": "b", "x": 2, "wall_ms": 20.0},
                 {"name": "a", "x": 1, "wall_ms": 10.0}],
    })
    s, v = compare(base, reordered)
    check("row order is irrelevant", not s and not v)

    # Exact comparison catches a drifted value.
    drift = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b", "x": 3, "wall_ms": 20.0}],
    })
    s, v = compare(base, drift)
    check("value drift is caught", not s and v == [("rows/b/x", 2, 3)])

    # Tolerance admits noise within the band, rejects outside it.
    noisy = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 15.0},
                 {"name": "b", "x": 2, "wall_ms": 200.0}],
    })
    tol = [("rows/*/wall_ms", 0.9)]
    s, v = compare(base, noisy, tolerances=tol)
    check("tolerance admits in-band noise, rejects 10x",
          not s and v == [("rows/b/wall_ms", 20.0, 200.0)])

    # --allow masks a value difference...
    s, v = compare(base, drift, allow=["rows/*/x"])
    check("allow masks a value difference", not s and not v)

    # ...but can never mask a schema difference (missing key), either way.
    missing_in_cur = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b", "wall_ms": 20.0}],
    })
    s, v = compare(base, missing_in_cur, allow=["*"], tolerances=[("*", 99.0)])
    check("missing current key is unmaskable",
          s == [("rows/b/x", 2, "<missing>")] and not v)
    s, v = compare(missing_in_cur, base, allow=["*"], tolerances=[("*", 99.0)])
    check("missing baseline key is unmaskable",
          s == [("rows/b/x", "<missing>", 2)] and not v)

    # A renamed row is two schema failures (old name gone, new name fresh).
    renamed = flatten_doc({
        "bench": "t",
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b2", "x": 2, "wall_ms": 20.0}],
    })
    s, v = compare(base, renamed, allow=["*"])
    check("renamed row surfaces as schema difference",
          any(p.startswith("rows/b/") for p, _, _ in s)
          and any(p.startswith("rows/b2/") for p, _, _ in s))

    # "meta" is provenance, not data.
    with_meta = flatten_doc({
        "bench": "t", "meta": {"commit": "deadbeef"},
        "rows": [{"name": "a", "x": 1, "wall_ms": 10.0},
                 {"name": "b", "x": 2, "wall_ms": 20.0}],
    })
    s, v = compare(base, with_meta)
    check("top-level meta is ignored", not s and not v)

    if failures:
        for name in failures:
            print(f"SELF-TEST FAIL: {name}")
        return 1
    print("self-test OK (9 checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--allow", action="append", default=[],
                    help="fnmatch pattern of paths to ignore (repeatable)")
    ap.add_argument("--tolerance", action="append", default=[], metavar="GLOB=REL",
                    help="paths matching GLOB compare with relative tolerance "
                         "REL instead of exactly (repeatable)")
    ap.add_argument("--summary", default="",
                    help="append a markdown before/after table to this file")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate's own unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        ap.error("BASELINE and CURRENT are required (or use --self-test)")

    base = load(args.baseline)
    cur = load(args.current)

    tolerances = []
    for spec in args.tolerance:
        glob, _, rel = spec.rpartition("=")
        if not glob:
            ap.error(f"--tolerance needs GLOB=REL, got {spec!r}")
        tolerances.append((glob, float(rel)))

    schema_rows, value_rows = compare(base, cur, args.allow, tolerances)

    if args.summary:
        write_summary(args.summary, args.baseline, args.current, len(cur),
                      schema_rows, value_rows)

    if not schema_rows and not value_rows:
        print(f"OK: {args.current} matches {args.baseline} "
              f"({len(cur)} values compared)")
        return 0

    rows = schema_rows + value_rows
    width = max(len(p) for p, _, _ in rows)
    width = min(width, 72)
    print(f"BENCH REGRESSION: {args.current} differs from {args.baseline} "
          f"in {len(rows)} value(s)"
          + (f" ({len(schema_rows)} structural — a key present on only one "
             f"side; --allow/--tolerance never mask these)"
             if schema_rows else "")
          + ":\n")
    print(f"  {'path':<{width}}  {'baseline':>14}  {'current':>14}")
    for path, b, c in rows:
        print(f"  {path:<{width}}  {b!s:>14}  {c!s:>14}")
    print(
        "\nIf this change is intentional, regenerate the baselines with\n"
        "  tools/refresh_baselines.sh\n"
        "and commit the updated bench/baselines/ alongside the change that\n"
        "caused it (the diff documents the perf impact for review)."
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
