#!/usr/bin/env python3
"""Compare a bench JSON artifact against its committed baseline.

The simulator runs on virtual time, so every number a bench emits is exactly
reproducible: the gate is an *exact* comparison, not a tolerance band. Any
drift — a primitive count up by one, a component picking up microseconds, a
histogram bucket moving — fails CI and must be either fixed or explicitly
re-baselined (tools/refresh_baselines.sh, commit the diff with the PR that
caused it).

Usage:
    tools/check_bench.py BASELINE CURRENT [--allow GLOB]... [--tolerance GLOB=REL]...

  BASELINE   committed baseline JSON (bench/baselines/smoke/...)
  CURRENT    freshly produced BENCH_*.json
  --allow    fnmatch pattern of value paths to exclude from comparison
             (repeatable), e.g. --allow 'rows/*/histograms/span.*'
  --tolerance  GLOB=REL: paths matching GLOB compare numerically with
             relative tolerance REL instead of exactly (repeatable), e.g.
             --tolerance 'rows/*/wall_ms=9.0'. For wall-clock metrics the
             simulator cannot pin down: generous enough to absorb machine
             variance, tight enough to catch order-of-magnitude regressions.

The top-level "meta" object (generation provenance written by the refresh
script) is always ignored. Exit status: 0 clean, 1 on any difference.
"""

import argparse
import fnmatch
import json
import sys


def flatten(value, prefix=""):
    """Yield (path, scalar) pairs; paths use '/' so dotted names stay intact."""
    if isinstance(value, dict):
        for k in value:
            yield from flatten(value[k], f"{prefix}{k}/")
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from flatten(v, f"{prefix}{i}/")
    else:
        yield prefix[:-1] if prefix.endswith("/") else prefix, value


def name_rows(doc):
    """Re-key 'rows' arrays by each row's 'name' so diffs read naturally and
    row insertion doesn't misalign every later index."""
    if isinstance(doc, dict):
        out = {}
        for k, v in doc.items():
            if k == "rows" and isinstance(v, list) and all(
                isinstance(r, dict) and "name" in r for r in v
            ):
                out[k] = {r["name"]: name_rows(r) for r in v}
            else:
                out[k] = name_rows(v)
        return out
    if isinstance(doc, list):
        return [name_rows(v) for v in doc]
    return doc


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc.pop("meta", None)
    return dict(flatten(name_rows(doc)))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--allow", action="append", default=[],
                    help="fnmatch pattern of paths to ignore (repeatable)")
    ap.add_argument("--tolerance", action="append", default=[], metavar="GLOB=REL",
                    help="paths matching GLOB compare with relative tolerance "
                         "REL instead of exactly (repeatable)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    def allowed(path):
        return any(fnmatch.fnmatch(path, pat) for pat in args.allow)

    tolerances = []
    for spec in args.tolerance:
        glob, _, rel = spec.rpartition("=")
        if not glob:
            ap.error(f"--tolerance needs GLOB=REL, got {spec!r}")
        tolerances.append((glob, float(rel)))

    def tolerance_for(path):
        """Largest matching relative tolerance, or None for exact paths."""
        matched = [rel for glob, rel in tolerances if fnmatch.fnmatch(path, glob)]
        return max(matched) if matched else None

    def within(b, c, rel):
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            return b == c
        return abs(c - b) <= rel * abs(b)

    rows = []
    for path in sorted(base.keys() | cur.keys()):
        if allowed(path):
            continue
        b = base.get(path, "<missing>")
        c = cur.get(path, "<missing>")
        rel = tolerance_for(path)
        ok = within(b, c, rel) if rel is not None else b == c
        if not ok:
            rows.append((path, b, c))

    if not rows:
        print(f"OK: {args.current} matches {args.baseline} "
              f"({len(cur)} values compared)")
        return 0

    width = max(len(p) for p, _, _ in rows)
    width = min(width, 72)
    print(f"BENCH REGRESSION: {args.current} differs from {args.baseline} "
          f"in {len(rows)} value(s):\n")
    print(f"  {'path':<{width}}  {'baseline':>14}  {'current':>14}")
    for path, b, c in rows:
        print(f"  {path:<{width}}  {b!s:>14}  {c!s:>14}")
    print(
        "\nIf this change is intentional, regenerate the baselines with\n"
        "  tools/refresh_baselines.sh\n"
        "and commit the updated bench/baselines/ alongside the change that\n"
        "caused it (the diff documents the perf impact for review)."
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
