#!/usr/bin/env bash
# Regenerate the committed bench baselines in bench/baselines/.
#
# Run this when a change intentionally shifts bench numbers (new primitive on
# a path, cost-model change, workload change), then commit the resulting diff
# with that change — the baseline diff is the reviewable record of the perf
# impact. The benches are fully deterministic (virtual time), so a refresh on
# an unchanged tree is a no-op.
#
#   tools/refresh_baselines.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build-baselines (created if needed).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-baselines}"
benches=(throughput checkpoint_ablation table5_4_benchmarks pipeline_ablation commit_ablation
         scaleout simspeed queue_ablation)
artifacts=(BENCH_throughput.json BENCH_checkpoint.json BENCH_table5_4.json BENCH_pipeline.json
           BENCH_commit_ablation.json BENCH_scaleout.json BENCH_simspeed.json
           BENCH_queue_ablation.json)

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target "${benches[@]}"

commit="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

run_mode() { # $1 = smoke|full
  local mode="$1" outdir tmp
  outdir="$repo/bench/baselines/$mode"
  tmp="$(mktemp -d)"
  mkdir -p "$outdir"
  (
    cd "$tmp"
    for b in "${benches[@]}"; do
      if [ "$mode" = smoke ]; then
        TABS_BENCH_SMOKE=1 "$build/bench/$b" >/dev/null
      else
        "$build/bench/$b" >/dev/null
      fi
    done
  )
  for a in "${artifacts[@]}"; do
    python3 - "$tmp/$a" "$outdir/$a" "$mode" "$commit" "$date" <<'EOF'
import json, sys
src, dst, mode, commit, date = sys.argv[1:6]
doc = json.load(open(src))
doc["meta"] = {"mode": mode, "commit": commit, "generated": date,
               "refresh": "tools/refresh_baselines.sh"}
with open(dst, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=False)
    f.write("\n")
EOF
    echo "wrote bench/baselines/$mode/$a"
  done
  rm -rf "$tmp"
}

run_mode smoke
run_mode full
