// Ablation: type-specific locking vs standard shared/exclusive locking
// (Sections 2.1.2 and 4.6).
//
// The same hot-spot workload — N concurrent transactions updating one
// account, each holding its lock across some think time — run twice:
//   * on the AccountServer, whose increment/decrement modes commute;
//   * on the integer array server, whose exclusive locks serialize.
// The makespan (virtual time until every transaction finishes) and the
// abort/timeout count show why "many interesting data servers are difficult,
// if not impossible, to build using traditional read/write locking" and what
// typed modes buy.

#include <cstdio>

#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

constexpr SimTime kThinkTime = 200'000;  // 200 ms inside the transaction

struct Outcome {
  SimTime makespan_us = 0;
  int committed = 0;
  int failed = 0;
};

Outcome RunTyped(int clients) {
  World world(1);
  auto* acct = world.AddServerOf<servers::AccountServer>(1, "acct", 4u);
  Outcome out;
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return acct->Deposit(tx, 0, 1'000'000); });
  });
  SimTime end_max = 0;
  for (int i = 0; i < clients; ++i) {
    world.SpawnApp(1, "client", [&, i](Application& app) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        Status d = acct->Deposit(tx, 0, 1);
        if (d != Status::kOk) {
          return d;
        }
        world.scheduler().Charge(kThinkTime);
        world.scheduler().Yield();  // let concurrent clients run
        return acct->Withdraw(tx, 0, 1);
      });
      if (s == Status::kOk) {
        ++out.committed;
      } else {
        ++out.failed;
      }
      end_max = std::max(end_max, world.scheduler().Now());
    }, i * 1'000);
  }
  world.Drain();
  out.makespan_us = end_max;
  return out;
}

Outcome RunReadWrite(int clients) {
  World world(1);
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "arr", 4u);
  Outcome out;
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return arr->SetCell(tx, 0, 1'000'000); });
  });
  SimTime end_max = 0;
  for (int i = 0; i < clients; ++i) {
    world.SpawnApp(1, "client", [&, i](Application& app) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        auto v = arr->GetCell(tx, 0);
        if (!v.ok()) {
          return v.status();
        }
        Status w = arr->SetCell(tx, 0, v.value() + 1);
        if (w != Status::kOk) {
          return w;
        }
        world.scheduler().Charge(kThinkTime);
        world.scheduler().Yield();  // let concurrent clients run
        return arr->SetCell(tx, 0, v.value());
      });
      if (s == Status::kOk) {
        ++out.committed;
      } else {
        ++out.failed;
      }
      end_max = std::max(end_max, world.scheduler().Now());
    }, i * 1'000);
  }
  world.Drain();
  out.makespan_us = end_max;
  return out;
}

void Run() {
  std::printf("Typed-locking ablation: hot-spot account, %d ms think time per txn\n",
              static_cast<int>(kThinkTime / 1000));
  std::printf("%-9s | %-28s | %-28s\n", "", "typed (increment/decrement)",
              "standard (shared/exclusive)");
  std::printf("%-9s | %12s %7s %7s | %12s %7s %7s\n", "clients", "makespan ms",
              "commit", "fail", "makespan ms", "commit", "fail");
  std::printf("%.75s\n",
              "---------------------------------------------------------------------------");
  for (int clients : {2, 4, 8, 16}) {
    Outcome typed = RunTyped(clients);
    Outcome rw = RunReadWrite(clients);
    std::printf("%-9d | %12.0f %7d %7d | %12.0f %7d %7d\n", clients,
                typed.makespan_us / 1000.0, typed.committed, typed.failed,
                rw.makespan_us / 1000.0, rw.committed, rw.failed);
  }
  std::printf(
      "\nCommuting increment/decrement modes let every client hold its lock through\n"
      "the think time concurrently: the makespan stays nearly flat. Exclusive locks\n"
      "serialize the think times (or time out under contention), so the makespan\n"
      "grows with the client count — the concurrency argument for type-specific\n"
      "locking in Sections 2.1.2/4.6.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
