// DebitCredit on TABS — the macroscopic workload of "A Measure of
// Transaction Processing Power" (the paper's [Anonymous et al. 85]).
// Section 5.1 explains why TABS' own evaluation was microscopic ("the work
// loads encountered by a general purpose facility supporting abstract types
// are not easily characterizable"); this binary supplies the macroscopic
// complement on top of the same facility.
//
// The classic transaction: update an account balance, the teller's balance,
// the branch's balance, and append a history record. Following the standard,
// a fraction of transactions touch an account belonging to a *remote*
// branch (15%), which on TABS turns them into distributed transactions with
// two-phase commit.

#include <cstdio>
#include <random>

#include "src/servers/array_server.h"
#include "src/servers/weak_queue_server.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

constexpr std::uint32_t kBranches = 8;
constexpr std::uint32_t kTellersPerBranch = 10;
constexpr std::uint32_t kAccountsPerBranch = 100;
constexpr SimTime kWindow = 30'000'000;  // 30 virtual seconds

struct Outcome {
  int committed = 0;
  int aborted = 0;
  int remote = 0;
  double tps() const { return committed / (kWindow / 1'000'000.0); }
};

Outcome Run(int terminals, int remote_percent) {
  int nodes = remote_percent > 0 ? 2 : 1;
  World world(nodes);
  // Every array is a (single-shard) logical service: terminals open them by
  // name through the handle API instead of holding server pointers. The
  // remote-branch accounts live on node 2, reached by resolution + routing.
  world.AddShardedServiceOf<servers::ArrayServer>(
      "accounts", {1}, 1, std::uint64_t{kBranches * kAccountsPerBranch});
  world.AddShardedServiceOf<servers::ArrayServer>(
      "tellers", {1}, 1, std::uint64_t{kBranches * kTellersPerBranch});
  world.AddShardedServiceOf<servers::ArrayServer>("branches", {1}, 1,
                                                  std::uint64_t{kBranches});
  auto* history = world.AddServerOf<servers::WeakQueueServer>(1, "history", 4096u);
  if (nodes == 2) {
    world.AddShardedServiceOf<servers::ArrayServer>(
        "remote-accounts", {2}, 1, std::uint64_t{kBranches * kAccountsPerBranch});
  }

  ArrayService accounts = OpenArray(world, "accounts");
  ArrayService tellers = OpenArray(world, "tellers");
  ArrayService branches = OpenArray(world, "branches");
  ArrayService remote_accounts = OpenArray(world, "remote-accounts");

  Outcome out;
  for (int t = 0; t < terminals; ++t) {
    world.SpawnApp(1, "terminal", [&, t](Application& app) {
      std::mt19937 rng(static_cast<unsigned>(t) * 7919 + 17);
      while (world.scheduler().Now() < kWindow) {
        std::uint32_t branch = rng() % kBranches;
        std::uint32_t teller = branch * kTellersPerBranch + rng() % kTellersPerBranch;
        std::uint32_t account = branch * kAccountsPerBranch + rng() % kAccountsPerBranch;
        auto delta = static_cast<std::int32_t>(rng() % 1000) - 500;
        bool remote = nodes == 2 && static_cast<int>(rng() % 100) < remote_percent;
        Status s = app.Transaction([&](const server::Tx& tx) {
          ArrayService& acct_service = remote ? remote_accounts : accounts;
          auto bal = acct_service.Get(tx, account);
          if (!bal.ok()) {
            return bal.status();
          }
          Status w = acct_service.Set(tx, account, bal.value() + delta);
          if (w != Status::kOk) {
            return w;
          }
          auto tb = tellers.Get(tx, teller);
          if (!tb.ok()) {
            return tb.status();
          }
          tellers.Set(tx, teller, tb.value() + delta);
          auto bb = branches.Get(tx, branch);
          if (!bb.ok()) {
            return bb.status();
          }
          branches.Set(tx, branch, bb.value() + delta);
          return history->Enqueue(tx, delta);
        });
        if (s == Status::kOk) {
          ++out.committed;
          if (remote) {
            ++out.remote;
          }
        } else {
          ++out.aborted;
        }
      }
    }, t * 1'000);
  }
  world.Drain();
  return out;
}

void Run() {
  std::printf("DebitCredit on TABS: %u branches x %u tellers x %u accounts, %d s window\n",
              kBranches, kTellersPerBranch, kAccountsPerBranch,
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-10s | %-24s | %-32s\n", "", "local only", "15% remote accounts (2 nodes)");
  std::printf("%-10s | %9s %7s %6s | %9s %7s %6s %8s\n", "terminals", "tps", "commit",
              "abort", "tps", "commit", "abort", "remote");
  std::printf("%.76s\n",
              "----------------------------------------------------------------------------");
  for (int terminals : {1, 2, 4, 8}) {
    Outcome local = Run(terminals, 0);
    Outcome mixed = Run(terminals, 15);
    std::printf("%-10d | %9.2f %7d %6d | %9.2f %7d %6d %8d\n", terminals, local.tps(),
                local.committed, local.aborted, mixed.tps(), mixed.committed,
                mixed.aborted, mixed.remote);
  }
  std::printf(
      "\nBranch balances are the hot spot (every transaction updates one of %u), so\n"
      "throughput stops scaling once terminals outnumber branches; remote accounts\n",
      kBranches);
  std::printf(
      "turn 15%% of transactions into two-phase commits and cut throughput by the\n"
      "commit-protocol latency. The weak-queue history absorbs concurrent appends\n"
      "without ordering conflicts — exactly the use the paper's Section 2.2 mailbox/\n"
      "queue discussion anticipates.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
