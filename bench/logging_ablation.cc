// Ablation: value logging vs operation logging (Section 2.1.3).
//
// The paper's design discussion claims operation logging "permits a greater
// degree of concurrency and may require less log space... however, it is
// more complex, and it requires three passes over the log during crash
// recovery, instead of the single pass needed for the value-based
// algorithm". TABS planned to "empirically compare the relative merits of
// value and operation logging" (Section 7) — this harness is that
// experiment: the same counter workload run under both techniques,
// comparing log bytes, recovery passes, records scanned, and recovery time.

#include <cstdio>
#include <cstring>
#include <set>

#include "src/kernel/node.h"
#include "src/recovery/recovery_manager.h"
#include "src/sim/substrate.h"

namespace tabs {
namespace {

using recovery::OperationHooks;
using recovery::RecoveryManager;
using recovery::RecoveryStats;
using recovery::TxnOutcome;
using recovery::TxnOutcomeSource;

constexpr SegmentId kSeg = 1;
constexpr char kServer[] = "counter";
constexpr int kCounters = 16;

// Size of each logged object. Value logging must write before/after images
// of the whole object; operation logging writes only the operation and its
// arguments — so the object size decides which technique's log is smaller.
std::uint32_t g_object_size = 8;

class Outcomes : public TxnOutcomeSource {
 public:
  void ObserveTxnRecord(const log::LogRecord& rec) override {
    if (rec.type == log::RecordType::kTxnCommit) {
      committed_.insert(rec.top);
    }
  }
  TxnOutcome OutcomeOf(const TransactionId& top) override {
    return committed_.contains(top) ? TxnOutcome::kCommitted : TxnOutcome::kActive;
  }

 private:
  std::set<TransactionId> committed_;
};

struct Epoch {
  explicit Epoch(kernel::Node& node)
      : rm(node),
        seg(node.substrate(), node.disk(), kSeg,
            (kCounters * g_object_size + kPageSize - 1) / kPageSize + 1, 32) {
    rm.RegisterSegment(kServer, &seg);
    OperationHooks hooks;
    hooks.apply = [this](const std::string& op, const Bytes& args, Lsn lsn) {
      std::uint32_t idx;
      std::int64_t delta;
      std::memcpy(&idx, args.data(), 4);
      std::memcpy(&delta, args.data() + 4, 8);
      if (op == "sub") {
        delta = -delta;
      }
      ObjectId oid{kSeg, idx * g_object_size, g_object_size};
      Bytes cur = seg.Read(oid);
      std::int64_t v;
      std::memcpy(&v, cur.data(), 8);
      v += delta;
      Bytes nv = cur;
      std::memcpy(nv.data(), &v, 8);
      seg.Pin(oid);
      seg.Write(oid, nv, lsn);
      seg.Unpin(oid);
    };
    rm.RegisterOperationHooks(kServer, hooks);
  }

  void ValueAdd(const TransactionId& tid, std::uint32_t idx, std::int64_t delta) {
    ObjectId oid{kSeg, idx * g_object_size, g_object_size};
    Bytes old_value = seg.Read(oid);
    std::int64_t v;
    std::memcpy(&v, old_value.data(), 8);
    v += delta;
    Bytes new_value = old_value;
    std::memcpy(new_value.data(), &v, 8);
    seg.Pin(oid);
    rm.LogValue(tid, tid, kServer, oid, std::move(old_value), std::move(new_value));
    seg.Unpin(oid);
  }

  void OperationAdd(const TransactionId& tid, std::uint32_t idx, std::int64_t delta) {
    Bytes args(12);
    std::memcpy(args.data(), &idx, 4);
    std::memcpy(args.data() + 4, &delta, 8);
    rm.LogOperation(tid, tid, kServer, "add", args, "sub", args,
                    {{kSeg, idx * g_object_size / kPageSize}});
  }

  void Commit(const TransactionId& tid) {
    log::LogRecord rec;
    rec.type = log::RecordType::kTxnCommit;
    rec.owner = tid;
    rec.top = tid;
    rm.log().Append(std::move(rec));
    rm.log().ForceAll();
    rm.ForgetTransaction(tid);
  }

  RecoveryManager rm;
  kernel::RecoverableSegment seg;
};

struct RunOutcome {
  std::uint64_t log_bytes = 0;
  int passes = 0;
  int records_scanned = 0;
  SimTime recovery_time_us = 0;
  std::int64_t counter_sum = 0;
};

RunOutcome RunWorkload(bool use_operation_logging, int transactions, int ops_per_txn) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  kernel::Node node(1, substrate);
  RunOutcome out;

  sched.Spawn("workload", 1, 0, [&] {
    Epoch before(node);
    std::uint64_t seq = 1;
    for (int t = 0; t < transactions; ++t) {
      TransactionId tid{1, seq++};
      for (int op = 0; op < ops_per_txn; ++op) {
        auto idx = static_cast<std::uint32_t>((t + op) % kCounters);
        if (use_operation_logging) {
          before.OperationAdd(tid, idx, 1);
        } else {
          before.ValueAdd(tid, idx, 1);
        }
      }
      before.Commit(tid);
    }
    out.log_bytes = before.rm.StableLogBytesInUse();
    // Crash without flushing data pages, then recover.
    Epoch after(node);
    Outcomes outcomes;
    SimTime t0 = sched.Now();
    RecoveryStats stats = after.rm.Recover(outcomes);
    out.recovery_time_us = sched.Now() - t0;
    out.passes = stats.passes;
    out.records_scanned = stats.records_scanned;
    for (std::uint32_t i = 0; i < kCounters; ++i) {
      Bytes v = after.seg.Read({kSeg, i * g_object_size, 8});
      std::int64_t x;
      std::memcpy(&x, v.data(), 8);
      out.counter_sum += x;
    }
  });
  sched.Run();
  return out;
}

void Run() {
  std::printf("Logging ablation: value vs operation logging (Sections 2.1.3, 7)\n");
  std::printf("%-10s %-14s | %12s %8s %10s %12s %8s\n", "technique", "workload",
              "log bytes", "passes", "scanned", "recovery ms", "sum ok");
  std::printf("%.92s\n",
              "--------------------------------------------------------------------------------"
              "------------");
  for (std::uint32_t obj : {8u, 64u, 256u}) {
    g_object_size = obj;
    for (auto [txns, ops] : {std::pair{100, 4}}) {
      std::int64_t expect = static_cast<std::int64_t>(txns) * ops;
      RunOutcome value = RunWorkload(false, txns, ops);
      RunOutcome operation = RunWorkload(true, txns, ops);
      char wl[32];
      std::snprintf(wl, sizeof wl, "%dx%d obj=%u", txns, ops, obj);
      std::printf("%-10s %-14s | %12llu %8d %10d %12.1f %8s\n", "value", wl,
                  static_cast<unsigned long long>(value.log_bytes), value.passes,
                  value.records_scanned, value.recovery_time_us / 1000.0,
                  value.counter_sum == expect ? "yes" : "NO");
      std::printf("%-10s %-14s | %12llu %8d %10d %12.1f %8s\n", "operation", wl,
                  static_cast<unsigned long long>(operation.log_bytes), operation.passes,
                  operation.records_scanned, operation.recovery_time_us / 1000.0,
                  operation.counter_sum == expect ? "yes" : "NO");
    }
  }
  std::printf(
      "\nThe crossover the paper predicts: value records carry before/after images of\n"
      "the whole object, so their log grows with object size while operation records\n"
      "stay argument-sized ('may require less log space'). The price is recovery:\n"
      "three passes over the log instead of the value algorithm's single backward\n"
      "pass, visible in the passes/scanned/recovery-time columns.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
