// Table 5-3: commit-protocol primitive counts.
//
// Runs a representative benchmark for each commit protocol (1/2/3-node x
// read-only/write) and prints the primitives executed during commit
// processing. The paper reports the *longest estimated execution path*
// through the distributed system (hence the half-datagram entries for
// parallel sends); we report measured totals alongside, and the commit
// latency which embodies the critical path directly.

#include <cstdio>
#include <map>

#include "bench/workloads.h"

namespace tabs::bench {
namespace {

struct PaperRow {
  double datagrams, small, large, pointer, stable;
};

// Transcribed from Table 5-3. Datagram entries are critical-path counts
// (2.5 = two full + one half for the parallel second prepare).
const std::map<std::string, PaperRow> kPaperRows = {
    {"1 Node, Read Only", {0, 5, 0, 0, 0}},
    {"1 Node, Write", {0, 8, 1, 0, 1}},
    {"2 Node, Read Only", {2, 11, 1, 1, 0}},
    {"2 Node, Write", {4, 17, 5, 1, 1}},
    {"3 Node, Read Only", {2.5, 11, 1, 1, 0}},
    {"3 Node, Write", {5, 17, 5, 1, 1}},
};

struct ProtocolCase {
  std::string name;
  BenchmarkDef def;
};

void Run() {
  std::printf("Table 5-3: Commit Primitive Counts (per transaction)\n");
  std::printf("%-20s | %-12s | %-12s | %-12s | %-12s | %-12s | %10s\n", "Commit protocol",
              "datagrams", "small msg", "large msg", "pointer msg", "stable wr",
              "commit ms");
  std::printf("%-20s | %-12s | %-12s | %-12s | %-12s | %-12s | %10s\n", "", "paper/ours",
              "paper/ours", "paper/ours", "paper/ours", "paper/ours", "(ours)");
  std::printf("%.126s\n",
              "--------------------------------------------------------------------------------"
              "----------------------------------------------");

  std::vector<ProtocolCase> cases = {
      {"1 Node, Read Only", {"", 1, false, Paging::kNone, 1, 0, 0}},
      {"1 Node, Write", {"", 1, true, Paging::kNone, 1, 0, 0}},
      {"2 Node, Read Only", {"", 2, false, Paging::kNone, 1, 1, 0}},
      {"2 Node, Write", {"", 2, true, Paging::kNone, 1, 1, 0}},
      {"3 Node, Read Only", {"", 3, false, Paging::kNone, 1, 1, 1}},
      {"3 Node, Write", {"", 3, true, Paging::kNone, 1, 1, 1}},
  };

  auto costs = sim::CostModel::Baseline();
  auto arch = sim::ArchitectureModel::Prototype();
  for (const ProtocolCase& c : cases) {
    BenchmarkDef def = c.def;
    def.name = c.name;
    BenchResult r = RunBenchmark(def, costs, arch);
    const PaperRow& p = kPaperRows.at(c.name);
    auto cell = [&](double paper, sim::Primitive prim) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4g/%.4g", paper, r.commit.Of(prim));
      return std::string(buf);
    };
    SimTime commit_us = r.commit.PredictedTime(costs);
    std::printf("%-20s | %-12s | %-12s | %-12s | %-12s | %-12s | %10s\n", c.name.c_str(),
                cell(p.datagrams, sim::Primitive::kDatagram).c_str(),
                cell(p.small, sim::Primitive::kSmallMessage).c_str(),
                cell(p.large, sim::Primitive::kLargeMessage).c_str(),
                cell(p.pointer, sim::Primitive::kPointerMessage).c_str(),
                cell(p.stable, sim::Primitive::kStableWrite).c_str(),
                FormatMs(commit_us).c_str());
  }
  std::printf(
      "\nPaper datagram counts are longest-path estimates (parallel sends count as\n"
      "half); ours are measured totals — a 3-node write sends prepare/commit pairs\n"
      "to both children, so totals exceed the critical path while latency (which the\n"
      "scheduler computes from actual overlap) tracks the paper's path analysis.\n"
      "The paper charges participants' prepare forces to the remote node; our\n"
      "stable-write column likewise counts only coordinator-side forces; remote\n"
      "forces overlap the coordinator's wait and appear in commit latency instead.\n");
}

}  // namespace
}  // namespace tabs::bench

int main() {
  tabs::bench::Run();
  return 0;
}
