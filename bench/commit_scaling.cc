// Commit-protocol scaling: transaction latency and commit-phase datagrams as
// the spanning tree grows from one to six nodes, for read-only and update
// transactions, under the prototype and optimized commit protocols.
//
// This extends Table 5-4's 1/2/3-node points along the axis the paper's
// future work names ("investigating architectures and algorithms that will
// provide increased transaction throughput", Section 7). Two paper claims
// become visible: the read-only optimization makes read commit cost flat-ish
// in fan-out (one prepare/vote round, no phase two), and the optimized
// commit protocol removes phase two of update transactions from the critical
// path, so its benefit grows with the node count.

#include <cstdio>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

struct Point {
  SimTime elapsed_us = 0;
  double commit_datagrams = 0;
};

Point RunScale(int nodes, bool write, bool optimized, int iterations = 16) {
  WorldOptions options;
  options.arch = optimized ? sim::ArchitectureModel::Improved()
                           : sim::ArchitectureModel::Prototype();
  World world(nodes, options);
  std::vector<servers::ArrayServer*> arrays;
  for (NodeId n = 1; n <= static_cast<NodeId>(nodes); ++n) {
    arrays.push_back(world.AddServerOf<servers::ArrayServer>(
        n, "arr" + std::to_string(n), 16u));
  }
  Point point;
  world.RunApp(1, [&](Application& app) {
    auto one = [&](const server::Tx& tx) {
      for (auto* arr : arrays) {
        if (write) {
          arr->SetCell(tx, 0, 1);
        } else {
          arr->GetCell(tx, 0);
        }
      }
      return Status::kOk;
    };
    for (int i = 0; i < 4; ++i) {
      app.Transaction(one);  // warm-up
    }
    world.metrics().Reset();
    SimTime t0 = world.scheduler().Now();
    for (int i = 0; i < iterations; ++i) {
      app.Transaction(one);
    }
    point.elapsed_us = (world.scheduler().Now() - t0) / iterations;
  });
  point.commit_datagrams =
      world.metrics().Bucket(sim::Phase::kCommit).Of(sim::Primitive::kDatagram) / iterations;
  return point;
}

void Run() {
  std::printf("Commit scaling: latency (ms) and commit datagrams vs node count\n");
  std::printf("%-6s | %-22s | %-22s | %-22s\n", "", "read-only", "write (prototype)",
              "write (optimized)");
  std::printf("%-6s | %10s %10s | %10s %10s | %10s %10s\n", "nodes", "ms", "datagrams",
              "ms", "datagrams", "ms", "datagrams");
  std::printf("%.80s\n",
              "--------------------------------------------------------------------------------");
  for (int nodes = 1; nodes <= 6; ++nodes) {
    Point ro = RunScale(nodes, /*write=*/false, /*optimized=*/false);
    Point wr = RunScale(nodes, /*write=*/true, /*optimized=*/false);
    Point wo = RunScale(nodes, /*write=*/true, /*optimized=*/true);
    std::printf("%-6d | %10.0f %10.1f | %10.0f %10.1f | %10.0f %10.1f\n", nodes,
                ro.elapsed_us / 1000.0, ro.commit_datagrams, wr.elapsed_us / 1000.0,
                wr.commit_datagrams, wo.elapsed_us / 1000.0, wo.commit_datagrams);
  }
  std::printf(
      "\nRead-only commits pay one prepare/vote round (2 datagrams per extra node) and\n"
      "drop out of phase two. Prototype write commits add prepare/vote/commit/ack per\n"
      "node and wait for the acks; the optimized protocol answers the application as\n"
      "soon as the commit record is stable and the commit datagrams are sent, so its\n"
      "advantage widens with fan-out. Datagram counts are whole-system totals.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
