// Table 5-1: primitive operation times.
//
// Measures each primitive on the simulated substrate and prints it next to
// the paper's measured Perq T2 value. The substrate is configured *from*
// Table 5-1, so agreement here validates the plumbing every other
// experiment stands on: each primitive really costs what the model says, at
// the call sites where TABS pays it.

#include <cstdio>

#include "src/comm/network.h"
#include "src/kernel/recoverable_segment.h"
#include "src/log/log_manager.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using sim::CostModel;
using sim::Primitive;

SimTime MeasureElapsed(World& world, NodeId node, const std::function<void()>& body) {
  SimTime elapsed = 0;
  world.SpawnApp(node, "measure", [&](Application&) {
    SimTime t0 = world.scheduler().Now();
    body();
    elapsed = world.scheduler().Now() - t0;
  });
  world.Drain();
  return elapsed;
}

void Run() {
  CostModel paper = CostModel::Baseline();
  std::printf("Table 5-1: Primitive Operation Times (milliseconds)\n");
  std::printf("%-32s %10s %10s\n", "Primitive", "paper", "measured");
  std::printf("%.74s\n",
              "--------------------------------------------------------------------------");

  auto row = [&](Primitive p, SimTime measured_us) {
    std::printf("%-32s %10.1f %10.1f\n", PrimitiveName(p),
                static_cast<double>(paper.Of(p)) / 1000.0,
                static_cast<double>(measured_us) / 1000.0);
  };

  // Data Server Call: a null operation against a local data server.
  {
    World world(1);
    auto* srv = world.AddServerOf<servers::ArrayServer>(1, "a", 16u);
    SimTime t = 0;
    world.RunApp(1, [&](Application& app) {
      TxnScope scope(app);
      server::Tx tx = scope.tx();
      srv->GetCell(tx, 0);  // join + first-touch out of the way
      SimTime t0 = world.scheduler().Now();
      srv->GetCell(tx, 0);
      t = world.scheduler().Now() - t0;
      scope.Commit();
    });
    row(Primitive::kDataServerCall, t);
  }

  // Inter-Node Data Server Call: the same against a remote server.
  {
    World world(2);
    auto* srv = world.AddServerOf<servers::ArrayServer>(2, "a", 16u);
    SimTime t = 0;
    world.RunApp(1, [&](Application& app) {
      TxnScope scope(app);
      server::Tx tx = scope.tx();
      srv->GetCell(tx, 0);
      SimTime t0 = world.scheduler().Now();
      srv->GetCell(tx, 0);
      t = world.scheduler().Now() - t0;
      scope.Commit();
    });
    row(Primitive::kInterNodeDataServerCall, t);
  }

  // Datagram: one-way latency to a remote handler.
  {
    World world(2);
    SimTime sent_at = 0;
    SimTime received_at = 0;
    world.SpawnApp(1, "dgram", [&](Application&) {
      sent_at = world.scheduler().Now();
      world.network().SendDatagram(1, 2, "ping", [&] {
        received_at = world.scheduler().Now();
      });
    });
    world.Drain();
    row(Primitive::kDatagram, received_at - sent_at);
  }

  // Local message primitives are charged, not transmitted; measure the charge.
  for (Primitive p : {Primitive::kSmallMessage, Primitive::kLargeMessage,
                      Primitive::kPointerMessage}) {
    World world(1);
    SimTime t = MeasureElapsed(world, 1, [&] { world.substrate().Charge(p); });
    row(p, t);
  }

  // Paged I/O: fault pages through a recoverable segment.
  {
    World world(1);
    kernel::RecoverableSegment seg(world.substrate(), world.node(1).disk(), 99, 64, 8);
    SimTime t_random = MeasureElapsed(world, 1, [&] { seg.Read({99, 40 * kPageSize, 4}); });
    SimTime t_seq = MeasureElapsed(world, 1, [&] { seg.Read({99, 41 * kPageSize, 4}); });
    row(Primitive::kRandomPageIo, t_random);
    row(Primitive::kSequentialRead, t_seq);
  }

  // Stable Storage Write: force one page of log data.
  {
    World world(1);
    log::LogRecord rec;
    rec.type = log::RecordType::kValueUpdate;
    rec.owner = {1, 1};
    rec.top = {1, 1};
    rec.server = "s";
    rec.oid = {1, 0, 4};
    rec.old_value = {0, 0, 0, 0};
    rec.new_value = {1, 1, 1, 1};
    world.rm(1).log().Append(rec);
    SimTime t = MeasureElapsed(world, 1, [&] { world.rm(1).log().ForceAll(); });
    row(Primitive::kStableWrite, t);
  }

  std::printf(
      "\nNote: the substrate charges Table 5-1's measured times by construction;\n"
      "this table verifies the charge sites (call, message, fault, force) are wired\n"
      "where TABS paid them. Table 5-5 holds the projected ('achievable') times.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
