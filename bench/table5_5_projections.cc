// Table 5-5: achievable primitive operation times, and the speedups they
// imply. Prints the baseline (Table 5-1) and achievable (Table 5-5) models
// side by side with per-primitive ratios, then the end-to-end speedup of
// the headline benchmarks under the combined improvements — the evidence
// for the paper's conclusion that "one would expect transaction times that
// are four to ten times faster".

#include <cstdio>

#include "bench/workloads.h"

namespace tabs::bench {
namespace {

void Run() {
  auto base = sim::CostModel::Baseline();
  auto ach = sim::CostModel::Achievable();

  std::printf("Table 5-5: Achievable Primitive Operation Times (milliseconds)\n");
  std::printf("%-32s %10s %12s %8s\n", "Primitive", "Table 5-1", "Table 5-5", "ratio");
  std::printf("%.66s\n",
              "------------------------------------------------------------------");
  // The paper's nine primitives only: extensions beyond Table 5-5 (the
  // page cleaner's sequential-write primitive) are not part of the
  // regenerated table.
  for (sim::Primitive p :
       {sim::Primitive::kDataServerCall, sim::Primitive::kInterNodeDataServerCall,
        sim::Primitive::kDatagram, sim::Primitive::kSmallMessage,
        sim::Primitive::kLargeMessage, sim::Primitive::kPointerMessage,
        sim::Primitive::kRandomPageIo, sim::Primitive::kSequentialRead,
        sim::Primitive::kStableWrite}) {
    std::printf("%-32s %10.2f %12.2f %7.1fx\n", PrimitiveName(p),
                static_cast<double>(base.Of(p)) / 1000.0,
                static_cast<double>(ach.Of(p)) / 1000.0,
                static_cast<double>(base.Of(p)) / static_cast<double>(ach.Of(p)));
  }

  std::printf("\nEnd-to-end effect (prototype baseline -> improved arch + achievable):\n");
  std::printf("%-34s %12s %12s %8s\n", "Benchmark", "baseline ms", "projected ms", "speedup");
  std::printf("%.70s\n",
              "----------------------------------------------------------------------");
  for (const BenchmarkDef& def : PaperBenchmarks()) {
    BenchResult b =
        RunBenchmark(def, sim::CostModel::Baseline(), sim::ArchitectureModel::Prototype());
    BenchResult a =
        RunBenchmark(def, sim::CostModel::Achievable(), sim::ArchitectureModel::Improved());
    std::printf("%-34s %12s %12s %7.1fx\n", def.name.c_str(), FormatMs(b.elapsed_us).c_str(),
                FormatMs(a.elapsed_us).c_str(),
                static_cast<double>(b.elapsed_us) / static_cast<double>(a.elapsed_us));
  }
  std::printf(
      "\nThe paper concludes improved software + hardware would run transactions four\n"
      "to ten times faster than measured; the speedup column reproduces that band for\n"
      "non-paging workloads (paging rows are disk-bound, as the paper notes random\n"
      "I/O 'already approaches the performance of the disk').\n");
}

}  // namespace
}  // namespace tabs::bench

int main() {
  tabs::bench::Run();
  return 0;
}
