// Table 5-4: benchmark times.
//
// For each of the fourteen benchmarks, prints:
//   * the paper's System Time Predicted by Primitives and Measured Elapsed
//     Time (Perq T2),
//   * our predicted-by-primitives (the weighted sum of Section 5.1 over our
//     measured counts) and measured elapsed virtual time,
//   * the Improved-TABS-Architecture projection (TM/RM merged into the
//     kernel, optimized commit) under baseline primitive times,
//   * the New-Primitive-Times projection (improved architecture + Table 5-5
//     achievable primitives).
// Ends with the Section 5.2 reconciliation numbers and the Section 7
// narrative scenarios.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench/bench_json.h"
#include "bench/workloads.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs::bench {
namespace {

// TABS_TRACE=1 turns on the performance monitor's extra output: the
// Section 5.2 per-component latency decomposition of every benchmark and a
// Chrome-trace (chrome://tracing / Perfetto) export of the timeline demo.
// Off by default so the regenerated paper table stays byte-stable.
bool TraceEnabled() {
  const char* e = std::getenv("TABS_TRACE");
  return e != nullptr && e[0] == '1';
}

struct PaperRow {
  double predicted_ms, measured_ms, improved_ms, new_primitives_ms;
};

const std::map<std::string, PaperRow> kPaperRows = {
    {"1 Local Read, No Paging", {53, 110, 107, 67}},
    {"5 Local Read, No Paging", {157, 217, 213, 80}},
    {"1 Local Read, Seq. Paging", {71, 126, 123, 75}},
    {"1 Local Read, Random Paging", {81, 140, 137, 98}},
    {"1 Local Write, No Paging", {156, 247, 228, 136}},
    {"5 Local Write, No Paging", {302, 467, 424, 225}},
    {"1 Local Write, Seq. Paging", {232, 371, 345, 249}},
    {"1 Lcl Rd, 1 Rem Rd, No Paging", {306, 469, 459, 228}},
    {"1 Lcl Rd, 5 Rem Rd, No Paging", {662, 829, 819, 268}},
    {"1 Lcl Rd, 1 Rem Rd, Seq. Paging", {341, 514, 504, 257}},
    {"1 Lcl Wr, 1 Rem Wr, No Paging", {697, 989, 775, 442}},
    {"1 Lcl Wr, 1 Rem Wr, Seq. Paging", {864, 1125, 873, 539}},
    {"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", {416, 621, 611, 282}},
    {"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", {831, 1200, 968, 534}},
};

struct MainRow {
  BenchmarkDef def;
  BenchResult base, improved, achievable;
};

std::vector<MainRow> RunMainTable() {
  std::vector<MainRow> rows;
  std::printf("Table 5-4: Benchmark Times (milliseconds)\n");
  std::printf("%-34s | %-13s | %-13s | %-13s | %-13s\n", "Benchmark", "predicted",
              "measured", "improved arch", "new primitives");
  std::printf("%-34s | %-13s | %-13s | %-13s | %-13s\n", "", "paper/ours", "paper/ours",
              "paper/ours", "paper/ours");
  std::printf("%.110s\n",
              "--------------------------------------------------------------------------------"
              "------------------------------");

  for (const BenchmarkDef& def : PaperBenchmarks()) {
    BenchResult base = RunBenchmark(def, sim::CostModel::Baseline(),
                                    sim::ArchitectureModel::Prototype());
    BenchResult improved = RunBenchmark(def, sim::CostModel::Baseline(),
                                        sim::ArchitectureModel::Improved());
    BenchResult achievable = RunBenchmark(def, sim::CostModel::Achievable(),
                                          sim::ArchitectureModel::Improved());
    const PaperRow& p = kPaperRows.at(def.name);
    auto cell = [](double paper_ms, SimTime ours_us) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.0f/%.0f", paper_ms,
                    static_cast<double>(ours_us) / 1000.0);
      return std::string(buf);
    };
    std::printf("%-34s | %-13s | %-13s | %-13s | %-13s\n", def.name.c_str(),
                cell(p.predicted_ms, base.predicted_us).c_str(),
                cell(p.measured_ms, base.elapsed_us).c_str(),
                cell(p.improved_ms, improved.elapsed_us).c_str(),
                cell(p.new_primitives_ms, achievable.elapsed_us).c_str());
    rows.push_back({def, std::move(base), std::move(improved), std::move(achievable)});
  }
  std::printf(
      "\nOur substrate charges exactly the primitive-operation times, so our measured\n"
      "column tracks the paper's *predicted* column (the paper's measured column adds\n"
      "TABS process CPU time that its prediction did not model). Shape checks: writes\n"
      "cost more than reads (stable-storage force), remote ops add ~100ms+ each,\n"
      "2-node writes roughly double 2-node reads, the improved architecture mainly\n"
      "helps distributed writes (phase two leaves the critical path), and achievable\n"
      "primitives give the paper's ~4-10x headroom claim.\n");
  return rows;
}

// TABS_TRACE=1: the monitor's Section 5.2 view of every benchmark — where
// the measured window's virtual time was spent, by component. The component
// rows sum exactly (to the microsecond) to the end-to-end elapsed time; any
// residual would mean the attribution lost track of a clock advance.
void RunDecomposition(const std::vector<MainRow>& rows) {
  std::printf("\nSection 5.2 latency decomposition (performance monitor, baseline runs)\n");
  for (const MainRow& row : rows) {
    SimTime sum = 0;
    for (int c = 0; c < sim::kComponentCount; ++c) {
      sum += row.base.component_us[c];
    }
    std::printf("%s (%d txns, %s ms total)%s\n", row.def.name.c_str(), row.base.iterations,
                FormatMs(row.base.elapsed_total_us).c_str(),
                sum == row.base.elapsed_total_us ? "" : "  ** RESIDUAL — ATTRIBUTION BUG **");
    std::printf("%s", sim::FormatDecomposition(row.base.component_us).c_str());
  }
}

// Machine-readable results for the CI bench-regression gate: per-benchmark
// primitive counts, elapsed times, and the monitor's component breakdown.
// Written silently — the regenerated paper table's stdout stays byte-stable.
void WriteJson(const std::vector<MainRow>& rows) {
  JsonWriter json;
  json.BeginObject();
  json.String("bench", "table5_4");
  json.BeginArray("rows");
  for (const MainRow& row : rows) {
    json.BeginObject();
    json.String("name", row.def.name);
    json.Number("predicted_us", static_cast<std::uint64_t>(row.base.predicted_us));
    json.Number("elapsed_us", static_cast<std::uint64_t>(row.base.elapsed_us));
    json.Number("improved_elapsed_us", static_cast<std::uint64_t>(row.improved.elapsed_us));
    json.Number("achievable_elapsed_us",
                static_cast<std::uint64_t>(row.achievable.elapsed_us));
    json.Number("iterations", row.base.iterations);
    json.Number("elapsed_total_us", static_cast<std::uint64_t>(row.base.elapsed_total_us));
    json.BeginObject("components_us");
    for (int c = 0; c < sim::kComponentCount; ++c) {
      json.Number(sim::ComponentName(static_cast<sim::Component>(c)),
                  static_cast<std::uint64_t>(row.base.component_us[c]));
    }
    json.EndObject();
    for (const char* bucket : {"precommit", "commit"}) {
      const sim::PrimitiveCounts& counts =
          bucket[0] == 'p' ? row.base.precommit : row.base.commit;
      json.BeginObject(bucket);
      for (int i = 0; i < sim::kPrimitiveCount; ++i) {
        json.Number(sim::PrimitiveName(static_cast<sim::Primitive>(i)), counts.count[i]);
      }
      json.EndObject();
    }
    json.BeginObject("histograms");
    for (const auto& [name, stats] : row.base.histograms) {
      json.BeginObject(name.c_str());
      json.Number("count", stats.count);
      json.Number("total_us", static_cast<std::uint64_t>(stats.total));
      json.Number("min_us", static_cast<std::uint64_t>(stats.min));
      json.Number("max_us", static_cast<std::uint64_t>(stats.max));
      json.Number("p50_us", static_cast<std::uint64_t>(stats.p50));
      json.Number("p90_us", static_cast<std::uint64_t>(stats.p90));
      json.Number("p99_us", static_cast<std::uint64_t>(stats.p99));
      json.EndObject();
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.WriteFile("BENCH_table5_4.json");
}

void RunReconciliation() {
  std::printf("\nSection 5.2 reconciliation (paper -> ours)\n");
  BenchmarkDef read_def{"read", 1, false, Paging::kNone, 1, 0, 0};
  BenchmarkDef write_def{"write", 1, true, Paging::kNone, 1, 0, 0};
  BenchResult r = RunBenchmark(read_def, sim::CostModel::Baseline(),
                               sim::ArchitectureModel::Prototype());
  BenchResult w = RunBenchmark(write_def, sim::CostModel::Baseline(),
                               sim::ArchitectureModel::Prototype());
  std::printf("  local read elapsed:        paper 110 ms -> ours %s ms\n",
              FormatMs(r.elapsed_us).c_str());
  std::printf("  read -> write delta:       paper 137 ms -> ours %s ms\n",
              FormatMs(w.elapsed_us - r.elapsed_us).c_str());
  std::printf("  ...of which stable write:  paper  78 ms -> ours %s ms\n",
              FormatMs(static_cast<SimTime>(
                  (w.commit.Of(sim::Primitive::kStableWrite) -
                   r.commit.Of(sim::Primitive::kStableWrite)) *
                  static_cast<double>(
                      sim::CostModel::Baseline().Of(sim::Primitive::kStableWrite))))
                  .c_str());
  std::printf("  TABS process time (elapsed - predicted, read): paper 41+16 ms -> ours %s ms\n",
              FormatMs(r.elapsed_us - r.predicted_us).c_str());
  std::printf("  (the paper attributes 41 ms to TM+RM, ~7 ms to app/server startup and\n");
  std::printf("  commit, and 9 ms its analysis 'does not account for'; our process-CPU\n");
  std::printf("  model charges exactly that sum). The paper's 4%%/10%% two-node\n");
  std::printf("  reconciliation gap came from double-counted Communication Manager CPU,\n");
  std::printf("  which the virtual-time substrate does not double count.\n");
}

// Where the milliseconds go: the distributed performance monitor's timeline
// for one two-node write — the instrument behind the paper's Section 5.2
// decomposition ("36 msec in the Transaction Manager, 5 msec in the
// Recovery Manager...").
void RunTimelineDemo() {
  std::printf("\nPrimitive timeline of one 2-node write transaction (monitor output)\n");
  World world(2);
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "l", 16u);
  auto* remote = world.AddServerOf<servers::ArrayServer>(2, "r", 16u);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {  // warm-up
      local->SetCell(tx, 0, 1);
      remote->SetCell(tx, 0, 1);
      return Status::kOk;
    });
    world.substrate().tracer().Enable(true);
    app.Transaction([&](const server::Tx& tx) {
      local->SetCell(tx, 0, 2);
      remote->SetCell(tx, 0, 2);
      return Status::kOk;
    });
  });
  std::printf("%s", world.substrate().tracer().Timeline().c_str());
  if (TraceEnabled()) {
    // Chrome-trace export of the same transaction: open in Perfetto or
    // chrome://tracing. One track per (node, component); the nested slices
    // are the monitor's spans.
    std::FILE* f = std::fopen("TRACE_table5_4_2node_write.json", "w");
    if (f != nullptr) {
      std::string trace = world.substrate().tracer().ChromeTraceJson();
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::printf("wrote TRACE_table5_4_2node_write.json\n");
    }
  }
}

void RunSection7Scenarios() {
  std::printf("\nSection 7 narrative scenarios\n");
  // "about two seconds ... for a local transaction that invokes five
  // operations, each of which updates two pages that are not in memory."
  {
    WorldOptions options;
    World world(1, options);
    auto* arr = world.AddServerOf<servers::ArrayServer>(1, "arr", 5000u * 128u, 64u);
    SimTime elapsed = 0;
    world.RunApp(1, [&](Application& app) {
      std::uint32_t page = 0;
      app.Transaction([&](const server::Tx& tx) {  // warmup
        arr->SetCell(tx, (page++) * 128, 1);
        return Status::kOk;
      });
      SimTime t0 = world.scheduler().Now();
      app.Transaction([&](const server::Tx& tx) {
        for (int op = 0; op < 5; ++op) {
          // Each operation touches two non-resident pages (random faults).
          arr->SetCell(tx, (1000 + page * 7 + op * 2) * 128, op);
          arr->SetCell(tx, (3000 + page * 11 + op * 2 + 1) * 128, op);
        }
        return Status::kOk;
      });
      elapsed = world.scheduler().Now() - t0;
    });
    std::printf("  5 ops x 2 non-resident pages: paper ~2000 ms -> ours %s ms\n",
                FormatMs(elapsed).c_str());
  }
  {
    WorldOptions options;
    World world(1, options);
    auto* arr = world.AddServerOf<servers::ArrayServer>(1, "arr", 2048u);
    SimTime elapsed = 0;
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, 0, 1);
        return Status::kOk;
      });
      SimTime t0 = world.scheduler().Now();
      app.Transaction([&](const server::Tx& tx) {
        for (int op = 0; op < 10; ++op) {
          arr->SetCell(tx, static_cast<std::uint32_t>(op), op);
        }
        return Status::kOk;
      });
      elapsed = world.scheduler().Now() - t0;
    });
    std::printf("  same transaction, data resident: paper ~500 ms -> ours %s ms\n",
                FormatMs(elapsed).c_str());
  }
}

}  // namespace
}  // namespace tabs::bench

int main() {
  auto rows = tabs::bench::RunMainTable();
  tabs::bench::RunReconciliation();
  tabs::bench::RunTimelineDemo();
  tabs::bench::RunSection7Scenarios();
  if (tabs::bench::TraceEnabled()) {
    tabs::bench::RunDecomposition(rows);
  }
  tabs::bench::WriteJson(rows);
  return 0;
}
