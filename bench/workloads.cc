#include "bench/workloads.h"

#include <cstdio>
#include <random>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs::bench {

using servers::ArrayServer;

std::vector<BenchmarkDef> PaperBenchmarks() {
  return {
      {"1 Local Read, No Paging", 1, false, Paging::kNone, 1, 0, 0},
      {"5 Local Read, No Paging", 1, false, Paging::kNone, 5, 0, 0},
      {"1 Local Read, Seq. Paging", 1, false, Paging::kSequential, 1, 0, 0},
      {"1 Local Read, Random Paging", 1, false, Paging::kRandom, 1, 0, 0},
      {"1 Local Write, No Paging", 1, true, Paging::kNone, 1, 0, 0},
      {"5 Local Write, No Paging", 1, true, Paging::kNone, 5, 0, 0},
      {"1 Local Write, Seq. Paging", 1, true, Paging::kSequential, 1, 0, 0},
      {"1 Lcl Rd, 1 Rem Rd, No Paging", 2, false, Paging::kNone, 1, 1, 0},
      {"1 Lcl Rd, 5 Rem Rd, No Paging", 2, false, Paging::kNone, 1, 5, 0},
      {"1 Lcl Rd, 1 Rem Rd, Seq. Paging", 2, false, Paging::kSequential, 1, 1, 0},
      {"1 Lcl Wr, 1 Rem Wr, No Paging", 2, true, Paging::kNone, 1, 1, 0},
      {"1 Lcl Wr, 1 Rem Wr, Seq. Paging", 2, true, Paging::kSequential, 1, 1, 0},
      {"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", 3, false, Paging::kNone, 1, 1, 1},
      {"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", 3, true, Paging::kNone, 1, 1, 1},
  };
}

namespace {

// The paging array is 5000 pages, "more than three times the available
// physical memory". Paging runs use a small pool so steady-state eviction
// write-back (which the paper's counts include) shows up within a short
// measurement window. 128 four-byte cells per page.
constexpr std::uint32_t kPagingPages = 5000;
constexpr std::uint32_t kPagingCells = kPagingPages * 128;
constexpr size_t kPagingFrames = 8;
constexpr std::uint32_t kSmallCells = 128;

struct BenchState {
  // Independent sequential cursors per array, so each scans contiguously.
  std::uint32_t seq_page[3] = {0, 0, 0};
  std::mt19937 rng{12345};
};

std::uint32_t PickCell(const BenchmarkDef& def, BenchState& state, int target) {
  switch (def.paging) {
    case Paging::kNone:
      return 1;
    case Paging::kSequential: {
      std::uint32_t cell = (state.seq_page[target] % kPagingPages) * 128;
      ++state.seq_page[target];
      return cell;
    }
    case Paging::kRandom:
      return (state.rng() % kPagingPages) * 128;
  }
  return 0;
}

void RunOps(const BenchmarkDef& def, BenchState& state, const server::Tx& tx,
            ArrayServer* local, ArrayServer* remote, ArrayServer* third) {
  auto op = [&](ArrayServer* target, int which, int i) {
    std::uint32_t cell = PickCell(def, state, which);
    if (def.write) {
      target->SetCell(tx, cell, static_cast<std::int32_t>(i));
    } else {
      target->GetCell(tx, cell);
    }
  };
  for (int i = 0; i < def.local_ops; ++i) {
    op(local, 0, i);
  }
  for (int i = 0; i < def.remote_ops; ++i) {
    op(remote, 1, i);
  }
  for (int i = 0; i < def.third_node_ops; ++i) {
    op(third, 2, i);
  }
}

// The pipelined variant: local operations run synchronously (there is no
// latency to hide), remote and third-node operations are issued as coalesced
// asynchronous batches and joined before the transaction body returns. Cells
// are picked in the same order as the sequential path so the two variants
// touch identical data.
void RunOpsPipelined(const BenchmarkDef& def, BenchState& state, Application& app,
                     const server::Tx& tx, ArrayServer* local, ArrayServer* remote,
                     ArrayServer* third) {
  for (int i = 0; i < def.local_ops; ++i) {
    std::uint32_t cell = PickCell(def, state, 0);
    if (def.write) {
      local->SetCell(tx, cell, static_cast<std::int32_t>(i));
    } else {
      local->GetCell(tx, cell);
    }
  }
  Application::AsyncOps ops = app.Parallel();
  auto issue = [&](ArrayServer* target, int which, int count) {
    if (target == nullptr || count == 0) {
      return;
    }
    if (def.write) {
      std::vector<std::pair<std::uint32_t, std::int32_t>> writes;
      writes.reserve(count);
      for (int i = 0; i < count; ++i) {
        writes.emplace_back(PickCell(def, state, which), static_cast<std::int32_t>(i));
      }
      ops.AddBatch<bool>(target->AsyncSetCells(tx, writes));
    } else {
      std::vector<std::uint32_t> cells;
      cells.reserve(count);
      for (int i = 0; i < count; ++i) {
        cells.push_back(PickCell(def, state, which));
      }
      ops.AddBatch<std::int32_t>(target->AsyncGetCells(tx, cells));
    }
  };
  issue(remote, 1, def.remote_ops);
  issue(third, 2, def.third_node_ops);
  ops.Join();
}

}  // namespace

BenchResult RunBenchmark(const BenchmarkDef& def, const sim::CostModel& costs,
                         const sim::ArchitectureModel& arch, int iterations, int warmup) {
  WorldOptions options;
  options.costs = costs;
  options.arch = arch;
  options.max_outstanding_calls = def.max_outstanding_calls;
  options.op_coalesce_batch = def.op_coalesce_batch;
  options.commit_mode = def.commit_mode;
  options.paxos_f = def.paxos_f;
  World world(def.nodes, options);

  bool paging = def.paging != Paging::kNone;
  std::uint32_t cells = paging ? kPagingCells : kSmallCells;
  size_t frames = paging ? kPagingFrames : 4096;

  ArrayServer* local = world.AddServerOf<ArrayServer>(1, "bench-array-1", cells, frames);
  ArrayServer* remote = nullptr;
  ArrayServer* third = nullptr;
  if (def.nodes >= 2) {
    remote = world.AddServerOf<ArrayServer>(2, "bench-array-2", cells, frames);
  }
  if (def.nodes >= 3) {
    third = world.AddServerOf<ArrayServer>(3, "bench-array-3", cells, frames);
  }

  BenchResult result;
  BenchState state;
  int measured = 0;
  auto run_ops = [&](Application& app, const server::Tx& tx) {
    if (def.pipelined) {
      RunOpsPipelined(def, state, app, tx, local, remote, third);
    } else {
      RunOps(def, state, tx, local, remote, third);
    }
  };
  // The monitor is always on during benchmarks: the observer never mutates a
  // clock, so measured times are bit-identical with or without it (the
  // table5_* goldens are diffed against pre-monitor output to prove it).
  sim::Tracer& tracer = world.substrate().tracer();
  tracer.Enable(true);
  world.RunApp(1, [&](Application& app) {
    // Warm-up transactions populate buffer pools and session state; the
    // paper likewise discarded start-of-test transients.
    for (int i = 0; i < warmup; ++i) {
      app.RunTransactional([&](const server::Tx& tx) {
        run_ops(app, tx);
        return Status::kOk;
      });
    }
    world.metrics().Reset();
    tracer.Clear();  // histograms and spans restart with the measured window
    SimTime t0 = world.scheduler().Now();
    sim::ComponentTimes attribution0 = tracer.CurrentTaskAttribution();
    for (int i = 0; i < iterations; ++i) {
      // RunTransactional instead of a hand-rolled retry loop. A single
      // uncontended client never aborts, so the success path is identical
      // to plain Transaction() and the paper-table numbers are unchanged.
      app.RunTransactional([&](const server::Tx& tx) {
        run_ops(app, tx);
        return Status::kOk;
      });
      if (def.write && def.paging == Paging::kNone) {
        // Steady-state page cleaning: the Accent pager writes hot dirty
        // pages back between transactions — the paper measured 0.86 random
        // page I/Os per no-paging write transaction from this activity, and
        // its counts include the I/O but not the kernel/RM messages (they
        // are off the transaction path). Paging runs need no cleaner: their
        // small pool evicts dirty pages naturally, messages and all.
        sim::Substrate::BackgroundScope background(world.substrate());
        local->segment().FlushAll();
        if (remote != nullptr) {
          remote->segment().FlushAll();
        }
        if (third != nullptr) {
          third->segment().FlushAll();
        }
      }
    }
    SimTime t1 = world.scheduler().Now();
    sim::ComponentTimes attribution1 = tracer.CurrentTaskAttribution();
    measured = iterations;
    result.elapsed_us = (t1 - t0) / iterations;
    result.elapsed_total_us = t1 - t0;
    result.iterations = iterations;
    for (int c = 0; c < sim::kComponentCount; ++c) {
      result.component_us[c] = attribution1[c] - attribution0[c];
    }
  });
  result.histograms = world.substrate().tracer().histograms().AllStats();

  const sim::Metrics& m = world.metrics();
  result.async_calls = m.async_calls_issued() / measured;
  result.messages_coalesced = m.messages_coalesced() / measured;
  result.precommit = m.Bucket(sim::Phase::kPreCommit);
  result.commit = m.Bucket(sim::Phase::kCommit);
  for (double& c : result.precommit.count) {
    c /= measured;
  }
  for (double& c : result.commit.count) {
    c /= measured;
  }
  sim::PrimitiveCounts total = result.precommit;
  total += result.commit;
  result.predicted_us = total.PredictedTime(costs);
  return result;
}

std::string FormatMs(SimTime us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string FormatCount(double c) {
  char buf[32];
  if (c == 0) {
    return "";
  }
  if (c == static_cast<int>(c)) {
    std::snprintf(buf, sizeof buf, "%d", static_cast<int>(c));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", c);
  }
  return buf;
}

}  // namespace tabs::bench
