// Ablation: Paxos Commit (non-blocking) against the paper's two-phase commit.
//
// Two-phase commit blocks: if the coordinator dies between collecting votes
// and announcing the outcome, every prepared participant holds its locks until
// the coordinator's log comes back. The kPaxosCommit mode removes that window
// by running one Paxos instance per participant vote across 2F+1 acceptors —
// any survivor can read the outcome from an acceptor quorum. The price is
// paid on EVERY commit, crash or not: prepare/accept datagrams fan out to the
// acceptors, and each acceptor forces its acceptance to its log before the
// transaction can reach its commit point.
//
// This bench quantifies that price. Each workload runs on a 3-node world
// (so the F=1 acceptor set {2F+1 = 3} spans real nodes) under both commit
// modes, and reports per-transaction elapsed virtual time plus the
// commit-phase primitive counts that differ: transaction-management
// datagrams, forced log writes, and local small messages. The 2PC rows use
// the exact paper-faithful path, so their numbers line up with the published
// Table 5-4 shapes; the paxos rows show the non-blocking overhead.
//
// Alongside the table the bench writes BENCH_commit_ablation.json for the
// CI bench gate.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "bench/workloads.h"
#include "src/sim/cost_model.h"
#include "src/txn/paxos_commit.h"

namespace tabs {
namespace {

void Run() {
  const int iterations = bench::SmokeMode() ? 8 : 24;
  const int warmup = bench::SmokeMode() ? 4 : 12;
  const sim::CostModel costs = sim::CostModel::Baseline();
  const sim::ArchitectureModel arch = sim::ArchitectureModel::Prototype();

  struct Workload {
    const char* label;
    bool write;
    int local_ops;
    int remote_ops;
    int third_ops;
  };
  // Debit-credit shapes: the local row is the branch-office fast path
  // (teller, branch and account all on one node), the remote rows move the
  // account — then a third participant — off-node. All worlds have 3 nodes
  // so the acceptor set spans real machines in both modes.
  const Workload workloads[] = {
      {"1 local read", false, 1, 0, 0},
      {"1 local write", true, 1, 0, 0},
      {"1 lcl + 1 rem write", true, 1, 1, 0},
      {"1 lcl + 1 + 1 write", true, 1, 1, 1},
  };

  struct Mode {
    const char* label;
    txn::CommitMode mode;
  };
  const Mode modes[] = {
      {"2pc", txn::CommitMode::kTwoPhase},
      {"paxos f=1", txn::CommitMode::kPaxosCommit},
  };

  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "commit_ablation");
  json.Number("iterations", iterations);
  json.Bool("smoke", bench::SmokeMode());
  json.BeginArray("rows");

  std::printf("Commit-protocol ablation: %d measured transactions per row, 3-node world\n",
              iterations);
  for (const Workload& w : workloads) {
    std::printf("\n%s\n", w.label);
    std::printf("%-10s | %12s %9s | %10s %10s %10s\n", "mode", "elapsed ms",
                "overhead", "dgram/txn", "force/txn", "smmsg/txn");
    std::printf("%.70s\n",
                "------------------------------------------------------------"
                "----------");
    SimTime twopc_us = 0;
    for (const Mode& m : modes) {
      bench::BenchmarkDef def;
      def.name = w.label;
      def.nodes = 3;
      def.write = w.write;
      def.paging = bench::Paging::kNone;
      def.local_ops = w.local_ops;
      def.remote_ops = w.remote_ops;
      def.third_node_ops = w.third_ops;
      def.commit_mode = m.mode;
      def.paxos_f = 1;
      bench::BenchResult r = bench::RunBenchmark(def, costs, arch, iterations, warmup);
      if (m.mode == txn::CommitMode::kTwoPhase) {
        twopc_us = r.elapsed_us;
      }
      double overhead = twopc_us > 0
                            ? static_cast<double>(r.elapsed_us) / twopc_us
                            : 0.0;
      double dgram = r.commit.Of(sim::Primitive::kDatagram);
      double force = r.commit.Of(sim::Primitive::kStableWrite);
      double smmsg = r.commit.Of(sim::Primitive::kSmallMessage);
      std::printf("%-10s | %12s %8.2fx | %10.2f %10.2f %10.2f\n", m.label,
                  bench::FormatMs(r.elapsed_us).c_str(), overhead, dgram, force, smmsg);
      json.BeginObject();
      // Row key for tools/check_bench.py: workload + commit mode.
      json.String("name", std::string(w.label) + " " + m.label);
      json.String("workload", w.label);
      json.String("mode", m.label);
      json.Number("elapsed_us", static_cast<std::uint64_t>(r.elapsed_us));
      json.Number("overhead_vs_2pc", overhead);
      json.Number("commit_datagrams_per_txn", dgram);
      json.Number("commit_forces_per_txn", force);
      json.Number("commit_small_messages_per_txn", smmsg);
      json.Number("precommit_datagrams_per_txn",
                  r.precommit.Of(sim::Primitive::kDatagram));
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();

  std::printf(
      "\nThe 2pc rows are the paper's commit path unchanged. The paxos rows\n"
      "pay for non-blocking commit on every transaction: prepare and accept\n"
      "datagrams fan out to the 2F+1 acceptors, and each acceptor forces its\n"
      "acceptance before the commit point. In exchange, a coordinator crash\n"
      "never strands a prepared participant — any survivor reads the outcome\n"
      "from an acceptor quorum (see tests/integration/nonblocking_commit_test\n"
      "and the paxos half of crash_point_exploration_test).\n");
  if (json.WriteFile("BENCH_commit_ablation.json")) {
    std::printf("\nwrote BENCH_commit_ablation.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
