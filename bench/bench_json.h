// Minimal JSON emission for machine-readable bench results.
//
// The benches print human-readable tables to stdout and, alongside them,
// write BENCH_*.json files that CI archives and scripts can diff across
// commits. The repo takes no third-party JSON dependency for this: the
// writer below covers exactly what the benches need (objects, arrays,
// numbers, strings, booleans) in a few dozen lines.

#ifndef TABS_BENCH_BENCH_JSON_H_
#define TABS_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tabs::bench {

class JsonWriter {
 public:
  // `key` is required inside an object and must be null inside an array (or
  // at the root).
  void BeginObject(const char* key = nullptr) {
    Prefix(key);
    out_ += '{';
    first_.push_back(1);
  }
  void EndObject() {
    out_ += '}';
    first_.pop_back();
  }
  void BeginArray(const char* key = nullptr) {
    Prefix(key);
    out_ += '[';
    first_.push_back(1);
  }
  void EndArray() {
    out_ += ']';
    first_.pop_back();
  }

  void Number(const char* key, double v) {
    Prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
  }
  void Number(const char* key, std::uint64_t v) {
    Prefix(key);
    out_ += std::to_string(v);
  }
  void Number(const char* key, int v) {
    Prefix(key);
    out_ += std::to_string(v);
  }
  void Bool(const char* key, bool v) {
    Prefix(key);
    out_ += v ? "true" : "false";
  }
  void String(const char* key, const std::string& v) {
    Prefix(key);
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (c == '\n') {
        out_ += "\\n";
      } else {
        out_ += c;
      }
    }
    out_ += '"';
  }

  const std::string& str() const { return out_; }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void Prefix(const char* key) {
    if (!first_.empty()) {
      if (!first_.back()) {
        out_ += ',';
      }
      first_.back() = 0;
    }
    if (key != nullptr) {
      out_ += '"';
      out_ += key;
      out_ += "\":";
    }
  }

  std::string out_;
  std::vector<char> first_;
};

// Small-scale escape hatch for the CI bench-smoke job: with TABS_BENCH_SMOKE=1
// in the environment, benches shrink their windows/iteration counts so the
// whole run takes seconds. Results are still real (and deterministic), just
// lower-resolution.
inline bool SmokeMode() {
  const char* e = std::getenv("TABS_BENCH_SMOKE");
  return e != nullptr && e[0] == '1';
}

}  // namespace tabs::bench

#endif  // TABS_BENCH_BENCH_JSON_H_
