// Ablation: the asynchronous communication fast path (pipelined server calls
// and message coalescing) against the paper's sequential RPC discipline.
//
// The paper's Table 5-4 shows inter-node benchmarks dominated by the 89 ms
// server-server datagram exchange: every remote operation pays a full
// round-trip before the next can start. This bench takes remote-op-dominated
// multi-node workloads and sweeps the two fast-path knobs:
//
//   w = WorldOptions::max_outstanding_calls  (pipelining window per txn)
//   c = WorldOptions::op_coalesce_batch      (independent ops per message)
//
// The w=1, c=1 sequential row is the paper-faithful baseline; every other row
// reports its speedup over that row. Alongside the table the bench writes
// BENCH_pipeline.json for the CI bench gate.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/workloads.h"
#include "src/sim/cost_model.h"

namespace tabs {
namespace {

void Run() {
  const int iterations = bench::SmokeMode() ? 8 : 24;
  const int warmup = bench::SmokeMode() ? 4 : 12;
  const sim::CostModel costs = sim::CostModel::Baseline();
  const sim::ArchitectureModel arch = sim::ArchitectureModel::Prototype();

  struct Workload {
    const char* label;
    int nodes;
    bool write;
    int local_ops;
    int remote_ops;
    int third_ops;
  };
  const Workload workloads[] = {
      {"1 lcl + 8 rem read, 2 nodes", 2, false, 1, 8, 0},
      {"1 lcl + 4 + 4 read, 3 nodes", 3, false, 1, 4, 4},
      {"1 lcl + 4 + 4 write, 3 nodes", 3, true, 1, 4, 4},
  };

  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "pipeline_ablation");
  json.Number("iterations", iterations);
  json.Bool("smoke", bench::SmokeMode());
  json.BeginArray("rows");

  std::printf("Pipelining/coalescing ablation: %d measured transactions per row\n",
              iterations);
  for (const Workload& w : workloads) {
    std::printf("\n%s\n", w.label);
    std::printf("%-12s %5s %5s | %12s %9s %11s %10s\n", "mode", "w", "c",
                "elapsed ms", "speedup", "async/txn", "coal/txn");
    std::printf("%.72s\n",
                "------------------------------------------------------------"
                "------------");
    SimTime sequential_us = 0;
    auto run_row = [&](bool pipelined, int window, int coalesce) {
      bench::BenchmarkDef def;
      def.name = w.label;
      def.nodes = w.nodes;
      def.write = w.write;
      def.paging = bench::Paging::kNone;
      def.local_ops = w.local_ops;
      def.remote_ops = w.remote_ops;
      def.third_node_ops = w.third_ops;
      def.pipelined = pipelined;
      def.max_outstanding_calls = window;
      def.op_coalesce_batch = coalesce;
      bench::BenchResult r = bench::RunBenchmark(def, costs, arch, iterations, warmup);
      if (!pipelined) {
        sequential_us = r.elapsed_us;
      }
      double speedup = r.elapsed_us > 0
                           ? static_cast<double>(sequential_us) / r.elapsed_us
                           : 0.0;
      std::printf("%-12s %5d %5d | %12s %8.2fx %11.2f %10.2f\n",
                  pipelined ? "pipelined" : "sequential", window, coalesce,
                  bench::FormatMs(r.elapsed_us).c_str(), speedup, r.async_calls,
                  r.messages_coalesced);
      json.BeginObject();
      // Row key for tools/check_bench.py: workload + mode + both knobs.
      json.String("name", std::string(w.label) + (pipelined ? " pipelined" : " sequential") +
                              " w=" + std::to_string(window) +
                              " c=" + std::to_string(coalesce));
      json.String("workload", w.label);
      json.Bool("pipelined", pipelined);
      json.Number("max_outstanding_calls", window);
      json.Number("op_coalesce_batch", coalesce);
      json.Number("elapsed_us", static_cast<std::uint64_t>(r.elapsed_us));
      json.Number("speedup", speedup);
      json.Number("async_calls_per_txn", r.async_calls);
      json.Number("messages_coalesced_per_txn", r.messages_coalesced);
      json.EndObject();
    };
    run_row(false, 1, 1);
    for (int window : {1, 2, 4, 8}) {
      for (int coalesce : {1, 2, 4}) {
        run_row(true, window, coalesce);
      }
    }
  }
  json.EndArray();
  json.EndObject();

  std::printf(
      "\nWith w=1, c=1 the async path serialises exactly like the paper's\n"
      "sequential discipline (same messages, same charging), so its row matches\n"
      "the baseline. Widening the window overlaps the 89 ms inter-node\n"
      "round-trips that dominate these workloads; coalescing amortises whole\n"
      "messages away by carrying several independent operations per datagram\n"
      "exchange. The two compose: a batch occupies one window slot.\n");
  if (json.WriteFile("BENCH_pipeline.json")) {
    std::printf("\nwrote BENCH_pipeline.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
