// Real-CPU micro-benchmarks (google-benchmark) of the substrate's hot
// paths: log append/force, lock acquire/release, scheduler task turnaround,
// recoverable-segment access, and B-tree operations. These measure the
// implementation itself (host nanoseconds), not the simulated Perq — the
// Table 5-x binaries handle the paper's virtual-time results.

#include <benchmark/benchmark.h>

#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/servers/array_server.h"
#include "src/servers/btree_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

void BM_LogAppend(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  log::StableLogDevice device;
  log::LogManager log(substrate, device);
  log::LogRecord rec;
  rec.type = log::RecordType::kValueUpdate;
  rec.owner = {1, 1};
  rec.top = {1, 1};
  rec.server = "bench";
  rec.oid = {1, 0, 8};
  rec.old_value = Bytes(8, 0);
  rec.new_value = Bytes(8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppend);

void BM_LogRecordSerializeRoundTrip(benchmark::State& state) {
  log::LogRecord rec;
  rec.type = log::RecordType::kValueUpdate;
  rec.owner = {1, 1};
  rec.top = {1, 1};
  rec.server = "bench";
  rec.oid = {1, 0, 64};
  rec.old_value = Bytes(64, 0);
  rec.new_value = Bytes(64, 1);
  for (auto _ : state) {
    Bytes b = rec.Serialize();
    auto back = log::LogRecord::Deserialize(b);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRecordSerializeRoundTrip);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Scheduler sched;
  lock::LockManager lm(sched, lock::CompatibilityMatrix::SharedExclusive(), 1000);
  TransactionId tid{1, 1};
  ObjectId oid{1, 0, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.ConditionalLock(tid, oid, lock::kExclusive));
    lm.ReleaseAll(tid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_SchedulerTaskTurnaround(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int x = 0;
    sched.Spawn("t", 1, 0, [&] { x = 1; });
    sched.Run();
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerTaskTurnaround);

void BM_SegmentReadResident(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  sim::SimDisk disk(substrate);
  kernel::RecoverableSegment seg(substrate, disk, 1, 8, 8);
  seg.Read({1, 0, 8});  // fault in once
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg.Read({1, 0, 8}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentReadResident);

void BM_LocalTransactionEndToEnd(benchmark::State& state) {
  World world(1);
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "a", 64u);
  for (auto _ : state) {
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, 0, 1);
        return Status::kOk;
      });
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalTransactionEndToEnd);

void BM_BTreeInsertLookup(benchmark::State& state) {
  World world(1);
  auto* bt = world.AddServerOf<servers::BTreeServer>(1, "b", 390u);
  int i = 0;
  for (auto _ : state) {
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        char key[16];
        std::snprintf(key, sizeof key, "k%07d", i % 500);
        bt->Upsert(tx, key, "value");
        benchmark::DoNotOptimize(bt->Lookup(tx, key));
        return Status::kOk;
      });
    });
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertLookup);

}  // namespace
}  // namespace tabs

BENCHMARK_MAIN();
