// The paper's benchmark suite (Section 5.1): fourteen single-transaction
// workloads over the integer array server, designed to expose the four
// dimensions of system behaviour — read vs write, no/sequential/random
// paging, single vs multiple operations, and one/two/three nodes.
//
// RunBenchmark executes a workload repeatedly on a fresh World under a given
// cost/architecture model, discards warm-up transients (the paper discarded
// start/end transients too), and reports steady-state per-transaction
// primitive counts (pre-commit and commit buckets, Tables 5-2/5-3) plus
// average elapsed virtual time (Table 5-4).

#ifndef TABS_BENCH_WORKLOADS_H_
#define TABS_BENCH_WORKLOADS_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/metrics.h"
#include "src/sim/tracer.h"
#include "src/txn/paxos_commit.h"

namespace tabs::bench {

enum class Paging { kNone, kSequential, kRandom };

struct BenchmarkDef {
  std::string name;
  int nodes = 1;          // 1, 2 or 3 (node 1 hosts the application)
  bool write = false;
  Paging paging = Paging::kNone;
  int local_ops = 1;      // operations on the node-1 array
  int remote_ops = 0;     // operations on the node-2 array
  int third_node_ops = 0; // operations on the node-3 array

  // Communication fast path (pipeline_ablation only). The paper benchmarks
  // leave these at their defaults, which make the async machinery behave
  // exactly like the sequential path, so the Table 5-x outputs are unchanged.
  bool pipelined = false;          // issue remote/third-node ops via AsyncOps
  int max_outstanding_calls = 1;   // WorldOptions::max_outstanding_calls
  int op_coalesce_batch = 1;       // WorldOptions::op_coalesce_batch

  // Commit protocol (commit_ablation only). The default is the paper's
  // two-phase commit, so every Table 5-x output is unchanged.
  txn::CommitMode commit_mode = txn::CommitMode::kTwoPhase;
  int paxos_f = 1;                 // acceptor failures tolerated (kPaxosCommit)
};

// The fourteen benchmarks, in the paper's Table 5-2/5-4 order.
std::vector<BenchmarkDef> PaperBenchmarks();

struct BenchResult {
  sim::PrimitiveCounts precommit;       // per transaction, steady state
  sim::PrimitiveCounts commit;
  SimTime elapsed_us = 0;               // average per transaction
  SimTime predicted_us = 0;             // weighted primitive sum (Section 5.1)
  double async_calls = 0;               // async wire calls issued, per txn
  double messages_coalesced = 0;        // ops that shared a message, per txn

  // Performance-monitor views of the measured window, kept raw (no
  // per-iteration division) so the Section 5.2 identity holds exactly:
  // sum(component_us) == elapsed_total_us == elapsed_us * iterations + rem.
  sim::ComponentTimes component_us{};   // per-component virtual time
  SimTime elapsed_total_us = 0;         // whole measured window
  int iterations = 0;
  std::map<std::string, sim::HistogramRegistry::Stats> histograms;
};

BenchResult RunBenchmark(const BenchmarkDef& def, const sim::CostModel& costs,
                         const sim::ArchitectureModel& arch, int iterations = 24,
                         int warmup = 12);

// Formatting helpers shared by the table binaries.
std::string FormatMs(SimTime us);
std::string FormatCount(double c);

}  // namespace tabs::bench

#endif  // TABS_BENCH_WORKLOADS_H_
