// Queue-oriented execution ablation (ROADMAP: "Break the hot-spot ceiling").
//
// The hot-spot wall is lock hold time. Under strict 2PL a writer holds its
// exclusive lock on the hot object across the commit record's group-commit
// wait AND the log force — tens of virtual milliseconds of 1985 disk during
// which every queued successor just waits. The larger the group-commit
// window (the knob that makes commits cheap for *uncontended* load), the
// longer the hot lock rides it: group commit and hot objects are enemies
// under strict 2PL. Queue-oriented execution (WorldOptions::queue_execution)
// releases update locks as soon as the commit record is *appended* — WAL
// order then guarantees a successor's durable commit implies the
// predecessor's — so successors execute during the predecessor's window wait
// and force, and the hot object's throughput is bounded by execution time,
// not commit latency.
//
// The sweep runs at the paper's *achievable* primitive times (Table 5-5:
// a 2.5 ms data-server call against a disk that still costs 32 ms), the
// regime the mode exists for — execution is cheap, commit latency is not,
// so almost all of a hot lock's hold time is commit latency. At the 1985
// baseline times the 26 ms local RPC dominates the hold instead and early
// release recovers only ~1.6x; that ratio only grows as CPUs outrun disks.
// The group-commit window is set near the force duration (~20 virtual
// ms), the classic operating point where batching actually pays; the off leg
// shows what that window costs a hot object, the on leg shows the queue mode
// recovering it. (The distributed in-doubt variant cannot pipeline this
// deeply by design: a successor's prepare must await the predecessor's
// verdict — a prepared participant has ceded its right to abort — so the
// in-doubt queue advances one commit round at a time; see DESIGN.md. The
// integration tests cover that path; this bench measures the co-located
// hot spot where the mode's deep pipeline exists.)
//
// Three workloads, each run with the mode off and on at the same group-commit
// window, sweeping the client count:
//   * hot-array   — every client updates array cell 0 under an exclusive
//                   lock: the serialized case the mode exists for;
//   * spread-array — each client owns a cell: no conflicts, so the mode must
//                   not cost anything (sanity leg);
//   * hot-account — every client deposits into one account: typed
//                   increment/decrement locks already commute, so this leg
//                   shows the typed-locking baseline the queue mode chases.
//
// Writes BENCH_queue_ablation.json; rows are keyed "workload/mode/cN" for
// the CI bench gate.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_json.h"
#include "src/sim/cost_model.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

// 10 virtual seconds, or 1 under TABS_BENCH_SMOKE=1 (the CI smoke job).
const SimTime kWindow = bench::SmokeMode() ? 1'000'000 : 10'000'000;
// Both legs share one group-commit window sized to the force duration (the
// operating point where batching pays): the mode's gain is pipelining *into*
// the window, not the window itself.
constexpr SimTime kGroupCommitWindowUs = 20'000;

struct Outcome {
  int committed = 0;  // commits that completed inside the measurement window
  int tail = 0;       // commits that straggled in during the drain
  int aborted = 0;
  double forces_per_commit = 0;
  double per_second() const { return committed / (kWindow / 1'000'000.0); }
};

enum class Workload { kHotArray, kSpreadArray, kHotAccount };

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kHotArray: return "hot-array";
    case Workload::kSpreadArray: return "spread-array";
    default: return "hot-account";
  }
}

Outcome Run(Workload workload, bool queue_on, int clients) {
  WorldOptions opt;
  // Table 5-5 achievable times: cheap execution, disk-bound commit — the
  // hot-object regime where lock hold ~= commit latency (see file header).
  opt.costs = sim::CostModel::Achievable();
  opt.group_commit_window_us = kGroupCommitWindowUs;
  opt.queue_execution = queue_on;
  World world(1, opt);  // co-located: root-commit (taint-free) early release
  servers::ArrayServer* arr = nullptr;
  servers::AccountServer* bank = nullptr;
  if (workload == Workload::kHotAccount) {
    bank = world.AddServerOf<servers::AccountServer>(1, "bank", 64u);
  } else {
    arr = world.AddServerOf<servers::ArrayServer>(1, "cells", 64u);
  }
  Outcome out;
  for (int c = 0; c < clients; ++c) {
    world.SpawnApp(1, "client", [&, c](Application& app) {
      while (world.scheduler().Now() < kWindow) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          switch (workload) {
            case Workload::kHotArray:
              return arr->SetCell(tx, 0, c);
            case Workload::kSpreadArray:
              return arr->SetCell(tx, static_cast<std::uint32_t>(c), c);
            default:
              return bank->Deposit(tx, 0, 1);
          }
        });
        if (s == Status::kOk) {
          // The drain tail (in-flight transactions finishing after the
          // window) is reported separately: it is O(clients) for every leg
          // and would otherwise dilute the measured rate difference.
          if (world.scheduler().Now() <= kWindow) {
            ++out.committed;
          } else {
            ++out.tail;
          }
        } else {
          ++out.aborted;
          if (std::getenv("TABS_QUEUE_DEBUG") != nullptr) {
            std::printf("  [abort %s/%s/c%d client %d: %s @%lld]\n",
                        WorkloadName(workload), queue_on ? "on" : "off",
                        clients, c, StatusName(s),
                        static_cast<long long>(world.scheduler().Now()));
          }
        }
      }
    }, c * 1'000);
  }
  world.Drain();
  out.forces_per_commit =
      out.committed > 0 ? world.metrics().forces_issued() / (out.committed + out.tail)
                        : 0.0;
  return out;
}

void Run() {
  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "queue_ablation");
  json.Number("window_virtual_us", static_cast<std::uint64_t>(kWindow));
  json.Number("group_commit_window_us",
              static_cast<std::uint64_t>(kGroupCommitWindowUs));
  json.Bool("smoke", bench::SmokeMode());

  std::printf("Queue-oriented execution: committed txn per virtual second\n"
              "(%d s window, group commit %lld us, queue mode off vs on)\n",
              static_cast<int>(kWindow / 1'000'000),
              static_cast<long long>(kGroupCommitWindowUs));
  json.BeginArray("rows");
  for (Workload w :
       {Workload::kHotArray, Workload::kSpreadArray, Workload::kHotAccount}) {
    std::printf("\n%s\n", WorkloadName(w));
    std::printf("%-9s | %-26s | %-26s | %-8s\n", "", "queue off", "queue on",
                "speedup");
    std::printf("%-9s | %10s %7s %7s | %10s %7s %7s | %8s\n", "clients", "txn/s",
                "aborts", "f/txn", "txn/s", "aborts", "f/txn", "on/off");
    std::printf("%.82s\n",
                "----------------------------------------------------------------"
                "------------------");
    for (int clients : {1, 4, 8, 16}) {
      Outcome off = Run(w, false, clients);
      Outcome on = Run(w, true, clients);
      double speedup = off.committed > 0
                           ? static_cast<double>(on.committed) / off.committed
                           : 0.0;
      std::printf("%-9d | %10.1f %7d %7.3f | %10.1f %7d %7.3f | %7.2fx\n",
                  clients, off.per_second(), off.aborted, off.forces_per_commit,
                  on.per_second(), on.aborted, on.forces_per_commit, speedup);
      struct Leg {
        const char* mode;
        const Outcome* o;
      };
      for (const Leg& leg : {Leg{"off", &off}, Leg{"on", &on}}) {
        char name[64];
        std::snprintf(name, sizeof name, "%s/%s/c%d", WorkloadName(w), leg.mode,
                      clients);
        json.BeginObject();
        json.String("name", name);
        json.Number("txn_per_s", leg.o->per_second());
        json.Number("committed", leg.o->committed);
        json.Number("tail", leg.o->tail);
        json.Number("aborts", leg.o->aborted);
        json.Number("forces_per_commit", leg.o->forces_per_commit);
        json.EndObject();
      }
    }
  }
  json.EndArray();
  std::printf(
      "\nHot-array throughput is commit-latency-bound with the mode off (the\n"
      "exclusive lock rides the group-commit window and the force) and\n"
      "execution-bound with it on: the commit append releases the lock, so\n"
      "successors run during the predecessor's window wait and force.\n"
      "Spread writes are conflict-free, so both legs coincide; the hot account\n"
      "shows what typed increment locks already achieve without early release.\n");
  json.EndObject();
  if (json.WriteFile("BENCH_queue_ablation.json")) {
    std::printf("\nwrote BENCH_queue_ablation.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
