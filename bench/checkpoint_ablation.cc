// Ablation: checkpoint frequency vs crash-recovery work (Section 2.1.3:
// "Checkpoints serve to reduce the amount of log data that must be available
// for crash recovery and shorten the time to recover after a crash").
//
// The same write workload runs with reclamation triggered at different
// log-space budgets (reclamation = incremental flush + fuzzy checkpoint +
// truncate), each with the background page cleaner off and on; the node then
// crashes and the table reports how much log survived, how many records
// recovery scanned, how long (virtual time) recovery took, and how many page
// write-backs transactions paid synchronously (fg-wr: fault-path evictions
// plus reclamation flushes) vs the cleaner's background sweeps (bg-wr).
//
// Alongside the table, the bench writes BENCH_checkpoint.json with the same
// numbers in machine-readable form.

#include <cstdio>

#include "bench/bench_json.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

// 400 transactions over a 16-page array, or 120 under TABS_BENCH_SMOKE=1.
const int kTxns = bench::SmokeMode() ? 120 : 400;

struct Row {
  std::uint64_t log_bytes = 0;
  int reclaims = 0;
  int records_scanned = 0;
  SimTime recovery_us = 0;
  SimTime workload_us = 0;
  double forces_per_commit = 0;
  double fg_writes = 0;
  double bg_writes = 0;
  double txn_per_s() const {
    return workload_us > 0 ? kTxns / (workload_us / 1'000'000.0) : 0.0;
  }
};

Row RunWith(std::uint64_t budget, bool cleaner_on) {
  WorldOptions options;
  options.log_space_budget = budget;
  if (cleaner_on) {
    options.page_clean_interval_us = 1'000;
    options.page_clean_batch = 16;
  }
  World world(2, options);
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "arr", 2048u);
  Row row;
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < kTxns; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        // Stride 16 cells: the working set cycles through all 16 pages, so
        // reclamation (and the cleaner) have real dirty-page spread to chew.
        arr->SetCell(tx, static_cast<std::uint32_t>(i * 16 % 2048), i);
        return Status::kOk;
      });
    }
    row.workload_us = world.scheduler().Now();
    row.log_bytes = world.rm(1).StableLogBytesInUse();
    row.reclaims = world.rm(1).auto_reclaim_count();
    row.forces_per_commit = world.metrics().forces_issued() / kTxns;
    row.fg_writes = world.metrics().page_writes_foreground();
    row.bg_writes = world.metrics().page_writes_background();
    world.CrashNode(1);
  });
  world.RunApp(2, [&](Application&) {
    SimTime t0 = world.scheduler().Now();
    auto stats = world.RecoverNode(1);
    row.recovery_us = world.scheduler().Now() - t0;
    row.records_scanned = stats.records_scanned;
  });
  return row;
}

void Run() {
  std::printf("Checkpoint/reclamation ablation: %d write transactions, then a crash\n",
              kTxns);
  std::printf("%-16s %-7s | %12s %9s %12s %12s %7s %7s\n", "log budget", "cleaner",
              "log bytes", "reclaims", "rec scanned", "recovery ms", "fg-wr", "bg-wr");
  std::printf("%.92s\n",
              "--------------------------------------------------------------------"
              "------------------------");
  struct Config {
    const char* label;
    std::uint64_t budget;
  };
  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "checkpoint_ablation");
  json.Number("transactions", kTxns);
  json.Bool("smoke", bench::SmokeMode());
  json.BeginArray("rows");
  for (const Config& c : {Config{"none (infinite)", 0}, Config{"256 KiB", 256 * 1024},
                          Config{"64 KiB", 64 * 1024}, Config{"16 KiB", 16 * 1024},
                          Config{"4 KiB", 4 * 1024}}) {
    for (bool cleaner_on : {false, true}) {
      Row row = RunWith(c.budget, cleaner_on);
      std::printf("%-16s %-7s | %12llu %9d %12d %12.1f %7.0f %7.0f\n", c.label,
                  cleaner_on ? "on" : "off",
                  static_cast<unsigned long long>(row.log_bytes), row.reclaims,
                  row.records_scanned, row.recovery_us / 1000.0, row.fg_writes,
                  row.bg_writes);
      json.BeginObject();
      json.String("budget_label", c.label);
      json.Number("budget_bytes", c.budget);
      json.Bool("cleaner", cleaner_on);
      json.Number("log_bytes", row.log_bytes);
      json.Number("reclaims", row.reclaims);
      json.Number("records_scanned", row.records_scanned);
      json.Number("recovery_ms", row.recovery_us / 1000.0);
      json.Number("txn_per_s", row.txn_per_s());
      json.Number("forces_per_commit", row.forces_per_commit);
      json.Number("fault_path_page_writes", row.fg_writes);
      json.Number("background_page_writes", row.bg_writes);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  std::printf(
      "\nTighter budgets reclaim more often, keeping the retained log — and therefore\n"
      "recovery's scan work and elapsed time — small and flat, at the cost of extra\n"
      "page-force activity during normal operation. With no checkpoints the whole\n"
      "history must be scanned after a crash. The page cleaner moves those forced\n"
      "write-backs off the transactions' critical path (fg-wr falls, bg-wr rises):\n"
      "reclamation's fuzzy checkpoint finds the oldest dirt already on disk.\n");
  if (json.WriteFile("BENCH_checkpoint.json")) {
    std::printf("\nwrote BENCH_checkpoint.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
