// Ablation: checkpoint frequency vs crash-recovery work (Section 2.1.3:
// "Checkpoints serve to reduce the amount of log data that must be available
// for crash recovery and shorten the time to recover after a crash").
//
// The same 400-transaction workload runs with reclamation triggered at
// different log-space budgets (reclamation = flush + checkpoint + truncate);
// the node then crashes and the table reports how much log survived, how many
// records recovery scanned, and how long (virtual time) recovery took.

#include <cstdio>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

struct Row {
  std::uint64_t log_bytes = 0;
  int reclaims = 0;
  int records_scanned = 0;
  SimTime recovery_us = 0;
};

Row RunWith(std::uint64_t budget) {
  WorldOptions options;
  options.log_space_budget = budget;
  World world(2, options);
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "arr", 64u);
  Row row;
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 400; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, i % 32, i);
        return Status::kOk;
      });
    }
    row.log_bytes = world.rm(1).StableLogBytesInUse();
    row.reclaims = world.rm(1).auto_reclaim_count();
    world.CrashNode(1);
  });
  world.RunApp(2, [&](Application&) {
    SimTime t0 = world.scheduler().Now();
    auto stats = world.RecoverNode(1);
    row.recovery_us = world.scheduler().Now() - t0;
    row.records_scanned = stats.records_scanned;
  });
  return row;
}

void Run() {
  std::printf("Checkpoint/reclamation ablation: 400 write transactions, then a crash\n");
  std::printf("%-16s | %12s %9s %12s %12s\n", "log budget", "log bytes", "reclaims",
              "rec scanned", "recovery ms");
  std::printf("%.68s\n",
              "--------------------------------------------------------------------");
  struct Config {
    const char* label;
    std::uint64_t budget;
  };
  for (const Config& c : {Config{"none (infinite)", 0}, Config{"256 KiB", 256 * 1024},
                          Config{"64 KiB", 64 * 1024}, Config{"16 KiB", 16 * 1024},
                          Config{"4 KiB", 4 * 1024}}) {
    Row row = RunWith(c.budget);
    std::printf("%-16s | %12llu %9d %12d %12.1f\n", c.label,
                static_cast<unsigned long long>(row.log_bytes), row.reclaims,
                row.records_scanned, row.recovery_us / 1000.0);
  }
  std::printf(
      "\nTighter budgets reclaim more often, keeping the retained log — and therefore\n"
      "recovery's scan work and elapsed time — small and flat, at the cost of extra\n"
      "page-force activity during normal operation. With no checkpoints the whole\n"
      "history must be scanned after a crash.\n");
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
