// Throughput methodology (paper Section 7: "we would like to develop a
// performance methodology for measuring and predicting throughput").
//
// N concurrent application tasks run transactions against one node for a
// fixed virtual-time window; the table reports committed transactions per
// virtual second and the abort (lock-timeout) count, for three workloads:
//   * spread writes  — each client owns a cell: no lock conflicts; total
//     throughput is bounded by resource costs, not synchronization;
//   * hot-spot writes — every client updates the same cell with exclusive
//     locks: strict serialization, throughput flat, timeouts appear as the
//     queue outgrows the lock timeout;
//   * remote writes  — each transaction updates a remote cell too, so
//     clients overlap their waiting on each other and aggregate throughput
//     exceeds a single client's.

#include <cstdio>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

constexpr SimTime kWindow = 20'000'000;  // 20 virtual seconds

struct Outcome {
  int committed = 0;
  int aborted = 0;
  double per_second() const { return committed / (kWindow / 1'000'000.0); }
};

enum class Workload { kSpread, kHotSpot, kRemote };

Outcome RunIn(World& world, Workload workload, int clients) {
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "local", 64u);
  servers::ArrayServer* remote = nullptr;
  if (world.node_count() == 2) {
    remote = world.AddServerOf<servers::ArrayServer>(2, "remote", 64u);
  }
  Outcome out;
  for (int c = 0; c < clients; ++c) {
    world.SpawnApp(1, "client", [&, c](Application& app) {
      while (world.scheduler().Now() < kWindow) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          std::uint32_t cell =
              workload == Workload::kHotSpot ? 0 : static_cast<std::uint32_t>(c);
          Status w = local->SetCell(tx, cell, 1);
          if (w != Status::kOk) {
            return w;
          }
          if (remote != nullptr) {
            return remote->SetCell(tx, cell, 1);
          }
          return Status::kOk;
        });
        if (s == Status::kOk) {
          ++out.committed;
        } else {
          ++out.aborted;
        }
      }
    }, c * 1'000);
  }
  world.Drain();
  return out;
}

Outcome Run(Workload workload, int clients) {
  int nodes = workload == Workload::kRemote ? 2 : 1;
  World world(nodes);
  return RunIn(world, workload, clients);
}

// Group-commit sweep: spread writes, varying the batch window. Reports
// committed transactions per virtual second and stable log forces per commit
// (window 0 = the paper's per-transaction force).
void GroupCommitSweep() {
  std::printf("\nGroup commit: spread writes, batch window sweep (%d s window)\n",
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-9s", "clients");
  for (SimTime window : {0, 500, 2'000, 10'000}) {
    char head[32];
    std::snprintf(head, sizeof head, "window=%lldus",
                  static_cast<long long>(window));
    std::printf(" | %10s %-10s", "txn/s", head);
  }
  std::printf("\n%-9s", "");
  for (int i = 0; i < 4; ++i) {
    std::printf(" | %10s %-10s", "", "forces/txn");
  }
  std::printf("\n%.105s\n",
              "-----------------------------------------------------------------"
              "----------------------------------------");
  for (int clients : {1, 8, 16}) {
    std::printf("%-9d", clients);
    for (SimTime window : {0, 500, 2'000, 10'000}) {
      WorldOptions opt;
      opt.group_commit_window_us = window;
      World world(1, opt);
      Outcome out = RunIn(world, Workload::kSpread, clients);
      double forces_per_commit =
          out.committed > 0 ? world.metrics().forces_issued() / out.committed : 0.0;
      std::printf(" | %10.1f %-10.3f", out.per_second(), forces_per_commit);
    }
    std::printf("\n");
  }
  std::printf(
      "\nWith a nonzero window, concurrent committers share one stable write\n"
      "(forces/txn < 1) and stop queueing on the log spindle, so throughput\n"
      "rises with the client count; a single client gains nothing and pays up\n"
      "to one window of extra commit latency.\n");
}

void Run() {
  std::printf("Throughput: committed transactions per virtual second (%d s window)\n",
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-9s | %-18s | %-18s | %-18s\n", "", "spread writes", "hot-spot writes",
              "2-node writes");
  std::printf("%-9s | %10s %7s | %10s %7s | %10s %7s\n", "clients", "txn/s", "aborts",
              "txn/s", "aborts", "txn/s", "aborts");
  std::printf("%.72s\n",
              "------------------------------------------------------------------------");
  for (int clients : {1, 2, 4, 8, 16}) {
    Outcome spread = Run(Workload::kSpread, clients);
    Outcome hot = Run(Workload::kHotSpot, clients);
    Outcome remote = Run(Workload::kRemote, clients);
    std::printf("%-9d | %10.1f %7d | %10.1f %7d | %10.1f %7d\n", clients,
                spread.per_second(), spread.aborted, hot.per_second(), hot.aborted,
                remote.per_second(), remote.aborted);
  }
  std::printf(
      "\nSpread and hot-spot throughput coincide at one client and diverge with\n"
      "contention: exclusive hot-spot locks serialize (and eventually time out)\n"
      "while spread writes scale with available overlap. Distributed transactions\n"
      "let clients overlap each other's remote waits.\n");
  GroupCommitSweep();
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
