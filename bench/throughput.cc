// Throughput methodology (paper Section 7: "we would like to develop a
// performance methodology for measuring and predicting throughput").
//
// N concurrent application tasks run transactions against one node for a
// fixed virtual-time window; the table reports committed transactions per
// virtual second and the abort (lock-timeout) count, for three workloads:
//   * spread writes  — each client owns a cell: no lock conflicts; total
//     throughput is bounded by resource costs, not synchronization;
//   * hot-spot writes — every client updates the same cell with exclusive
//     locks: strict serialization, throughput flat, timeouts appear as the
//     queue outgrows the lock timeout;
//   * remote writes  — each transaction updates a remote cell too, so
//     clients overlap their waiting on each other and aggregate throughput
//     exceeds a single client's.
//
// Alongside the tables, the bench writes BENCH_throughput.json with the same
// numbers in machine-readable form (txn/s, forces per commit, synchronous
// page write-backs on the fault path).

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "src/kernel/page_cleaner.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

// 20 virtual seconds, or 2 under TABS_BENCH_SMOKE=1 (the CI smoke job).
const SimTime kWindow = bench::SmokeMode() ? 2'000'000 : 20'000'000;

struct Outcome {
  int committed = 0;
  int aborted = 0;
  double per_second() const { return committed / (kWindow / 1'000'000.0); }
};

enum class Workload { kSpread, kHotSpot, kRemote };

Outcome RunIn(World& world, Workload workload, int clients) {
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "local", 64u);
  servers::ArrayServer* remote = nullptr;
  if (world.node_count() == 2) {
    remote = world.AddServerOf<servers::ArrayServer>(2, "remote", 64u);
  }
  Outcome out;
  for (int c = 0; c < clients; ++c) {
    world.SpawnApp(1, "client", [&, c](Application& app) {
      while (world.scheduler().Now() < kWindow) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          std::uint32_t cell =
              workload == Workload::kHotSpot ? 0 : static_cast<std::uint32_t>(c);
          Status w = local->SetCell(tx, cell, 1);
          if (w != Status::kOk) {
            return w;
          }
          if (remote != nullptr) {
            return remote->SetCell(tx, cell, 1);
          }
          return Status::kOk;
        });
        if (s == Status::kOk) {
          ++out.committed;
        } else {
          ++out.aborted;
        }
      }
    }, c * 1'000);
  }
  world.Drain();
  return out;
}

Outcome Run(Workload workload, int clients) {
  int nodes = workload == Workload::kRemote ? 2 : 1;
  World world(nodes);
  return RunIn(world, workload, clients);
}

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kSpread: return "spread";
    case Workload::kHotSpot: return "hot-spot";
    default: return "remote";
  }
}

// Group-commit sweep: spread writes, varying the batch window. Reports
// committed transactions per virtual second and stable log forces per commit
// (window 0 = the paper's per-transaction force).
void GroupCommitSweep(bench::JsonWriter& json) {
  std::printf("\nGroup commit: spread writes, batch window sweep (%d s window)\n",
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-9s", "clients");
  for (SimTime window : {0, 500, 2'000, 10'000}) {
    char head[32];
    std::snprintf(head, sizeof head, "window=%lldus",
                  static_cast<long long>(window));
    std::printf(" | %10s %-10s", "txn/s", head);
  }
  std::printf("\n%-9s", "");
  for (int i = 0; i < 4; ++i) {
    std::printf(" | %10s %-10s", "", "forces/txn");
  }
  std::printf("\n%.105s\n",
              "-----------------------------------------------------------------"
              "----------------------------------------");
  json.BeginArray("group_commit");
  for (int clients : {1, 8, 16}) {
    std::printf("%-9d", clients);
    for (SimTime window : {0, 500, 2'000, 10'000}) {
      WorldOptions opt;
      opt.group_commit_window_us = window;
      World world(1, opt);
      Outcome out = RunIn(world, Workload::kSpread, clients);
      double forces_per_commit =
          out.committed > 0 ? world.metrics().forces_issued() / out.committed : 0.0;
      std::printf(" | %10.1f %-10.3f", out.per_second(), forces_per_commit);
      json.BeginObject();
      json.Number("clients", clients);
      json.Number("window_us", static_cast<std::uint64_t>(window));
      json.Number("txn_per_s", out.per_second());
      json.Number("aborts", out.aborted);
      json.Number("forces_per_commit", forces_per_commit);
      json.EndObject();
    }
    std::printf("\n");
  }
  json.EndArray();
  std::printf(
      "\nWith a nonzero window, concurrent committers share one stable write\n"
      "(forces/txn < 1) and stop queueing on the log spindle, so throughput\n"
      "rises with the client count; a single client gains nothing and pays up\n"
      "to one window of extra commit latency.\n");
}

// Page-cleaner sweep: a paging workload (hot set twice the buffer pool)
// under a log-space budget, with the background cleaner off vs on. With the
// cleaner off, every page write-back is synchronous — a fault evicts a dirty
// frame, or reclamation flushes inside the triggering transaction. With it
// on, the cleaner daemon writes dirty frames back between transactions in
// elevator order and faults steal clean victims, so the synchronous
// write-backs (fg-wr/txn) collapse and throughput holds or rises.
struct CleanerCell {
  int clients = 0;
  bool cleaner = false;
  Outcome out;
  double fg_writes = 0;  // synchronous: fault-path evictions + reclamation
  double bg_writes = 0;  // cleaner daemon
  double forces_per_commit = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t passes = 0;
  double fg_per_txn() const {
    return out.committed > 0 ? fg_writes / out.committed : 0.0;
  }
};

CleanerCell RunCleanerCell(int clients, bool cleaner_on) {
  constexpr std::uint32_t kCells = 16'384;  // 64 KiB = 128 pages
  WorldOptions opt;
  opt.log_space_budget = 16 * 1024;
  opt.log_reclaim_watermark = 0.75;
  if (cleaner_on) {
    opt.page_clean_interval_us = 1'000;
    opt.page_clean_batch = 32;
  }
  World world(1, opt);
  // Pool of 32 frames against a 128-page hot set: every client's stride walks
  // its own page range, so faults continuously evict.
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "paged", kCells, size_t{32});
  CleanerCell cell;
  cell.clients = clients;
  cell.cleaner = cleaner_on;
  for (int c = 0; c < clients; ++c) {
    world.SpawnApp(1, "client", [&, c, clients](Application& app) {
      std::uint32_t span = kCells / static_cast<std::uint32_t>(clients);
      std::uint32_t base = static_cast<std::uint32_t>(c) * span;
      int i = 0;
      while (world.scheduler().Now() < kWindow) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          // 128 cells = one page per step: page-granular spread writes.
          std::uint32_t cell_index =
              base + static_cast<std::uint32_t>(i) * 128u % span;
          return arr->SetCell(tx, cell_index, i);
        });
        ++i;
        if (s == Status::kOk) {
          ++cell.out.committed;
        } else {
          ++cell.out.aborted;
        }
      }
    }, c * 1'000);
  }
  world.Drain();
  cell.fg_writes = world.metrics().page_writes_foreground();
  cell.bg_writes = world.metrics().page_writes_background();
  cell.forces_per_commit = cell.out.committed > 0
                               ? world.metrics().forces_issued() / cell.out.committed
                               : 0.0;
  cell.reclaims = static_cast<std::uint64_t>(world.rm(1).auto_reclaim_count());
  cell.passes = world.page_cleaner(1).passes();
  return cell;
}

void PageCleanerSweep(bench::JsonWriter& json) {
  std::printf("\nPage cleaner: paged spread writes, 128-page hot set on a 32-frame pool,\n"
              "16 KiB log budget (%d s window)\n",
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-9s | %-28s | %-38s\n", "", "cleaner off", "cleaner on");
  std::printf("%-9s | %10s %9s %7s | %10s %9s %9s %7s\n", "clients", "txn/s",
              "fg-wr/txn", "bg-wr", "txn/s", "fg-wr/txn", "bg-wr", "passes");
  std::printf("%.84s\n",
              "------------------------------------------------------------"
              "------------------------");
  json.BeginArray("page_cleaner");
  for (int clients : {1, 8, 16}) {
    CleanerCell off = RunCleanerCell(clients, false);
    CleanerCell on = RunCleanerCell(clients, true);
    std::printf("%-9d | %10.1f %9.3f %7.0f | %10.1f %9.3f %9.0f %7llu\n", clients,
                off.out.per_second(), off.fg_per_txn(), off.bg_writes,
                on.out.per_second(), on.fg_per_txn(), on.bg_writes,
                static_cast<unsigned long long>(on.passes));
    for (const CleanerCell& cell : {off, on}) {
      json.BeginObject();
      json.Number("clients", cell.clients);
      json.Bool("cleaner", cell.cleaner);
      json.Number("txn_per_s", cell.out.per_second());
      json.Number("aborts", cell.out.aborted);
      json.Number("forces_per_commit", cell.forces_per_commit);
      json.Number("fault_path_page_writes", cell.fg_writes);
      json.Number("fault_path_page_writes_per_txn", cell.fg_per_txn());
      json.Number("background_page_writes", cell.bg_writes);
      json.Number("auto_reclaims", cell.reclaims);
      json.Number("cleaner_passes", cell.passes);
      json.EndObject();
    }
  }
  json.EndArray();
  std::printf(
      "\nWith the cleaner on, write-backs move off the fault path (fg-wr/txn) into\n"
      "background elevator sweeps (bg-wr), faults steal clean victims, and the\n"
      "fuzzy reclamation finds little left to flush.\n");
}

void Run() {
  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "throughput");
  json.Number("window_virtual_us", static_cast<std::uint64_t>(kWindow));
  json.Bool("smoke", bench::SmokeMode());

  std::printf("Throughput: committed transactions per virtual second (%d s window)\n",
              static_cast<int>(kWindow / 1'000'000));
  std::printf("%-9s | %-18s | %-18s | %-18s\n", "", "spread writes", "hot-spot writes",
              "2-node writes");
  std::printf("%-9s | %10s %7s | %10s %7s | %10s %7s\n", "clients", "txn/s", "aborts",
              "txn/s", "aborts", "txn/s", "aborts");
  std::printf("%.72s\n",
              "------------------------------------------------------------------------");
  json.BeginArray("workloads");
  for (int clients : {1, 2, 4, 8, 16}) {
    Outcome spread = Run(Workload::kSpread, clients);
    Outcome hot = Run(Workload::kHotSpot, clients);
    Outcome remote = Run(Workload::kRemote, clients);
    std::printf("%-9d | %10.1f %7d | %10.1f %7d | %10.1f %7d\n", clients,
                spread.per_second(), spread.aborted, hot.per_second(), hot.aborted,
                remote.per_second(), remote.aborted);
    struct Pair {
      Workload w;
      const Outcome* o;
    };
    for (const Pair& p : {Pair{Workload::kSpread, &spread}, Pair{Workload::kHotSpot, &hot},
                          Pair{Workload::kRemote, &remote}}) {
      json.BeginObject();
      json.String("workload", WorkloadName(p.w));
      json.Number("clients", clients);
      json.Number("txn_per_s", p.o->per_second());
      json.Number("aborts", p.o->aborted);
      json.EndObject();
    }
  }
  json.EndArray();
  std::printf(
      "\nSpread and hot-spot throughput coincide at one client and diverge with\n"
      "contention: exclusive hot-spot locks serialize (and eventually time out)\n"
      "while spread writes scale with available overlap. Distributed transactions\n"
      "let clients overlap each other's remote waits.\n");
  GroupCommitSweep(json);
  PageCleanerSweep(json);
  json.EndObject();
  if (json.WriteFile("BENCH_throughput.json")) {
    std::printf("\nwrote BENCH_throughput.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
