// simspeed: a meta-benchmark of the simulator substrate itself.
//
// Every other bench measures the modeled system in virtual time; this one
// measures how fast the simulator turns wall-clock time into simulated
// events. Three profiles exercise the substrate's distinct hot paths:
//
//  * local-debitcredit  — one node, four concurrent clients hammering an
//    AccountServer with typed-lock transfers: scheduler hand-off, lock
//    manager, log, and buffer paths with no network.
//  * remote-2pc-fanout  — three nodes, every transaction writes locally and
//    on two remote arrays, then runs a two-participant distributed commit:
//    session-call task spawning and datagram fan-out dominate. This is the
//    profile the ISSUE's >=3x events/sec target is measured on.
//  * scaleout-32        — a 32-node slice of the scale-out curve (sharded
//    accounts, one client per node): many nodes, name resolution, routed
//    calls, cross-shard 2PC.
//
// Reported per profile:
//   events    — scheduler steps (task resumes), exact and deterministic
//   txns      — committed transactions, exact
//   sim_us    — virtual time simulated, exact
//   wall_ms, events_per_sec, sim_per_wall — wall-clock derived, noisy; the
//   CI gate compares them under a relative tolerance while the exact fields
//   are compared byte-for-byte (determinism is the invariant).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_json.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

struct Row {
  std::string name;
  std::uint64_t txns = 0;
  std::uint64_t events = 0;     // scheduler steps, exact
  SimTime sim_us = 0;           // virtual time covered, exact
  double wall_ms = 0;           // noisy

  double events_per_sec() const {
    return wall_ms > 0 ? events / (wall_ms / 1000.0) : 0;
  }
  // Virtual seconds simulated per wall second ("faster than real time" ratio).
  double sim_per_wall() const {
    return wall_ms > 0 ? (sim_us / 1000.0) / wall_ms : 0;
  }
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// One node, four closed-loop clients transferring between accounts of a
// typed-locking AccountServer. Increment/decrement modes commute, so the
// clients genuinely interleave — pure scheduler/lock/log churn.
Row RunLocalDebitCredit() {
  const int kClients = 4;
  const int kTxnsPerClient = bench::SmokeMode() ? 150 : 1500;
  const std::uint32_t kAccounts = 64;

  Row row;
  row.name = "local-debitcredit";

  World world(1);
  world.AddServerOf<servers::AccountServer>(1, "bank", kAccounts);
  world.RunApp(1, [&](Application& app) {
    auto* bank = world.Server<servers::AccountServer>(1, "bank");
    app.RunTransactional([&](const server::Tx& tx) {
      for (std::uint32_t a = 0; a < kAccounts; ++a) {
        Status s = bank->Deposit(tx, a, 1'000'000);
        if (s != Status::kOk) {
          return s;
        }
      }
      return Status::kOk;
    });
  });

  std::uint64_t steps0 = world.scheduler().steps();
  SimTime end_clock = 0;
  WallTimer timer;
  for (int c = 0; c < kClients; ++c) {
    world.SpawnApp(1, "client", [&world, &row, &end_clock, c, kTxnsPerClient,
                                 kAccounts](Application& app) {
      auto* bank = world.Server<servers::AccountServer>(1, "bank");
      std::mt19937 rng(static_cast<std::uint32_t>(7'000 + c));
      for (int i = 0; i < kTxnsPerClient; ++i) {
        std::uint32_t from = rng() % kAccounts;
        std::uint32_t to = (from + 1 + rng() % (kAccounts - 1)) % kAccounts;
        auto r = app.RunTransactional([&](const server::Tx& tx) {
          Status w = bank->Withdraw(tx, from, 5);
          if (w != Status::kOk) {
            return w;
          }
          return bank->Deposit(tx, to, 5);
        });
        if (r.ok()) {
          ++row.txns;
        }
      }
      end_clock = std::max(end_clock, world.scheduler().Now());
    });
  }
  world.Drain();
  row.wall_ms = timer.ElapsedMs();
  row.events = world.scheduler().steps() - steps0;
  row.sim_us = end_clock;
  return row;
}

// Three nodes: each transaction writes the local array once and each of two
// remote arrays twice, then commits with both remote nodes as 2PC
// participants. Per transaction the substrate spawns session-handler tasks
// for every remote operation plus the prepare/commit datagram fan-out — the
// task-spawn hot path the tentpole targets.
Row RunRemote2pcFanout() {
  const int kTxns = bench::SmokeMode() ? 120 : 1200;
  const std::uint32_t kCells = 128;

  Row row;
  row.name = "remote-2pc-fanout";

  World world(3);
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "a1", kCells);
  auto* remote = world.AddServerOf<servers::ArrayServer>(2, "a2", kCells);
  auto* third = world.AddServerOf<servers::ArrayServer>(3, "a3", kCells);

  std::uint64_t steps0 = world.scheduler().steps();
  SimTime end_clock = 0;
  WallTimer timer;
  world.SpawnApp(1, "fanout", [&](Application& app) {
    for (int i = 0; i < kTxns; ++i) {
      auto v = static_cast<std::int32_t>(i);
      auto r = app.RunTransactional([&](const server::Tx& tx) {
        local->SetCell(tx, static_cast<std::uint32_t>(i) % kCells, v);
        for (int k = 0; k < 2; ++k) {
          std::uint32_t cell = static_cast<std::uint32_t>(i + k * 31) % kCells;
          Status s = remote->SetCell(tx, cell, v);
          if (s != Status::kOk) {
            return s;
          }
          s = third->SetCell(tx, cell, v);
          if (s != Status::kOk) {
            return s;
          }
        }
        return Status::kOk;
      });
      if (r.ok()) {
        ++row.txns;
      }
    }
    end_clock = world.scheduler().Now();
  });
  world.Drain();
  row.wall_ms = timer.ElapsedMs();
  row.events = world.scheduler().steps() - steps0;
  row.sim_us = end_clock;
  return row;
}

// A 32-node slice of bench/scaleout: one sharded account service, one client
// per node, each running a fixed count of random transfers (most spanning
// two shards: name resolution, routed remote calls, multi-node 2PC).
Row RunScaleout32() {
  const int kNodes = 32;
  const int kTxnsPerClient = bench::SmokeMode() ? 6 : 30;
  const std::uint32_t kAccountsPerShard = 4;
  const std::uint64_t kTotalAccounts =
      static_cast<std::uint64_t>(kAccountsPerShard) * kNodes;

  Row row;
  row.name = "scaleout-32";

  World world(kNodes);
  std::vector<NodeId> all_nodes;
  for (int n = 1; n <= kNodes; ++n) {
    all_nodes.push_back(static_cast<NodeId>(n));
  }
  world.AddShardedServiceOf<servers::AccountServer>(
      "accounts", all_nodes, static_cast<std::uint32_t>(kNodes), kTotalAccounts);

  // Shard-local seeding, exactly like bench/scaleout.
  for (int n = 1; n <= kNodes; ++n) {
    world.SpawnApp(static_cast<NodeId>(n), "seed", [&world, n, kNodes](Application& app) {
      AccountService accounts = OpenAccounts(world, "accounts");
      app.RunTransactional([&](const server::Tx& tx) {
        for (std::uint32_t k = 0; k < kAccountsPerShard; ++k) {
          std::uint64_t account = static_cast<std::uint64_t>(n - 1) +
                                  static_cast<std::uint64_t>(k) * kNodes;
          Status s = accounts.Deposit(tx, account, 1'000'000);
          if (s != Status::kOk) {
            return s;
          }
        }
        return Status::kOk;
      });
    });
  }
  world.Drain();

  std::uint64_t steps0 = world.scheduler().steps();
  SimTime end_clock = 0;
  WallTimer timer;
  for (int c = 0; c < kNodes; ++c) {
    NodeId home = static_cast<NodeId>(c + 1);
    world.SpawnApp(home, "client", [&world, &row, &end_clock, c, kTxnsPerClient,
                                    kTotalAccounts](Application& app) {
      AccountService accounts = OpenAccounts(world, "accounts");
      std::mt19937 rng(static_cast<std::uint32_t>(9'000'000 + c));
      for (int i = 0; i < kTxnsPerClient; ++i) {
        std::uint64_t from = rng() % kTotalAccounts;
        std::uint64_t to = rng() % kTotalAccounts;
        if (to == from) {
          to = (to + 1) % kTotalAccounts;
        }
        auto r = app.RunTransactional([&](const server::Tx& tx) {
          Status w = accounts.Withdraw(tx, from, 1);
          if (w != Status::kOk) {
            return w;
          }
          return accounts.Deposit(tx, to, 1);
        });
        if (r.ok()) {
          ++row.txns;
        }
      }
      end_clock = std::max(end_clock, world.scheduler().Now());
    }, c * 1'000);
  }
  world.Drain();
  row.wall_ms = timer.ElapsedMs();
  row.events = world.scheduler().steps() - steps0;
  row.sim_us = end_clock;
  return row;
}

void Run() {
  std::printf("simspeed: substrate events/sec over three profiles%s\n\n",
              bench::SmokeMode() ? " (smoke)" : "");
  std::printf("%-20s %10s %12s %12s %10s %12s %10s\n", "profile", "txns",
              "events", "sim ms", "wall ms", "events/s", "sim/wall");
  std::printf("%.92s\n",
              "--------------------------------------------------------------"
              "------------------------------");

  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "simspeed");
  json.Bool("smoke", bench::SmokeMode());
  json.BeginArray("rows");

  std::vector<Row> rows;
  rows.push_back(RunLocalDebitCredit());
  rows.push_back(RunRemote2pcFanout());
  rows.push_back(RunScaleout32());

  for (const Row& row : rows) {
    std::printf("%-20s %10llu %12llu %12.1f %10.1f %12.0f %10.1f\n",
                row.name.c_str(), static_cast<unsigned long long>(row.txns),
                static_cast<unsigned long long>(row.events), row.sim_us / 1000.0,
                row.wall_ms, row.events_per_sec(), row.sim_per_wall());
    json.BeginObject();
    json.String("name", row.name);
    json.Number("txns", row.txns);
    json.Number("events", row.events);
    json.Number("sim_us", static_cast<std::uint64_t>(row.sim_us));
    json.Number("wall_ms", row.wall_ms);
    json.Number("events_per_sec", row.events_per_sec());
    json.Number("sim_per_wall", row.sim_per_wall());
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf(
      "\nevents = scheduler steps (task resumes): exact and deterministic,\n"
      "gated byte-for-byte. wall-clock columns are noisy and gated under a\n"
      "relative tolerance (tools/check_bench.py --tolerance).\n");
  if (json.WriteFile("BENCH_simspeed.json")) {
    std::printf("\nwrote BENCH_simspeed.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
