// Scale-out curve: one logical service spanning N nodes.
//
// A sharded AccountService ("accounts", one shard per node, opened by name
// through the service-handle API) serves debit-credit transfers from 2
// clients per node. Each transfer withdraws from one random account and
// deposits to another — with interleaved placement most transfers span two
// shards, so every committed transaction exercises name resolution, routed
// remote calls, and the multi-node two-phase commit over ordinary
// spanning-tree participants.
//
// The table reports committed transactions per virtual second and the
// per-transaction latency distribution (nearest-rank p50/p99) against the
// node count: 8 -> 32 -> 128 nodes in full mode, capped at 32 under
// TABS_BENCH_SMOKE=1 (the CI gate compares the smoke JSON byte-for-byte).

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_json.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

const SimTime kWindow = bench::SmokeMode() ? 400'000 : 2'000'000;

constexpr std::uint32_t kAccountsPerShard = 4;
constexpr int kClientsPerNode = 2;
constexpr std::int64_t kSeedBalance = 1'000;

struct Row {
  int nodes = 0;
  int clients = 0;
  std::uint64_t total_accounts = 0;
  int committed = 0;
  int aborted = 0;
  std::uint64_t cross_shard = 0;  // committed transfers spanning two shards
  SimTime p50 = 0;
  SimTime p99 = 0;

  double per_second() const { return committed / (kWindow / 1'000'000.0); }
  double cross_shard_pct() const {
    return committed > 0 ? 100.0 * static_cast<double>(cross_shard) / committed : 0.0;
  }
};

SimTime NearestRank(std::vector<SimTime>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()) + 0.999999);
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Row RunScale(int nodes) {
  Row row;
  row.nodes = nodes;
  row.clients = kClientsPerNode * nodes;
  row.total_accounts = static_cast<std::uint64_t>(kAccountsPerShard) * nodes;

  World world(nodes);
  std::vector<NodeId> all_nodes;
  for (int n = 1; n <= nodes; ++n) {
    all_nodes.push_back(static_cast<NodeId>(n));
  }
  world.AddShardedServiceOf<servers::AccountServer>(
      "accounts", all_nodes, static_cast<std::uint32_t>(nodes), row.total_accounts);

  // Seed every account, shard-locally: node i's client deposits into the
  // accounts its own shard owns (global ids congruent to i-1 mod N), so the
  // seeding transactions stay single-node and the handle's routing is still
  // what places them. Each seed task records its finish time — clocks are
  // per-task in this simulator, so the measurement window starts at the
  // latest seeding clock rather than a (meaningless) global "now".
  SimTime seed_end = 0;
  for (int n = 1; n <= nodes; ++n) {
    world.SpawnApp(static_cast<NodeId>(n), "seed",
                   [&world, &seed_end, n, nodes](Application& app) {
      AccountService accounts = OpenAccounts(world, "accounts");
      app.RunTransactional([&](const server::Tx& tx) {
        for (std::uint32_t k = 0; k < kAccountsPerShard; ++k) {
          std::uint64_t account = static_cast<std::uint64_t>(n - 1) +
                                  static_cast<std::uint64_t>(k) * nodes;
          Status s = accounts.Deposit(tx, account, kSeedBalance);
          if (s != Status::kOk) {
            return s;
          }
        }
        return Status::kOk;
      });
      seed_end = std::max(seed_end, world.scheduler().Now());
    });
  }
  world.Drain();

  SimTime t0 = seed_end;
  SimTime deadline = t0 + kWindow;
  std::vector<SimTime> latencies;
  for (int c = 0; c < row.clients; ++c) {
    NodeId home = static_cast<NodeId>(c % nodes + 1);
    world.SpawnApp(home, "client", [&, c](Application& app) {
      AccountService accounts = OpenAccounts(world, "accounts");
      std::mt19937 rng(static_cast<std::uint32_t>(100'000 * row.nodes + c));
      while (world.scheduler().Now() < deadline) {
        std::uint64_t from = rng() % row.total_accounts;
        std::uint64_t to = rng() % row.total_accounts;
        if (to == from) {
          to = (to + 1) % row.total_accounts;
        }
        std::int64_t amount = 1 + static_cast<std::int64_t>(rng() % 5);
        SimTime start = world.scheduler().Now();
        auto r = app.RunTransactional([&](const server::Tx& tx) {
          Status w = accounts.Withdraw(tx, from, amount);
          if (w != Status::kOk) {
            return w;
          }
          return accounts.Deposit(tx, to, amount);
        });
        if (r.ok()) {
          ++row.committed;
          latencies.push_back(world.scheduler().Now() - start);
          if (from % nodes != to % nodes) {
            ++row.cross_shard;
          }
        } else {
          ++row.aborted;
        }
      }
    }, t0 + c * 1'000);
  }
  world.Drain();

  std::sort(latencies.begin(), latencies.end());
  row.p50 = NearestRank(latencies, 0.50);
  row.p99 = NearestRank(latencies, 0.99);
  return row;
}

void Run() {
  std::vector<int> scales = bench::SmokeMode() ? std::vector<int>{8, 32}
                                               : std::vector<int>{8, 32, 128};

  bench::JsonWriter json;
  json.BeginObject();
  json.String("bench", "scaleout");
  json.Number("window_virtual_us", static_cast<std::uint64_t>(kWindow));
  json.Bool("smoke", bench::SmokeMode());

  std::printf("Scale-out: sharded debit-credit over a logical account service\n");
  std::printf("(one shard per node, %d clients/node, %.1f s virtual window)\n\n",
              kClientsPerNode, kWindow / 1'000'000.0);
  std::printf("%-7s %-8s %10s %8s %10s %10s %10s\n", "nodes", "clients", "txn/s",
              "aborts", "p50 ms", "p99 ms", "x-shard %");
  std::printf("%.68s\n",
              "--------------------------------------------------------------------");

  json.BeginArray("rows");
  for (int nodes : scales) {
    Row row = RunScale(nodes);
    std::printf("%-7d %-8d %10.1f %8d %10.1f %10.1f %10.1f\n", row.nodes, row.clients,
                row.per_second(), row.aborted, row.p50 / 1000.0, row.p99 / 1000.0,
                row.cross_shard_pct());
    json.BeginObject();
    json.String("name", "n" + std::to_string(row.nodes));
    json.Number("nodes", row.nodes);
    json.Number("shards", row.nodes);
    json.Number("clients", row.clients);
    json.Number("accounts", row.total_accounts);
    json.Number("committed", row.committed);
    json.Number("aborts", row.aborted);
    json.Number("txn_per_s", row.per_second());
    json.Number("p50_ms", row.p50 / 1000.0);
    json.Number("p99_ms", row.p99 / 1000.0);
    json.Number("cross_shard_pct", row.cross_shard_pct());
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf(
      "\nThroughput grows with the node count because independent transfers land\n"
      "on disjoint shard pairs and overlap; latency is flat-ish (a transfer\n"
      "touches at most two shards regardless of N) until client fan-in to hot\n"
      "shards shows up in the tail.\n");
  if (json.WriteFile("BENCH_scaleout.json")) {
    std::printf("\nwrote BENCH_scaleout.json\n");
  }
}

}  // namespace
}  // namespace tabs

int main() {
  tabs::Run();
  return 0;
}
