// Table 5-2: pre-commit primitive counts.
//
// Runs the fourteen benchmarks and prints the steady-state number of each
// primitive executed before commit processing begins, next to the paper's
// counts. The paper's table is the specification of TABS' message economy;
// matching it (to within a message or two on the multi-node rows, where the
// original table itself is approximate) demonstrates the prototype's
// structure is reproduced, not just its totals.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/workloads.h"

namespace tabs::bench {
namespace {

struct PaperRow {
  double ds_calls, remote_calls, small, large, seq_reads, random_io;
};

// Transcribed from Table 5-2 (blank cells are zeros; the write rows' 0.86 is
// the paper's measured page-cleaner activity).
const std::map<std::string, PaperRow> kPaperRows = {
    {"1 Local Read, No Paging", {1, 0, 4, 0, 0, 0}},
    {"5 Local Read, No Paging", {5, 0, 4, 0, 0, 0}},
    {"1 Local Read, Seq. Paging", {1, 0, 4, 0, 1, 0}},
    {"1 Local Read, Random Paging", {1, 0, 4, 0, 0, 1}},
    {"1 Local Write, No Paging", {1, 0, 6, 1, 0, 0.86}},
    {"5 Local Write, No Paging", {5, 0, 14, 5, 0, 0.86}},
    {"1 Local Write, Seq. Paging", {1, 0, 10, 1, 1, 1}},
    {"1 Lcl Rd, 1 Rem Rd, No Paging", {1, 1, 8, 0, 0, 0}},
    {"1 Lcl Rd, 5 Rem Rd, No Paging", {1, 5, 8, 0, 0, 0}},
    {"1 Lcl Rd, 1 Rem Rd, Seq. Paging", {1, 1, 8, 0, 2, 0}},
    {"1 Lcl Wr, 1 Rem Wr, No Paging", {1, 1, 12, 2, 0, 0}},
    {"1 Lcl Wr, 1 Rem Wr, Seq. Paging", {1, 1, 20, 2, 2, 0}},
    {"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", {1, 2, 11, 0, 0, 0}},
    {"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", {1, 2, 17, 3, 0, 0}},
};

void Run() {
  std::printf("Table 5-2: Pre-Commit Primitive Counts (per transaction, steady state)\n");
  std::printf("%-34s | %-11s | %-11s | %-11s | %-11s | %-11s | %-11s\n", "Benchmark",
              "DS calls", "remote DS", "small msg", "large msg", "seq reads", "random I/O");
  std::printf("%-34s | %-11s | %-11s | %-11s | %-11s | %-11s | %-11s\n", "",
              "paper/ours", "paper/ours", "paper/ours", "paper/ours", "paper/ours",
              "paper/ours");
  std::printf("%.130s\n",
              "--------------------------------------------------------------------------------"
              "--------------------------------------------------");

  auto costs = sim::CostModel::Baseline();
  auto arch = sim::ArchitectureModel::Prototype();
  for (const BenchmarkDef& def : PaperBenchmarks()) {
    BenchResult r = RunBenchmark(def, costs, arch);
    const PaperRow& p = kPaperRows.at(def.name);
    auto cell = [&](double paper, sim::Primitive prim) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4g/%.4g", paper, r.precommit.Of(prim));
      return std::string(buf);
    };
    std::printf("%-34s | %-11s | %-11s | %-11s | %-11s | %-11s | %-11s\n", def.name.c_str(),
                cell(p.ds_calls, sim::Primitive::kDataServerCall).c_str(),
                cell(p.remote_calls, sim::Primitive::kInterNodeDataServerCall).c_str(),
                cell(p.small, sim::Primitive::kSmallMessage).c_str(),
                cell(p.large, sim::Primitive::kLargeMessage).c_str(),
                cell(p.seq_reads, sim::Primitive::kSequentialRead).c_str(),
                cell(p.random_io, sim::Primitive::kRandomPageIo).c_str());
  }
  std::printf(
      "\nEach cell: paper's count / this implementation's measured count. The paper's\n"
      "0.86 random I/Os per write transaction is the Accent pager writing dirty pages\n"
      "between transactions; our synchronous page cleaner performs 1 per transaction.\n");
}

}  // namespace
}  // namespace tabs::bench

int main() {
  tabs::bench::Run();
  return 0;
}
