// Replicated directory demo (paper Section 4.5): a directory replicated
// across three nodes with weighted voting (votes 1+1+1, read quorum 2,
// write quorum 2). One node fails; the directory stays readable and
// writable. The failed node recovers stale and is brought current by the
// version numbers.
//
// The representatives are registered as one logical service ("directory",
// one representative per node) and the client-linked voting module is built
// by resolving that service through the Name Server — no hand-plumbed node
// or instance names on the client side.

#include <cstdio>

#include "src/servers/replicated_directory.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity
using servers::BTreeServer;
using servers::DirectoryRep;
using servers::ReplicatedDirectory;

int main() {
  World world(3);
  for (NodeId n = 1; n <= 3; ++n) {
    world.AddServerOf<BTreeServer>(n, "dir-btree", 200u);
    World* w = &world;
    world.AddServiceShard(n, "directory", /*shard=*/n - 1, /*shard_count=*/3, "dir-rep",
                          [w, n](const server::ServerContext& ctx) {
                            return std::make_unique<DirectoryRep>(
                                ctx, w->Server<BTreeServer>(n, "dir-btree"), 1);
                          });
  }

  world.RunApp(1, [&](Application& app) {
    auto dir = OpenReplicatedDirectory(world, 1, "directory", /*read_quorum=*/2,
                                       /*write_quorum=*/2);
    if (!dir.ok()) {
      std::printf("open failed: %s\n", StatusName(dir.status()));
      return;
    }
    Status s = app.Transaction([&](const server::Tx& tx) {
      dir.value().Insert(tx, "mail-server", "perq7");
      dir.value().Insert(tx, "print-server", "perq3");
      return Status::kOk;
    });
    std::printf("initial inserts: %s\n", StatusName(s));

    std::printf("crashing node 3 (one representative down)...\n");
    world.CrashNode(3);

    app.Transaction([&](const server::Tx& tx) {
      auto v = dir.value().Lookup(tx, "mail-server");
      std::printf("lookup with 2/3 representatives: mail-server -> %s\n",
                  v.ok() ? v.value().c_str() : StatusName(v.status()));
      return Status::kOk;
    });
    s = app.Transaction(
        [&](const server::Tx& tx) { return dir.value().Update(tx, "mail-server", "perq9"); });
    std::printf("update with 2/3 representatives: %s\n", StatusName(s));
  });

  world.RunApp(1, [&](Application& app) {
    world.RecoverNode(3);
    // Re-open: resolution now finds all three representatives again (the
    // recovered node re-registered its binding during recovery).
    auto dir2 = OpenReplicatedDirectory(world, 1, "directory", 2, 2);
    if (!dir2.ok()) {
      std::printf("re-open failed: %s\n", StatusName(dir2.status()));
      return;
    }
    app.Transaction([&](const server::Tx& tx) {
      auto v = dir2.value().Lookup(tx, "mail-server");
      std::printf("after node 3 recovers (stale copy outvoted): mail-server -> %s\n",
                  v.ok() ? v.value().c_str() : StatusName(v.status()));
      return Status::kOk;
    });
    // A write brings the recovered representative current again.
    app.Transaction(
        [&](const server::Tx& tx) { return dir2.value().Update(tx, "mail-server", "perq9"); });
    app.Transaction([&](const server::Tx& tx) {
      auto* rep3 = world.Server<DirectoryRep>(3, "dir-rep");
      auto e = rep3->RepRead(tx, "mail-server");
      std::printf("node 3's copy after a quorum write: %s (version %u)\n",
                  e.ok() ? e.value().value.c_str() : StatusName(e.status()),
                  e.ok() ? e.value().version : 0);
      return Status::kOk;
    });
  });
  return 0;
}
