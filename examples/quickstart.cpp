// Quickstart: a two-node TABS world, one distributed transaction, one crash.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// What it shows:
//   1. assembling a World (each node gets the Figure 3-1 system processes),
//   2. a distributed read/write transaction across two integer array
//      servers, committed with the tree-structured two-phase protocol,
//   3. abort rolling a transaction back,
//   4. a node crash and log-driven recovery preserving committed state.

#include <cstdio>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

using namespace tabs;           // NOLINT: example brevity
using servers::ArrayServer;

int main() {
  World world(2);
  ArrayServer* savings = world.AddServerOf<ArrayServer>(1, "savings", 64u);
  ArrayServer* checking = world.AddServerOf<ArrayServer>(2, "checking", 64u);

  std::printf("%s\n", world.DescribeNode(1).c_str());

  world.RunApp(1, [&](Application& app) {
    // A distributed transaction: debit savings on node 1, credit checking on
    // node 2, atomically.
    Status s = app.Transaction([&](const server::Tx& tx) {
      savings->SetCell(tx, 0, 1000 - 250);
      checking->SetCell(tx, 0, 250);
      return Status::kOk;
    });
    std::printf("transfer committed: %s\n", StatusName(s));

    // An aborted transaction leaves no trace. TxnScope is the RAII handle:
    // going out of scope without Commit() aborts automatically.
    {
      TxnScope doomed(app);
      savings->SetCell(doomed.tx(), 0, -999999);
    }  // ~TxnScope aborts
    app.Transaction([&](const server::Tx& tx) {
      std::printf("after abort, savings = %d (unchanged)\n",
                  savings->GetCell(tx, 0).value());
      return Status::kOk;
    });

    // Crash node 2 and bring it back: the committed credit survives.
    std::printf("crashing node 2...\n");
    world.CrashNode(2);
    auto stats = world.RecoverNode(2);
    checking = world.Server<ArrayServer>(2, "checking");
    std::printf("recovered node 2: %d pass(es) over the log, %zu loser(s)\n",
                stats.passes, stats.losers.size());
    app.Transaction([&](const server::Tx& tx) {
      std::printf("after crash+recovery, checking = %d\n",
                  checking->GetCell(tx, 0).value());
      return Status::kOk;
    });
  });
  return 0;
}
