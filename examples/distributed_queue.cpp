// Weak queue demo (paper Section 4.2): producers and consumers share a
// semi-queue. An aborted enqueue leaves a gap that garbage collection
// reclaims; a consumer skips elements still locked by in-flight producers —
// greater concurrency in exchange for strict FIFO order.

#include <cstdio>

#include "src/servers/weak_queue_server.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity
using servers::WeakQueueServer;

int main() {
  World world(2);
  WeakQueueServer* queue = world.AddServerOf<WeakQueueServer>(1, "jobs", 32u);

  // Three producers (one remote), one consumer, interleaved in virtual time.
  int produced = 0;
  int consumed = 0;
  for (int p = 0; p < 3; ++p) {
    NodeId node = p == 2 ? 2 : 1;  // the third producer enqueues remotely
    world.SpawnApp(node, "producer", [&, p](Application& app) {
      for (int i = 0; i < 5; ++i) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          return queue->Enqueue(tx, p * 100 + i);
        });
        if (s == Status::kOk) {
          ++produced;
        }
      }
      // One deliberately aborted enqueue: its slot becomes a gap. (TxnScope
      // auto-aborts at the end of the block.)
      {
        TxnScope doomed(app);
        queue->Enqueue(doomed.tx(), -1);
      }
    }, p * 10'000);
  }
  world.SpawnApp(1, "consumer", [&](Application& app) {
    int idle = 0;
    while (consumed < 15 && idle < 200) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        auto v = queue->Dequeue(tx);
        if (!v.ok()) {
          return v.status();
        }
        ++consumed;
        return Status::kOk;
      });
      if (s != Status::kOk) {
        ++idle;
        world.scheduler().Charge(20'000);
        world.scheduler().Yield();
      }
    }
  }, 5'000);
  world.Drain();

  std::printf("produced %d items (plus 3 aborted enqueues), consumed %d\n", produced,
              consumed);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      std::printf("queue empty at the end: %s\n",
                  queue->IsQueueEmpty(tx).value() ? "yes" : "no");
      std::printf("head=%u tail=%u (gaps from aborts were garbage collected)\n",
                  queue->head(), queue->tail());
      return Status::kOk;
    });
  });
  return 0;
}
