// A transactional mail system — one of the applications Section 7 says
// "could be based on the implementation techniques that our existing servers
// use" (and Section 2.2 cites Liskov's sketch: transactions simplify a mail
// system's integrity guarantees).
//
// Composition:
//   * a replicated-directory-style B-tree on node 1 maps user -> mailbox id,
//   * each mailbox is a weak queue (per Section 2.2's mailbox type: delivery
//     order across concurrent senders doesn't matter, so the semi-queue's
//     extra concurrency is free),
//   * "send" = look up the recipient and enqueue, atomically — possibly
//     across nodes; a failed delivery aborts the whole send, so no message
//     is half-delivered.

#include <cstdio>
#include <map>

#include "src/servers/btree_server.h"
#include "src/servers/weak_queue_server.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity
using servers::BTreeServer;
using servers::WeakQueueServer;

namespace {

class MailSystem {
 public:
  MailSystem(World& world, BTreeServer* directory) : world_(world), directory_(directory) {}

  // Registers a user with a mailbox hosted on `node`.
  Status AddUser(Application& app, const std::string& user, NodeId node) {
    std::string queue_name = "mbox-" + user;
    auto* mbox = world_.AddServerOf<WeakQueueServer>(node, queue_name, 64u);
    mailboxes_[user] = mbox;
    return app.Transaction([&](const server::Tx& tx) {
      return directory_->Insert(tx, user, queue_name + "@" + std::to_string(node));
    });
  }

  // Atomically deliver one message id to every recipient.
  Status Send(Application& app, const std::vector<std::string>& recipients,
              std::int32_t message_id) {
    return app.Transaction([&](const server::Tx& tx) {
      for (const std::string& user : recipients) {
        auto binding = directory_->Lookup(tx, user);
        if (!binding.ok()) {
          return binding.status();  // unknown user: the whole send aborts
        }
        Status s = mailboxes_.at(user)->Enqueue(tx, message_id);
        if (s != Status::kOk) {
          return s;
        }
      }
      return Status::kOk;
    });
  }

  // Fetch the next message for a user (kNotFound when the box is empty).
  Result<std::int32_t> Receive(Application& app, const std::string& user) {
    Result<std::int32_t> out(Status::kNotFound);
    app.Transaction([&](const server::Tx& tx) {
      out = mailboxes_.at(user)->Dequeue(tx);
      return out.ok() ? Status::kOk : out.status();
    });
    return out;
  }

 private:
  World& world_;
  BTreeServer* directory_;
  std::map<std::string, WeakQueueServer*> mailboxes_;
};

}  // namespace

int main() {
  World world(3);
  auto* directory = world.AddServerOf<BTreeServer>(1, "user-directory", 200u);
  MailSystem mail(world, directory);

  world.RunApp(1, [&](Application& app) {
    mail.AddUser(app, "spector", 1);
    mail.AddUser(app, "daniels", 2);
    mail.AddUser(app, "eppinger", 3);

    Status s = mail.Send(app, {"spector", "daniels", "eppinger"}, /*message_id=*/1985);
    std::printf("send to three nodes: %s\n", StatusName(s));

    s = mail.Send(app, {"spector", "nobody"}, 42);
    std::printf("send including unknown user: %s (nothing delivered)\n", StatusName(s));

    auto m = mail.Receive(app, "daniels");
    std::printf("daniels received: %d\n", m.value_or(-1));
    m = mail.Receive(app, "spector");
    std::printf("spector received: %d\n", m.value_or(-1));
    m = mail.Receive(app, "spector");
    std::printf("spector's box now: %s\n", m.ok() ? "nonempty" : StatusName(m.status()));
  });

  // A mailbox node crashes; delivered-but-unread mail survives.
  world.RunApp(1, [&](Application& app) {
    world.CrashNode(3);
    world.RecoverNode(3);
  });
  world.RunApp(1, [&](Application& app) {
    auto* mbox = world.Server<WeakQueueServer>(3, "mbox-eppinger");
    app.Transaction([&](const server::Tx& tx) {
      auto v = mbox->Dequeue(tx);
      std::printf("after node 3 crash+recovery, eppinger received: %d\n", v.value_or(-1));
      return Status::kOk;
    });
  });
  return 0;
}
