// A transactional print spooler — another Section 7 application ("file
// systems, mail systems, spoolers, editors, etc. could be based on the
// implementation techniques that our existing servers use").
//
// Submitting a job stores the document in the transactional file server and
// enqueues a ticket in a weak queue, atomically: a job is never half
// submitted, and a crashed spooler node loses nothing that was committed.
// The printer daemon dequeues a ticket and reads the document in one
// transaction; if "printing" fails the transaction aborts and the ticket
// returns to the queue (the weak queue's abort semantics doing real work).

#include <cstdio>

#include "src/servers/file_server.h"
#include "src/servers/weak_queue_server.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity
using servers::FileServer;
using servers::WeakQueueServer;

namespace {

Status SubmitJob(Application& app, FileServer* files, WeakQueueServer* queue, int job_id,
                 const std::string& document) {
  return app.Transaction([&](const server::Tx& tx) {
    std::string name = "job-" + std::to_string(job_id);
    Status s = files->Create(tx, name);
    if (s != Status::kOk) {
      return s;
    }
    s = files->Write(tx, name, 0, Bytes(document.begin(), document.end()));
    if (s != Status::kOk) {
      return s;
    }
    return queue->Enqueue(tx, job_id);
  });
}

// Returns the job id printed, or an error status (kNotFound: queue empty).
Result<int> PrintNext(Application& app, FileServer* files, WeakQueueServer* queue,
                      bool simulate_jam) {
  int printed = -1;
  Status s = app.Transaction([&](const server::Tx& tx) {
    auto ticket = queue->Dequeue(tx);
    if (!ticket.ok()) {
      return ticket.status();
    }
    std::string name = "job-" + std::to_string(ticket.value());
    auto doc = files->Read(tx, name, 0, FileServer::kMaxFileBytes);
    if (!doc.ok()) {
      return doc.status();
    }
    if (simulate_jam) {
      return Status::kConflict;  // paper jam: abort puts the ticket back
    }
    std::printf("  printing %s: \"%.*s\"\n", name.c_str(),
                static_cast<int>(doc.value().size()),
                reinterpret_cast<const char*>(doc.value().data()));
    printed = ticket.value();
    return files->Remove(tx, name);  // job done: document leaves the spool
  });
  if (s != Status::kOk) {
    return s;
  }
  return printed;
}

}  // namespace

int main() {
  World world(2);
  FileServer* files = world.AddServerOf<FileServer>(1, "spool-files", PageNumber{128});
  WeakQueueServer* queue = world.AddServerOf<WeakQueueServer>(1, "spool-queue", 32u);

  world.RunApp(1, [&](Application& app) {
    SubmitJob(app, files, queue, 1, "TABS design notes");
    SubmitJob(app, files, queue, 2, "SOSP camera-ready");
    std::printf("submitted 2 jobs\n");

    std::printf("printer jams on the first attempt:\n");
    auto jammed = PrintNext(app, files, queue, /*simulate_jam=*/true);
    std::printf("  -> %s (ticket back in the queue)\n", StatusName(jammed.status()));

    std::printf("printing resumes:\n");
    while (true) {
      auto r = PrintNext(app, files, queue, false);
      if (!r.ok()) {
        break;
      }
    }
  });

  // The spool survives a node crash: submit, crash, recover, print.
  world.RunApp(1, [&](Application& app) {
    SubmitJob(app, files, queue, 3, "submitted just before the crash");
    world.CrashNode(1);
  });
  world.RunApp(2, [&](Application&) { world.RecoverNode(1); });
  files = world.Server<FileServer>(1, "spool-files");
  queue = world.Server<WeakQueueServer>(1, "spool-queue");
  world.RunApp(1, [&](Application& app) {
    std::printf("after crash + recovery:\n");
    auto r = PrintNext(app, files, queue, false);
    std::printf("job %d survived the crash\n", r.value_or(-1));
  });
  return 0;
}
