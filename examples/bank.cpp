// The Figure 4-1 bank: accounts in an integer array server, a recoverable
// display through the IO server. Reproduces the paper's screenshot scenario:
//
//   area 1: a deposit that committed          -> rendered [black]
//   area 2: a withdrawal interrupted by a node crash -> rendered [struck]
//   area 3: a withdrawal still in progress    -> rendered [gray]
//
// "Users know that an operation has not really happened until its output is
// displayed in black."

#include <cstdio>

#include "src/servers/array_server.h"
#include "src/servers/io_server.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity
using servers::ArrayServer;
using servers::IoServer;

namespace {

constexpr std::uint32_t kChecking = 0;

Status Deposit(Application& app, ArrayServer* accounts, IoServer* io, int amount) {
  return app.Transaction([&](const server::Tx& tx) {
    auto area = io->ObtainIOArea(tx);
    if (!area.ok()) {
      return area.status();
    }
    auto balance = accounts->GetCell(tx, kChecking);
    if (!balance.ok()) {
      return balance.status();
    }
    accounts->SetCell(tx, kChecking, balance.value() + amount);
    char line[80];
    std::snprintf(line, sizeof line, "deposited %d dollars to checking", amount);
    return io->WriteLnToArea(tx, area.value(), line);
  });
}

}  // namespace

int main() {
  World world(2);
  ArrayServer* accounts = world.AddServerOf<ArrayServer>(1, "accounts", 16u);
  IoServer* io = world.AddServerOf<IoServer>(1, "display", 4u);

  // Area one: a successful deposit (displayed black).
  world.RunApp(1, [&](Application& app) {
    Deposit(app, accounts, io, 35);
  });

  // Area two: "the user attempted to withdraw 80 dollars... but the node
  // failed during the transaction, causing it to abort."
  world.RunApp(1, [&](Application& app) {
    TxnScope t(app);
    server::Tx tx = t.tx();
    auto area = io->ObtainIOArea(tx);
    io->WriteLnToArea(tx, area.value(), "withdraw 80 dollars from checking");
    auto balance = accounts->GetCell(tx, kChecking);
    accounts->SetCell(tx, kChecking, balance.value() - 80);
    world.rm(1).log().ForceAll();
    world.CrashNode(1);  // the node fails mid-transaction (kills this task too)
  });
  world.RunApp(2, [&](Application& app) {
    // "The IO server restored the screen when the system became available."
    world.RecoverNode(1);
  });
  accounts = world.Server<ArrayServer>(1, "accounts");
  io = world.Server<IoServer>(1, "display");

  // Area three: the user "is currently trying again" — leave a withdrawal in
  // progress (displayed gray) while we snapshot the screen.
  world.RunApp(1, [&](Application& app) {
    io->TypeInput(2, "80");
    TxnScope t(app);  // auto-aborts the in-progress demo transaction at scope end
    server::Tx tx = t.tx();
    auto area = io->ObtainIOArea(tx);
    io->WriteLnToArea(tx, area.value(), "withdraw how much from checking?");
    auto amount = io->ReadLineFromArea(tx, area.value());
    (void)amount;

    std::printf("================ display ================\n%s",
                io->RenderScreen().c_str());
    std::printf("=========================================\n");

    app.Transaction([&](const server::Tx& tx2) {
      std::printf("checking balance: %d (the crashed withdrawal never happened)\n",
                  accounts->GetCell(tx2, kChecking).value());
      return Status::kOk;
    });
  });  // ~TxnScope tidies up the in-progress demo transaction
  return 0;
}
