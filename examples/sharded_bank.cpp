// A bank whose account array spans four nodes: one logical service,
// "accounts", with one shard per node, opened by name through the service
// handle. The client never names a node — the handle resolves the shard
// bindings through the Name Server, routes each account to the shard that
// owns it (interleaved: account k lives on shard k mod 4), and a transfer
// whose two accounts live on different shards becomes an ordinary
// distributed transaction: both shard nodes join the spanning tree and the
// multi-node two-phase commit makes the debit and credit atomic.
//
// The second half crashes a shard's node mid-service: operations touching
// that shard fail with kNodeDown (the fresh resolution comes back with the
// shard missing), other shards keep serving, and after recovery the
// recovered node re-registers its binding and the same handle heals itself
// on the next operation.

#include <cstdio>

#include "src/servers/account_server.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

using namespace tabs;  // NOLINT: example brevity

namespace {

constexpr std::uint64_t kAccounts = 16;  // 4 per shard

void PrintBalances(World& world, Application& app, AccountService& bank) {
  app.Transaction([&](const server::Tx& tx) {
    std::printf("balances:");
    for (std::uint64_t a = 0; a < kAccounts; ++a) {
      auto b = bank.Balance(tx, a);
      if (b.ok()) {
        std::printf(" %3lld", static_cast<long long>(b.value()));
      } else {
        std::printf("   ?");
      }
    }
    std::printf("\n");
    return Status::kOk;
  });
}

}  // namespace

int main() {
  World world(4);
  world.AddShardedServiceOf<servers::AccountServer>("accounts", {1, 2, 3, 4},
                                                    /*shard_count=*/4, kAccounts);

  world.RunApp(1, [&](Application& app) {
    AccountService bank = OpenAccounts(world, "accounts");

    // Seed every account with 100. The sixteen deposits hit all four shards,
    // so this one transaction already spans four nodes.
    Status s = app.Transaction([&](const server::Tx& tx) {
      for (std::uint64_t a = 0; a < kAccounts; ++a) {
        Status d = bank.Deposit(tx, a, 100);
        if (d != Status::kOk) {
          return d;
        }
      }
      return Status::kOk;
    });
    std::printf("seed %llu accounts across %u shards: %s\n",
                static_cast<unsigned long long>(kAccounts), bank.shard_count(),
                StatusName(s));

    // Account 1 lives on shard 1 (node 2), account 6 on shard 2 (node 3):
    // a cross-shard transfer, atomic under two-phase commit.
    s = app.Transaction([&](const server::Tx& tx) {
      Status w = bank.Withdraw(tx, 1, 30);
      if (w != Status::kOk) {
        return w;
      }
      return bank.Deposit(tx, 6, 30);
    });
    std::printf("transfer 30 from account 1 to account 6 (cross-shard): %s\n",
                StatusName(s));
    PrintBalances(world, app, bank);

    // A shard dies. Withdrawing from account 2 (shard 2, node 3) now fails
    // with kNodeDown and aborts cleanly; account 0 (shard 0, node 1) is
    // untouched by the outage.
    std::printf("\ncrashing node 3 (shard 2)...\n");
    world.CrashNode(3);
    s = app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 2, 10); });
    std::printf("withdraw from account 2 (its shard is down): %s\n", StatusName(s));
    s = app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 0, 10); });
    std::printf("withdraw from account 0 (a live shard): %s\n", StatusName(s));

    // Recovery replays the shard's log and re-registers its binding; the
    // same handle re-resolves on the next operation and the shard's state
    // (including the committed transfer) is intact.
    std::printf("\nrecovering node 3...\n");
    world.RecoverNode(3);
    s = app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 2, 10); });
    std::printf("withdraw from account 2 after recovery: %s\n", StatusName(s));
    PrintBalances(world, app, bank);
  });
  return 0;
}
