#include "src/log/log_manager.h"

#include <gtest/gtest.h>

#include "src/log/log_record.h"
#include "src/sim/substrate.h"

namespace tabs::log {
namespace {

using sim::CostModel;
using sim::Primitive;

class LogTest : public ::testing::Test {
 protected:
  LogTest()
      : substrate_(sched_, CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        log_(substrate_, device_) {}

  void RunInTask(std::function<void()> fn) {
    sched_.Spawn("test", 1, 0, std::move(fn));
    ASSERT_EQ(sched_.Run(), 0);
  }

  static LogRecord ValueRec(TransactionId tid, ObjectId oid, Bytes oldv, Bytes newv) {
    LogRecord r;
    r.type = RecordType::kValueUpdate;
    r.owner = tid;
    r.top = tid;
    r.server = "srv";
    r.oid = oid;
    r.old_value = std::move(oldv);
    r.new_value = std::move(newv);
    return r;
  }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  StableLogDevice device_;
  LogManager log_;
};

TEST(LogRecordTest, SerializeDeserializeRoundTrip) {
  LogRecord r;
  r.type = RecordType::kOperationUpdate;
  r.owner = {2, 7};
  r.top = {2, 3};
  r.prev_lsn = 99;
  r.undo_next_lsn = 55;
  r.server = "btree";
  r.oid = {4, 1024, 16};
  r.old_value = {1, 2, 3};
  r.new_value = {4, 5};
  r.op_name = "insert";
  r.redo_args = {9, 9};
  r.undo_op_name = "delete";
  r.undo_args = {8};
  r.pages = {{4, 2}, {4, 3}};
  r.parent_node = 12;
  r.children = {3, 4, 5};
  r.local_servers = {"a", "b"};
  r.parent_tid = {1, 1};
  r.checkpoint_data = {0xde, 0xad};

  auto back = LogRecord::Deserialize(r.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, r.type);
  EXPECT_EQ(back->owner, r.owner);
  EXPECT_EQ(back->top, r.top);
  EXPECT_EQ(back->prev_lsn, r.prev_lsn);
  EXPECT_EQ(back->undo_next_lsn, r.undo_next_lsn);
  EXPECT_EQ(back->server, r.server);
  EXPECT_EQ(back->oid, r.oid);
  EXPECT_EQ(back->old_value, r.old_value);
  EXPECT_EQ(back->new_value, r.new_value);
  EXPECT_EQ(back->op_name, r.op_name);
  EXPECT_EQ(back->redo_args, r.redo_args);
  EXPECT_EQ(back->undo_op_name, r.undo_op_name);
  EXPECT_EQ(back->undo_args, r.undo_args);
  EXPECT_EQ(back->pages, r.pages);
  EXPECT_EQ(back->parent_node, r.parent_node);
  EXPECT_EQ(back->children, r.children);
  EXPECT_EQ(back->local_servers, r.local_servers);
  EXPECT_EQ(back->parent_tid, r.parent_tid);
  EXPECT_EQ(back->checkpoint_data, r.checkpoint_data);
}

TEST(LogRecordTest, DeserializeRejectsTruncatedInput) {
  LogRecord r;
  r.server = "x";
  Bytes b = r.Serialize();
  b.resize(b.size() / 2);
  EXPECT_FALSE(LogRecord::Deserialize(b).has_value());
}

TEST_F(LogTest, AppendAssignsMonotonicLsns) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  Lsn b = log_.Append(ValueRec(t, {1, 4, 4}, {0}, {2}));
  EXPECT_LT(a, b);
  EXPECT_EQ(a, 1u);
}

TEST_F(LogTest, BackwardChainThreadsPerOwner) {
  TransactionId t1{1, 1}, t2{1, 2};
  Lsn a = log_.Append(ValueRec(t1, {1, 0, 4}, {0}, {1}));
  Lsn b = log_.Append(ValueRec(t2, {1, 4, 4}, {0}, {2}));
  Lsn c = log_.Append(ValueRec(t1, {1, 8, 4}, {0}, {3}));
  EXPECT_EQ(log_.LastLsnOf(t1), c);
  EXPECT_EQ(log_.LastLsnOf(t2), b);
  auto rec_c = log_.ReadRecord(c);
  ASSERT_TRUE(rec_c.has_value());
  EXPECT_EQ(rec_c->prev_lsn, a);
  auto rec_a = log_.ReadRecord(a);
  ASSERT_TRUE(rec_a.has_value());
  EXPECT_EQ(rec_a->prev_lsn, kNullLsn);
}

TEST_F(LogTest, ReadsBufferedRecordsBeforeForce) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {9}, {1}));
  EXPECT_EQ(log_.durable_lsn(), kNullLsn);
  auto rec = log_.ReadRecord(a);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->new_value, Bytes{1});
}

TEST_F(LogTest, ForceChargesStableWritesGrouped) {
  TransactionId t{1, 1};
  for (int i = 0; i < 5; ++i) {
    log_.Append(ValueRec(t, {1, static_cast<uint32_t>(i) * 4, 4}, {0}, {1}));
  }
  RunInTask([&] { log_.ForceAll(); });
  // Five small records group into a couple of log pages — far fewer than
  // five stable writes.
  double writes = substrate_.metrics().Total().Of(Primitive::kStableWrite);
  EXPECT_GE(writes, 1.0);
  EXPECT_LE(writes, 3.0);
}

TEST_F(LogTest, ForceIsIdempotent) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  RunInTask([&] {
    log_.Force(a);
    double first = substrate_.metrics().Total().Of(Primitive::kStableWrite);
    log_.Force(a);
    EXPECT_EQ(substrate_.metrics().Total().Of(Primitive::kStableWrite), first);
  });
}

TEST_F(LogTest, ForwardScanVisitsAllRecords) {
  TransactionId t{1, 1};
  std::vector<Lsn> appended;
  for (int i = 0; i < 4; ++i) {
    appended.push_back(log_.Append(ValueRec(t, {1, 0, 4}, {0}, {std::uint8_t(i)})));
  }
  RunInTask([&] { log_.ForceAll(); });
  std::vector<Lsn> scanned;
  for (Lsn l = log_.first_lsn(); l != kNullLsn; l = log_.NextLsn(l)) {
    scanned.push_back(l);
  }
  EXPECT_EQ(scanned, appended);
}

TEST_F(LogTest, BackwardScanVisitsAllRecordsReversed) {
  TransactionId t{1, 1};
  std::vector<Lsn> appended;
  for (int i = 0; i < 4; ++i) {
    appended.push_back(log_.Append(ValueRec(t, {1, 0, 4}, {0}, {std::uint8_t(i)})));
  }
  RunInTask([&] { log_.ForceAll(); });
  std::vector<Lsn> scanned;
  for (Lsn l = log_.LastDurableLsn(); l != kNullLsn; l = log_.PrevLsn(l)) {
    scanned.push_back(l);
  }
  std::reverse(scanned.begin(), scanned.end());
  EXPECT_EQ(scanned, appended);
}

TEST_F(LogTest, SurvivesReattachAfterCrash) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  Lsn b = log_.Append(ValueRec(t, {1, 4, 4}, {0}, {2}));
  RunInTask([&] { log_.Force(a); });  // forces the whole buffer (group force)

  // Crash: a fresh LogManager binds to the same stable device.
  LogManager after(substrate_, device_);
  EXPECT_EQ(after.LastDurableLsn(), b);
  auto rec = after.ReadRecord(b);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->new_value, Bytes{2});
}

TEST_F(LogTest, UnforcedRecordsDieWithTheBuffer) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  RunInTask([&] { log_.Force(a); });
  Lsn b = log_.Append(ValueRec(t, {1, 4, 4}, {0}, {2}));

  LogManager after(substrate_, device_);  // crash without forcing b
  EXPECT_EQ(after.LastDurableLsn(), a);
  EXPECT_FALSE(after.ReadRecord(b).has_value());
}

TEST_F(LogTest, SectorChecksumsTrackAppendsAndDetectCorruption) {
  TransactionId t{1, 1};
  // Enough records to span several 512-byte sectors.
  for (std::uint32_t i = 0; i < 30; ++i) {
    log_.Append(ValueRec(t, {1, i * 4, 4}, {0}, {static_cast<std::uint8_t>(i)}));
  }
  RunInTask([&] { log_.ForceAll(); });
  ASSERT_GE(device_.SectorCount(), 3u);
  for (std::uint64_t s = 0; s < device_.SectorCount(); ++s) {
    EXPECT_TRUE(device_.SectorValid(s)) << "sector " << s;
  }
  EXPECT_EQ(device_.FirstInvalidByte(), device_.size());

  device_.CorruptSector(1);
  EXPECT_FALSE(device_.SectorValid(1));
  EXPECT_TRUE(device_.SectorValid(0));
  EXPECT_EQ(device_.FirstInvalidByte(), StableLogDevice::kSectorBytes);
}

TEST_F(LogTest, TornAppendKeepsOnlyDurableSectors) {
  Bytes big(3 * StableLogDevice::kSectorBytes, 0x7F);
  device_.AppendTorn(big, 1);
  EXPECT_EQ(device_.size(), StableLogDevice::kSectorBytes);
  // The surviving prefix is checksum-valid: a clean tear, not corruption.
  EXPECT_EQ(device_.FirstInvalidByte(), device_.size());
}

TEST_F(LogTest, RebindTruncatesTornTailAndCountsIt) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  RunInTask([&] { log_.ForceAll(); });
  std::uint64_t good_size = device_.size();

  // A torn force: half a frame lands past the durable prefix.
  Bytes fragment{9, 0, 0, 0, 1, 2, 3};  // claims 9 payload bytes, delivers 3
  device_.Append(fragment);

  LogManager after(substrate_, device_);  // crash + rebind validates the tail
  EXPECT_EQ(device_.size(), good_size);   // fragment cut, good prefix kept
  EXPECT_EQ(after.LastDurableLsn(), a);
  EXPECT_EQ(substrate_.metrics().log_tail_truncations(), 1);
  EXPECT_EQ(substrate_.metrics().log_tail_bytes_truncated(), fragment.size());
}

TEST_F(LogTest, RebindTruncatesCorruptTailAtTheDamagedSector) {
  TransactionId t{1, 1};
  for (std::uint32_t i = 0; i < 30; ++i) {
    log_.Append(ValueRec(t, {1, i * 4, 4}, {0}, {static_cast<std::uint8_t>(i)}));
  }
  RunInTask([&] { log_.ForceAll(); });
  std::uint64_t last_sector = device_.SectorCount() - 1;
  ASSERT_GE(last_sector, 1u);
  device_.CorruptSector(last_sector);

  LogManager after(substrate_, device_);
  // Nothing at or past the damaged sector survives; everything below does.
  EXPECT_LE(device_.size(), last_sector * StableLogDevice::kSectorBytes);
  EXPECT_GE(substrate_.metrics().log_tail_truncations(), 1);
  EXPECT_EQ(substrate_.metrics().faults_injected(sim::FaultKind::kCorruptSector), 1);
  Lsn durable = after.LastDurableLsn();
  ASSERT_NE(durable, kNullLsn);
  EXPECT_TRUE(after.ReadRecord(durable).has_value());
}

TEST_F(LogTest, TruncationReclaimsSpaceAndBlocksReads) {
  TransactionId t{1, 1};
  Lsn a = log_.Append(ValueRec(t, {1, 0, 4}, {0}, {1}));
  Lsn b = log_.Append(ValueRec(t, {1, 4, 4}, {0}, {2}));
  RunInTask([&] { log_.ForceAll(); });
  std::uint64_t before = log_.StableBytesInUse();
  device_.TruncateBefore(b - 1);
  EXPECT_LT(log_.StableBytesInUse(), before);
  EXPECT_FALSE(log_.ReadRecord(a).has_value());
  EXPECT_TRUE(log_.ReadRecord(b).has_value());
  EXPECT_EQ(log_.first_lsn(), b);
}

}  // namespace
}  // namespace tabs::log
