// Resolver tests: lookup caching, sharded-service resolution, and behaviour
// under churn — crashed peers during broadcast, re-registration after
// recovery, and stale-binding invalidation.

#include "src/name/resolver.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/placement/shard_map.h"

namespace tabs::name {
namespace {

constexpr SimTime kWait = 300'000;  // short waits keep churn tests quick

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : substrate_(sched_, sim::CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        resolver_(kWait) {
    for (NodeId n = 1; n <= 3; ++n) {
      net_.AddNode(n);
      cms_.push_back(std::make_unique<comm::CommManager>(n, net_));
      servers_.push_back(std::make_unique<NameServer>(*cms_.back()));
      peers_[n] = servers_.back().get();
    }
    for (auto& s : servers_) {
      s->SetPeers(&peers_);
    }
  }

  NameServer& ns(NodeId n) { return *servers_[n - 1]; }

  // Registers a 3-shard service, shard n-1 on node n, instance "svc#<shard>".
  void RegisterShardedService(const std::string& service) {
    for (NodeId n = 1; n <= 3; ++n) {
      std::uint32_t shard = n - 1;
      ns(n).Register(service,
                     Binding{n, placement::ShardInstanceName(service, shard), {7, shard, 3}});
    }
  }

  void CrashNode(NodeId n) {
    net_.SetAlive(n, false);
    peers_[n] = nullptr;
  }

  void ReviveNode(NodeId n) {
    net_.SetAlive(n, true);
    peers_[n] = servers_[n - 1].get();
  }

  void RunTask(const std::function<void()>& body) {
    sched_.Spawn("t", 1, 0, body);
    EXPECT_EQ(sched_.Run(), 0);
  }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  comm::Network net_{substrate_};
  std::vector<std::unique_ptr<comm::CommManager>> cms_;
  std::vector<std::unique_ptr<NameServer>> servers_;
  std::map<NodeId, NameServer*> peers_;
  Resolver resolver_;
};

TEST_F(ResolverTest, SecondResolveIsACacheHit) {
  ns(1).Register("printer", Binding{1, "printer", {1, 0, 1}});
  RunTask([&] {
    auto first = resolver_.Resolve(ns(1), "printer", 1);
    ASSERT_EQ(first.size(), 1u);
    auto second = resolver_.Resolve(ns(1), "printer", 1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], first[0]);
  });
  EXPECT_EQ(resolver_.stats().lookups, 1u);
  EXPECT_EQ(resolver_.stats().cache_hits, 1u);
}

TEST_F(ResolverTest, ResolveServiceGathersEveryShard) {
  RegisterShardedService("accounts");
  RunTask([&] {
    auto res = resolver_.ResolveService(ns(2), "accounts");
    EXPECT_EQ(res.expected, 3u);
    ASSERT_EQ(res.bindings.size(), 3u);
    EXPECT_TRUE(res.complete());
    auto map = placement::ShardMap::FromBindings("accounts", res.bindings);
    ASSERT_TRUE(map.ok());
    EXPECT_EQ(map.value().shard_count(), 3u);
    for (std::uint32_t s = 0; s < 3; ++s) {
      EXPECT_EQ(map.value().binding(s).node, s + 1);
    }
  });
}

TEST_F(ResolverTest, CrashedPeerYieldsIncompleteResolution) {
  RegisterShardedService("accounts");
  CrashNode(3);
  RunTask([&] {
    auto res = resolver_.ResolveService(ns(1), "accounts");
    EXPECT_EQ(res.expected, 3u);
    EXPECT_EQ(res.bindings.size(), 2u);  // node 3 never answered the broadcast
    EXPECT_FALSE(res.complete());
    // A shard map cannot be built from the partial set.
    EXPECT_FALSE(placement::ShardMap::FromBindings("accounts", res.bindings).ok());
  });
}

TEST_F(ResolverTest, IncompleteResolutionIsNotServedFromCache) {
  RegisterShardedService("accounts");
  CrashNode(3);
  RunTask([&] {
    auto res = resolver_.ResolveService(ns(1), "accounts");
    EXPECT_FALSE(res.complete());
  });
  std::uint64_t lookups_after_partial = resolver_.stats().lookups;

  // The node recovers and re-registers (recovery re-runs registration); the
  // next ResolveService must go back to the network, not trust the partial
  // cache, and now sees all three shards.
  ReviveNode(3);
  RunTask([&] {
    auto res = resolver_.ResolveService(ns(1), "accounts");
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.bindings.size(), 3u);
  });
  EXPECT_GT(resolver_.stats().lookups, lookups_after_partial);
}

TEST_F(ResolverTest, UnknownNameIsNotCachedAsEmpty) {
  RunTask([&] { EXPECT_TRUE(resolver_.Resolve(ns(1), "nothing", 1).empty()); });
  // Late registration is visible: the empty result was not cached.
  ns(2).Register("nothing", Binding{2, "late", {1, 0, 1}});
  RunTask([&] {
    auto found = resolver_.Resolve(ns(1), "nothing", 1);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].node, 2u);
  });
}

TEST_F(ResolverTest, InvalidateNodeDropsOnlyThatNodesBindings) {
  RegisterShardedService("accounts");
  ns(1).Register("printer", Binding{1, "printer", {1, 0, 1}});
  RunTask([&] {
    resolver_.ResolveService(ns(1), "accounts");
    resolver_.Resolve(ns(1), "printer", 1);
  });
  std::uint64_t lookups_before = resolver_.stats().lookups;

  resolver_.InvalidateNode(2);
  EXPECT_EQ(resolver_.stats().invalidations, 1u);

  RunTask([&] {
    // "printer" (node 1) is still served from cache; "accounts" lost its
    // node-2 shard and must re-resolve.
    resolver_.Resolve(ns(1), "printer", 1);
    EXPECT_EQ(resolver_.stats().lookups, lookups_before);
    auto res = resolver_.ResolveService(ns(1), "accounts");
    EXPECT_TRUE(res.complete());
  });
  EXPECT_GT(resolver_.stats().lookups, lookups_before);
}

TEST_F(ResolverTest, StaleBindingHealsAfterInvalidate) {
  // A service moves: the binding the resolver cached goes stale. Invalidate
  // forces the next resolve back to the Name Server, which finds the new
  // home.
  Binding old_home{3, "svc", {1, 0, 1}};
  ns(3).Register("svc", old_home);
  RunTask([&] {
    auto found = resolver_.Resolve(ns(1), "svc", 1);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].node, 3u);
  });

  // Node 3 dies; the service is re-registered on node 2. The cache still
  // says node 3 until told otherwise.
  CrashNode(3);
  ns(2).Register("svc", Binding{2, "svc", {1, 0, 1}});
  RunTask([&] {
    auto cached = resolver_.Resolve(ns(1), "svc", 1);
    ASSERT_EQ(cached.size(), 1u);
    EXPECT_EQ(cached[0].node, 3u);  // stale, by design: caller invalidates on kNodeDown
  });

  resolver_.InvalidateNode(3);
  RunTask([&] {
    auto fresh = resolver_.Resolve(ns(1), "svc", 1);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].node, 2u);
  });
}

}  // namespace
}  // namespace tabs::name
