// Name Server tests: registration, local and broadcast lookup, replicated
// bindings, deregistration, crash behaviour.

#include "src/name/name_server.h"

#include <gtest/gtest.h>

namespace tabs::name {
namespace {

class NameServerTest : public ::testing::Test {
 protected:
  NameServerTest()
      : substrate_(sched_, sim::CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        net_(substrate_) {
    for (NodeId n = 1; n <= 3; ++n) {
      net_.AddNode(n);
      cms_.push_back(std::make_unique<comm::CommManager>(n, net_));
      servers_.push_back(std::make_unique<NameServer>(*cms_.back()));
      peers_[n] = servers_.back().get();
    }
    for (auto& s : servers_) {
      s->SetPeers(&peers_);
    }
  }

  NameServer& ns(NodeId n) { return *servers_[n - 1]; }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  comm::Network net_;
  std::vector<std::unique_ptr<comm::CommManager>> cms_;
  std::vector<std::unique_ptr<NameServer>> servers_;
  std::map<NodeId, NameServer*> peers_;
};

TEST_F(NameServerTest, LocalRegisterAndLookup) {
  Binding b{1, "printer", {1, 0, 1}};
  ns(1).Register("printer", b);
  sched_.Spawn("t", 1, 0, [&] {
    auto found = ns(1).LookUp("printer", 1, 1'000'000);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0], b);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(NameServerTest, BroadcastFindsRemoteBinding) {
  Binding b{3, "mail", {2, 0, 1}};
  ns(3).Register("mail", b);
  sched_.Spawn("t", 1, 0, [&] {
    auto found = ns(1).LookUp("mail", 1, 1'000'000);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].node, 3u);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(NameServerTest, ReplicatedNameGathersMultipleBindings) {
  // "Independent data server processes can together implement replicated
  // objects": one name, three bindings on three nodes.
  for (NodeId n = 1; n <= 3; ++n) {
    ns(n).Register("directory", Binding{n, "dir-rep", {1, 0, 1}});
  }
  sched_.Spawn("t", 2, 0, [&] {
    auto found = ns(2).LookUp("directory", 3, 1'000'000);
    EXPECT_EQ(found.size(), 3u);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(NameServerTest, DesiredCountTruncates) {
  for (NodeId n = 1; n <= 3; ++n) {
    ns(n).Register("svc", Binding{n, "svc", {1, 0, 1}});
  }
  sched_.Spawn("t", 1, 0, [&] {
    auto found = ns(1).LookUp("svc", 2, 1'000'000);
    EXPECT_EQ(found.size(), 2u);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(NameServerTest, UnknownNameTimesOutEmpty) {
  SimTime waited = 0;
  sched_.Spawn("t", 1, 0, [&] {
    SimTime t0 = sched_.Now();
    auto found = ns(1).LookUp("nothing", 1, 300'000);
    waited = sched_.Now() - t0;
    EXPECT_TRUE(found.empty());
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_GE(waited, 300'000);  // waited out the MaxWait
}

TEST_F(NameServerTest, DeRegisterRemovesBinding) {
  Binding b{1, "tmp", {1, 0, 1}};
  ns(1).Register("tmp", b);
  ns(1).DeRegister("tmp", b);
  EXPECT_TRUE(ns(1).LocalLookup("tmp").empty());
}

TEST_F(NameServerTest, DuplicateRegistrationIsIdempotent) {
  Binding b{1, "dup", {1, 0, 1}};
  ns(1).Register("dup", b);
  ns(1).Register("dup", b);
  EXPECT_EQ(ns(1).LocalLookup("dup").size(), 1u);
}

TEST_F(NameServerTest, CrashedNodeDoesNotAnswerBroadcast) {
  ns(3).Register("only-on-3", Binding{3, "s", {1, 0, 1}});
  net_.SetAlive(3, false);
  peers_[3] = nullptr;
  sched_.Spawn("t", 1, 0, [&] {
    auto found = ns(1).LookUp("only-on-3", 1, 300'000);
    EXPECT_TRUE(found.empty());
  });
  EXPECT_EQ(sched_.Run(), 0);
}

}  // namespace
}  // namespace tabs::name
