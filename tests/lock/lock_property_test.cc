// Property sweeps for the lock manager: random acquire/release traffic
// checked against invariants, across several compatibility matrices
// (standard shared/exclusive plus typed variants).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "src/lock/lock_manager.h"

namespace tabs::lock {
namespace {

struct MatrixCase {
  std::string name;
  CompatibilityMatrix matrix;
  int mode_count;
};

std::vector<MatrixCase> Matrices() {
  std::vector<MatrixCase> out;
  out.push_back({"shared_exclusive", CompatibilityMatrix::SharedExclusive(), 2});

  // Typed: increment/decrement commute (the account server's matrix).
  CompatibilityMatrix account(4);
  account.SetCompatible(kShared, kShared);
  account.SetCompatible(2, 2);
  account.SetCompatible(3, 3);
  account.SetCompatible(2, 3);
  out.push_back({"account_typed", account, 4});

  // All-compatible except exclusive: maximal concurrency.
  CompatibilityMatrix loose(3);
  loose.SetCompatible(kShared, kShared);
  loose.SetCompatible(kShared, 2);
  loose.SetCompatible(2, 2);
  out.push_back({"loose", loose, 3});
  return out;
}

class LockPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LockPropertyTest, GrantsNeverViolateCompatibility) {
  for (const MatrixCase& mc : Matrices()) {
    sim::Scheduler sched;
    LockManager lm(sched, mc.matrix, /*default_timeout=*/0);  // never wait
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 7);

    // Model of current grants: oid -> [(tid, mode)].
    std::map<ObjectId, std::vector<std::pair<TransactionId, LockMode>>> granted;

    sched.Spawn("driver", 1, 0, [&] {
      for (int step = 0; step < 400; ++step) {
        TransactionId tid{1, 1 + rng() % 5};
        ObjectId oid{1, static_cast<std::uint32_t>((rng() % 6) * 8), 8};
        auto mode = static_cast<LockMode>(rng() % mc.mode_count);
        if (rng() % 5 == 0) {
          lm.ReleaseAll(tid);
          for (auto& [o, grants] : granted) {
            std::erase_if(grants, [&](auto& g) { return g.first == tid; });
          }
          continue;
        }
        bool got = lm.ConditionalLock(tid, oid, mode);
        // Invariant 1: a grant is compatible with every other holder.
        if (got) {
          for (auto& [holder, held] : granted[oid]) {
            if (holder != tid) {
              EXPECT_TRUE(mc.matrix.Compatible(mode, held))
                  << mc.name << " granted " << int(mode) << " against held " << int(held);
            }
          }
          granted[oid].emplace_back(tid, mode);
        } else {
          // Invariant 2: a refusal means some other holder conflicts.
          bool conflict = false;
          for (auto& [holder, held] : granted[oid]) {
            if (holder != tid && !mc.matrix.Compatible(mode, held)) {
              conflict = true;
            }
          }
          EXPECT_TRUE(conflict) << mc.name << " refused a compatible request";
        }
        // Invariant 3: IsLocked agrees with the model.
        EXPECT_EQ(lm.IsLocked(oid), !granted[oid].empty());
      }
      // Teardown: everything releasable.
      for (std::uint64_t s = 1; s <= 5; ++s) {
        lm.ReleaseAll(TransactionId{1, s});
      }
      EXPECT_EQ(lm.LockedObjectCount(), 0u);
    });
    EXPECT_EQ(sched.Run(), 0) << mc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockPropertyTest, ::testing::Values(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tabs::lock
