#include "src/lock/lock_manager.h"

#include <gtest/gtest.h>

#include "src/lock/deadlock_detector.h"

namespace tabs::lock {
namespace {

constexpr ObjectId kObjA{1, 0, 4};
constexpr ObjectId kObjB{1, 4, 4};
constexpr TransactionId kT1{1, 1};
constexpr TransactionId kT2{1, 2};
constexpr TransactionId kT3{1, 3};

class LockTest : public ::testing::Test {
 protected:
  LockTest() : lm_(sched_, CompatibilityMatrix::SharedExclusive(), /*default_timeout=*/5000) {}

  void Spawn(std::function<void()> fn, SimTime at = 0) {
    sched_.Spawn("t", 1, at, std::move(fn));
  }

  sim::Scheduler sched_;
  LockManager lm_;
};

TEST_F(LockTest, SharedLocksAreCompatible) {
  Spawn([&] {
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kShared), Status::kOk);
    EXPECT_EQ(lm_.Lock(kT2, kObjA, kShared), Status::kOk);
    EXPECT_TRUE(lm_.IsLocked(kObjA));
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, ExclusiveConflictsTimeOut) {
  Spawn([&] {
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kExclusive), Status::kOk);
    EXPECT_EQ(lm_.Lock(kT2, kObjA, kExclusive, 100), Status::kTimeout);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, ReleaseWakesWaiter) {
  Status got = Status::kInternal;
  Spawn([&] {
    ASSERT_EQ(lm_.Lock(kT1, kObjA, kExclusive), Status::kOk);
    sched_.Charge(50);
    sched_.Yield();  // let the waiter queue up
    lm_.ReleaseAll(kT1);
  });
  Spawn(
      [&] {
        got = lm_.Lock(kT2, kObjA, kExclusive, 10000);
        EXPECT_TRUE(lm_.Holds(kT2, kObjA, kExclusive));
      },
      10);
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(got, Status::kOk);
}

TEST_F(LockTest, ReacquireByHolderIsGranted) {
  Spawn([&] {
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kShared), Status::kOk);
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kExclusive), Status::kOk);  // upgrade, no other holders
    EXPECT_TRUE(lm_.Holds(kT1, kObjA, kExclusive));
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, UpgradeBlocksWhenOtherReaderPresent) {
  Spawn([&] {
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kShared), Status::kOk);
    EXPECT_EQ(lm_.Lock(kT2, kObjA, kShared), Status::kOk);
    EXPECT_EQ(lm_.Lock(kT1, kObjA, kExclusive, 100), Status::kTimeout);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, ConditionalLockNeverBlocks) {
  Spawn([&] {
    EXPECT_TRUE(lm_.ConditionalLock(kT1, kObjA, kExclusive));
    SimTime before = sched_.Now();
    EXPECT_FALSE(lm_.ConditionalLock(kT2, kObjA, kShared));
    EXPECT_EQ(sched_.Now(), before);  // no virtual time passed: no wait
    EXPECT_TRUE(lm_.ConditionalLock(kT2, kObjB, kExclusive));
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, IsLockedObservesState) {
  Spawn([&] {
    EXPECT_FALSE(lm_.IsLocked(kObjA));
    lm_.Lock(kT1, kObjA, kShared);
    EXPECT_TRUE(lm_.IsLocked(kObjA));
    lm_.ReleaseAll(kT1);
    EXPECT_FALSE(lm_.IsLocked(kObjA));
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, ReleaseAllDropsEveryLock) {
  Spawn([&] {
    lm_.Lock(kT1, kObjA, kExclusive);
    lm_.Lock(kT1, kObjB, kShared);
    EXPECT_EQ(lm_.LocksHeldBy(kT1).size(), 2u);
    lm_.ReleaseAll(kT1);
    EXPECT_TRUE(lm_.LocksHeldBy(kT1).empty());
    EXPECT_EQ(lm_.LockedObjectCount(), 0u);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, FifoGrantOrderPreventsWriterStarvation) {
  std::vector<int> grant_order;
  Spawn([&] {
    ASSERT_EQ(lm_.Lock(kT1, kObjA, kShared), Status::kOk);
    sched_.Charge(100);
    sched_.Yield();  // writer then reader queue up behind us
    lm_.ReleaseAll(kT1);
  });
  Spawn(
      [&] {
        EXPECT_EQ(lm_.Lock(kT2, kObjA, kExclusive, 100000), Status::kOk);
        grant_order.push_back(2);
        lm_.ReleaseAll(kT2);
      },
      10);
  Spawn(
      [&] {
        EXPECT_EQ(lm_.Lock(kT3, kObjA, kExclusive, 100000), Status::kOk);
        grant_order.push_back(3);
        lm_.ReleaseAll(kT3);
      },
      20);
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(grant_order, (std::vector<int>{2, 3}));
}

TEST_F(LockTest, SubtransactionLockInheritance) {
  Spawn([&] {
    TransactionId parent{1, 10}, child{1, 11};
    lm_.Lock(child, kObjA, kExclusive);
    lm_.InheritToParent(child, parent);
    EXPECT_TRUE(lm_.Holds(parent, kObjA, kExclusive));
    EXPECT_FALSE(lm_.Holds(child, kObjA, kExclusive));
    // Parent and its other children don't deadlock against inherited locks.
    EXPECT_EQ(lm_.Lock(parent, kObjA, kShared), Status::kOk);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, IntraTransactionDeadlockBetweenSubtransactions) {
  // The paper: subtransactions "may cause intra-transaction deadlock if two
  // subtransactions update the same data" (Section 2.1.3).
  Status sub2_status = Status::kOk;
  Spawn([&] {
    TransactionId sub1{1, 21};
    ASSERT_EQ(lm_.Lock(sub1, kObjA, kExclusive), Status::kOk);
  });
  Spawn(
      [&] {
        TransactionId sub2{1, 22};
        sub2_status = lm_.Lock(sub2, kObjA, kExclusive, 500);
      },
      10);
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(sub2_status, Status::kTimeout);
}

TEST_F(LockTest, TypeSpecificMatrixAllowsCommutingModes) {
  // A queue-ish matrix: enqueue locks commute with dequeue locks (operating
  // on different ends) but not with themselves.
  constexpr LockMode kEnq = 2, kDeq = 3;
  CompatibilityMatrix m(4);
  m.SetCompatible(kShared, kShared);
  m.SetCompatible(kEnq, kDeq);
  LockManager typed(sched_, m, 5000);
  Spawn([&] {
    EXPECT_EQ(typed.Lock(kT1, kObjA, kEnq), Status::kOk);
    EXPECT_EQ(typed.Lock(kT2, kObjA, kDeq), Status::kOk);       // commutes
    EXPECT_EQ(typed.Lock(kT3, kObjA, kEnq, 100), Status::kTimeout);  // enq-enq conflicts
  });
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, WaitsForEdgesReflectConflicts) {
  Spawn([&] {
    lm_.Lock(kT1, kObjA, kExclusive);
    sched_.Charge(1);
  });
  Spawn(
      [&] { lm_.Lock(kT2, kObjA, kExclusive, 10000); },
      5);
  Spawn(
      [&] {
        auto edges = lm_.WaitsFor();
        ASSERT_EQ(edges.size(), 1u);
        EXPECT_EQ(edges[0].waiter, kT2);
        EXPECT_EQ(edges[0].holder, kT1);
        lm_.ReleaseAll(kT1);  // let T2 through so the run drains
      },
      50);
  EXPECT_EQ(sched_.Run(), 0);
}

TEST_F(LockTest, DeadlockDetectorFindsAndBreaksCycle) {
  DeadlockDetector det;
  det.AddLockManager(&lm_);
  Status t1_second = Status::kOk, t2_second = Status::kOk;
  Spawn([&] {
    ASSERT_EQ(lm_.Lock(kT1, kObjA, kExclusive), Status::kOk);
    sched_.Charge(10);
    sched_.Yield();
    t1_second = lm_.Lock(kT1, kObjB, kExclusive, 100000);
    lm_.ReleaseAll(kT1);
  });
  Spawn(
      [&] {
        ASSERT_EQ(lm_.Lock(kT2, kObjB, kExclusive), Status::kOk);
        sched_.Charge(10);
        sched_.Yield();
        t2_second = lm_.Lock(kT2, kObjA, kExclusive, 100000);
        lm_.ReleaseAll(kT2);
      },
      1);
  Spawn(
      [&] {
        auto victim = det.BreakOneCycle();
        ASSERT_TRUE(victim.has_value());
        EXPECT_EQ(*victim, kT2);  // youngest in the cycle
      },
      1000);
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(t1_second, Status::kOk);
  EXPECT_EQ(t2_second, Status::kAborted);
}

TEST_F(LockTest, DetectorReportsNoCycleWhenNoneExists) {
  DeadlockDetector det;
  det.AddLockManager(&lm_);
  Spawn([&] {
    lm_.Lock(kT1, kObjA, kExclusive);
    EXPECT_TRUE(det.FindCycle().empty());
    EXPECT_FALSE(det.BreakOneCycle().has_value());
    lm_.ReleaseAll(kT1);
  });
  EXPECT_EQ(sched_.Run(), 0);
}

}  // namespace
}  // namespace tabs::lock
