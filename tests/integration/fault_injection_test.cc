// Storage- and network-fault injection: torn log writes, corrupt sectors,
// lost page write-backs, corrupt data pages, datagram duplication/jitter,
// session loss, and the RunTransactional retry loop under injected failure.
//
// Everything here is deterministic: the same World options and seeds replay
// the same schedule, so every assertion is exact, not statistical.

#include <gtest/gtest.h>

#include <vector>

#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;
using servers::ArrayServer;

// --- torn and corrupt log tails ----------------------------------------------

class LogDamageTest : public ::testing::Test {
 protected:
  // Node 1 hosts the array server; node 2 survives crashes and drives
  // recovery.
  World world_{2};
  ArrayServer* srv_ = world_.AddServerOf<ArrayServer>(1, "array", 256);

  void CommitCells(std::uint32_t first, std::uint32_t last, std::int32_t value) {
    world_.RunApp(1, [&](Application& app) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t c = first; c <= last; ++c) {
          Status w = srv_->SetCell(tx, c, value);
          if (w != Status::kOk) {
            return w;
          }
        }
        return Status::kOk;
      });
      EXPECT_EQ(s, Status::kOk);
    });
  }

  void RecoverNode1() {
    world_.RunApp(2, [&](Application&) { world_.RecoverNode(1); });
    srv_ = world_.Server<ArrayServer>(1, "array");
    ASSERT_NE(srv_, nullptr);
  }

  void ExpectCells(std::uint32_t first, std::uint32_t last, std::int32_t value) {
    world_.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t c = first; c <= last; ++c) {
          auto got = srv_->GetCell(tx, c);
          EXPECT_TRUE(got.ok()) << "cell " << c;
          EXPECT_EQ(got.ok() ? got.value() : -1, value) << "cell " << c;
        }
        return Status::kOk;
      });
    });
  }
};

TEST_F(LogDamageTest, TornLogForceIsTruncatedAtRecovery) {
  CommitCells(0, 4, 7);  // durable baseline

  // The next force tears after one durable sector: the transaction's value
  // records and commit record straddle the tear, and the node dies with the
  // write (power loss). The workload observes the crash as a killed task.
  world_.faults().ArmTornLogForce(1);
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t c = 0; c < 10; ++c) {
        Status w = srv_->SetCell(tx, c, 9);
        if (w != Status::kOk) {
          return w;
        }
      }
      return Status::kOk;
    });
    ADD_FAILURE() << "transaction survived a torn commit force";
  });
  EXPECT_TRUE(world_.faults().crash_fired());
  EXPECT_FALSE(world_.NodeAlive(1));
  EXPECT_EQ(world_.metrics().faults_injected(sim::FaultKind::kTornLogWrite), 1);

  RecoverNode1();

  // The torn tail was detected (checksums + framing) and cut; the interrupted
  // transaction rolled back, the committed prefix survived.
  EXPECT_GE(world_.metrics().log_tail_truncations(), 1);
  EXPECT_GT(world_.metrics().log_tail_bytes_truncated(), 0u);
  ExpectCells(0, 4, 7);
  ExpectCells(5, 9, 0);
}

TEST_F(LogDamageTest, CorruptLogSectorIsDetectedAndTruncated) {
  CommitCells(0, 4, 7);
  // A second, larger transaction pushes the first one's records safely below
  // the final sector, then the final sector (holding the second commit
  // record) is damaged in place — a failing medium, not a torn write.
  CommitCells(5, 20, 9);
  log::StableLogDevice& dev = world_.node(1).stable_log();
  ASSERT_GE(dev.SectorCount(), 2u);
  dev.CorruptSector(dev.SectorCount() - 1);
  EXPECT_LT(dev.FirstInvalidByte(), dev.size());

  world_.RunApp(2, [&](Application&) { world_.CrashNode(1); });
  RecoverNode1();

  EXPECT_GE(world_.metrics().log_tail_truncations(), 1);
  EXPECT_EQ(world_.metrics().faults_injected(sim::FaultKind::kCorruptSector), 1);
  // Recovery never applied a record past the damage: the second transaction
  // lost its commit record and rolled back; the first is intact.
  ExpectCells(0, 4, 7);
  ExpectCells(5, 20, 0);
}

TEST_F(LogDamageTest, LostPageWritesAreRepairedByRedo) {
  // Three pages' worth of committed cells (128 four-byte cells per page).
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(srv_->SetCell(tx, 0, 7), Status::kOk);
      EXPECT_EQ(srv_->SetCell(tx, 130, 7), Status::kOk);
      EXPECT_EQ(srv_->SetCell(tx, 200, 7), Status::kOk);
      return Status::kOk;
    });
  });
  // The write-back elevator loses its first two writes (torn batch): the
  // disk reports success but keeps the old pages and sequence numbers.
  world_.node(1).disk().InjectLostWrites(2);
  world_.RunApp(1, [&](Application&) { srv_->segment().FlushAll(); });
  EXPECT_EQ(world_.metrics().faults_injected(sim::FaultKind::kLostPageWrite), 2);

  world_.RunApp(2, [&](Application&) { world_.CrashNode(1); });
  RecoverNode1();

  // The log was never reclaimed past the lost pages, so recovery rewrites
  // the committed images the disk dropped.
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(srv_->GetCell(tx, 0).value(), 7);
      EXPECT_EQ(srv_->GetCell(tx, 130).value(), 7);
      EXPECT_EQ(srv_->GetCell(tx, 200).value(), 7);
      return Status::kOk;
    });
  });
}

TEST_F(LogDamageTest, CorruptDataPageIsRewrittenByValueRecovery) {
  CommitCells(0, 100, 7);
  world_.RunApp(1, [&](Application&) { srv_->segment().FlushAll(); });
  // Scramble the first data page on the platter (stale checksum model: its
  // header sequence number is destroyed too).
  world_.node(1).disk().CorruptPage({srv_->segment().id(), 0});
  EXPECT_EQ(world_.metrics().faults_injected(sim::FaultKind::kCorruptSector), 1);

  world_.RunApp(2, [&](Application&) { world_.CrashNode(1); });
  RecoverNode1();

  // Value recovery rewrites every committed image from the retained log.
  ExpectCells(0, 100, 7);
}

// --- network faults ----------------------------------------------------------

std::int64_t TotalBalance(World& world, AccountServer* b1, AccountServer* b2,
                          std::uint32_t accounts) {
  std::int64_t total = 0;
  world.RunApp(3, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t a = 0; a < accounts; ++a) {
        auto v1 = b1->ReadBalance(tx, a);
        auto v2 = b2->ReadBalance(tx, a);
        EXPECT_TRUE(v1.ok() && v2.ok());
        total += v1.value() + v2.value();
      }
      return Status::kOk;
    });
  });
  return total;
}

TEST(NetworkFaultTest, DuplicationAndJitterPreserveAtomicity) {
  World world(3);
  auto* b1 = world.AddServerOf<AccountServer>(1, "bank1", 4);
  auto* b2 = world.AddServerOf<AccountServer>(2, "bank2", 4);
  world.RunApp(3, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(b1->Deposit(tx, 0, 1000), Status::kOk);
      return Status::kOk;
    });
  });

  // Every 2PC datagram now rolls for duplication and for bounded reordering
  // jitter. The protocol's handlers are idempotent and the coordinator
  // tolerates stale redeliveries, so atomicity must hold regardless.
  world.network().SetDatagramFaults({/*seed=*/42, /*duplicate_probability=*/0.5,
                                     /*jitter_probability=*/0.5, /*max_jitter_us=*/2000});
  world.RunApp(3, [&](Application& app) {
    for (int i = 0; i < 12; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        Status s = b1->Withdraw(tx, 0, 10);
        if (s != Status::kOk) {
          return s;
        }
        return b2->Deposit(tx, static_cast<std::uint32_t>(i % 4), 10);
      });
    }
  });

  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kDatagramDuplicate), 0);
  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kDatagramJitter), 0);
  EXPECT_EQ(TotalBalance(world, b1, b2, 4), 1000);
  for (NodeId n = 1; n <= 3; ++n) {
    EXPECT_TRUE(world.tm(n).InDoubt().empty());
  }
}

TEST(NetworkFaultTest, SeededPointDelaysPreserveAtomicity) {
  World world(3);
  auto* b1 = world.AddServerOf<AccountServer>(1, "bank1", 4);
  auto* b2 = world.AddServerOf<AccountServer>(2, "bank2", 4);
  world.RunApp(3, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(b1->Deposit(tx, 0, 1000), Status::kOk);
      return Status::kOk;
    });
  });

  // The nemesis stretches random protocol windows (commit-record force to
  // ack wait, prepare to vote, ...) without killing anyone: pure schedule
  // perturbation, still deterministic per seed.
  world.faults().SeedDelays(/*seed=*/7, /*probability=*/0.3, /*max_delay_us=*/500);
  world.RunApp(3, [&](Application& app) {
    for (int i = 0; i < 8; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        Status s = b1->Withdraw(tx, 0, 5);
        if (s != Status::kOk) {
          return s;
        }
        return b2->Deposit(tx, 0, 5);
      });
    }
  });

  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kDelay), 0);
  EXPECT_EQ(TotalBalance(world, b1, b2, 4), 1000);
}

TEST(NetworkFaultTest, SessionLossSurfacesAsNodeDown) {
  World world(2);
  auto* bank = world.AddServerOf<AccountServer>(2, "bank", 2);
  world.network().SetSessionLoss(
      [](NodeId from, NodeId to) { return from == 1 && to == 2; });
  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction(
        [&](const server::Tx& tx) { return bank->Deposit(tx, 0, 5); });
    EXPECT_EQ(s, Status::kNodeDown);
  });
  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kSessionDrop), 0);

  world.network().SetSessionLoss({});
  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction(
        [&](const server::Tx& tx) { return bank->Deposit(tx, 0, 5); });
    EXPECT_EQ(s, Status::kOk);
  });
}

// --- RunTransactional under injected failure ---------------------------------

// Drops every datagram from the participant back to the coordinator, so each
// commit attempt loses its vote and times out. Returns each attempt's start
// time in virtual microseconds.
std::vector<SimTime> RunRetriesUnderVoteLoss(unsigned accounts_seed) {
  WorldOptions opt;
  opt.vote_timeout_us = 50'000;  // tight: each lost vote costs 50 virtual ms
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // retry cadence is 2PC's
  World world(2, opt);
  auto* bank = world.AddServerOf<AccountServer>(2, "bank", accounts_seed + 1);
  world.network().SetDatagramLoss(
      [](NodeId from, NodeId to) { return from == 2 && to == 1; });

  std::vector<SimTime> attempt_starts;
  world.RunApp(1, [&](Application& app) {
    auto result = app.RunTransactional([&](const server::Tx& tx) {
      attempt_starts.push_back(world.scheduler().Now());
      return bank->Deposit(tx, 0, 5);
    });
    // Every attempt loses its vote: the coordinator presumes abort and the
    // policy retries with exponential virtual-time backoff until exhausted.
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status, Status::kVoteNo);
    EXPECT_EQ(result.attempts, Application::RetryPolicy{}.max_attempts);
  });
  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kDatagramDrop), 0);
  return attempt_starts;
}

TEST(RunTransactionalFaultTest, RetryExhaustionIsDeterministic) {
  std::vector<SimTime> first = RunRetriesUnderVoteLoss(1);
  ASSERT_EQ(static_cast<int>(first.size()), Application::RetryPolicy{}.max_attempts);
  // Backoff runs in virtual time: strictly increasing attempt starts, and the
  // gap between attempts grows (exponential policy) until the cap.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LT(first[i - 1], first[i]);
  }
  // The exponential backoff dominates by the last attempt (10 ms doubling
  // toward the cap dwarfs per-attempt protocol-time noise).
  size_t n = first.size();
  EXPECT_GT(first[n - 1] - first[n - 2], first[1] - first[0]);

  // A fresh universe replays the identical schedule.
  std::vector<SimTime> second = RunRetriesUnderVoteLoss(1);
  EXPECT_EQ(first, second);
}

// Same scenario as RunRetriesUnderVoteLoss, with the caller's retry policy.
std::vector<SimTime> RunRetriesWithPolicy(const Application::RetryPolicy& policy) {
  WorldOptions opt;
  opt.vote_timeout_us = 50'000;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // retry cadence is 2PC's
  World world(2, opt);
  auto* bank = world.AddServerOf<AccountServer>(2, "bank", 7);
  world.network().SetDatagramLoss(
      [](NodeId from, NodeId to) { return from == 2 && to == 1; });
  std::vector<SimTime> attempt_starts;
  world.RunApp(1, [&](Application& app) {
    auto result = app.RunTransactional(
        [&](const server::Tx& tx) {
          attempt_starts.push_back(world.scheduler().Now());
          return bank->Deposit(tx, 0, 5);
        },
        policy);
    EXPECT_EQ(result.status, Status::kVoteNo);
  });
  return attempt_starts;
}

TEST(RunTransactionalFaultTest, BackoffJitterIsSeededAndDeterministic) {
  // The jittered schedule is a pure function of the world seed and the
  // policy's jitter_seed: identical universes replay identical waits.
  Application::RetryPolicy jittered;  // default policy: jitter enabled
  std::vector<SimTime> first = RunRetriesWithPolicy(jittered);
  std::vector<SimTime> second = RunRetriesWithPolicy(jittered);
  ASSERT_EQ(static_cast<int>(first.size()), jittered.max_attempts);
  EXPECT_EQ(first, second);

  // A different jitter stream de-synchronizes the waits — this is the whole
  // point: two applications that aborted each other must not retry in
  // lockstep and re-collide on the same locks.
  Application::RetryPolicy reseeded = jittered;
  reseeded.jitter_seed = 0xfeedULL;
  std::vector<SimTime> reseeded_starts = RunRetriesWithPolicy(reseeded);
  ASSERT_EQ(first.size(), reseeded_starts.size());
  EXPECT_NE(first, reseeded_starts);

  // Jitter only shaves time off each wait: every jittered gap is bounded by
  // the un-jittered exponential gap, so retry latency never regresses.
  Application::RetryPolicy plain = jittered;
  plain.jitter = 0.0;
  std::vector<SimTime> exact = RunRetriesWithPolicy(plain);
  ASSERT_EQ(first.size(), exact.size());
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i] - first[i - 1], exact[i] - exact[i - 1]);
    EXPECT_LT(first[i - 1], first[i]);  // still strictly forward in time
  }
}

TEST(RunTransactionalFaultTest, NodeDownShortCircuitsRetry) {
  World world(2);
  auto* bank = world.AddServerOf<AccountServer>(2, "bank", 2);
  world.RunApp(1, [&](Application& app) {
    world.CrashNode(2);
    auto result = app.RunTransactional(
        [&](const server::Tx& tx) { return bank->Deposit(tx, 0, 5); });
    // kNodeDown is not transient: no retry storm against a dead node.
    EXPECT_EQ(result.status, Status::kNodeDown);
    EXPECT_EQ(result.attempts, 1);
  });
}

}  // namespace
}  // namespace tabs
