// The asynchronous communication fast path under faults.
//
// Pipelined server calls and coalesced batches must fail exactly like their
// sequential counterparts: a destination crash with calls in flight surfaces
// as kNodeDown after the session timeout, a dropped session fails fast, the
// transaction aborts cleanly, and the Communication Manager leaks neither
// spanning-tree entries nor call windows. With the knobs on, runs remain
// deterministic, and crash-point exploration still recovers consistently.
//
// Also here: the regression test for the commit protocol's vote-wait budget
// (one deadline across all children, not a fresh timeout per vote).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

WorldOptions PipelineOptions(int window, int batch) {
  WorldOptions opt;
  opt.max_outstanding_calls = window;
  opt.op_coalesce_batch = batch;
  return opt;
}

TEST(AsyncCommTest, PipelinedReadsReturnCorrectValues) {
  World world(3, PipelineOptions(/*window=*/4, /*batch=*/2));
  auto* remote = world.AddServerOf<ArrayServer>(2, "arr2", 64u);
  auto* third = world.AddServerOf<ArrayServer>(3, "arr3", 64u);
  world.RunApp(1, [&](Application& app) {
    Status seeded = app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t c = 0; c < 8; ++c) {
        remote->SetCell(tx, c, static_cast<std::int32_t>(100 + c));
        third->SetCell(tx, c, static_cast<std::int32_t>(200 + c));
      }
      return Status::kOk;
    });
    ASSERT_EQ(seeded, Status::kOk);

    Status s = app.Transaction([&](const server::Tx& tx) {
      std::vector<sim::FuturePtr<Result<std::int32_t>>> singles;
      for (std::uint32_t c = 0; c < 4; ++c) {
        singles.push_back(remote->AsyncGetCell(tx, c));
      }
      auto chunks = third->AsyncGetCells(tx, {0, 1, 2, 3, 4});
      std::vector<std::int32_t> third_values;
      for (auto& chunk : chunks) {
        if (!chunk->Await() || !chunk->value().ok()) {
          ADD_FAILURE() << "coalesced chunk failed";
          return Status::kNodeDown;
        }
        for (const Result<std::int32_t>& r : chunk->value().value()) {
          EXPECT_TRUE(r.ok());
          third_values.push_back(r.ok() ? r.value() : -1);
        }
      }
      EXPECT_EQ(third_values, (std::vector<std::int32_t>{200, 201, 202, 203, 204}));
      for (std::uint32_t c = 0; c < 4; ++c) {
        if (!singles[c]->Await() || !singles[c]->value().ok()) {
          ADD_FAILURE() << "pipelined read " << c << " failed";
          return Status::kNodeDown;
        }
        EXPECT_EQ(singles[c]->value().value(), static_cast<std::int32_t>(100 + c));
      }
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
  });
  EXPECT_EQ(world.cm(1).TrackedTreeCount(), 0u);
  EXPECT_EQ(world.cm(1).OpenCallWindowCount(), 0u);
}

TEST(AsyncCommTest, PipelinedBatchWritesCommitAndAreVisible) {
  World world(2, PipelineOptions(/*window=*/2, /*batch=*/4));
  auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      std::vector<std::pair<std::uint32_t, std::int32_t>> writes;
      for (std::uint32_t c = 0; c < 10; ++c) {
        writes.emplace_back(c, static_cast<std::int32_t>(7 * c));
      }
      Application::AsyncOps ops = app.Parallel();
      ops.AddBatch<bool>(remote->AsyncSetCells(tx, writes));
      return ops.Join();
    });
    ASSERT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t c = 0; c < 10; ++c) {
        auto v = remote->GetCell(tx, c);
        EXPECT_TRUE(v.ok());
        EXPECT_EQ(v.value(), static_cast<std::int32_t>(7 * c));
      }
      return Status::kOk;
    });
  });
  // 10 ops in batches of 4 -> 3 messages, 7 ops coalesced away.
  EXPECT_EQ(world.metrics().messages_coalesced(), 7.0);
  EXPECT_EQ(world.cm(1).OpenCallWindowCount(), 0u);
}

TEST(AsyncCommTest, PipeliningIsFasterThanSequential) {
  auto elapsed_with = [](int window) {
    World world(2, PipelineOptions(window, /*batch=*/1));
    auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
    SimTime elapsed = 0;
    world.RunApp(1, [&](Application& app) {
      SimTime t0 = world.scheduler().Now();
      app.Transaction([&](const server::Tx& tx) {
        Application::AsyncOps ops = app.Parallel();
        for (std::uint32_t c = 0; c < 8; ++c) {
          ops.Add<std::int32_t>(remote->AsyncGetCell(tx, c));
        }
        return ops.Join();
      });
      elapsed = world.scheduler().Now() - t0;
    });
    return elapsed;
  };
  SimTime sequential = elapsed_with(1);
  SimTime pipelined = elapsed_with(8);
  EXPECT_LT(pipelined, sequential);
}

TEST(AsyncCommTest, CrashWithCallsInFlightSurfacesAsNodeDown) {
  World world(2, PipelineOptions(/*window=*/4, /*batch=*/1));
  auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      Application::AsyncOps ops = app.Parallel();
      for (std::uint32_t c = 0; c < 3; ++c) {
        ops.Add<std::int32_t>(remote->AsyncGetCell(tx, c));
      }
      // The destination dies with three calls in flight: their futures are
      // never fulfilled, so each Join arm times out and reports kNodeDown.
      world.CrashNode(2);
      return ops.Join();
    });
    EXPECT_EQ(s, Status::kNodeDown);

    // The CM retains no state for the aborted transaction, and the origin
    // node keeps working: an empty local transaction still commits.
    EXPECT_EQ(world.cm(1).TrackedTreeCount(), 0u);
    EXPECT_EQ(world.cm(1).OpenCallWindowCount(), 0u);
    EXPECT_EQ(app.Transaction([](const server::Tx&) { return Status::kOk; }),
              Status::kOk);
  });
}

TEST(AsyncCommTest, SessionLossFailsFastAsNodeDown) {
  World world(2, PipelineOptions(/*window=*/2, /*batch=*/2));
  auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
  world.network().SetSessionLoss(
      [](NodeId from, NodeId to) { return from == 1 && to == 2; });
  world.RunApp(1, [&](Application& app) {
    SimTime t0 = world.scheduler().Now();
    Status s = app.Transaction([&](const server::Tx& tx) {
      Application::AsyncOps ops = app.Parallel();
      ops.AddBatch<std::int32_t>(remote->AsyncGetCells(tx, {0, 1, 2}));
      return ops.Join();
    });
    EXPECT_EQ(s, Status::kNodeDown);
    // A dropped session is detected at the sender: no 30 s await needed.
    EXPECT_LT(world.scheduler().Now() - t0, 1'000'000);
  });
  EXPECT_GT(world.metrics().faults_injected(sim::FaultKind::kSessionDrop), 0);
  EXPECT_EQ(world.cm(1).TrackedTreeCount(), 0u);
  EXPECT_EQ(world.cm(1).OpenCallWindowCount(), 0u);

  world.network().SetSessionLoss({});
  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      Application::AsyncOps ops = app.Parallel();
      ops.Add<std::int32_t>(remote->AsyncGetCell(tx, 0));
      return ops.Join();
    });
    EXPECT_EQ(s, Status::kOk);
  });
}

// Same seed knobs on -> bit-identical virtual time and counters.
TEST(AsyncCommTest, PipelinedRunsAreDeterministic) {
  auto run = [] {
    World world(3, PipelineOptions(/*window=*/4, /*batch=*/2));
    auto* remote = world.AddServerOf<ArrayServer>(2, "arr2", 64u);
    auto* third = world.AddServerOf<ArrayServer>(3, "arr3", 64u);
    SimTime final_clock = 0;
    world.RunApp(1, [&](Application& app) {
      for (int i = 0; i < 4; ++i) {
        app.Transaction([&](const server::Tx& tx) {
          Application::AsyncOps ops = app.Parallel();
          ops.AddBatch<bool>(remote->AsyncSetCells(
              tx, {{0, i}, {1, i + 1}, {2, i + 2}}));
          ops.AddBatch<std::int32_t>(third->AsyncGetCells(tx, {0, 1, 2, 3}));
          return ops.Join();
        });
      }
      final_clock = world.scheduler().Now();
    });
    return std::make_tuple(final_clock, world.metrics().async_calls_issued(),
                           world.metrics().messages_coalesced());
  };
  EXPECT_EQ(run(), run());
}

// --- vote-wait budget regression (one deadline across all children) ----------
//
// N children prepared in parallel return their votes staggered by the
// sender-serialized prepare datagrams (half a datagram time apart). With a
// per-child budget, each arriving vote would restart the clock and the
// coordinator could wait far past its timeout collecting a long stagger one
// vote at a time; with a single deadline the total wait is bounded by one
// vote_timeout_us regardless of the child count.

Status EndStatusWithVoteTimeout(int children, SimTime vote_timeout_us,
                                SimTime* commit_elapsed = nullptr) {
  WorldOptions opt;
  opt.vote_timeout_us = vote_timeout_us;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // 2PC vote collection under test
  World world(1 + children, opt);
  std::vector<ArrayServer*> arrays;
  for (int n = 0; n < children; ++n) {
    arrays.push_back(world.AddServerOf<ArrayServer>(
        static_cast<NodeId>(2 + n), "arr" + std::to_string(n), 16u));
  }
  Status status = Status::kOk;
  world.RunApp(1, [&](Application& app) {
    TransactionId tid = app.Begin();
    server::Tx tx = app.MakeTx(tid);
    for (ArrayServer* a : arrays) {
      a->GetCell(tx, 0);  // read-only children: cheap, uniform prepares
    }
    SimTime t0 = world.scheduler().Now();
    status = app.End(tid);
    if (commit_elapsed != nullptr) {
      *commit_elapsed = world.scheduler().Now() - t0;
    }
  });
  return status;
}

TEST(VoteTimeoutTest, BudgetCoversAllVotesWhenGenerous) {
  // Sanity: with a generous budget every staggered vote arrives in time.
  EXPECT_EQ(EndStatusWithVoteTimeout(6, /*vote_timeout_us=*/1'000'000), Status::kOk);
}

TEST(VoteTimeoutTest, SingleDeadlineAcrossAllVotes) {
  // Find the minimal budget (to 1 ms resolution) that still commits: under a
  // single shared deadline that is the whole vote stagger, last arrival
  // included. A per-child budget would commit with far less — it only has to
  // cover the largest single gap between consecutive votes — so asserting
  // the flip point sits above the per-gap scale pins the deadline semantics.
  SimTime lo = 0, hi = 1'000'000;
  while (hi - lo > 1'000) {
    SimTime mid = (lo + hi) / 2;
    if (EndStatusWithVoteTimeout(6, mid) == Status::kOk) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Six staggered votes: the cumulative stagger spans several datagram
  // half-times (~3 ms each), so the minimal shared budget exceeds 10 ms. A
  // per-child budget's flip point would sit at one gap (~7 ms or less).
  EXPECT_GT(hi, 10'000) << "vote wait no longer spans the full stagger: the "
                           "per-child-budget regression is back";

  // And the budget must not scale with the child count: aborting on a too
  // tight budget costs ~one vote_timeout_us of commit-phase time on top of
  // the fixed prepare/abort messaging (~85 ms for six children). A per-child
  // budget that waited at every child would sit past 200 ms here.
  SimTime elapsed = 0;
  EXPECT_EQ(EndStatusWithVoteTimeout(6, /*vote_timeout_us=*/20'000, &elapsed),
            Status::kVoteNo);
  EXPECT_LT(elapsed, 160'000);
}

// --- crash-point exploration with the window open ----------------------------
//
// The systematic nemesis from crash_point_exploration_test, shrunk to a
// pipelined array workload: every fault point reached with
// max_outstanding_calls > 1 is crashed at least once, the node recovers, and
// the committed prefix must survive.

using CellModel = std::map<std::uint32_t, std::int32_t>;

void RunPipelinedWorkload(World& world, ArrayServer* remote, CellModel& committed,
                          CellModel& inflight, bool& end_in_progress) {
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::pair<std::uint32_t, std::int32_t>> writes;
      for (std::uint32_t k = 0; k < 4; ++k) {
        // Values start at 1: cell 0's initial value is 0, and the read-back
        // below uses non-zero as "was ever written".
        writes.emplace_back(4 * i + k, static_cast<std::int32_t>(10 * i + k + 1));
      }
      TransactionId tid = app.Begin();
      server::Tx tx = app.MakeTx(tid);
      Application::AsyncOps ops = app.Parallel();
      ops.AddBatch<bool>(remote->AsyncSetCells(tx, writes));
      if (ops.Join() != Status::kOk) {
        app.Abort(tid);
        continue;
      }
      inflight = CellModel(writes.begin(), writes.end());
      end_in_progress = true;
      Status end = app.End(tid);
      end_in_progress = false;
      if (end == Status::kOk) {
        for (const auto& [cell, value] : inflight) {
          committed[cell] = value;
        }
      }
      inflight.clear();
    }
  });
}

TEST(AsyncCommTest, CrashPointExplorationWithWindowOpen) {
  WorldOptions opt = PipelineOptions(/*window=*/3, /*batch=*/2);
  opt.vote_timeout_us = 2'000'000;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // plan stability across passes

  // Pass 1: record the reachable fault surface, fault-free.
  std::vector<sim::FaultInjector::PointHit> hits;
  {
    World world(2, opt);
    auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
    world.faults().StartRecording();
    CellModel committed, inflight;
    bool end_in_progress = false;
    RunPipelinedWorkload(world, remote, committed, inflight, end_in_progress);
    hits = world.faults().recorded_hits();
    ASSERT_FALSE(hits.empty());
  }
  std::map<std::string, int> first_hits;
  for (const auto& h : hits) {
    first_hits.try_emplace(h.point, h.hit);
  }

  // Pass 2: crash at the first hit of every distinct point, then recover.
  for (const auto& [point, hit] : first_hits) {
    World world(2, opt);
    auto* remote = world.AddServerOf<ArrayServer>(2, "arr", 64u);
    world.faults().ArmCrash(point, hit);
    CellModel committed, inflight;
    bool end_in_progress = false;
    RunPipelinedWorkload(world, remote, committed, inflight, end_in_progress);
    EXPECT_TRUE(world.faults().crash_fired())
        << point << " hit " << hit << " never fired: determinism broken";
    world.faults().Disarm();

    NodeId runner = world.NodeAlive(1) ? 1 : 2;
    world.RunApp(runner, [&](Application&) {
      for (NodeId n = 1; n <= 2; ++n) {
        if (!world.NodeAlive(n)) {
          world.RecoverNode(n);
        }
      }
      for (int pass = 0; pass < 2; ++pass) {
        for (NodeId n = 1; n <= 2; ++n) {
          for (const TransactionId& tid : world.tm(n).InDoubt()) {
            world.tm(n).ResolveInDoubt(tid);
          }
        }
      }
    });

    CellModel got;
    // Recovery re-instantiated the servers: re-fetch by name, the old
    // pointer died with the crashed incarnation.
    auto* recovered = world.Server<ArrayServer>(2, "arr");
    ASSERT_NE(recovered, nullptr);
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t c = 0; c < 20; ++c) {
          auto v = recovered->GetCell(tx, c);
          EXPECT_TRUE(v.ok());
          if (v.ok() && v.value() != 0) {
            got[c] = v.value();
          }
        }
        return Status::kOk;
      });
    });
    CellModel with_inflight = committed;
    for (const auto& [cell, value] : inflight) {
      with_inflight[cell] = value;
    }
    bool matches = got == committed || (end_in_progress && got == with_inflight);
    EXPECT_TRUE(matches) << "committed prefix violated after crash at " << point << "#"
                         << hit;
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
}

}  // namespace
}  // namespace tabs
