// Media recovery tests (Section 7 future work): archive dumps of
// non-volatile storage, total disk loss, and restore-plus-log-replay.

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/servers/btree_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;
using servers::BTreeServer;

class MediaRecoveryTest : public ::testing::Test {
 protected:
  MediaRecoveryTest() : world_(2) {
    arr_ = world_.AddServerOf<ArrayServer>(1, "arr", 32u);
  }
  void Refresh() { arr_ = world_.Server<ArrayServer>(1, "arr"); }

  World world_;
  ArrayServer* arr_;
};

TEST_F(MediaRecoveryTest, ArchivePlusLogReplayRecoversEverythingCommitted) {
  recovery::Archive archive;
  world_.RunApp(1, [&](Application& app) {
    // Pre-dump state.
    app.Transaction([&](const server::Tx& tx) {
      arr_->SetCell(tx, 0, 100);
      arr_->SetCell(tx, 1, 200);
      return Status::kOk;
    });
    archive = world_.DumpArchive(1);
    // Post-dump commits exist only in the log.
    app.Transaction([&](const server::Tx& tx) {
      arr_->SetCell(tx, 1, 999);
      arr_->SetCell(tx, 2, 300);
      return Status::kOk;
    });
    // An uncommitted transaction is in flight at the disk failure.
    TransactionId t = app.Begin();
    arr_->SetCell(app.MakeTx(t), 0, -1);
    world_.rm(1).log().ForceAll();
    world_.MediaFailure(1);
  });
  world_.RunApp(2, [&](Application&) {
    world_.RestoreFromArchive(1, archive);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr_->GetCell(tx, 0).value(), 100);  // pre-dump, loser undone
      EXPECT_EQ(arr_->GetCell(tx, 1).value(), 999);  // post-dump commit replayed
      EXPECT_EQ(arr_->GetCell(tx, 2).value(), 300);  // post-dump commit replayed
      return Status::kOk;
    });
  });
}

TEST_F(MediaRecoveryTest, WithoutArchiveTheDiskLossIsVisible) {
  // Control: wiping the disk and recovering WITHOUT the archive loses data
  // whose log records were reclaimed — demonstrating that the archive (not
  // luck) provides media recovery.
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      arr_->SetCell(tx, 0, 42);
      return Status::kOk;
    });
    world_.ReclaimLog(1);  // log no longer holds cell 0's history
    world_.MediaFailure(1);
  });
  world_.RunApp(2, [&](Application&) {
    world_.RecoverNode(1);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr_->GetCell(tx, 0).value(), 0);  // gone: no archive, no log
      return Status::kOk;
    });
  });
}

TEST_F(MediaRecoveryTest, ArchiveLowWaterMarkBlocksFatalReclamation) {
  recovery::Archive archive;
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      arr_->SetCell(tx, 0, 7);
      return Status::kOk;
    });
    archive = world_.DumpArchive(1);
    for (int i = 0; i < 40; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        arr_->SetCell(tx, 1 + (i % 8), i);
        return Status::kOk;
      });
    }
    // Reclamation runs but must keep everything after the dump point.
    world_.ReclaimLog(1);
    world_.MediaFailure(1);
  });
  world_.RunApp(2, [&](Application&) {
    world_.RestoreFromArchive(1, archive);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr_->GetCell(tx, 0).value(), 7);
      EXPECT_EQ(arr_->GetCell(tx, 1).value(), 32);  // i=32 was the last to hit cell 1
      return Status::kOk;
    });
  });
}

TEST_F(MediaRecoveryTest, BTreeSurvivesMediaFailureViaArchive) {
  auto* bt = world_.AddServerOf<BTreeServer>(1, "bt", 200u);
  recovery::Archive archive;
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 50; ++i) {
        bt->Insert(tx, "key" + std::to_string(i), "v" + std::to_string(i));
      }
      return Status::kOk;
    });
    archive = world_.DumpArchive(1);
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 50; i < 80; ++i) {
        bt->Insert(tx, "key" + std::to_string(i), "v" + std::to_string(i));
      }
      return Status::kOk;
    });
    world_.MediaFailure(1);
  });
  world_.RunApp(2, [&](Application&) { world_.RestoreFromArchive(1, archive); });
  bt = world_.Server<BTreeServer>(1, "bt");
  world_.RunApp(1, [&](Application& app) {
    EXPECT_TRUE(bt->CheckInvariants());
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 80; ++i) {
        EXPECT_EQ(bt->Lookup(tx, "key" + std::to_string(i)).value(),
                  "v" + std::to_string(i));
      }
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
