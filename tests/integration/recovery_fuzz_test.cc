// Property tests: randomized workloads with crashes injected at arbitrary
// points, checked against an in-memory model.
//
//  * Local durability: after any sequence of committed / aborted /
//    interrupted transactions, checkpoints, reclamations and crashes, the
//    recovered array equals exactly the committed prefix.
//  * Distributed atomicity: a 2-node transfer interrupted by a participant
//    or coordinator crash either happens on both nodes or on neither, once
//    in-doubt transactions are resolved.
// Deterministic per seed (virtual time), so failures replay exactly.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

struct FuzzParam {
  unsigned seed;
  int cycles;        // crash/recover cycles
  int txns_per_cycle;
};

class RecoveryFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RecoveryFuzzTest, CommittedPrefixSurvivesArbitraryCrashes) {
  const FuzzParam param = GetParam();
  std::mt19937 rng(param.seed);
  constexpr std::uint32_t kCells = 32;

  World world(2);
  ArrayServer* arr = world.AddServerOf<ArrayServer>(1, "fuzz", kCells);
  std::map<std::uint32_t, std::int32_t> model;  // committed state only

  for (int cycle = 0; cycle < param.cycles; ++cycle) {
    world.RunApp(1, [&](Application& app) {
      for (int t = 0; t < param.txns_per_cycle; ++t) {
        int writes = 1 + static_cast<int>(rng() % 4);
        std::map<std::uint32_t, std::int32_t> staged;
        TransactionId tid = app.Begin();
        server::Tx tx = app.MakeTx(tid);
        for (int w = 0; w < writes; ++w) {
          std::uint32_t cell = rng() % kCells;
          auto value = static_cast<std::int32_t>(rng() % 100000);
          if (arr->SetCell(tx, cell, value) == Status::kOk) {
            staged[cell] = value;
          }
        }
        switch (rng() % 4) {
          case 0:  // abort explicitly
            app.Abort(tid);
            break;
          case 1: {  // crash mid-transaction, sometimes with forced log/pages
            if (rng() % 2 == 0) {
              world.rm(1).log().ForceAll();
            }
            if (rng() % 3 == 0) {
              arr->segment().FlushAll();
            }
            world.CrashNode(1);  // unwinds this task via TaskKilled
            return;              // unreachable
          }
          default:  // commit
            if (app.End(tid) == Status::kOk) {
              for (auto& [cell, value] : staged) {
                model[cell] = value;
              }
            }
            break;
        }
        if (rng() % 7 == 0) {
          world.Checkpoint(1);
        }
        if (rng() % 11 == 0) {
          world.ReclaimLog(1);
        }
      }
      // Cycle ended without a mid-transaction crash: crash at rest.
      world.CrashNode(1);
    });

    world.RunApp(2, [&](Application&) {
      world.RecoverNode(1);
      arr = world.Server<ArrayServer>(1, "fuzz");
    });

    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t cell = 0; cell < kCells; ++cell) {
          std::int32_t expect = model.contains(cell) ? model[cell] : 0;
          auto got = arr->GetCell(tx, cell);
          EXPECT_TRUE(got.ok());
          EXPECT_EQ(got.value(), expect)
              << "cell " << cell << " cycle " << cycle << " seed " << param.seed;
        }
        return Status::kOk;
      });
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest,
                         ::testing::Values(FuzzParam{101, 3, 12}, FuzzParam{202, 3, 12},
                                           FuzzParam{303, 4, 8}, FuzzParam{404, 2, 20},
                                           FuzzParam{505, 5, 6}, FuzzParam{606, 3, 15}),
                         [](const ::testing::TestParamInfo<FuzzParam>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// ---------- distributed atomicity under crashes ----------

class DistributedFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DistributedFuzzTest, TransfersAreAtomicAcrossCrashes) {
  std::mt19937 rng(GetParam());
  World world(3);
  ArrayServer* a1 = world.AddServerOf<ArrayServer>(1, "a1", 8u);
  ArrayServer* a2 = world.AddServerOf<ArrayServer>(2, "a2", 8u);

  // Invariant: cell 0 on node 1 plus cell 0 on node 2 stays 1000.
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 1000);
      a2->SetCell(tx, 0, 0);
      return Status::kOk;
    });
  });

  for (int round = 0; round < 10; ++round) {
    int crash_node = static_cast<int>(rng() % 3);  // 0: none, 1 or 2: that node
    // Occasionally lose a commit-protocol datagram as well.
    if (rng() % 3 == 0) {
      int drop_after = static_cast<int>(rng() % 3);
      // The filter outlives this block, so the counter must live inside it.
      world.network().SetDatagramLoss([count = 0, drop_after](NodeId from, NodeId to) mutable {
        return ++count == drop_after + 1;
      });
    }
    world.RunApp(1, [&](Application& app) {
      TransactionId tid = app.Begin();
      server::Tx tx = app.MakeTx(tid);
      auto from = a1->GetCell(tx, 0);
      if (!from.ok()) {
        app.Abort(tid);
        return;
      }
      auto amount = static_cast<std::int32_t>(rng() % 50);
      a1->SetCell(tx, 0, from.value() - amount);
      auto to = a2->GetCell(tx, 0);
      if (to.ok()) {
        a2->SetCell(tx, 0, to.value() + amount);
      }
      if (crash_node == 2 && rng() % 2 == 0) {
        world.CrashNode(2);  // participant dies before commit
      }
      app.End(tid);  // outcome may be commit or abort; atomicity must hold
      if (crash_node == 1) {
        world.CrashNode(1);  // coordinator dies right after deciding
      }
    });
    world.network().SetDatagramLoss({});
    world.RunApp(3, [&](Application&) {
      if (!world.NodeAlive(1)) {
        world.RecoverNode(1);
        a1 = world.Server<ArrayServer>(1, "a1");
      }
      if (!world.NodeAlive(2)) {
        world.RecoverNode(2);
        a2 = world.Server<ArrayServer>(2, "a2");
      }
      // Resolve any lingering in-doubt transactions on both nodes.
      for (NodeId n = 1; n <= 2; ++n) {
        for (const TransactionId& t : world.tm(n).InDoubt()) {
          world.tm(n).ResolveInDoubt(t);
        }
      }
    });
    world.RunApp(3, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        auto v1 = a1->GetCell(tx, 0);
        auto v2 = a2->GetCell(tx, 0);
        EXPECT_TRUE(v1.ok());
        EXPECT_TRUE(v2.ok());
        if (v1.ok() && v2.ok()) {
          EXPECT_EQ(v1.value() + v2.value(), 1000)
              << "round " << round << " seed " << GetParam();
        }
        return Status::kOk;
      });
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tabs
