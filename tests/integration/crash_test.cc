// Crash and recovery integration tests: node failures before, during, and
// after two-phase commit; in-doubt resolution; recovery of distributed
// state. These exercise the property the paper's title promises — reliable
// systems out of distributed transactions.

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

class CrashTest : public ::testing::Test {
 protected:
  explicit CrashTest(const WorldOptions& opt = WorldOptions()) : world_(3, opt) {
    a1_ = world_.AddServerOf<ArrayServer>(1, "array1", 64u);
    a2_ = world_.AddServerOf<ArrayServer>(2, "array2", 64u);
  }

  // Servers are re-created on recovery; re-resolve the pointers.
  void Refresh() {
    a1_ = world_.Server<ArrayServer>(1, "array1");
    a2_ = world_.Server<ArrayServer>(2, "array2");
  }

  World world_;
  ArrayServer* a1_;
  ArrayServer* a2_;
};

// Presumed abort is 2PC's in-doubt rule; under Paxos Commit the same crash
// resolves through the acceptors (and may commit), so the protocol is pinned.
class PresumedAbortCrashTest : public CrashTest {
 protected:
  PresumedAbortCrashTest() : CrashTest([] {
    WorldOptions opt;
    opt.commit_mode = txn::CommitMode::kTwoPhase;
    return opt;
  }()) {}
};

TEST_F(CrashTest, CommittedLocalDataSurvivesCrash) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 77);
      return Status::kOk;
    });
    world_.CrashNode(1);
  });
  // The crash killed the app task; start a fresh epoch.
  world_.RunApp(2, [&](Application& app) {
    auto stats = world_.RecoverNode(1);
    EXPECT_TRUE(stats.losers.empty());
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 77);
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, UncommittedWorkRollsBackAtRecovery) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 1);
      return Status::kOk;
    });
    TransactionId t = app.Begin();
    a1_->SetCell(app.MakeTx(t), 0, 999);
    // Make the dirty state as durable as WAL allows: force the log, and the
    // page may even reach disk.
    world_.rm(1).log().ForceAll();
    a1_->segment().FlushAll();
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    auto stats = world_.RecoverNode(1);
    ASSERT_EQ(stats.losers.size(), 1u);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 1);
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, ParticipantCrashBeforePrepareAbortsTransaction) {
  Status outcome = Status::kOk;
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    a1_->SetCell(tx, 0, 5);
    a2_->SetCell(tx, 0, 6);
    world_.CrashNode(2);
    outcome = app.End(t);
  });
  EXPECT_EQ(outcome, Status::kVoteNo);
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 0);  // local write rolled back
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, CallToCrashedNodeReturnsNodeDown) {
  world_.RunApp(1, [&](Application& app) {
    world_.CrashNode(2);
    TransactionId t = app.Begin();
    auto v = a2_->GetCell(app.MakeTx(t), 0);
    EXPECT_EQ(v.status(), Status::kNodeDown);
    app.Abort(t);
  });
}

TEST_F(CrashTest, LostCommitDatagramLeavesParticipantInDoubtThenResolvesCommit) {
  // Drop the second 1->2 datagram (the commit); the participant stays
  // prepared across a crash and later learns the verdict from its parent.
  int count_1_to_2 = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    if (from == 1 && to == 2) {
      ++count_1_to_2;
      return count_1_to_2 == 2;
    }
    return false;
  });
  Status outcome = Status::kInternal;
  world_.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 5);
      a2_->SetCell(tx, 0, 6);
      return Status::kOk;
    });
  });
  // The coordinator committed (its record was forced before phase two).
  EXPECT_EQ(outcome, Status::kOk);
  world_.network().SetDatagramLoss({});

  // The participant crashes while in doubt; on recovery the transaction is
  // still prepared and its data is locked.
  world_.RunApp(1, [&](Application& app) {
    world_.CrashNode(2);
    auto stats = world_.RecoverNode(2, /*resolve_in_doubt=*/false);
    ASSERT_EQ(stats.in_doubt.size(), 1u);
    Refresh();
    // The in-doubt transaction's lock blocks new writers.
    TransactionId t = app.Begin();
    EXPECT_EQ(a2_->SetCell(app.MakeTx(t), 0, 123), Status::kTimeout);
    app.Abort(t);
    // Resolution: ask the coordinator.
    EXPECT_EQ(world_.tm(2).ResolveInDoubt(stats.in_doubt[0]), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 6);  // the commit took effect
      return Status::kOk;
    });
  });
}

TEST_F(PresumedAbortCrashTest, CoordinatorCrashAfterPrepareResolvesAbortByPresumption) {
  // The participant prepares; the coordinator crashes before writing its
  // commit record. After both recover, the participant asks and learns the
  // transaction aborted (presumed abort for unknown outcomes).
  int dropped = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    // Drop the participant's vote so the coordinator never reaches commit.
    if (from == 2 && to == 1) {
      ++dropped;
      return true;
    }
    return false;
  });
  Status outcome = Status::kInternal;
  world_.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 5);
      a2_->SetCell(tx, 0, 6);
      return Status::kOk;
    });
  });
  EXPECT_EQ(outcome, Status::kVoteNo);  // vote never arrived: abort
  EXPECT_GE(dropped, 1);
  world_.network().SetDatagramLoss({});

  // The abort datagram also never made it (we dropped only 2->1; the abort
  // flows 1->2 and does arrive, so force the in-doubt state via crash before
  // delivery is impossible here — instead verify the participant either
  // already aborted or resolves to abort).
  world_.RunApp(1, [&](Application& app) {
    world_.CrashNode(2);
    auto stats = world_.RecoverNode(2, /*resolve_in_doubt=*/false);
    Refresh();
    for (const TransactionId& t : stats.in_doubt) {
      EXPECT_EQ(world_.tm(2).ResolveInDoubt(t), Status::kAborted);
    }
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 0);
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, NodeRecoversAndServesNewTransactions) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a2_->SetCell(tx, 1, 10);
      return Status::kOk;
    });
    world_.CrashNode(2);
    world_.RecoverNode(2);
    Refresh();
    Status s = app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 1).value(), 10);
      return a2_->SetCell(tx, 1, 20);
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 1).value(), 20);
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, RepeatedCrashRecoverCycles) {
  for (int round = 0; round < 3; ++round) {
    world_.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        a1_->SetCell(tx, 2, round + 1);
        return Status::kOk;
      });
      world_.CrashNode(1);
    });
    world_.RunApp(2, [&](Application& app) {
      world_.RecoverNode(1);
      Refresh();
    });
    world_.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        EXPECT_EQ(a1_->GetCell(tx, 2).value(), round + 1);
        return Status::kOk;
      });
    });
  }
}

TEST_F(CrashTest, CheckpointBoundsRecoveryWork) {
  world_.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 20; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        a1_->SetCell(tx, i % 8, i);
        return Status::kOk;
      });
    }
    world_.ReclaimLog(1);
    std::uint64_t after_reclaim = world_.rm(1).StableLogBytesInUse();
    EXPECT_LT(after_reclaim, 2048u);
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 42);
      return Status::kOk;
    });
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    auto stats = world_.RecoverNode(1);
    // Only the post-reclaim suffix had to be scanned.
    EXPECT_LT(stats.records_scanned, 30);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 42);
      return Status::kOk;
    });
  });
}

TEST_F(CrashTest, PartitionHealsAndWorkResumes) {
  world_.RunApp(1, [&](Application& app) {
    world_.network().SetPartitioned(1, 2, true);
    TransactionId t = app.Begin();
    EXPECT_EQ(a2_->GetCell(app.MakeTx(t), 0).status(), Status::kNodeDown);
    app.Abort(t);
    world_.network().SetPartitioned(1, 2, false);
    Status s = app.Transaction([&](const server::Tx& tx) {
      return a2_->SetCell(tx, 0, 9);
    });
    EXPECT_EQ(s, Status::kOk);
  });
}

}  // namespace
}  // namespace tabs
