// Background page cleaner integration tests.
//
// The contract under test: with page_clean_interval_us > 0, a per-node
// daemon writes dirty unpinned frames back between transactions (through the
// write-ahead-log gate, stamping sector sequence numbers), so synchronous
// write-backs leave the fault path — while recovery correctness, determinism
// and the cleaner-off default behaviour are untouched. Plus the fuzzy side:
// ReclaimTo flushes only the pages whose recovery LSNs pin the log tail.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/kernel/page_cleaner.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;
using servers::ArrayServer;

WorldOptions CleanerOptions(SimTime interval_us = 1'000, int batch = 16) {
  WorldOptions opt;
  opt.page_clean_interval_us = interval_us;
  opt.page_clean_batch = batch;
  return opt;
}

TEST(PageCleanerTest, DisabledByDefaultAndIdle) {
  World world(1);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 2048u);
  EXPECT_FALSE(world.page_cleaner(1).enabled());
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 16; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        return arr->SetCell(tx, static_cast<std::uint32_t>(i * 128), i);
      });
    }
  });
  // Paper-faithful default: nothing runs in the background, pages stay dirty
  // in volatile storage until eviction or reclamation demands otherwise.
  EXPECT_EQ(world.metrics().page_writes_background(), 0.0);
  EXPECT_EQ(world.page_cleaner(1).passes(), 0u);
}

TEST(PageCleanerTest, CleansDirtyPagesBetweenTransactions) {
  World world(1, CleanerOptions());
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 2048u);  // 16 pages
  EXPECT_TRUE(world.page_cleaner(1).enabled());
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 32; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        // One page per transaction: plenty of dirty spread for the daemon.
        return arr->SetCell(tx, static_cast<std::uint32_t>(i * 128 % 2048), 100 + i);
      });
    }
  });
  // The drain let the daemon finish: every dirty page went out in the
  // background, through the WAL gate (sequence numbers stamped on disk).
  EXPECT_GT(world.metrics().page_writes_background(), 0.0);
  EXPECT_GT(world.page_cleaner(1).pages_cleaned(), 0u);
  EXPECT_GT(world.page_cleaner(1).passes(), 0u);
  ObjectId cell0 = arr->CellOid(0);
  const sim::DiskPage& page = world.node(1).disk().PeekPage({cell0.segment, 0});
  EXPECT_GT(page.sequence_number, 0u);
  // Committed values reached non-volatile storage: cell 0's last write was
  // transaction i=16 (value 116), little-endian in the page image.
  EXPECT_EQ(page.data[0], 116);
  // Correctness through the normal read path too.
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr->GetCell(tx, 0).value(), 116);
      EXPECT_EQ(arr->GetCell(tx, 128).value(), 117);
      return Status::kOk;
    });
  });
}

// The perf claim behind the tentpole, as a test: an eviction-heavy workload
// pays strictly fewer synchronous (fault-path) write-backs with the cleaner
// on, commits the same transactions, and ends with the same data.
TEST(PageCleanerTest, CleanerShiftsWriteBacksOffTheFaultPath) {
  struct Result {
    double fg = 0;
    double bg = 0;
    int committed = 0;
    std::string values;
  };
  auto run = [](bool cleaner_on) {
    WorldOptions opt = cleaner_on ? CleanerOptions(500, 32) : WorldOptions{};
    World world(1, opt);
    // 32 pages of array on an 8-frame pool: most faults must evict.
    auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 4096u, size_t{8});
    Result r;
    world.RunApp(1, [&](Application& app) {
      for (int i = 0; i < 64; ++i) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          return arr->SetCell(tx, static_cast<std::uint32_t>(i * 128 % 4096), i);
        });
        if (s == Status::kOk) {
          ++r.committed;
        }
      }
    });
    r.fg = world.metrics().page_writes_foreground();
    r.bg = world.metrics().page_writes_background();
    std::ostringstream values;
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t c = 0; c < 4096; c += 128) {
          values << arr->GetCell(tx, c).value() << ",";
        }
        return Status::kOk;
      });
    });
    r.values = values.str();
    return r;
  };
  Result off = run(false);
  Result on = run(true);
  EXPECT_EQ(off.committed, 64);
  EXPECT_EQ(on.committed, 64);
  EXPECT_GT(off.fg, 0.0) << "workload must evict dirty frames to test anything";
  EXPECT_EQ(off.bg, 0.0);
  EXPECT_LT(on.fg, off.fg);
  EXPECT_GT(on.bg, 0.0);
  EXPECT_EQ(on.values, off.values);
}

TEST(PageCleanerTest, CrashDuringBackgroundCleaningRecovers) {
  // Operation-logged deposits (the sector-sequence-number-guarded redo path)
  // race the cleaner; the node crashes mid-stream. Recovery must judge every
  // cleaner-written page by its sequence number: effects already on disk are
  // not re-applied, effects still only in the log are replayed.
  World world(2, CleanerOptions(500, 8));
  auto* bank = world.AddServerOf<AccountServer>(1, "bank", 512u);
  std::map<std::uint32_t, std::int64_t> committed;  // account -> expected balance
  double bg_writes_at_crash = 0;
  std::uint64_t cleaned_at_crash = 0;
  int attempted = 0;
  world.SpawnApp(1, "depositor", [&](Application& app) {
    for (int i = 0; i < 400; ++i) {
      ++attempted;
      std::uint32_t account = static_cast<std::uint32_t>((i * 7) % 512);
      Status s = app.Transaction([&](const server::Tx& tx) {
        return bank->Deposit(tx, account, 10 + i % 5);
      });
      if (s == Status::kOk) {
        committed[account] += 10 + i % 5;
      }
    }
  });
  world.SpawnApp(2, "crasher", [&](Application&) {
    bg_writes_at_crash = world.metrics().page_writes_background();
    cleaned_at_crash = world.page_cleaner(1).pages_cleaned();
    world.CrashNode(1);
  }, 3'000'000);
  EXPECT_EQ(world.Drain(), 0);
  // The crash really interrupted both the workload and the cleaner.
  EXPECT_LT(static_cast<size_t>(attempted), 400u);
  EXPECT_GT(committed.size(), 0u);
  EXPECT_GT(bg_writes_at_crash, 0.0) << "cleaner never ran before the crash";
  EXPECT_GT(cleaned_at_crash, 0u);

  world.RunApp(2, [&](Application&) { world.RecoverNode(1); });
  bank = world.Server<AccountServer>(1, "bank");
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (const auto& [account, balance] : committed) {
        EXPECT_EQ(bank->ReadBalance(tx, account).value(), balance)
            << "account " << account;
      }
      return Status::kOk;
    });
  });
}

TEST(PageCleanerTest, CleaningIsDeterministic) {
  // Same configuration, same seed ⇒ the cleaner's passes land at the same
  // virtual times with the same batch sizes, and every counter matches.
  auto run = [] {
    World world(1, CleanerOptions(750, 8));
    auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 4096u, size_t{8});
    world.substrate().tracer().Enable(true);
    for (int c = 0; c < 4; ++c) {
      world.SpawnApp(1, "client", [&, c](Application& app) {
        for (int i = 0; i < 8; ++i) {
          app.Transaction([&](const server::Tx& tx) {
            std::uint32_t cell = static_cast<std::uint32_t>((c * 1024 + i * 128) % 4096);
            return arr->SetCell(tx, cell, c * 100 + i);
          });
        }
      }, c * 400);
    }
    world.Drain();
    SimTime end_time = 0;
    world.RunApp(1, [&](Application&) { end_time = world.scheduler().Now(); });
    std::ostringstream trace;
    for (const sim::TraceEvent& e : world.substrate().tracer().events()) {
      if (e.category == "page-clean") {
        trace << e.time << ":" << e.detail << ";";
      }
    }
    trace << "cleaned=" << world.page_cleaner(1).pages_cleaned()
          << " passes=" << world.page_cleaner(1).passes()
          << " fg=" << world.metrics().page_writes_foreground()
          << " bg=" << world.metrics().page_writes_background()
          << " now=" << end_time;
    return trace.str();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  // The fingerprint actually recorded cleaning passes.
  EXPECT_NE(first.find(":pages="), std::string::npos);
}

TEST(PageCleanerTest, ReclaimToIsIncrementalAndFuzzy) {
  // Eight pages dirtied in LSN order, then an incremental reclaim that may
  // retain the newest log bytes: only the old dirt (the pages pinning the
  // log tail) is flushed; the checkpoint is fuzzy — the youngest page stays
  // dirty in volatile storage, its committed value still only in the log.
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // exact LSN math is 2PC's
  World world(1, opt);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 1024u);  // 8 pages
  world.RunApp(1, [&](Application& app) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      app.Transaction([&](const server::Tx& tx) {
        return arr->SetCell(tx, p * 128, static_cast<std::int32_t>(100 + p));
      });
    }
    SegmentId seg = arr->CellOid(0).segment;
    std::uint64_t before = world.rm(1).StableLogBytesInUse();
    world.rm(1).ReclaimTo(world.tm(1).ActiveTransactions(), 300);
    std::uint64_t after = world.rm(1).StableLogBytesInUse();
    EXPECT_LT(after, before);
    // Old dirt was flushed: page 0 (the oldest recovery LSN) is on disk.
    EXPECT_EQ(world.node(1).disk().PeekPage({seg, 0}).data[0], 100);
    // Fuzzy: the youngest page was NOT flushed — its disk image is stale —
    // yet the checkpoint + truncation went ahead regardless. (Cell 896 lives
    // at byte 0 of page 7.)
    EXPECT_EQ(world.node(1).disk().PeekPage({seg, 7}).data[0], 0);
    std::uint64_t incremental_fg =
        static_cast<std::uint64_t>(world.metrics().page_writes_foreground());
    EXPECT_LT(incremental_fg, 8u) << "incremental reclaim flushed everything";
    // A full reclaim (target 0) finishes the job: now page 7 is on disk and
    // the log shrinks to its floor.
    world.rm(1).Reclaim(world.tm(1).ActiveTransactions());
    EXPECT_EQ(world.node(1).disk().PeekPage({seg, 7}).data[0], 107);
    EXPECT_LE(world.rm(1).StableLogBytesInUse(), after);
  });
}

}  // namespace
}  // namespace tabs
