// Determinism properties of the virtual-time substrate: identical runs
// produce identical traces (virtual times, primitive counts, outcomes) —
// the property that makes every benchmark and failure in this repository
// exactly reproducible.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/log/group_commit.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/servers/weak_queue_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;
using servers::WeakQueueServer;

// Runs a mixed concurrent workload and returns a trace fingerprint.
std::string RunWorkloadTrace(unsigned seed) {
  World world(2);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 32u);
  auto* remote = world.AddServerOf<ArrayServer>(2, "rem", 32u);
  auto* queue = world.AddServerOf<WeakQueueServer>(1, "q", 32u);

  std::ostringstream trace;
  for (int c = 0; c < 4; ++c) {
    world.SpawnApp(1, "client", [&, c, seed](Application& app) {
      std::mt19937 rng(seed + static_cast<unsigned>(c));
      for (int i = 0; i < 6; ++i) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          switch (rng() % 3) {
            case 0:
              return arr->SetCell(tx, rng() % 8, static_cast<std::int32_t>(rng() % 100));
            case 1:
              return remote->SetCell(tx, rng() % 8, static_cast<std::int32_t>(rng() % 100));
            default:
              return queue->Enqueue(tx, static_cast<std::int32_t>(rng() % 100));
          }
        });
        trace << c << ":" << i << ":" << StatusName(s) << "@" << world.scheduler().Now()
              << ";";
      }
    }, c * 2'500);
  }
  world.Drain();
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        trace << arr->GetCell(tx, i).value() << ",";
        trace << remote->GetCell(tx, i).value() << ",";
      }
      return Status::kOk;
    });
  });
  trace << "|total=" << world.metrics().Total().PredictedTime(sim::CostModel::Baseline());
  return trace.str();
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  std::string first = RunWorkloadTrace(42);
  std::string second = RunWorkloadTrace(42);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunWorkloadTrace(1), RunWorkloadTrace(2));
}

TEST(DeterminismTest, CrashRecoveryIsDeterministicToo) {
  auto run = [](unsigned seed) {
    World world(2);
    auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 16u);
    std::ostringstream trace;
    world.RunApp(1, [&](Application& app) {
      std::mt19937 rng(seed);
      for (int i = 0; i < 5; ++i) {
        app.Transaction([&](const server::Tx& tx) {
          return arr->SetCell(tx, rng() % 8, static_cast<std::int32_t>(i));
        });
      }
      TransactionId t = app.Begin();
      arr->SetCell(app.MakeTx(t), 0, -1);
      world.rm(1).log().ForceAll();
      world.CrashNode(1);
    });
    world.RunApp(2, [&](Application&) {
      auto stats = world.RecoverNode(1);
      trace << "scanned=" << stats.records_scanned << " losers=" << stats.losers.size();
    });
    arr = world.Server<ArrayServer>(1, "arr");
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t i = 0; i < 8; ++i) {
          trace << "," << arr->GetCell(tx, i).value();
        }
        return Status::kOk;
      });
      trace << "@" << world.scheduler().Now();
    });
    return trace.str();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(DeterminismTest, GroupCommitBatchesAreDeterministic) {
  // Same seed ⇒ same batch composition: every group-commit flush happens at
  // the same virtual time with the same member count, run after run. The
  // fingerprint is the tracer's flush events plus the force counters.
  auto run = [](unsigned seed) {
    WorldOptions opt;
    opt.group_commit_window_us = 2'000;
    World world(1, opt);
    auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 32u);
    world.substrate().tracer().Enable(true);
    for (int c = 0; c < 6; ++c) {
      world.SpawnApp(1, "client", [&, c, seed](Application& app) {
        std::mt19937 rng(seed + static_cast<unsigned>(c));
        for (int i = 0; i < 4; ++i) {
          app.Transaction([&](const server::Tx& tx) {
            return arr->SetCell(tx, rng() % 16, static_cast<std::int32_t>(rng() % 100));
          });
        }
      }, c * 300);
    }
    world.Drain();
    std::ostringstream trace;
    for (const sim::TraceEvent& e : world.substrate().tracer().events()) {
      if (e.category == "group-commit-flush") {
        trace << e.time << ":" << e.detail << ";";
      }
    }
    trace << "issued=" << world.metrics().forces_issued()
          << " absorbed=" << world.metrics().forces_absorbed()
          << " batches=" << world.group_commit(1).batches()
          << " largest=" << world.group_commit(1).largest_batch();
    return trace.str();
  };
  std::string first = run(11);
  EXPECT_EQ(first, run(11));
  // The fingerprint actually recorded flushes (batching engaged).
  EXPECT_NE(first.find(":batch="), std::string::npos);
}

// The table5_4 debit-credit workload shape, fingerprinted by everything the
// bench serializes from the simulation: per-transaction status and commit
// time, final balances, event (scheduler step) count, and predicted time.
std::string RunDebitCreditFingerprint(bool tracing) {
  World world(2);
  auto* local = world.AddServerOf<servers::AccountServer>(1, "bank", 32u);
  auto* remote = world.AddServerOf<servers::AccountServer>(2, "rembank", 32u);
  world.substrate().tracer().Enable(tracing);
  world.RunApp(1, [&](Application& app) {
    for (std::uint32_t a = 0; a < 32; ++a) {
      app.Transaction([&](const server::Tx& tx) {
        local->Deposit(tx, a, 1'000);
        return remote->Deposit(tx, a, 1'000);
      });
    }
  });
  std::uint64_t steps_before = world.scheduler().steps();
  std::ostringstream trace;
  for (int c = 0; c < 3; ++c) {
    world.SpawnApp(1, "client", [&, c](Application& app) {
      std::mt19937 rng(500 + static_cast<unsigned>(c));
      for (int i = 0; i < 8; ++i) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          std::uint32_t acct = rng() % 32;
          if (rng() % 2 == 0) {
            return local->Deposit(tx, acct, 10);
          }
          local->Withdraw(tx, acct, 5);
          return remote->Deposit(tx, acct, 5);
        });
        trace << c << ":" << i << ":" << StatusName(s) << "@" << world.scheduler().Now()
              << ";";
      }
    }, c * 1'000);
  }
  world.Drain();
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t a = 0; a < 32; ++a) {
        trace << local->ReadBalance(tx, a).value() << ",";
        trace << remote->ReadBalance(tx, a).value() << ",";
      }
      return Status::kOk;
    });
  });
  trace << "|steps=" << world.scheduler().steps() - steps_before
        << "|total=" << world.metrics().Total().PredictedTime(sim::CostModel::Baseline());
  return trace.str();
}

TEST(DeterminismTest, DebitCreditByteIdenticalAcrossRuns) {
  std::string first = RunDebitCreditFingerprint(/*tracing=*/true);
  EXPECT_EQ(first, RunDebitCreditFingerprint(/*tracing=*/true));
  EXPECT_NE(first.find("steps="), std::string::npos);
}

TEST(DeterminismTest, TracingOnOrOffDoesNotPerturbTheSchedule) {
  // The monitor must be observation-only: enabling it may not move a single
  // commit time, balance, or scheduler step. This is the property that lets
  // the benches run traced while the goldens stay byte-identical.
  EXPECT_EQ(RunDebitCreditFingerprint(/*tracing=*/false),
            RunDebitCreditFingerprint(/*tracing=*/true));
}

}  // namespace
}  // namespace tabs
