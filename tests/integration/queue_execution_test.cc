// Queue-oriented execution (WorldOptions::queue_execution): correctness of
// the early-lock-release pipeline for hot objects.
//
//  * Determinism: the mode changes the schedule, but the changed schedule is
//    still a function of the seed — two runs fingerprint identically.
//  * Throughput: a hot-spot workload commits strictly more with the mode on
//    (the bench/queue_ablation sweep quantifies the speedup; this pins the
//    direction so a regression fails fast in ctest).
//  * Abort cascade: an in-doubt early release (participant prepare) taints
//    the released objects; when the predecessor aborts, the cascade consumes
//    exactly the queued successors — and the rolled-back state is the state
//    from before the predecessor, not a half-undone hybrid.
//  * Retry hygiene: a cascade-aborted RunTransactional attempt retries into
//    clean state — the committed attempt never observes the aborted
//    predecessor's value or the victim's own pre-abort write.
//  * Escrow wait: a withdrawal short on guaranteed funds parks instead of
//    rejecting, and is admitted when a concurrent outcome frees escrow.
//  * Crash safety: money is conserved at every queue.* / escrow.* fault
//    point (the generic surface is covered by crash_point_exploration_test;
//    this sweep targets only the windows this mode added).

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/sim/cost_model.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;
using servers::ArrayServer;

WorldOptions QueueOptions(bool queue_on) {
  WorldOptions opt;
  opt.group_commit_window_us = 500;
  opt.queue_execution = queue_on;
  return opt;
}

// A contended single-node workload: `clients` tasks all update cell 0 for
// `window` virtual microseconds. The trace of every attempt (client, index,
// status, virtual time) plus the final cell and force count is the
// fingerprint.
std::string HotSpotFingerprint(bool queue_on, int clients, SimTime window) {
  World world(1, QueueOptions(queue_on));
  auto* arr = world.AddServerOf<ArrayServer>(1, "cells", 16u);
  std::ostringstream trace;
  for (int c = 0; c < clients; ++c) {
    world.SpawnApp(1, "client", [&world, &trace, arr, c, window](Application& app) {
      int i = 0;
      while (world.scheduler().Now() < window) {
        Status s = app.Transaction(
            [&](const server::Tx& tx) { return arr->SetCell(tx, 0, c); });
        trace << c << ":" << i++ << ":" << StatusName(s) << "@"
              << world.scheduler().Now() << "\n";
      }
    }, c * 1'000);
  }
  world.Drain();
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto v = arr->GetCell(tx, 0);
      trace << "final=" << (v.ok() ? v.value() : -1);
      return Status::kOk;
    });
  });
  trace << " forces=" << world.metrics().forces_issued();
  return trace.str();
}

TEST(QueueExecution, HotSpotScheduleIsDeterministic) {
  std::string a = HotSpotFingerprint(/*queue_on=*/true, /*clients=*/6, 200'000);
  std::string b = HotSpotFingerprint(/*queue_on=*/true, /*clients=*/6, 200'000);
  EXPECT_EQ(a, b) << "queue-mode schedule is not a pure function of the seed";
}

TEST(QueueExecution, HotSpotCommitsMoreWithQueueOn) {
  // The co-located hot spot: with the mode off the exclusive lock rides the
  // group-commit window and the force; with it on the commit append releases
  // the lock and successors pipeline into the window (bench/queue_ablation
  // sweeps the full curve).
  auto committed = [](bool queue_on) {
    WorldOptions opt = QueueOptions(queue_on);
    // The bench's operating point: Table 5-5 achievable times (cheap
    // execution, disk-bound commit) and a window near the force duration.
    // The margin below is calibrated against 2PC's commit latencies.
    opt.commit_mode = txn::CommitMode::kTwoPhase;
    opt.costs = sim::CostModel::Achievable();
    opt.group_commit_window_us = 20'000;
    World world(1, opt);
    auto* arr = world.AddServerOf<ArrayServer>(1, "cells", 16u);
    int done = 0;
    for (int c = 0; c < 8; ++c) {
      world.SpawnApp(1, "client", [&world, &done, arr, c](Application& app) {
        while (world.scheduler().Now() < 2'000'000) {
          Status s = app.Transaction(
              [&](const server::Tx& tx) { return arr->SetCell(tx, 0, c); });
          if (s == Status::kOk) {
            ++done;
          }
        }
      }, c * 1'000);
    }
    world.Drain();
    return done;
  };
  int off = committed(false);
  int on = committed(true);
  // The bench sweeps the full speedup curve (5.7x at 16 clients); here we
  // pin >2x at 8 clients so a pipelining regression fails in tier 1.
  EXPECT_GT(on, off) << "queue mode no longer speeds up the hot spot";
  EXPECT_GT(on, 2 * off) << "hot-spot speedup collapsed: on=" << on
                         << " off=" << off;
}

// In-doubt early release and the abort cascade. Node 1 hosts the driver of
// transaction A, node 2 the array. A updates cell 0 remotely and commits;
// node 2 prepares, early-releases cell 0 *tainted*, and its yes-vote is lost
// in the network. B (on node 2) is granted the released lock, overwrites the
// cell, and queues behind A. A's coordinator times out and aborts; the
// cascade must abort B first (restoring A's value), then undo A (restoring
// the original) — and a fresh transaction must then run normally.
TEST(QueueExecution, AbortCascadeConsumesOnlyQueuedSuccessors) {
  WorldOptions opt = QueueOptions(true);
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // the lost tag below is 2PC's
  opt.vote_timeout_us = 300'000;
  World world(2, opt);
  auto* arr = world.AddServerOf<ArrayServer>(2, "cells", 16u);

  world.network().SetDatagramLossTagged(
      [](NodeId from, NodeId, const std::string& what) {
        return from == 2 && what == "2pc-vote";
      });

  Status end_a = Status::kInternal;
  Status write_b = Status::kInternal;
  Status end_b = Status::kInternal;
  world.SpawnApp(1, "victim-a", [&](Application& app) {
    TransactionId tid = app.Begin();
    ASSERT_EQ(arr->SetCell(app.MakeTx(tid), 0, 111), Status::kOk);
    end_a = app.End(tid);  // vote lost -> timeout -> abort subtree
  });
  // B starts while A holds the hot cell (A's remote write lands ~120 virtual
  // ms in; the prepare early release is later still), so B's request queues
  // behind A rather than winning the initial race.
  world.SpawnApp(2, "successor-b", [&](Application& app) {
    TransactionId tid = app.Begin();
    // Blocks on A's exclusive lock until A's prepare early-releases it.
    write_b = arr->SetCell(app.MakeTx(tid), 0, 222);
    end_b = app.End(tid);  // parks on the commit dependency, then cascades
  }, 150'000);
  world.Drain();
  world.network().SetDatagramLossTagged({});

  EXPECT_EQ(end_a, Status::kVoteNo);
  EXPECT_EQ(write_b, Status::kOk) << "B was never granted the released lock";
  EXPECT_NE(end_b, Status::kOk) << "a dependent committed past its aborted predecessor";

  // Both writes rolled back, in cascade order (B first, then A): the cell is
  // back to its initial value, and the system is open for business.
  world.RunApp(2, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto v = arr->GetCell(tx, 0);
      EXPECT_TRUE(v.ok());
      if (v.ok()) {
        EXPECT_EQ(v.value(), 0) << "cascade left a half-undone cell";
      }
      return Status::kOk;
    });
    Status fresh = app.Transaction(
        [&](const server::Tx& tx) { return arr->SetCell(tx, 0, 333); });
    EXPECT_EQ(fresh, Status::kOk) << "cascade left the object wedged";
  });
  world.RunApp(2, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto v = arr->GetCell(tx, 0);
      EXPECT_TRUE(v.ok() && v.value() == 333);
      return Status::kOk;
    });
  });
}

// Satellite: early release x RunTransactional retry. The victim's committed
// attempt must observe fully rolled-back state — never the aborted
// predecessor's value, and never a leftover of its own pre-abort write.
TEST(QueueExecution, RetriedVictimObservesCleanState) {
  WorldOptions opt = QueueOptions(true);
  opt.commit_mode = txn::CommitMode::kTwoPhase;
  opt.vote_timeout_us = 300'000;
  World world(2, opt);
  auto* arr = world.AddServerOf<ArrayServer>(2, "cells", 16u);

  world.network().SetDatagramLossTagged(
      [](NodeId from, NodeId, const std::string& what) {
        return from == 2 && what == "2pc-vote";
      });

  Status end_a = Status::kInternal;
  Application::RunResult run_b;
  std::vector<std::int32_t> observed;  // cell 0 as seen by each B attempt
  world.SpawnApp(1, "victim-a", [&](Application& app) {
    TransactionId tid = app.Begin();
    ASSERT_EQ(arr->SetCell(app.MakeTx(tid), 0, 111), Status::kOk);
    end_a = app.End(tid);
  });
  world.SpawnApp(2, "retrier-b", [&](Application& app) {
    run_b = app.RunTransactional([&](const server::Tx& tx) {
      auto v = arr->GetCell(tx, 0);
      if (!v.ok()) {
        return v.status();
      }
      observed.push_back(v.value());
      return arr->SetCell(tx, 0, 222);
    });
  }, 150'000);  // inside A's hold window, as above
  world.Drain();
  world.network().SetDatagramLossTagged({});

  EXPECT_EQ(end_a, Status::kVoteNo);
  ASSERT_TRUE(run_b.ok()) << "victim never recovered: " << StatusName(run_b.status);
  EXPECT_GE(run_b.attempts, 2) << "B was expected to queue behind A and cascade once";
  // The attempt that committed is the last one: it must have read the
  // original cell (0), not A's aborted 111 and not B's own undone 222.
  ASSERT_FALSE(observed.empty());
  EXPECT_EQ(observed.back(), 0)
      << "committed retry observed dirty state: " << observed.back();
  world.RunApp(2, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto v = arr->GetCell(tx, 0);
      EXPECT_TRUE(v.ok() && v.value() == 222);
      return Status::kOk;
    });
  });
}

// Escrow wait: with the mode on, a withdrawal short on guaranteed funds
// parks until a concurrent outcome frees escrow; with it off, the same
// schedule is a straight kConflict reject.
TEST(QueueExecution, EscrowWaitAdmitsWhenFundsSettle) {
  for (bool queue_on : {false, true}) {
    World world(1, QueueOptions(queue_on));
    auto* bank = world.AddServerOf<AccountServer>(1, "bank", 4u);
    world.RunApp(1, [&](Application& app) {
      ASSERT_EQ(app.Transaction([&](const server::Tx& tx) {
        return bank->Deposit(tx, 0, 40);
      }), Status::kOk);
    });

    // A holds an uncommitted 30-withdrawal for 50 virtual ms, then aborts.
    // The Yield makes the hold real in execution order: pure charges never
    // yield, so without it the whole body (withdraw through abort) would run
    // atomically and B could never overlap the shortage window.
    world.SpawnApp(1, "holder", [&](Application& app) {
      TransactionId tid = app.Begin();
      ASSERT_EQ(bank->Withdraw(app.MakeTx(tid), 0, 30), Status::kOk);
      world.scheduler().Charge(50'000);
      world.scheduler().Yield();
      app.Abort(tid);
    });
    // B's 30-withdrawal finds only 10 guaranteed (40 minus A's escrow).
    Status withdraw_b = Status::kInternal;
    Status end_b = Status::kInternal;
    world.SpawnApp(1, "waiter", [&](Application& app) {
      TransactionId tid = app.Begin();
      withdraw_b = bank->Withdraw(app.MakeTx(tid), 0, 30);
      end_b = withdraw_b == Status::kOk ? app.End(tid) : Status::kAborted;
      if (withdraw_b != Status::kOk) {
        app.Abort(tid);
      }
    }, 5'000);
    world.Drain();

    std::int64_t balance = -1;
    world.RunApp(1, [&](Application& app) {
      app.Transaction([&](const server::Tx& tx) {
        auto v = bank->ReadBalance(tx, 0);
        balance = v.ok() ? v.value() : -1;
        return Status::kOk;
      });
    });
    if (queue_on) {
      // B parked in the escrow wait and was admitted when A's abort settled.
      EXPECT_EQ(withdraw_b, Status::kOk) << "escrow wait never admitted B";
      EXPECT_EQ(end_b, Status::kOk);
      EXPECT_EQ(balance, 10);
    } else {
      EXPECT_EQ(withdraw_b, Status::kConflict) << "mode off must stay a pure reject";
      EXPECT_EQ(balance, 40);
    }
  }
}

// ---- crash-point sweep over the queue/escrow windows -----------------------
//
// A two-bank transfer workload with two concurrent clients (so escrow waits
// and commit queues actually form), recorded once fault-free, then re-run
// with a crash armed at each queue.* / escrow.* point. Transfers conserve
// money by construction, so after recovery the grand total must equal the
// seeded total (or zero, if the crash interrupted the seed transaction's own
// commit), every balance must be non-negative (the escrow guarantee), and no
// transaction may remain in doubt.

constexpr std::int64_t kSeedPerBank = 50;

WorldOptions SweepOptions() {
  WorldOptions opt = QueueOptions(true);
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // keep the recorded plan stable
  opt.group_commit_window_us = 50;
  opt.vote_timeout_us = 500'000;
  return opt;
}

void RunSweepWorkload(World& world, AccountServer* b1, AccountServer* b2) {
  // Seed both banks in one distributed transaction (atomic: total is 50+50
  // or nothing).
  world.SpawnApp(3, "seeder", [&world, b1, b2](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      Status s = b1->Deposit(tx, 0, kSeedPerBank);
      if (s != Status::kOk) {
        return s;
      }
      return b2->Deposit(tx, 0, kSeedPerBank);
    });
  });
  // Two clients shuttling 40 back and forth: each withdrawal leaves only 10
  // guaranteed, so overlapping attempts park in the escrow wait until the
  // opposing transfer commits.
  world.SpawnApp(3, "shuttle-a", [b1, b2](Application& app) {
    for (int i = 0; i < 3; ++i) {
      app.RunTransactional([&](const server::Tx& tx) {
        Status s = b1->Withdraw(tx, 0, 40);
        if (s != Status::kOk) {
          return s;
        }
        return b2->Deposit(tx, 0, 40);
      });
    }
  }, 2'000);
  world.SpawnApp(3, "shuttle-b", [b1, b2](Application& app) {
    for (int i = 0; i < 3; ++i) {
      app.RunTransactional([&](const server::Tx& tx) {
        Status s = b2->Withdraw(tx, 0, 40);
        if (s != Status::kOk) {
          return s;
        }
        return b1->Deposit(tx, 0, 40);
      });
    }
  }, 2'500);
  world.Drain();
}

void RecoverAll(World& world) {
  NodeId runner = world.NodeAlive(1) ? 1 : 2;
  world.RunApp(runner, [&world](Application&) {
    for (NodeId n = 1; n <= 3; ++n) {
      if (!world.NodeAlive(n)) {
        world.RecoverNode(n);
      }
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (NodeId n = 1; n <= 3; ++n) {
        for (const TransactionId& tid : world.tm(n).InDoubt()) {
          world.tm(n).ResolveInDoubt(tid);
        }
      }
    }
  });
}

TEST(QueueExecution, CrashAtEveryQueueAndEscrowPointConservesMoney) {
  // Pass 1: record the reachable fault surface.
  std::vector<sim::FaultInjector::PointHit> hits;
  {
    World world(3, SweepOptions());
    auto* b1 = world.AddServerOf<AccountServer>(1, "bank1", 2u);
    auto* b2 = world.AddServerOf<AccountServer>(2, "bank2", 2u);
    world.faults().StartRecording();
    RunSweepWorkload(world, b1, b2);
    hits = world.faults().recorded_hits();
  }
  std::map<std::string, int> counts;
  for (const auto& h : hits) {
    if (h.point.rfind("queue.", 0) == 0 || h.point.rfind("escrow.", 0) == 0) {
      counts[h.point] = std::max(counts[h.point], h.hit);
    }
  }
  // The workload must reach the mode's whole new surface: both release
  // regimes, the cascade window, and the escrow wait.
  ASSERT_TRUE(counts.count("queue.commit.early-release"));
  ASSERT_TRUE(counts.count("queue.prepare.early-release"));
  ASSERT_TRUE(counts.count("escrow.wait"));
  std::vector<std::pair<std::string, int>> plan;
  for (const auto& [point, count] : counts) {
    plan.emplace_back(point, 1);
    if (count > 2) {
      plan.emplace_back(point, count / 2 + 1);
    }
  }

  // Pass 2: one fresh universe per planned crash.
  for (const auto& [point, hit] : plan) {
    World world(3, SweepOptions());
    auto* b1 = world.AddServerOf<AccountServer>(1, "bank1", 2u);
    auto* b2 = world.AddServerOf<AccountServer>(2, "bank2", 2u);
    world.faults().ArmCrash(point, hit);
    RunSweepWorkload(world, b1, b2);
    EXPECT_TRUE(world.faults().crash_fired())
        << point << " hit " << hit << " never fired: determinism broken between passes";
    world.faults().Disarm();
    RecoverAll(world);

    const std::string where = point + "#" + std::to_string(hit);
    for (NodeId n = 1; n <= 3; ++n) {
      EXPECT_TRUE(world.tm(n).InDoubt().empty())
          << "unresolved in-doubt transaction on node " << n << " after " << where;
    }
    auto* r1 = world.Server<AccountServer>(1, "bank1");
    auto* r2 = world.Server<AccountServer>(2, "bank2");
    std::int64_t total = 0;
    bool read_ok = false;
    world.RunApp(3, [&](Application& app) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        for (std::uint32_t a = 0; a < 2; ++a) {
          auto v1 = r1->ReadBalance(tx, a);
          auto v2 = r2->ReadBalance(tx, a);
          if (!v1.ok() || !v2.ok()) {
            return Status::kInternal;
          }
          EXPECT_GE(v1.value(), 0) << "bank1:" << a << " overdrawn after " << where;
          EXPECT_GE(v2.value(), 0) << "bank2:" << a << " overdrawn after " << where;
          total += v1.value() + v2.value();
        }
        return Status::kOk;
      });
      read_ok = s == Status::kOk;
    });
    ASSERT_TRUE(read_ok) << "balance read failed after " << where;
    EXPECT_TRUE(total == 2 * kSeedPerBank || total == 0)
        << "money not conserved after crash at " << where << ": total=" << total;
    if (::testing::Test::HasFailure()) {
      break;  // one repro is enough; later crashes would drown it
    }
  }
}

}  // namespace
}  // namespace tabs
