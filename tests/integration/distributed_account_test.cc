// Operation logging under distribution: account servers on two nodes inside
// one transaction — typed locks, logical undo across nodes, in-doubt
// resolution with operation-logged state.

#include <gtest/gtest.h>

#include "src/servers/account_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;

class DistributedAccountTest : public ::testing::Test {
 protected:
  explicit DistributedAccountTest(const WorldOptions& opt = WorldOptions())
      : world_(2, opt) {
    local_ = world_.AddServerOf<AccountServer>(1, "local-acct", 8u);
    remote_ = world_.AddServerOf<AccountServer>(2, "remote-acct", 8u);
  }
  void Refresh() {
    local_ = world_.Server<AccountServer>(1, "local-acct");
    remote_ = world_.Server<AccountServer>(2, "remote-acct");
  }

  World world_;
  AccountServer* local_;
  AccountServer* remote_;

 public:
  static WorldOptions TwoPhase() {
    WorldOptions opt;
    opt.commit_mode = txn::CommitMode::kTwoPhase;
    return opt;
  }
};

TEST_F(DistributedAccountTest, CrossNodeTransferCommits) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return local_->Deposit(tx, 0, 100); });
    Status s = app.Transaction([&](const server::Tx& tx) {
      Status w = local_->Withdraw(tx, 0, 40);
      if (w != Status::kOk) {
        return w;
      }
      return remote_->Deposit(tx, 0, 40);
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(local_->ReadBalance(tx, 0).value(), 60);
      EXPECT_EQ(remote_->ReadBalance(tx, 0).value(), 40);
      return Status::kOk;
    });
  });
}

TEST_F(DistributedAccountTest, AbortUndoesLogicallyOnBothNodes) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return local_->Deposit(tx, 0, 100); });
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    local_->Withdraw(tx, 0, 30);
    remote_->Deposit(tx, 0, 30);
    // A concurrent deposit interleaves on the remote account: abort must
    // subtract only the transfer's 30, not restore a before-image.
    app.Transaction([&](const server::Tx& tx2) { return remote_->Deposit(tx2, 0, 500); });
    app.Abort(t);
    app.Transaction([&](const server::Tx& tx2) {
      EXPECT_EQ(local_->ReadBalance(tx2, 0).value(), 100);
      EXPECT_EQ(remote_->ReadBalance(tx2, 0).value(), 500);
      return Status::kOk;
    });
  });
}

// The in-doubt window and its ResolveInDoubt outcome asserted here are
// 2PC's; the commit-mode CI matrix would otherwise resolve the crash through
// the acceptors with a different verdict.
class TwoPhaseAccountTest : public DistributedAccountTest {
 protected:
  TwoPhaseAccountTest() : DistributedAccountTest(TwoPhase()) {}
};

TEST_F(TwoPhaseAccountTest, ParticipantCrashInDoubtResolvesWithOperationLog) {
  // Lose the commit datagram so the remote account server's node recovers an
  // in-doubt operation-logged transaction, then resolve via the coordinator.
  int count = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    if (from == 1 && to == 2) {
      ++count;
      return count == 2;  // prepare passes, commit is lost
    }
    return false;
  });
  Status outcome = Status::kInternal;
  world_.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      Status d = local_->Deposit(tx, 0, 10);
      if (d != Status::kOk) {
        return d;
      }
      return remote_->Deposit(tx, 0, 20);
    });
  });
  EXPECT_EQ(outcome, Status::kOk);
  world_.network().SetDatagramLoss({});
  world_.RunApp(1, [&](Application& app) {
    world_.CrashNode(2);
    auto stats = world_.RecoverNode(2, /*resolve_in_doubt=*/false);
    ASSERT_EQ(stats.in_doubt.size(), 1u);
    EXPECT_EQ(stats.passes, 3);  // operation records in the log
    Refresh();
    EXPECT_EQ(world_.tm(2).ResolveInDoubt(stats.in_doubt[0]), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(remote_->ReadBalance(tx, 0).value(), 20);
      return Status::kOk;
    });
  });
}

TEST_F(DistributedAccountTest, TypedLocksCommuteAcrossNodesToo) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t1 = app.Begin();
    TransactionId t2 = app.Begin();
    // Both live transactions deposit into the same REMOTE account: increment
    // locks commute, so neither blocks.
    EXPECT_EQ(remote_->Deposit(app.MakeTx(t1), 0, 5), Status::kOk);
    EXPECT_EQ(remote_->Deposit(app.MakeTx(t2), 0, 6), Status::kOk);
    EXPECT_EQ(app.End(t1), Status::kOk);
    EXPECT_EQ(app.End(t2), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(remote_->ReadBalance(tx, 0).value(), 11);
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
