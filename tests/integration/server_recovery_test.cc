// Single-server crash and recovery (Section 7 future work): one data server
// process dies; the node, its other servers, and unrelated transactions keep
// running; the server recovers from the common log alone.

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

class ServerRecoveryTest : public ::testing::Test {
 protected:
  ServerRecoveryTest() : world_(2) {
    a_ = world_.AddServerOf<ArrayServer>(1, "a", 32u);
    b_ = world_.AddServerOf<ArrayServer>(1, "b", 32u);
  }
  void RefreshA() { a_ = world_.Server<ArrayServer>(1, "a"); }

  World world_;
  ArrayServer* a_;
  ArrayServer* b_;
};

TEST_F(ServerRecoveryTest, CommittedDataSurvivesServerRestart) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a_->SetCell(tx, 0, 11);
      b_->SetCell(tx, 0, 22);
      return Status::kOk;
    });
    world_.CrashServer(1, "a");
    auto stats = world_.RecoverServer(1, "a");
    EXPECT_EQ(stats.losers.size(), 0u);
    RefreshA();
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a_->GetCell(tx, 0).value(), 11);
      EXPECT_EQ(b_->GetCell(tx, 0).value(), 22);  // untouched throughout
      return Status::kOk;
    });
  });
}

TEST_F(ServerRecoveryTest, ActiveTransactionsUsingTheServerAbort) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a_->SetCell(tx, 0, 1);
      b_->SetCell(tx, 0, 1);
      return Status::kOk;
    });
    // An in-flight transaction touches BOTH servers when "a" dies.
    TransactionId t = app.Begin();
    a_->SetCell(app.MakeTx(t), 0, 99);
    b_->SetCell(app.MakeTx(t), 0, 99);
    world_.CrashServer(1, "a");
    EXPECT_TRUE(app.TransactionIsAborted(t));
    // The b-side write was rolled back immediately (b is alive)...
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(b_->GetCell(tx, 0).value(), 1);
      return Status::kOk;
    });
    // ...and the a-side write rolls back when the server recovers.
    world_.RecoverServer(1, "a");
    RefreshA();
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a_->GetCell(tx, 0).value(), 1);
      return Status::kOk;
    });
  });
}

TEST_F(ServerRecoveryTest, OtherServersKeepWorkingWhileOneIsDown) {
  world_.RunApp(1, [&](Application& app) {
    world_.CrashServer(1, "a");
    // Node 1 is alive: b accepts transactions while a is down.
    Status s = app.Transaction([&](const server::Tx& tx) {
      return b_->SetCell(tx, 5, 55);
    });
    EXPECT_EQ(s, Status::kOk);
    world_.RecoverServer(1, "a");
    RefreshA();
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(b_->GetCell(tx, 5).value(), 55);
      EXPECT_EQ(a_->GetCell(tx, 0).value(), 0);
      return Status::kOk;
    });
  });
}

TEST_F(ServerRecoveryTest, RepeatedServerRestartCycles) {
  world_.RunApp(1, [&](Application& app) {
    for (int round = 1; round <= 3; ++round) {
      app.Transaction([&](const server::Tx& tx) {
        a_->SetCell(tx, 1, round);
        return Status::kOk;
      });
      world_.CrashServer(1, "a");
      world_.RecoverServer(1, "a");
      RefreshA();
      app.Transaction([&](const server::Tx& tx) {
        EXPECT_EQ(a_->GetCell(tx, 1).value(), round);
        return Status::kOk;
      });
    }
  });
}

TEST_F(ServerRecoveryTest, ServerRecoveryScansOnlyItsOwnRecordsIntoSegment) {
  world_.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 10; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        a_->SetCell(tx, static_cast<std::uint32_t>(i), i);
        b_->SetCell(tx, static_cast<std::uint32_t>(i), -i);
        return Status::kOk;
      });
    }
    world_.CrashServer(1, "a");
    auto stats = world_.RecoverServer(1, "a");
    RefreshA();
    // Correct values on both servers: a's from log replay, b's untouched.
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a_->GetCell(tx, static_cast<std::uint32_t>(i)).value(), i);
        EXPECT_EQ(b_->GetCell(tx, static_cast<std::uint32_t>(i)).value(), -i);
      }
      return Status::kOk;
    });
    EXPECT_GT(stats.records_scanned, 0);
  });
}

}  // namespace
}  // namespace tabs
