// Fuzz: the replicated directory under random operations and random
// single-node crash/recover cycles, checked against a model map. With
// quorums r = w = 2 of 3 single-vote representatives, any read quorum
// intersects any write quorum, so a committed write is never lost and a
// lookup never returns stale data — whatever one node is doing.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/servers/replicated_directory.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::BTreeServer;
using servers::DirectoryRep;
using servers::ReplicatedDirectory;

class ReplicationFuzzTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void Build(World& world) {
    for (NodeId n = 1; n <= 3; ++n) {
      world.AddServerOf<BTreeServer>(n, "bt", 200u);
      World* w = &world;
      world.AddServer(n, "rep", [w, n](const server::ServerContext& ctx) {
        return std::make_unique<DirectoryRep>(ctx, w->Server<BTreeServer>(n, "bt"), 1);
      });
    }
  }

  static ReplicatedDirectory Client(World& world) {
    std::vector<ReplicatedDirectory::Replica> reps;
    for (NodeId n = 1; n <= 3; ++n) {
      auto* rep = world.Server<DirectoryRep>(n, "rep");
      rep->SetStorage(world.Server<BTreeServer>(n, "bt"));
      reps.push_back({rep, n});
    }
    return ReplicatedDirectory(std::move(reps), 2, 2);
  }
};

TEST_P(ReplicationFuzzTest, QuorumIntersectionNeverServesStaleData) {
  std::mt19937 rng(GetParam());
  World world(4);  // 3 representatives + a client node
  Build(world);
  std::map<std::string, std::string> model;
  NodeId down = kInvalidNode;

  for (int round = 0; round < 25; ++round) {
    // Maybe change which (single) node is down.
    world.RunApp(4, [&](Application&) {
      if (down != kInvalidNode && rng() % 2 == 0) {
        world.RecoverNode(down);
        down = kInvalidNode;
      } else if (down == kInvalidNode && rng() % 3 == 0) {
        down = 1 + rng() % 3;
        world.CrashNode(down);
      }
    });
    world.RunApp(4, [&](Application& app) {
      auto dir = Client(world);
      std::string key = "k" + std::to_string(rng() % 6);
      std::string value = "v" + std::to_string(round);
      switch (rng() % 3) {
        case 0: {
          Status s = app.Transaction(
              [&](const server::Tx& tx) { return dir.Insert(tx, key, value); });
          Status expect = model.contains(key) ? Status::kConflict : Status::kOk;
          EXPECT_EQ(s, expect) << "insert " << key << " round " << round;
          if (s == Status::kOk) {
            model[key] = value;
          }
          break;
        }
        case 1: {
          Status s = app.Transaction(
              [&](const server::Tx& tx) { return dir.Remove(tx, key); });
          Status expect = model.contains(key) ? Status::kOk : Status::kNotFound;
          EXPECT_EQ(s, expect) << "remove " << key << " round " << round;
          model.erase(key);
          break;
        }
        default: {
          app.Transaction([&](const server::Tx& tx) {
            auto v = dir.Lookup(tx, key);
            if (model.contains(key)) {
              EXPECT_TRUE(v.ok()) << key << " round " << round;
              if (v.ok()) {
                EXPECT_EQ(v.value(), model[key]) << key << " round " << round;
              }
            } else {
              EXPECT_EQ(v.status(), Status::kNotFound) << key << " round " << round;
            }
            return Status::kOk;
          });
        }
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFuzzTest, ::testing::Values(3u, 14u, 159u, 265u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tabs
