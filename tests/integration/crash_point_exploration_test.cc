// Crash-point exploration: the systematic half of the nemesis.
//
// A distributed debit-credit workload (two banks, a remote driver acting as
// 2PC coordinator, checkpoints and log reclamation mixed in) runs once with
// the fault injector recording, enumerating every fault point the workload
// reaches. Then, for every {point, hit} in the crash plan, the exact same
// workload re-runs in a fresh World with a crash armed there; after the node
// dies, recovery runs and the test asserts the paper's correctness claims:
//
//  * the committed prefix survives (balances equal the committed model, or
//    the model plus the one transaction whose EndTransaction the crash
//    interrupted — its outcome is legitimately either),
//  * every in-doubt transaction resolves,
//  * money is conserved (the final total matches the model's total).
//
// Everything is deterministic per seed: a failure prints — and writes to
// $TABS_FAULT_REPRO_FILE — the {seed, fault-point, hit} tuple that replays
// it exactly.
//
// The Paxos half re-runs the same exploration under commit_mode =
// kPaxosCommit, restricted to the paxos.* windows (vote-send, accept-log,
// accept-send, learn) plus the prepare-record windows they share with 2PC —
// and adds the non-blocking assertion 2PC cannot make: the surviving nodes
// drain every in-doubt transaction through the acceptors BEFORE the dead
// node recovers.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/servers/account_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;

constexpr std::uint32_t kAccounts = 3;
constexpr std::int64_t kBank1Seed = 600;
constexpr std::int64_t kBank2Seed = 400;

// (bank index 1/2, account) -> balance.
using Ledger = std::map<std::pair<int, std::uint32_t>, std::int64_t>;

struct Model {
  Ledger committed;
  // Deltas of the transaction whose EndTransaction was in flight when the
  // driver died; its outcome is legitimately commit or abort.
  Ledger inflight;
  bool end_in_progress = false;
};

WorldOptions ExplorationOptions() {
  WorldOptions opt;
  // Group commit on so the batch-flush windows are part of the explored
  // surface; a tight vote timeout so a crashed participant aborts the
  // in-flight transaction in virtual seconds, not tens of them.
  opt.group_commit_window_us = 50;
  opt.vote_timeout_us = 2'000'000;
  return opt;
}

WorldOptions PaxosExplorationOptions() {
  WorldOptions opt = ExplorationOptions();
  opt.commit_mode = txn::CommitMode::kPaxosCommit;
  opt.paxos_f = 1;  // 3 acceptors on a 3-node world: quorum survives any one crash
  return opt;
}

void Fold(Ledger& into, const Ledger& deltas) {
  for (const auto& [key, delta] : deltas) {
    into[key] += delta;
  }
}

// The deterministic debit-credit workload. Runs as an application task on
// node 3 (the 2PC coordinator for every transfer — its log holds the commit
// records, so coordinator-crash windows are load-bearing). May be killed at
// any armed fault point; everything written to `m` before the kill is valid.
void RunWorkload(World& world, unsigned seed, AccountServer* b1, AccountServer* b2,
                 Model& m) {
  world.RunApp(3, [&world, seed, b1, b2, &m](Application& app) {
    std::mt19937 rng(seed);
    AccountServer* banks[2] = {b1, b2};

    auto transact = [&](const std::function<Status(const server::Tx&, Ledger&)>& body,
                        bool doom) {
      Ledger staged;
      TransactionId tid = app.Begin();
      Status s = body(app.MakeTx(tid), staged);
      if (doom || s != Status::kOk) {
        app.Abort(tid);
        return;
      }
      m.inflight = staged;
      m.end_in_progress = true;
      Status end = app.End(tid);
      m.end_in_progress = false;
      m.inflight.clear();
      if (end == Status::kOk) {
        Fold(m.committed, staged);
      }
    };

    auto deposit = [&](int bank, std::uint32_t account, std::int64_t amount,
                       const server::Tx& tx, Ledger& staged) {
      Status s = banks[bank - 1]->Deposit(tx, account, amount);
      if (s == Status::kOk) {
        staged[{bank, account}] += amount;
      }
      return s;
    };
    auto withdraw = [&](int bank, std::uint32_t account, std::int64_t amount,
                        const server::Tx& tx, Ledger& staged) {
      Status s = banks[bank - 1]->Withdraw(tx, account, amount);
      if (s == Status::kOk) {
        staged[{bank, account}] -= amount;
      }
      return s;
    };

    // Seed both banks in one distributed transaction.
    transact(
        [&](const server::Tx& tx, Ledger& staged) {
          Status s = deposit(1, 0, kBank1Seed, tx, staged);
          if (s != Status::kOk) {
            return s;
          }
          return deposit(2, 0, kBank2Seed, tx, staged);
        },
        /*doom=*/false);

    for (int i = 0; i < 10; ++i) {
      auto amount = static_cast<std::int64_t>(1 + rng() % 20);
      std::uint32_t account = rng() % kAccounts;
      switch (rng() % 5) {
        case 0:
        case 1:  // debit bank 1, credit bank 2 (distributed write commit)
          transact(
              [&](const server::Tx& tx, Ledger& staged) {
                Status s = withdraw(1, 0, amount, tx, staged);
                if (s != Status::kOk) {
                  return s;
                }
                return deposit(2, account, amount, tx, staged);
              },
              false);
          break;
        case 2:  // reverse direction
          transact(
              [&](const server::Tx& tx, Ledger& staged) {
                Status s = withdraw(2, 0, amount, tx, staged);
                if (s != Status::kOk) {
                  return s;
                }
                return deposit(1, account, amount, tx, staged);
              },
              false);
          break;
        case 3:  // doomed: updates on both banks, then explicit abort
          transact(
              [&](const server::Tx& tx, Ledger& staged) {
                deposit(1, account, amount, tx, staged);
                deposit(2, account, amount, tx, staged);
                return Status::kOk;
              },
              /*doom=*/true);
          break;
        default:  // transfer within bank 1 (single remote participant)
          transact(
              [&](const server::Tx& tx, Ledger& staged) {
                Status s = withdraw(1, 0, amount, tx, staged);
                if (s != Status::kOk) {
                  return s;
                }
                return deposit(1, account, amount, tx, staged);
              },
              false);
          break;
      }
      // Maintenance mixed through the workload so the checkpoint,
      // reclamation, and write-back windows are reached. Skipped for a node
      // that a fault already crashed: a dead node's Recovery Manager must
      // not be driven from a live task.
      if (i == 3 && world.NodeAlive(1)) {
        world.Checkpoint(1);
      }
      if (i == 5 && world.NodeAlive(1)) {
        world.ReclaimLog(1);
      }
      if (i == 6 && world.NodeAlive(2)) {
        world.ReclaimLog(2);
      }
      if (i == 7) {
        world.Checkpoint(3);  // the driver's own node is alive by definition
      }
    }
  });
}

// Recovers every dead node and resolves all in-doubt transactions.
void Recover(World& world) {
  NodeId runner = world.NodeAlive(1) ? 1 : 2;  // at most one node is dead
  world.RunApp(runner, [&world](Application&) {
    for (NodeId n = 1; n <= 3; ++n) {
      if (!world.NodeAlive(n)) {
        world.RecoverNode(n);
      }
    }
    // Two passes: a resolution can require the coordinator's own recovered
    // outcome table, re-populated by the first pass.
    for (int pass = 0; pass < 2; ++pass) {
      for (NodeId n = 1; n <= 3; ++n) {
        for (const TransactionId& tid : world.tm(n).InDoubt()) {
          world.tm(n).ResolveInDoubt(tid);
        }
      }
    }
  });
}

Ledger ReadBalances(World& world) {
  auto* b1 = world.Server<AccountServer>(1, "bank1");
  auto* b2 = world.Server<AccountServer>(2, "bank2");
  Ledger out;
  world.RunApp(3, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t a = 0; a < kAccounts; ++a) {
        auto v1 = b1->ReadBalance(tx, a);
        auto v2 = b2->ReadBalance(tx, a);
        EXPECT_TRUE(v1.ok() && v2.ok()) << "balance read failed for account " << a;
        out[{1, a}] = v1.ok() ? v1.value() : -1;
        out[{2, a}] = v2.ok() ? v2.value() : -1;
      }
      return Status::kOk;
    });
  });
  return out;
}

std::int64_t Total(const Ledger& l) {
  std::int64_t t = 0;
  for (const auto& [key, v] : l) {
    t += v;
  }
  return t;
}

std::string Describe(const Ledger& l) {
  std::string s;
  for (const auto& [key, v] : l) {
    s += "bank" + std::to_string(key.first) + ":" + std::to_string(key.second) + "=" +
         std::to_string(v) + " ";
  }
  return s.empty() ? "(empty)" : s;
}

// The committed prefix survives: the recovered balances equal the committed
// model, or — when the crash interrupted an EndTransaction — the model plus
// that transaction's deltas. Either way money is conserved.
void CheckInvariants(World& world, const Model& m, unsigned seed, const std::string& where) {
  for (NodeId n = 1; n <= 3; ++n) {
    EXPECT_TRUE(world.tm(n).InDoubt().empty())
        << "unresolved in-doubt transactions on node " << n << " after crash at " << where
        << " (seed " << seed << ")";
  }
  Ledger got = ReadBalances(world);
  Ledger want_committed = m.committed;
  for (std::uint32_t a = 0; a < kAccounts; ++a) {
    want_committed.try_emplace({1, a}, 0);
    want_committed.try_emplace({2, a}, 0);
  }
  Ledger want_with_inflight = want_committed;
  Fold(want_with_inflight, m.inflight);

  bool matches = got == want_committed ||
                 (m.end_in_progress && got == want_with_inflight);
  EXPECT_TRUE(matches) << "committed prefix violated after crash at " << where << " (seed "
                       << seed << ")\n  got:               " << Describe(got)
                       << "\n  committed model:   " << Describe(want_committed)
                       << "\n  model + in-flight: " << Describe(want_with_inflight)
                       << "\n  end_in_progress:   " << m.end_in_progress;
  std::int64_t total = Total(got);
  EXPECT_TRUE(total == Total(want_committed) ||
              (m.end_in_progress && total == Total(want_with_inflight)))
      << "balance total not conserved after crash at " << where << ": " << total;
}

void WriteRepro(unsigned seed, const std::string& point, int hit) {
  const char* path = std::getenv("TABS_FAULT_REPRO_FILE");
  std::string file = path != nullptr ? path : "fault_repro.txt";
  std::FILE* f = std::fopen(file.c_str(), "a");
  if (f != nullptr) {
    std::fprintf(f, "seed=%u point=%s hit=%d\n", seed, point.c_str(), hit);
    std::fclose(f);
  }
  std::fprintf(stderr, "[fault-repro] seed=%u point=%s hit=%d\n", seed, point.c_str(), hit);
}

std::pair<AccountServer*, AccountServer*> AddBanks(World& world) {
  auto* b1 = world.AddServerOf<AccountServer>(1, "bank1", kAccounts);
  auto* b2 = world.AddServerOf<AccountServer>(2, "bank2", kAccounts);
  return {b1, b2};
}

class CrashPointExplorationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrashPointExplorationTest, EveryReachedFaultPointRecoversConsistently) {
  const unsigned seed = GetParam();

  // Pass 1: record every fault point the workload reaches, fault-free.
  std::vector<sim::FaultInjector::PointHit> hits;
  {
    World world(3, ExplorationOptions());
    auto [b1, b2] = AddBanks(world);
    world.faults().StartRecording();
    Model m;
    RunWorkload(world, seed, b1, b2, m);
    EXPECT_FALSE(world.faults().crash_fired());
    hits = world.faults().recorded_hits();
    ASSERT_GE(world.faults().distinct_points().size(), 20u)
        << "workload no longer exercises the fault surface";
    CheckInvariants(world, m, seed, "no-fault");
    ASSERT_FALSE(::testing::Test::HasFailure()) << "fault-free run is already inconsistent";
  }

  // Crash plan: the first hit of every distinct point, plus a mid-workload
  // hit for points reached many times (the first hit is often setup).
  std::map<std::string, int> counts;
  for (const auto& h : hits) {
    counts[h.point] = std::max(counts[h.point], h.hit);
  }
  std::vector<std::pair<std::string, int>> plan;
  for (const auto& [point, count] : counts) {
    plan.emplace_back(point, 1);
    if (count > 2) {
      plan.emplace_back(point, count / 2 + 1);
    }
  }

  // Pass 2: one fresh deterministic universe per planned crash.
  for (const auto& [point, hit] : plan) {
    World world(3, ExplorationOptions());
    auto [b1, b2] = AddBanks(world);
    world.faults().ArmCrash(point, hit);
    Model m;
    RunWorkload(world, seed, b1, b2, m);
    EXPECT_TRUE(world.faults().crash_fired())
        << point << " hit " << hit << " never fired (seed " << seed
        << "): determinism broken between passes";
    world.faults().Disarm();
    Recover(world);
    CheckInvariants(world, m, seed, point + "#" + std::to_string(hit));
    if (::testing::Test::HasFailure()) {
      WriteRepro(seed, point, hit);
      break;  // one repro is enough; later runs would drown it
    }
  }
}

// Coverage summary used for EXPERIMENTS.md: prints hit counts per subsystem.
TEST(CrashPointCoverage, PrintsCoverageSummary) {
  World world(3, ExplorationOptions());
  auto [b1, b2] = AddBanks(world);
  world.faults().StartRecording();
  Model m;
  RunWorkload(world, /*seed=*/1, b1, b2, m);
  std::map<std::string, int> per_subsystem;
  for (const std::string& point : world.faults().distinct_points()) {
    per_subsystem[point.substr(0, point.find('.'))]++;
  }
  int distinct = 0;
  for (const auto& [subsystem, points] : per_subsystem) {
    int subsystem_hits = 0;
    for (const std::string& point : world.faults().distinct_points()) {
      if (point.rfind(subsystem + ".", 0) == 0) {
        subsystem_hits += world.faults().HitCount(point);
      }
    }
    std::printf("%-12s %2d points %4d hits\n", subsystem.c_str(), points, subsystem_hits);
    distinct += points;
  }
  std::printf("total        %2d points\n", distinct);
  EXPECT_GE(distinct, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointExplorationTest,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// The non-blocking claim, asserted with the dead node still dead: every
// surviving node drains its in-doubt list through the acceptor quorum. Under
// 2PC this is impossible when the coordinator died holding the verdict; under
// Paxos Commit one crash never removes the quorum (F = 1, 3 acceptors).
void ResolveOnSurvivors(World& world, unsigned seed, const std::string& where) {
  NodeId runner = world.NodeAlive(1) ? 1 : 2;  // at most one node is dead
  world.RunApp(runner, [&world](Application&) {
    // Two passes: the first can return "still in doubt" if it races a
    // concurrent standby-leader sweep that has the per-transaction lead.
    for (int pass = 0; pass < 2; ++pass) {
      for (NodeId n = 1; n <= 3; ++n) {
        if (!world.NodeAlive(n)) {
          continue;
        }
        for (const TransactionId& tid : world.tm(n).InDoubt()) {
          world.tm(n).ResolveInDoubt(tid);
        }
      }
    }
  });
  for (NodeId n = 1; n <= 3; ++n) {
    if (!world.NodeAlive(n)) {
      continue;
    }
    EXPECT_TRUE(world.tm(n).InDoubt().empty())
        << "survivor node " << n << " still blocked after crash at " << where
        << " with the dead node not yet recovered (seed " << seed
        << "): commit is not non-blocking";
  }
}

class PaxosCrashPointExplorationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PaxosCrashPointExplorationTest, SurvivorsResolveEveryPaxosFaultPoint) {
  const unsigned seed = GetParam();

  // Pass 1: record which points the workload reaches under kPaxosCommit.
  std::vector<sim::FaultInjector::PointHit> hits;
  {
    World world(3, PaxosExplorationOptions());
    auto [b1, b2] = AddBanks(world);
    world.faults().StartRecording();
    Model m;
    RunWorkload(world, seed, b1, b2, m);
    EXPECT_FALSE(world.faults().crash_fired());
    hits = world.faults().recorded_hits();
    CheckInvariants(world, m, seed, "paxos-no-fault");
    ASSERT_FALSE(::testing::Test::HasFailure()) << "fault-free run is already inconsistent";
  }

  // Crash plan: the paxos-specific windows plus the shared prepare-record
  // windows. The generic surface (log, checkpoint, write-back, ...) is
  // already explored by the 2PC suite above; re-crashing it here would only
  // double the runtime.
  std::map<std::string, int> counts;
  for (const auto& h : hits) {
    counts[h.point] = std::max(counts[h.point], h.hit);
  }
  std::vector<std::pair<std::string, int>> plan;
  int paxos_points = 0;
  for (const auto& [point, count] : counts) {
    bool paxos = point.rfind("paxos.", 0) == 0;
    paxos_points += paxos ? 1 : 0;
    if (!paxos && point.rfind("2pc.vote.", 0) != 0) {
      continue;
    }
    plan.emplace_back(point, 1);
    if (count > 2) {
      plan.emplace_back(point, count / 2 + 1);
    }
  }
  ASSERT_GE(paxos_points, 4) << "paxos workload no longer reaches its fault surface";

  // Pass 2: crash at each window, then demand resolution WITHOUT recovery.
  for (const auto& [point, hit] : plan) {
    World world(3, PaxosExplorationOptions());
    auto [b1, b2] = AddBanks(world);
    world.faults().ArmCrash(point, hit);
    Model m;
    RunWorkload(world, seed, b1, b2, m);
    EXPECT_TRUE(world.faults().crash_fired())
        << point << " hit " << hit << " never fired (seed " << seed
        << "): determinism broken between passes";
    world.faults().Disarm();
    ResolveOnSurvivors(world, seed, point + "#" + std::to_string(hit));
    Recover(world);
    CheckInvariants(world, m, seed, point + "#" + std::to_string(hit));
    if (::testing::Test::HasFailure()) {
      WriteRepro(seed, point, hit);
      break;  // one repro is enough; later runs would drown it
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosCrashPointExplorationTest,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// The takeover window itself: the coordinator dies with the verdicts undelivered,
// and the first standby leader is killed at the paxos.takeover fault point. Two
// of three acceptors are now down, so the last survivor must NOT invent an
// outcome — it stays safely in doubt — and one recovered acceptor (never the
// coordinator) restores the quorum and releases the decision.
TEST(PaxosTakeoverWindow, CrashMidTakeoverBlocksSafelyUntilQuorumReturns) {
  World world(3, PaxosExplorationOptions());
  auto [b1, b2] = AddBanks(world);

  // Commit the seed transfer with every verdict datagram lost: the decision
  // is durable at the acceptors, but participants 1 and 2 stay in doubt.
  world.network().SetDatagramLossTagged(
      [](NodeId from, NodeId, const std::string& what) {
        return from == 3 && (what == "2pc-commit" || what == "paxos-learn");
      });
  Status outcome = Status::kInternal;
  world.RunApp(3, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      Status s = b1->Deposit(tx, 0, kBank1Seed);
      if (s != Status::kOk) {
        return s;
      }
      return b2->Deposit(tx, 0, kBank2Seed);
    });
  });
  ASSERT_EQ(outcome, Status::kOk);
  world.network().SetDatagramLossTagged({});
  ASSERT_EQ(world.tm(1).InDoubt().size(), 1u);
  ASSERT_EQ(world.tm(2).InDoubt().size(), 1u);

  // Node 1's staggered standby sweep reaches paxos.takeover first and dies
  // there; node 2's sweep then finds only one live acceptor (itself).
  world.faults().ArmCrash("paxos.takeover", 1);
  world.RunApp(2, [&world](Application&) { world.CrashNode(3); });
  EXPECT_TRUE(world.faults().crash_fired());
  world.faults().Disarm();
  EXPECT_FALSE(world.NodeAlive(1));
  EXPECT_EQ(world.tm(2).InDoubt().size(), 1u);  // blocked — but never wrong

  // Recovering acceptor 1 restores the quorum; the survivor's takeover then
  // learns the durable commit. The coordinator never comes back.
  world.RunApp(2, [&world](Application&) {
    world.RecoverNode(1);
    for (const TransactionId& tid : world.tm(2).InDoubt()) {
      EXPECT_EQ(world.tm(2).ResolveInDoubt(tid), Status::kOk);
    }
    for (const TransactionId& tid : world.tm(1).InDoubt()) {
      world.tm(1).ResolveInDoubt(tid);
    }
  });
  EXPECT_TRUE(world.tm(1).InDoubt().empty());
  EXPECT_TRUE(world.tm(2).InDoubt().empty());

  auto* r1 = world.Server<AccountServer>(1, "bank1");
  auto* r2 = world.Server<AccountServer>(2, "bank2");
  world.RunApp(2, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto v1 = r1->ReadBalance(tx, 0);
      auto v2 = r2->ReadBalance(tx, 0);
      EXPECT_TRUE(v1.ok() && v2.ok());
      if (v1.ok()) {
        EXPECT_EQ(v1.value(), kBank1Seed);
      }
      if (v2.ok()) {
        EXPECT_EQ(v2.value(), kBank2Seed);
      }
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
