// Log-maintenance tests: automatic reclamation under a log-space budget and
// TM-driven periodic checkpoints (Section 3.2.2).

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

TEST(MaintenanceTest, AutoReclaimKeepsLogWithinBudget) {
  WorldOptions options;
  options.log_space_budget = 16 * 1024;
  World world(2, options);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 64u);

  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 300; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, i % 32, i);
        return Status::kOk;
      });
    }
    EXPECT_GT(world.rm(1).auto_reclaim_count(), 0);
    // The retained log stays near the budget (one reclamation's worth of
    // slack: records may accumulate until the next trigger).
    EXPECT_LT(world.rm(1).StableLogBytesInUse(), 2 * options.log_space_budget);
  });
  // Correctness after heavy reclamation + a crash.
  world.RunApp(1, [&](Application& app) {
    world.CrashNode(1);
  });
  world.RunApp(2, [&](Application& app) {
    world.RecoverNode(1);
    arr = world.Server<ArrayServer>(1, "arr");
  });
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr->GetCell(tx, 299 % 32).value(), 299);
      return Status::kOk;
    });
  });
}

TEST(MaintenanceTest, ReclaimPreservesActiveTransactionUndo) {
  WorldOptions options;
  options.log_space_budget = 8 * 1024;
  World world(1, options);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 64u);
  world.RunApp(1, [&](Application& app) {
    // A long-running transaction pins its first record across reclamations.
    TransactionId oldie = app.Begin();
    arr->SetCell(app.MakeTx(oldie), 0, 12345);
    for (int i = 0; i < 200; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, 1 + (i % 16), i);
        return Status::kOk;
      });
    }
    EXPECT_GT(world.rm(1).auto_reclaim_count(), 0);
    // The old transaction can still abort cleanly: its records survived.
    app.Abort(oldie);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr->GetCell(tx, 0).value(), 0);
      return Status::kOk;
    });
  });
}

TEST(MaintenanceTest, PeriodicCheckpointsFire) {
  WorldOptions options;
  // The 5..10 checkpoint band is calibrated against 2PC commit latencies;
  // paxos acceptor traffic stretches the run and shifts the count.
  options.commit_mode = txn::CommitMode::kTwoPhase;
  options.checkpoint_interval = 2'000'000;  // every 2 virtual seconds
  World world(1, options);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 64u);
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 50; ++i) {  // ~280 ms per write txn -> ~14 s total
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, i % 16, i);
        return Status::kOk;
      });
    }
    EXPECT_GE(world.tm(1).checkpoint_count(), 5);
    EXPECT_LE(world.tm(1).checkpoint_count(), 10);
  });
}

TEST(MaintenanceTest, CheckpointsDisabledByDefault) {
  World world(1);
  auto* arr = world.AddServerOf<ArrayServer>(1, "arr", 64u);
  world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 20; ++i) {
      app.Transaction([&](const server::Tx& tx) {
        arr->SetCell(tx, 0, i);
        return Status::kOk;
      });
    }
    EXPECT_EQ(world.tm(1).checkpoint_count(), 0);
    EXPECT_EQ(world.rm(1).auto_reclaim_count(), 0);
  });
}

}  // namespace
}  // namespace tabs
