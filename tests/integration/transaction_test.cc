// Integration tests: full-stack transactions through World/Application on
// the integer array server — local, distributed, aborting, subtransactions,
// name lookup, and serializability-shaped interleavings.

#include <gtest/gtest.h>

#include "src/name/resolver.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

class TransactionTest : public ::testing::Test {
 protected:
  explicit TransactionTest(const WorldOptions& opt = WorldOptions()) : world_(3, opt) {
    a1_ = world_.AddServerOf<ArrayServer>(1, "array1", 128u);
    a2_ = world_.AddServerOf<ArrayServer>(2, "array2", 128u);
    a3_ = world_.AddServerOf<ArrayServer>(3, "array3", 128u);
  }

  static WorldOptions TwoPhase() {
    WorldOptions opt;
    opt.commit_mode = txn::CommitMode::kTwoPhase;
    return opt;
  }

  World world_;
  ArrayServer* a1_;
  ArrayServer* a2_;
  ArrayServer* a3_;
};

// The wire-shape goldens below count 2PC commit datagrams exactly; the
// protocol is pinned so the commit-mode CI matrix cannot shift them.
class TwoPhaseWireTest : public TransactionTest {
 protected:
  TwoPhaseWireTest() : TransactionTest(TwoPhase()) {}
};

TEST_F(TransactionTest, LocalReadWriteCommit) {
  int result = world_.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->SetCell(tx, 5, 42), Status::kOk);
      auto v = a1_->GetCell(tx, 5);
      EXPECT_TRUE(v.ok());
      EXPECT_EQ(v.value(), 42);
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
    // A later transaction sees the committed value.
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 5).value(), 42);
      return Status::kOk;
    });
  });
  EXPECT_EQ(result, 0);
}

TEST_F(TransactionTest, AbortRestoresOldValue) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 7, 100);
      return Status::kOk;
    });
    TxnScope t(app);
    a1_->SetCell(t.tx(), 7, 999);
    t.Abort();
    EXPECT_FALSE(t.live());
    EXPECT_TRUE(app.TransactionIsAborted(t.id()));
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 7).value(), 100);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, OutOfRangeReturnsError) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 9999).status(), Status::kOutOfRange);
      EXPECT_EQ(a1_->SetCell(tx, 9999, 1), Status::kOutOfRange);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, DistributedCommitTwoNodes) {
  world_.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->SetCell(tx, 1, 11), Status::kOk);
      EXPECT_EQ(a2_->SetCell(tx, 2, 22), Status::kOk);  // remote write
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 1).value(), 11);
      EXPECT_EQ(a2_->GetCell(tx, 2).value(), 22);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, DistributedCommitThreeNodes) {
  world_.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->SetCell(tx, 0, 1), Status::kOk);
      EXPECT_EQ(a2_->SetCell(tx, 0, 2), Status::kOk);
      EXPECT_EQ(a3_->SetCell(tx, 0, 3), Status::kOk);
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 1);
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 2);
      EXPECT_EQ(a3_->GetCell(tx, 0).value(), 3);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, DistributedAbortUndoesRemoteWrites) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope t(app);
    server::Tx tx = t.tx();
    a1_->SetCell(tx, 3, 33);
    a2_->SetCell(tx, 3, 44);
    t.Abort();
    app.Transaction([&](const server::Tx& tx2) {
      EXPECT_EQ(a1_->GetCell(tx2, 3).value(), 0);
      EXPECT_EQ(a2_->GetCell(tx2, 3).value(), 0);
      return Status::kOk;
    });
  });
}

TEST_F(TwoPhaseWireTest, RemoteReadOnlyUsesReadOnlyVote) {
  world_.RunApp(1, [&](Application& app) {
    world_.metrics().Reset();
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).status(), Status::kOk);
      EXPECT_EQ(a2_->GetCell(tx, 0).status(), Status::kOk);
      return Status::kOk;
    });
    // Read-only distributed commit: prepare + vote only (2 datagrams).
    EXPECT_EQ(world_.metrics().Bucket(sim::Phase::kCommit).Of(sim::Primitive::kDatagram), 2.0);
  });
}

TEST_F(TwoPhaseWireTest, DistributedWriteUsesFullTwoPhase) {
  world_.RunApp(1, [&](Application& app) {
    world_.metrics().Reset();
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 1);
      a2_->SetCell(tx, 0, 2);
      return Status::kOk;
    });
    // prepare, vote, commit, ack.
    EXPECT_EQ(world_.metrics().Bucket(sim::Phase::kCommit).Of(sim::Primitive::kDatagram), 4.0);
  });
}

TEST_F(TransactionTest, SerializabilityUnderConflict) {
  // Two transfer-style transactions over the same two cells, interleaved:
  // locking must serialize them and conserve the total.
  world_.RunApp(1, [&](Application& app0) {
    app0.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 100);
      a1_->SetCell(tx, 1, 100);
      return Status::kOk;
    });
  });
  auto transfer = [&](Application& app, std::int32_t amount) {
    app.Transaction([&](const server::Tx& tx) {
      auto from = a1_->GetCell(tx, 0);
      if (!from.ok()) {
        return from.status();
      }
      Status s = a1_->SetCell(tx, 0, from.value() - amount);
      if (s != Status::kOk) {
        return s;
      }
      auto to = a1_->GetCell(tx, 1);
      if (!to.ok()) {
        return to.status();
      }
      return a1_->SetCell(tx, 1, to.value() + amount);
    });
  };
  world_.SpawnApp(1, "t1", [&](Application& app) { transfer(app, 10); }, 0);
  world_.SpawnApp(1, "t2", [&](Application& app) { transfer(app, 25); }, 1000);
  EXPECT_EQ(world_.Drain(), 0);
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      std::int32_t total = a1_->GetCell(tx, 0).value() + a1_->GetCell(tx, 1).value();
      EXPECT_EQ(total, 200);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, ConflictingWritersTimeOutAndAbort) {
  Status second = Status::kOk;
  world_.SpawnApp(1, "holder", [&](Application& app) {
    TxnScope t(app);
    a1_->SetCell(t.tx(), 0, 1);
    // Hold the lock "forever" (longer than the contender's timeout).
    world_.scheduler().Charge(20'000'000);
    world_.scheduler().Yield();
    t.Commit();
  });
  world_.SpawnApp(1, "contender", [&](Application& app) {
    second = app.Transaction([&](const server::Tx& tx) {
      return a1_->SetCell(tx, 0, 2);
    });
  }, 1000);
  EXPECT_EQ(world_.Drain(), 0);
  EXPECT_EQ(second, Status::kTimeout);
}

TEST_F(TransactionTest, SubtransactionCommitsWithParent) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope parent(app);
    a1_->SetCell(parent.tx(), 0, 1);
    TxnScope child(app, parent.id());
    a1_->SetCell(child.tx(), 1, 2);
    EXPECT_EQ(child.Commit(), Status::kOk);   // merges into parent
    EXPECT_EQ(parent.Commit(), Status::kOk);  // real commit
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 1);
      EXPECT_EQ(a1_->GetCell(tx, 1).value(), 2);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, SubtransactionAbortsAlone) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope parent(app);
    a1_->SetCell(parent.tx(), 0, 1);
    {
      TxnScope child(app, parent.id());
      a1_->SetCell(child.tx(), 1, 2);
    }  // auto-abort: parent tolerates the failure
    EXPECT_EQ(parent.Commit(), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 1);
      EXPECT_EQ(a1_->GetCell(tx, 1).value(), 0);  // child's write undone
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, ParentAbortKillsCommittedSubtransaction) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope parent(app);
    TxnScope child(app, parent.id());
    a1_->SetCell(child.tx(), 1, 2);
    EXPECT_EQ(child.Commit(), Status::kOk);
    parent.Abort();
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 1).value(), 0);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, SubtransactionRemoteWriteFollowsParentOutcome) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope parent(app);
    TxnScope child(app, parent.id());
    a2_->SetCell(child.tx(), 4, 44);  // remote write inside subtxn
    EXPECT_EQ(child.Commit(), Status::kOk);
    EXPECT_EQ(parent.Commit(), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 4).value(), 44);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, NameServerFindsLocalAndRemoteBindings) {
  world_.RunApp(1, [&](Application& app) {
    name::Resolver resolver(/*max_wait=*/200'000);
    auto local = resolver.Resolve(world_.names(1), "array1", 1);
    ASSERT_EQ(local.size(), 1u);
    EXPECT_EQ(local[0].node, 1u);
    // Remote name resolved by broadcast (and cached: the repeat is a hit,
    // not a second broadcast).
    auto remote = resolver.Resolve(world_.names(1), "array3", 1);
    ASSERT_EQ(remote.size(), 1u);
    EXPECT_EQ(remote[0].node, 3u);
    resolver.Resolve(world_.names(1), "array3", 1);
    EXPECT_EQ(resolver.stats().lookups, 2u);
    EXPECT_EQ(resolver.stats().cache_hits, 1u);
    // Unknown names come back empty after the broadcast wait.
    EXPECT_TRUE(resolver.Resolve(world_.names(1), "no-such-server", 1).empty());
  });
}

TEST_F(TransactionTest, DescribeNodeListsComponents) {
  std::string desc = world_.DescribeNode(1);
  EXPECT_NE(desc.find("Transaction Manager"), std::string::npos);
  EXPECT_NE(desc.find("array1"), std::string::npos);
}

// --- the RAII / retry API ----------------------------------------------------

TEST_F(TransactionTest, TxnScopeAutoAbortsOnEarlyReturn) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId leaked = kNullTransaction;
    [&] {
      TxnScope t(app);
      leaked = t.id();
      a1_->SetCell(t.tx(), 9, 123);
      return;  // early exit without Commit
    }();
    EXPECT_TRUE(app.TransactionIsAborted(leaked));
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 9).value(), 0);  // write rolled back
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, TxnScopeCommitSticks) {
  world_.RunApp(1, [&](Application& app) {
    {
      TxnScope t(app);
      a1_->SetCell(t.tx(), 10, 7);
      EXPECT_EQ(t.Commit(), Status::kOk);
    }  // dtor must NOT abort a committed scope
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 10).value(), 7);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, TxnScopeMoveTransfersOwnership) {
  world_.RunApp(1, [&](Application& app) {
    TxnScope outer = [&] {
      TxnScope inner(app);
      a1_->SetCell(inner.tx(), 11, 5);
      return inner;  // moved out; inner's dtor must not abort
    }();
    EXPECT_TRUE(outer.live());
    EXPECT_EQ(outer.Commit(), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 11).value(), 5);
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, RunTransactionalSucceedsFirstAttempt) {
  world_.RunApp(1, [&](Application& app) {
    auto r = app.RunTransactional([&](const server::Tx& tx) {
      return a1_->SetCell(tx, 12, 1);
    });
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.attempts, 1);
  });
}

TEST_F(TransactionTest, RunTransactionalDoesNotRetryNonRetryable) {
  world_.RunApp(1, [&](Application& app) {
    auto r = app.RunTransactional([&](const server::Tx& tx) {
      return a1_->SetCell(tx, 9999, 1) == Status::kOutOfRange
                 ? Status::kNotFound  // surface a non-retryable failure
                 : Status::kOk;
    });
    EXPECT_EQ(r.status, Status::kNotFound);
    EXPECT_EQ(r.attempts, 1);
  });
}

TEST_F(TransactionTest, RunTransactionalRetriesThroughLockTimeout) {
  // A holder pins the lock long enough to time out the contender's first
  // attempt, then commits; the contender's retry (after backoff) succeeds.
  Application::RunResult result;
  world_.SpawnApp(1, "holder", [&](Application& app) {
    TxnScope t(app);
    a1_->SetCell(t.tx(), 0, 1);
    world_.scheduler().Charge(6'000'000);  // > the 5 s lock-wait timeout
    world_.scheduler().Yield();
    t.Commit();
  });
  world_.SpawnApp(1, "contender", [&](Application& app) {
    Application::RetryPolicy policy;
    policy.initial_backoff_us = 2'000'000;  // retry lands after the holder commits
    result = app.RunTransactional(
        [&](const server::Tx& tx) { return a1_->SetCell(tx, 0, 2); }, policy);
  }, 1000);
  EXPECT_EQ(world_.Drain(), 0);
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_GT(result.attempts, 1);
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1_->GetCell(tx, 0).value(), 2);  // contender won in the end
      return Status::kOk;
    });
  });
}

TEST_F(TransactionTest, RunTransactionalGivesUpAfterMaxAttempts) {
  Application::RunResult result;
  world_.RunApp(1, [&](Application& app) {
    int bodies = 0;
    Application::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_us = 1'000;
    result = app.RunTransactional(
        [&](const server::Tx&) {
          ++bodies;
          return Status::kVoteNo;  // always transiently failing
        },
        policy);
    EXPECT_EQ(bodies, 3);
  });
  EXPECT_EQ(result.status, Status::kVoteNo);
  EXPECT_EQ(result.attempts, 3);
}

}  // namespace
}  // namespace tabs
