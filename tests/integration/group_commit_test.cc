// Group commit integration tests.
//
// The contract under test: with group_commit_window_us > 0, committing
// transactions batch their log forces through the per-node daemon — many
// commits, one stable write — while the externally visible guarantee is
// unchanged: End() returns kOk only after the commit record is stable, and a
// node crash mid-batch aborts the entire unforced tail on recovery.

#include <gtest/gtest.h>

#include "src/log/group_commit.h"
#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

WorldOptions GroupCommitOptions(SimTime window_us, int max_batch = 32) {
  WorldOptions opt;
  opt.group_commit_window_us = window_us;
  opt.group_commit_max_batch = max_batch;
  return opt;
}

TEST(GroupCommitTest, WindowZeroForcesPerTransaction) {
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // force counts are 2PC's
  World world(1, opt);  // default window: daemon disabled
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  world.metrics().Reset();
  int result = world.RunApp(1, [&](Application& app) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(app.Transaction([&](const server::Tx& tx) {
        return a->SetCell(tx, static_cast<std::uint32_t>(i), i);
      }), Status::kOk);
    }
  });
  EXPECT_EQ(result, 0);
  // Paper-faithful: one issued force per commit, nothing absorbed.
  EXPECT_EQ(world.metrics().forces_issued(), 4.0);
  EXPECT_EQ(world.metrics().forces_absorbed(), 0.0);
  EXPECT_FALSE(world.group_commit(1).enabled());
}

TEST(GroupCommitTest, ConcurrentCommittersShareOneForce) {
  World world(1, GroupCommitOptions(2'000));
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  world.metrics().Reset();
  constexpr int kApps = 8;
  int committed = 0;
  for (int i = 0; i < kApps; ++i) {
    world.SpawnApp(1, "app" + std::to_string(i), [&, i](Application& app) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        return a->SetCell(tx, static_cast<std::uint32_t>(i), i + 1);
      });
      if (s == Status::kOk) {
        ++committed;
      }
    }, i * 100);  // all land inside one 2 ms batch window
  }
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_EQ(committed, kApps);
  // The batch window coalesced the 8 commit forces into fewer stable
  // writes; the absorbed count is what the batching saved.
  EXPECT_LT(world.metrics().forces_issued(), static_cast<double>(kApps));
  EXPECT_GT(world.metrics().forces_absorbed(), 0.0);
  EXPECT_GE(world.group_commit(1).largest_batch(), 2);
  // Everything really committed: values are durable and visible.
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < kApps; ++i) {
        EXPECT_EQ(a->GetCell(tx, static_cast<std::uint32_t>(i)).value(), i + 1);
      }
      return Status::kOk;
    });
  });
}

TEST(GroupCommitTest, FullBatchFlushesBeforeWindowExpires) {
  // Window far larger than the workload's span: only the max-batch early
  // flush can complete these commits promptly.
  World world(1, GroupCommitOptions(50'000'000, /*max_batch=*/4));
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  int committed = 0;
  std::vector<SimTime> commit_times;
  for (int i = 0; i < 4; ++i) {
    world.SpawnApp(1, "app" + std::to_string(i), [&, i](Application& app) {
      if (app.Transaction([&](const server::Tx& tx) {
            return a->SetCell(tx, static_cast<std::uint32_t>(i), 1);
          }) == Status::kOk) {
        ++committed;
        commit_times.push_back(world.scheduler().Now());
      }
    }, i * 100);
  }
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_EQ(committed, 4);
  for (SimTime t : commit_times) {
    EXPECT_LT(t, 50'000'000) << "commit waited for the window timer";
  }
  EXPECT_EQ(world.group_commit(1).largest_batch(), 4);
}

TEST(GroupCommitTest, CrashMidBatchAbortsUnforcedTail) {
  // A huge window keeps commit records unforced: the committer blocks in the
  // daemon, the node crashes before any flush, and recovery must roll the
  // transaction back — End() never returned, so nothing was ever promised.
  World world(2, GroupCommitOptions(1'000'000'000));
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  bool commit_returned = false;
  world.SpawnApp(1, "committer", [&](Application& app) {
    TxnScope t(app);
    a->SetCell(t.tx(), 0, 42);
    // Make the *update* records stable so recovery genuinely sees this
    // transaction — and must judge it by its missing commit record.
    world.rm(1).log().ForceAll();
    t.Commit();  // blocks in the daemon; the crash kills the task here
    commit_returned = true;  // must never run
  });
  world.SpawnApp(2, "crasher", [&](Application& app) {
    world.CrashNode(1);
  }, 500'000);  // after the commit record is appended, before the window fires
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_FALSE(commit_returned);

  world.RunApp(2, [&](Application& app) {
    auto stats = world.RecoverNode(1);
    // The unforced tail (our one transaction) is a loser: its commit record
    // never reached the stable device.
    EXPECT_EQ(stats.losers.size(), 1u);
  });
  a = world.Server<ArrayServer>(1, "array");
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a->GetCell(tx, 0).value(), 0);  // write rolled back
      return Status::kOk;
    });
  });
}

TEST(GroupCommitTest, CommitReportedBeforeCrashSurvivesRecovery) {
  // Positive control for CrashMidBatchAbortsUnforcedTail: with a short
  // window the batch flushes, End() returns kOk, and the value must then
  // survive the crash.
  WorldOptions opt = GroupCommitOptions(1'000);
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // recovery shape is 2PC's
  World world(2, opt);
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  bool commit_returned = false;
  world.SpawnApp(1, "committer", [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      return a->SetCell(tx, 0, 42);
    });
    EXPECT_EQ(s, Status::kOk);
    commit_returned = true;
  });
  world.SpawnApp(2, "crasher", [&](Application& app) {
    world.CrashNode(1);
  }, 500'000);
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_TRUE(commit_returned);

  world.RunApp(2, [&](Application& app) {
    auto stats = world.RecoverNode(1);
    EXPECT_TRUE(stats.losers.empty());
  });
  a = world.Server<ArrayServer>(1, "array");
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a->GetCell(tx, 0).value(), 42);  // reported committed => stable
      return Status::kOk;
    });
  });
}

TEST(GroupCommitTest, CheckpointForceAbsorbsPendingBatch) {
  // A checkpoint's ForceAll advances the durable frontier past a pending
  // batch's records: the blocked committer wakes immediately (its force
  // absorbed) instead of waiting out the window.
  WorldOptions opt = GroupCommitOptions(20'000'000);
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // force counts are 2PC's
  World world(1, opt);
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  world.metrics().Reset();
  SimTime commit_time = 0;
  world.SpawnApp(1, "committer", [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      return a->SetCell(tx, 0, 1);
    });
    commit_time = world.scheduler().Now();
  });
  world.SpawnApp(1, "checkpointer", [&](Application& app) {
    world.Checkpoint(1);
  }, 1'000'000);
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_GT(commit_time, 0);
  EXPECT_LT(commit_time, 20'000'000) << "committer waited out the window";
}

TEST(GroupCommitTest, DaemonSurvivesCrashRecoverCycle) {
  // RecoverNode rebuilds the runtime, daemon included: batching still works
  // in the node's second incarnation.
  World world(2, GroupCommitOptions(2'000));
  ArrayServer* a = world.AddServerOf<ArrayServer>(1, "array", 64u);
  world.RunApp(2, [&](Application& app) {
    world.CrashNode(1);
    world.RecoverNode(1);
  });
  a = world.Server<ArrayServer>(1, "array");
  world.metrics().Reset();
  int committed = 0;
  for (int i = 0; i < 4; ++i) {
    world.SpawnApp(1, "app" + std::to_string(i), [&, i](Application& app) {
      if (app.Transaction([&](const server::Tx& tx) {
            return a->SetCell(tx, static_cast<std::uint32_t>(i), 1);
          }) == Status::kOk) {
        ++committed;
      }
    }, i * 100);
  }
  EXPECT_EQ(world.Drain(), 0);
  EXPECT_EQ(committed, 4);
  EXPECT_TRUE(world.group_commit(1).enabled());
  EXPECT_GT(world.metrics().forces_absorbed(), 0.0);
}

}  // namespace
}  // namespace tabs
